//! Criterion bench behind Table 1: transistor-level vs PW-RBF simulation
//! of a reduced coupled-line structure (fewer segments / shorter window
//! than the gen_table1 binary, so the bench suite stays fast; the printed
//! table uses the full configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use emc_bench::{driver_model, fig4, Fig4Config};

fn bench_table1(c: &mut Criterion) {
    let model = driver_model(&refdev::md3()).expect("md3 estimation");
    let cfg = Fig4Config {
        segments: 6,
        t_stop: 8e-9,
        pattern_active: "0110",
        ..Default::default()
    };

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("coupled_structure_both_models", |b| {
        b.iter(|| fig4(&cfg, Some(model.clone())).expect("fig4 run"))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
