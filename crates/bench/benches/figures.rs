//! Criterion benches: the per-figure simulation cost with pre-estimated
//! models (reduced fixtures so the bench suite finishes quickly).

use circuit::devices::{Capacitor, IdealLine, Resistor, SourceWaveform, VoltageSource};
use circuit::{Circuit, TranParams, GROUND};
use criterion::{criterion_group, criterion_main, Criterion};
use emc_bench::{cr_model, driver_model, receiver_model, TS};
use macromodel::device::{PwRbfDriver, ReceiverModelDevice};

fn bench_figures(c: &mut Criterion) {
    let md1 = driver_model(&refdev::md1()).expect("md1 estimation");
    let md2 = driver_model(&refdev::md2()).expect("md2 estimation");
    let rx = receiver_model(&refdev::md4()).expect("md4 estimation");
    let cr = cr_model(&refdev::md4()).expect("cr estimation");

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig. 1 fixture: PW-RBF + ideal line + cap.
    g.bench_function("fig1_pwrbf_sim", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            ckt.add(PwRbfDriver::new(md1.clone(), out, "01", 4e-9));
            let far = ckt.node("far");
            ckt.add(IdealLine::new("l", out, GROUND, far, GROUND, 50.0, 0.8e-9));
            ckt.add(Capacitor::new("c", far, GROUND, 10e-12));
            ckt.transient(TranParams::new(TS, 12e-9)).expect("tran")
        })
    });

    // Fig. 2 panel (b): the hardest line (120 ohm, strong reflections).
    g.bench_function("fig2b_pwrbf_sim", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            ckt.add(PwRbfDriver::new(md2.clone(), out, "010", 1e-9));
            let far = ckt.node("far");
            ckt.add(IdealLine::new("l", out, GROUND, far, GROUND, 120.0, 0.5e-9));
            ckt.add(Capacitor::new("c", far, GROUND, 5e-12));
            ckt.transient(TranParams::new(TS, 8e-9)).expect("tran")
        })
    });

    // Fig. 5 fixture: receiver model under trapezoidal drive.
    g.bench_function("fig5_parametric_sim", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let s = ckt.node("src");
            ckt.add(VoltageSource::new(
                "vs",
                s,
                GROUND,
                SourceWaveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.4e-9,
                    rise: 100e-12,
                    width: 2e-9,
                    fall: 100e-12,
                },
            ));
            let pad = ckt.node("pad");
            ckt.add(Resistor::new("rs", s, pad, 60.0));
            ckt.add(ReceiverModelDevice::new(rx.clone(), pad));
            ckt.transient(TranParams::new(TS, 3e-9)).expect("tran")
        })
    });

    // Fig. 5 baseline for comparison.
    g.bench_function("fig5_cr_sim", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let s = ckt.node("src");
            ckt.add(VoltageSource::new(
                "vs",
                s,
                GROUND,
                SourceWaveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.4e-9,
                    rise: 100e-12,
                    width: 2e-9,
                    fall: 100e-12,
                },
            ));
            let pad = ckt.node("pad");
            ckt.add(Resistor::new("rs", s, pad, 60.0));
            cr.instantiate(&mut ckt, pad);
            ckt.transient(TranParams::new(TS, 3e-9)).expect("tran")
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
