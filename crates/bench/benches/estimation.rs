//! Criterion bench of the model-generation cost (paper Section 5: "some
//! ten seconds on a Pentium-II PC @ 350 MHz").

use criterion::{criterion_group, criterion_main, Criterion};
use emc_bench::{cr_model, receiver_model};
use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
use sysid::narx::RbfTrainConfig;

fn bench_estimation(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimation");
    g.sample_size(10);

    // Reduced-size driver estimation (same pipeline, smaller signals).
    let cfg = DriverEstimationConfig {
        n_levels: 24,
        dwell: 16,
        rbf: RbfTrainConfig {
            max_centers: 8,
            candidate_pool: 60,
            width_scale: 1.0,
            ols_tolerance: 1e-6,
        },
        t_pre: 1.5e-9,
        t_window: 3e-9,
        ..Default::default()
    };
    g.bench_function("driver_md1_reduced", |b| {
        b.iter(|| estimate_driver(&refdev::md1(), cfg).expect("estimation"))
    });

    g.bench_function("receiver_md4", |b| {
        b.iter(|| receiver_model(&refdev::md4()).expect("estimation"))
    });

    g.bench_function("cr_baseline_md4", |b| {
        b.iter(|| cr_model(&refdev::md4()).expect("estimation"))
    });

    g.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
