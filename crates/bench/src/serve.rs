//! The model-serving harness: scenario-matrix sweeps and batch validation
//! over a [`ModelStore`].
//!
//! The paper's deployment story is "estimate once, serve everywhere": a
//! library of `.mdlx` artifacts stands in for transistor-level devices
//! across many signal-integrity scenarios. This module is that serving
//! layer. [`sweep_store`] takes the cartesian product of {stored models} ×
//! {scenarios that apply to their port direction} and runs every cell as a
//! transient on [`crate::par_map`] workers, collecting per-cell pass/fail,
//! waveform sanity, and solver diagnostics ([`circuit::SolveStats`]).
//! [`validate_store`] re-certifies every model against its transistor-level
//! reference with per-kind accuracy gates — the CI re-certification pass.
//! Both produce a [`FleetReport`] that serializes to machine-readable JSON
//! ([`FleetReport::to_json`]) for workflow artifacts and trend tooling.
//!
//! Scenarios come in two shapes: standard one-port [`TestFixture`] networks
//! (driver kinds produce the stimulus; load kinds are driven by the
//! fixture's source), and multi-lane coupled **bus ladders** where each
//! lane is driven by a macromodel instance — including a mixed-backend lane
//! assignment when the store holds several driver models, the "many
//! backends in one net" serving case.

use crate::par_map;
use circuit::devices::Resistor;
use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use circuit::{Circuit, SolveStats, TranParams, Waveform, GROUND};
use macromodel::validate::{validate_macromodel, ReferencePort, DEFAULT_VALIDATION_DT};
use macromodel::{Macromodel, ModelKind, ModelStore, PortStimulus, TestFixture};
use refdev::{CmosDriverSpec, ReceiverSpec};
use si::{
    prbs_pattern, ChannelSpec, EyeAnalyzer, EyeConfig, EyeMetrics, McGates, McParam, McPlan,
    McSummary, PrbsOrder, Termination,
};

/// Bound on plausible pad voltages (V): every reference device is a 1.8 V
/// or 3.3 V part, so anything beyond this is a solver or model blow-up,
/// not a waveform.
const SANE_VOLTAGE_BOUND: f64 = 25.0;

/// Schema version of [`FleetReport::to_json`]. Bump on any
/// field-level change so trend tooling can dispatch on the shape it is
/// reading. Version 2 added `schema` itself plus the `eyes` and `mc`
/// signal-integrity aggregate blocks.
pub const FLEET_REPORT_SCHEMA: u32 = 2;

// ---------------------------------------------------------------------
// Reference resolution
// ---------------------------------------------------------------------

/// Resolves a driver device of the standard family by name.
pub fn driver_spec(device: &str) -> Option<CmosDriverSpec> {
    match device {
        "md1" => Some(refdev::md1()),
        "md2" => Some(refdev::md2()),
        "md3" => Some(refdev::md3()),
        _ => None,
    }
}

/// Resolves a receiver device of the standard family by name.
pub fn receiver_spec(device: &str) -> Option<ReceiverSpec> {
    (device == "md4").then(refdev::md4)
}

/// Resolves the transistor-level reference a loaded artifact stands in
/// for, from its model name: C–R̂ artifacts are named `<device>_cr`, IBIS
/// corner variants `<device>_<Corner>`.
pub fn reference_for(model: &dyn Macromodel) -> Option<ReferencePort> {
    let base = ["_cr", "_Slow", "_Typical", "_Fast"]
        .iter()
        .fold(model.name(), |n, suf| n.strip_suffix(suf).unwrap_or(n));
    if model.kind().is_driver() {
        driver_spec(base).map(ReferencePort::Driver)
    } else {
        receiver_spec(base).map(ReferencePort::Receiver)
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Which port direction a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// Output ports: the model produces the stimulus.
    Drivers,
    /// Input ports: the fixture carries the source, the model is the load.
    Loads,
}

/// The network a scenario cell simulates.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// A standard one-port [`TestFixture`] around the model's pad.
    Fixture {
        /// The validation network.
        fixture: TestFixture,
        /// Bit pattern driver kinds produce (ignored by load kinds).
        stim: Option<PortStimulus>,
        /// Simulated window (s).
        t_stop: f64,
    },
    /// A `conductors`-lane lossy coupled bus expanded into `segments` RLGC
    /// cells; every lane is driven by a macromodel instance (the lane's bit
    /// pattern is the base pattern rotated by the lane index) and
    /// terminated at the far end.
    BusLadder {
        /// Coupled lanes.
        conductors: usize,
        /// RLGC segments per lane.
        segments: usize,
        /// Base bit pattern.
        pattern: String,
        /// Bit time (s).
        bit_time: f64,
        /// Simulated window (s).
        t_stop: f64,
    },
    /// A PRBS eye-diagram cell: every lane of a generated
    /// [`si::ChannelSpec`] channel is driven by a macromodel instance with
    /// a seed-offset PRBS stream, and the far-end waveforms are folded
    /// into eye metrics ([`si::eye`]).
    Eye(EyeWorkload),
    /// A Monte-Carlo statistical sweep: the model drives a 2-lane channel
    /// whose parameters are Latin-hypercube sampled per trial, gated on
    /// population eye statistics ([`si::mc`]).
    MonteCarlo(McWorkload),
}

/// Parameters of one PRBS eye-diagram cell.
#[derive(Debug, Clone)]
pub struct EyeWorkload {
    /// PRBS order tag (7, 15 or 31).
    pub prbs: u32,
    /// Bits simulated per lane.
    pub bits: usize,
    /// Master seed; lane `k` streams from `seed + k`.
    pub seed: u64,
    /// Unit interval (s).
    pub bit_time: f64,
    /// Channel lanes (one driven macromodel instance each).
    pub lanes: usize,
    /// RLGC segments of the channel expansion.
    pub segments: usize,
}

impl EyeWorkload {
    /// The standard workload: a 4-lane PRBS-7 stream (2 lanes and a
    /// shorter stream under `fast`).
    pub fn standard(fast: bool) -> Self {
        EyeWorkload {
            prbs: 7,
            bits: if fast { 12 } else { 24 },
            seed: 1,
            bit_time: 2e-9,
            lanes: if fast { 2 } else { 4 },
            segments: 3,
        }
    }

    /// Simulated window (s): one unit interval per bit.
    pub fn t_stop(&self) -> f64 {
        self.bits as f64 * self.bit_time
    }
}

/// Parameters of one Monte-Carlo channel sweep.
#[derive(Debug, Clone)]
pub struct McWorkload {
    /// Trials in the Latin-hypercube plan.
    pub trials: usize,
    /// Master seed; every stochastic choice (trial parameters, per-trial
    /// PRBS streams) derives from it.
    pub seed: u64,
    /// PRBS order tag of the per-trial stimulus.
    pub prbs: u32,
    /// Bits simulated per trial.
    pub bits: usize,
    /// Unit interval (s).
    pub bit_time: f64,
    /// Statistical pass gates over the trial population.
    pub gates: McGates,
}

impl McWorkload {
    /// The standard sweep: 8 trials (4 under `fast`) of a PRBS-7 stream
    /// over the 2-lane channel parameter space.
    pub fn standard(fast: bool) -> Self {
        McWorkload {
            trials: if fast { 4 } else { 8 },
            seed: 0xec0_5eed,
            prbs: 7,
            bits: if fast { 10 } else { 16 },
            bit_time: 2e-9,
            gates: McGates::default(),
        }
    }
}

/// One named column of the scenario matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (report key).
    pub name: String,
    /// Port direction this scenario exercises.
    pub applies_to: Applicability,
    /// The simulated network.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Whether the scenario applies to a model of `kind`.
    pub fn applies(&self, kind: ModelKind) -> bool {
        match self.applies_to {
            Applicability::Drivers => kind.is_driver(),
            Applicability::Loads => !kind.is_driver(),
        }
    }
}

/// The standard serving matrix: two driver fixtures + a coupled bus ladder
/// for output ports, a pulsed line fixture for input ports. `fast` shrinks
/// windows and ladder size for smoke-test budgets.
pub fn standard_scenarios(fast: bool) -> Vec<Scenario> {
    let bit = if fast { 3e-9 } else { 4e-9 };
    vec![
        Scenario {
            name: "r50".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::Fixture {
                fixture: TestFixture::resistive(50.0),
                stim: Some(PortStimulus::new("010", bit)),
                t_stop: 3.0 * bit,
            },
        },
        Scenario {
            name: "linecap".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::Fixture {
                fixture: TestFixture::line_cap(50.0, 0.8e-9, 10e-12),
                stim: Some(PortStimulus::new("01", bit)),
                t_stop: if fast { 5e-9 } else { 8e-9 },
            },
        },
        Scenario {
            name: "bus-ladder".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::BusLadder {
                conductors: if fast { 2 } else { 3 },
                segments: if fast { 4 } else { 6 },
                pattern: "0110".into(),
                bit_time: 2e-9,
                t_stop: if fast { 5e-9 } else { 8e-9 },
            },
        },
        Scenario {
            name: "eye-prbs7".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::Eye(EyeWorkload::standard(fast)),
        },
        Scenario {
            name: "mc-channel".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::MonteCarlo(McWorkload::standard(fast)),
        },
        Scenario {
            name: "pulse".into(),
            applies_to: Applicability::Loads,
            kind: ScenarioKind::Fixture {
                fixture: TestFixture::series_pulse(60.0, 0.0, 1.0, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9),
                stim: None,
                t_stop: 3e-9,
            },
        },
    ]
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// Solver diagnostics of one cell's transient.
#[derive(Debug, Clone, Copy)]
pub struct CellStats {
    /// Symbolic analyses (a well-behaved cell needs exactly one).
    pub symbolic_analyses: usize,
    /// Numeric factorizations.
    pub factorizations: usize,
    /// Structural nonzeros of the `L + U` factors.
    pub factor_nnz: usize,
    /// Cumulative factorization multiply–adds.
    pub flops: u64,
    /// Newton iterations summed over all steps.
    pub newton_iterations: usize,
    /// MNA unknowns of the cell circuit.
    pub unknowns: usize,
}

impl CellStats {
    fn new(stats: SolveStats, newton_iterations: usize, unknowns: usize) -> Self {
        CellStats {
            symbolic_analyses: stats.symbolic_analyses,
            factorizations: stats.factorizations,
            factor_nnz: stats.factor_nnz,
            flops: stats.flops,
            newton_iterations,
            unknowns,
        }
    }
}

/// One cell of the scenario matrix: a (model, scenario) pair's outcome.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Model name (or a `mixed:`-prefixed lane list for the mixed-bus
    /// cell).
    pub model: String,
    /// Model kind tag.
    pub kind: String,
    /// Scenario name.
    pub scenario: String,
    /// Whether the cell passed its gate.
    pub pass: bool,
    /// Failure description (empty when passing).
    pub detail: String,
    /// RMS voltage error vs the reference (validation cells).
    pub rms_error: Option<f64>,
    /// Max voltage error vs the reference (validation cells).
    pub max_error: Option<f64>,
    /// Threshold-crossing timing error (validation cells, s).
    pub timing_error_s: Option<f64>,
    /// The RMS gate the cell was held to (validation cells, V).
    pub rms_limit: Option<f64>,
    /// Samples of the probed waveform(s).
    pub samples: usize,
    /// Smallest probed voltage (V).
    pub v_min: f64,
    /// Largest probed voltage (V).
    pub v_max: f64,
    /// Solver diagnostics of the model-side transient.
    pub stats: Option<CellStats>,
    /// Eye-diagram outcome (eye cells only).
    pub eye: Option<EyeOutcome>,
    /// Monte-Carlo population aggregates (MC cells only).
    pub mc: Option<McSummary>,
    /// Wall-clock seconds of the cell.
    pub elapsed_s: f64,
}

impl CellReport {
    fn failed(model: &dyn Macromodel, scenario: &str, detail: String) -> Self {
        CellReport {
            model: model.name().to_string(),
            kind: model.kind().tag().to_string(),
            scenario: scenario.to_string(),
            pass: false,
            detail,
            rms_error: None,
            max_error: None,
            timing_error_s: None,
            rms_limit: None,
            samples: 0,
            v_min: 0.0,
            v_max: 0.0,
            stats: None,
            eye: None,
            mc: None,
            elapsed_s: 0.0,
        }
    }
}

/// Eye-diagram outcome of one eye cell: the workload identity plus the
/// worst lane's metrics (the gate subject — a link budget is only as good
/// as its weakest lane).
#[derive(Debug, Clone)]
pub struct EyeOutcome {
    /// PRBS order tag.
    pub prbs: u32,
    /// Bits simulated per lane.
    pub bits: usize,
    /// Master seed of the lane streams.
    pub seed: u64,
    /// Channel lanes simulated.
    pub lanes: usize,
    /// Lane with the smallest eye opening (metrics below are its).
    pub worst_lane: usize,
    /// Worst-lane eye metrics.
    pub metrics: EyeMetrics,
}

impl EyeOutcome {
    /// The outcome as one compact JSON object (the `eye` block of cell
    /// and fleet reports; the `mdl eye --json` payload).
    pub fn json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"prbs\": {}, \"bits\": {}, \"seed\": {}, \"lanes\": {}, \"worst_lane\": {}, \
             \"open\": {}, \"eye_height\": {}, \"eye_width_ui\": {}, \"jitter_pp_s\": {}, \
             \"jitter_rms_s\": {}, \"overshoot\": {}, \"undershoot\": {}, \"v_high\": {}, \
             \"v_low\": {}, \"crossings\": {}}}",
            self.prbs,
            self.bits,
            self.seed,
            self.lanes,
            self.worst_lane,
            m.open,
            json_f64(m.eye_height),
            json_f64(m.eye_width_ui),
            json_f64(m.jitter_pp_s),
            json_f64(m.jitter_rms_s),
            json_f64(m.overshoot),
            json_f64(m.undershoot),
            json_f64(m.v_high),
            json_f64(m.v_low),
            m.crossings,
        )
    }
}

/// Serializes a Monte-Carlo population summary as one compact JSON object
/// (the `mc` block of cell and fleet reports; the `mdl mc --json` payload).
pub fn mc_summary_json(s: &McSummary) -> String {
    format!(
        "{{\"trials\": {}, \"seed\": {}, \"closed_eyes\": {}, \"eye_height_min\": {}, \
         \"eye_height_mean\": {}, \"eye_height_q05\": {}, \"eye_width_min_ui\": {}, \
         \"jitter_pp_q_s\": {}, \"jitter_pp_max_s\": {}, \"pass\": {}}}",
        s.trials,
        s.seed,
        s.closed_eyes,
        json_f64(s.eye_height_min),
        json_f64(s.eye_height_mean),
        json_f64(s.eye_height_q05),
        json_f64(s.eye_width_min_ui),
        json_f64(s.jitter_pp_q_s),
        json_f64(s.jitter_pp_max_s),
        s.pass,
    )
}

/// One eye-diagram aggregate of a fleet report: the cell identity plus
/// its [`EyeOutcome`].
#[derive(Debug, Clone)]
pub struct EyeSummary {
    /// Model name.
    pub model: String,
    /// Scenario name.
    pub scenario: String,
    /// The eye outcome.
    pub outcome: EyeOutcome,
}

/// One Monte-Carlo aggregate of a fleet report.
#[derive(Debug, Clone)]
pub struct McCellSummary {
    /// Model name.
    pub model: String,
    /// Scenario name.
    pub scenario: String,
    /// The population aggregates.
    pub summary: McSummary,
}

/// Static-analysis summary of one served model (see [`macromodel::lint`]).
#[derive(Debug, Clone)]
pub struct ModelLint {
    /// Model name.
    pub model: String,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Info-severity findings.
    pub infos: usize,
    /// Distinct diagnostic codes observed, in code order.
    pub codes: Vec<String>,
}

impl ModelLint {
    /// Lints one model (semantic rules plus the structural audit) and
    /// summarizes the outcome under the default severity policy.
    pub fn of(name: &str, model: &macromodel::AnyModel) -> Self {
        let cfg = macromodel::LintConfig::default();
        let report = macromodel::LintReport {
            diagnostics: macromodel::lint_model_full(model),
        };
        let (errors, warnings, infos) = report.counts(&cfg);
        let mut codes: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| d.code.to_string())
            .collect();
        codes.sort();
        codes.dedup();
        ModelLint {
            model: name.to_string(),
            errors,
            warnings,
            infos,
            codes,
        }
    }
}

/// The whole matrix outcome: one report per store sweep or validation run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// JSON schema version ([`FLEET_REPORT_SCHEMA`]).
    pub schema: u32,
    /// Store directory the models came from.
    pub store_root: String,
    /// `"sweep"` or `"validate"`.
    pub mode: String,
    /// `.mdlx` files scanned.
    pub artifacts: usize,
    /// Models served (bundles flattened).
    pub models: usize,
    /// Files that failed to load: `(path, error)`.
    pub load_failures: Vec<(String, String)>,
    /// Per-model static-analysis summaries (default severity policy).
    pub lints: Vec<ModelLint>,
    /// Every matrix cell.
    pub cells: Vec<CellReport>,
    /// Eye-diagram aggregates, one per eye cell (sweep mode).
    pub eyes: Vec<EyeSummary>,
    /// Monte-Carlo aggregates, one per MC cell (sweep mode).
    pub mc: Vec<McCellSummary>,
}

impl FleetReport {
    /// Number of passing cells.
    pub fn passed(&self) -> usize {
        self.cells.iter().filter(|c| c.pass).count()
    }

    /// Number of failing cells.
    pub fn failed(&self) -> usize {
        self.cells.len() - self.passed()
    }

    /// Whether the fleet is healthy: every cell passed and every artifact
    /// loaded.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0 && self.load_failures.is_empty()
    }

    /// Serializes the report as one JSON object (no external dependencies —
    /// the emitter writes the exact schema the CI trend tooling consumes).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str(&format!("  \"store\": {},\n", json_str(&self.store_root)));
        out.push_str(&format!("  \"mode\": {},\n", json_str(&self.mode)));
        out.push_str(&format!("  \"artifacts\": {},\n", self.artifacts));
        out.push_str(&format!("  \"models\": {},\n", self.models));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"all_passed\": {},\n", self.all_passed()));
        out.push_str("  \"load_failures\": [");
        for (i, (path, error)) in self.load_failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"error\": {}}}",
                json_str(path),
                json_str(error)
            ));
        }
        if !self.load_failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"lints\": [");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let codes: Vec<String> = l.codes.iter().map(|c| json_str(c)).collect();
            out.push_str(&format!(
                "\n    {{\"model\": {}, \"errors\": {}, \"warnings\": {}, \"infos\": {}, \
                 \"codes\": [{}]}}",
                json_str(&l.model),
                l.errors,
                l.warnings,
                l.infos,
                codes.join(", ")
            ));
        }
        if !self.lints.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"model\": {}, ", json_str(&c.model)));
            out.push_str(&format!("\"kind\": {}, ", json_str(&c.kind)));
            out.push_str(&format!("\"scenario\": {}, ", json_str(&c.scenario)));
            out.push_str(&format!("\"pass\": {}, ", c.pass));
            out.push_str(&format!("\"detail\": {}, ", json_str(&c.detail)));
            out.push_str(&format!("\"rms_error\": {}, ", json_opt(c.rms_error)));
            out.push_str(&format!("\"max_error\": {}, ", json_opt(c.max_error)));
            out.push_str(&format!(
                "\"timing_error_s\": {}, ",
                json_opt(c.timing_error_s)
            ));
            out.push_str(&format!("\"rms_limit\": {}, ", json_opt(c.rms_limit)));
            out.push_str(&format!("\"samples\": {}, ", c.samples));
            out.push_str(&format!("\"v_min\": {}, ", json_f64(c.v_min)));
            out.push_str(&format!("\"v_max\": {}, ", json_f64(c.v_max)));
            match &c.stats {
                Some(s) => out.push_str(&format!(
                    "\"stats\": {{\"symbolic_analyses\": {}, \"factorizations\": {}, \
                     \"factor_nnz\": {}, \"flops\": {}, \"newton_iterations\": {}, \
                     \"unknowns\": {}}}, ",
                    s.symbolic_analyses,
                    s.factorizations,
                    s.factor_nnz,
                    s.flops,
                    s.newton_iterations,
                    s.unknowns
                )),
                None => out.push_str("\"stats\": null, "),
            }
            match &c.eye {
                Some(eye) => out.push_str(&format!("\"eye\": {}, ", eye.json())),
                None => out.push_str("\"eye\": null, "),
            }
            match &c.mc {
                Some(mc) => out.push_str(&format!("\"mc\": {}, ", mc_summary_json(mc))),
                None => out.push_str("\"mc\": null, "),
            }
            out.push_str(&format!("\"elapsed_s\": {}}}", json_f64(c.elapsed_s)));
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"eyes\": [");
        for (i, e) in self.eyes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"model\": {}, \"scenario\": {}, \"outcome\": {}}}",
                json_str(&e.model),
                json_str(&e.scenario),
                e.outcome.json()
            ));
        }
        if !self.eyes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"mc\": [");
        for (i, m) in self.mc.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"model\": {}, \"scenario\": {}, \"summary\": {}}}",
                json_str(&m.model),
                json_str(&m.scenario),
                mc_summary_json(&m.summary)
            ));
        }
        if !self.mc.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Quotes and escapes a string as a JSON string literal (shared by the
/// hand-rolled report emitters — the dependency set has no JSON library).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".into()
    }
}

pub(crate) fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json_f64)
}

// ---------------------------------------------------------------------
// Cell runners
// ---------------------------------------------------------------------

fn waveform_extrema(waves: &[Waveform]) -> (usize, f64, f64) {
    let mut n = 0;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for w in waves {
        for &v in w.values() {
            n += 1;
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if n == 0 {
        (0, 0.0, 0.0)
    } else {
        (n, lo, hi)
    }
}

/// The sweep-mode gate: a cell passes when its transient completed and the
/// probed waveforms are finite and physically plausible.
fn sanity_gate(waves: &[Waveform]) -> std::result::Result<(), String> {
    if waves.iter().any(|w| w.values().is_empty()) {
        return Err("empty waveform".into());
    }
    for w in waves {
        for &v in w.values() {
            if !v.is_finite() {
                return Err("non-finite sample in waveform".into());
            }
            if v.abs() > SANE_VOLTAGE_BOUND {
                return Err(format!("|v| = {:.1} V exceeds sanity bound", v.abs()));
            }
        }
    }
    Ok(())
}

/// Rotates a bit pattern left by `by` — gives each bus lane a distinct but
/// equally busy stimulus.
fn rotate_pattern(pattern: &str, by: usize) -> String {
    let n = pattern.len();
    if n == 0 {
        return String::new();
    }
    let by = by % n;
    format!("{}{}", &pattern[by..], &pattern[..by])
}

/// Runs one driver model (or several, round-robin across lanes) on the
/// coupled bus ladder and returns the far-end waveforms plus diagnostics.
fn run_bus_cell(
    drivers: &[&dyn Macromodel],
    conductors: usize,
    segments: usize,
    pattern: &str,
    bit_time: f64,
    t_stop: f64,
    dt: f64,
) -> crate::Result<(Vec<Waveform>, CellStats)> {
    let spec = CoupledLineSpec::bus(conductors, 0.1);
    let z0 = spec.z0(0);
    let mut ckt = Circuit::new();
    let line = expand_coupled_line(&mut ckt, &spec, segments, (1e7, 2e10))?;
    // Lanes are assigned round-robin to the drivers; lanes sharing a model
    // are installed through `instantiate_lanes`, so backends with a batched
    // evaluation runtime (the PW-RBF driver) step all their lanes together
    // as one compiled multi-lane device.
    for (di, model) in drivers.iter().enumerate() {
        let mut pads = Vec::new();
        let mut stims = Vec::new();
        for lane in (di..conductors).step_by(drivers.len()) {
            let pad = ckt.node(format!("serve_pad{lane}"));
            pads.push(pad);
            stims.push(PortStimulus::new(rotate_pattern(pattern, lane), bit_time));
            ckt.add(Resistor::new(
                format!("jn{lane}"),
                pad,
                line.near[lane],
                1e-3,
            ));
            ckt.add(Resistor::new(
                format!("rl{lane}"),
                line.far[lane],
                GROUND,
                z0,
            ));
        }
        if pads.is_empty() {
            continue;
        }
        let lanes: Vec<(circuit::Node, Option<&PortStimulus>)> = pads
            .iter()
            .zip(&stims)
            .map(|(&pad, stim)| (pad, Some(stim)))
            .collect();
        model.instantiate_lanes(&mut ckt, &lanes)?;
    }
    let res = ckt.transient(TranParams::new(dt, t_stop))?;
    let waves: Vec<Waveform> = (0..conductors).map(|j| res.voltage(line.far[j])).collect();
    let stats = CellStats::new(
        res.solve_stats,
        res.total_newton_iterations,
        ckt.unknown_count(),
    );
    Ok((waves, stats))
}

/// Runs the eye workload: every channel lane driven by an instance of
/// `model` with a seed-offset PRBS stream, far-end waveforms folded by
/// `analyzer`. On return the analyzer's raster holds the *worst* lane's
/// fold (callers render it; the fleet path reads only the metrics).
///
/// # Errors
///
/// An unknown PRBS tag, a degenerate channel, or a failed transient.
pub fn run_eye_workload(
    model: &dyn Macromodel,
    w: &EyeWorkload,
    dt: f64,
    analyzer: &mut EyeAnalyzer,
) -> crate::Result<(Vec<Waveform>, CellStats, EyeOutcome)> {
    let order = PrbsOrder::from_tag(w.prbs)
        .ok_or_else(|| format!("unknown PRBS order tag {} (expected 7, 15 or 31)", w.prbs))?;
    let mut spec = ChannelSpec::new(w.lanes);
    spec.segments = w.segments;
    let mut ckt = Circuit::new();
    let f_band = (1.0 / (w.bits as f64 * w.bit_time), 10.0 / w.bit_time);
    let ports = spec.build(&mut ckt, f_band)?;
    let stims: Vec<PortStimulus> = (0..w.lanes)
        .map(|lane| {
            PortStimulus::new(
                prbs_pattern(order, w.bits, w.seed.wrapping_add(lane as u64)),
                w.bit_time,
            )
        })
        .collect();
    let mut pads = Vec::with_capacity(w.lanes);
    for (lane, &near) in ports.near.iter().enumerate() {
        let pad = ckt.node(format!("eye_pad{lane}"));
        ckt.add(Resistor::new(format!("eye_jn{lane}"), pad, near, 1e-3));
        pads.push(pad);
    }
    let lanes: Vec<(circuit::Node, Option<&PortStimulus>)> = pads
        .iter()
        .zip(&stims)
        .map(|(&pad, stim)| (pad, Some(stim)))
        .collect();
    model.instantiate_lanes(&mut ckt, &lanes)?;
    let res = ckt.transient(TranParams::new(dt, w.t_stop()))?;
    let waves: Vec<Waveform> = ports.far.iter().map(|&far| res.voltage(far)).collect();
    let stats = CellStats::new(
        res.solve_stats,
        res.total_newton_iterations,
        ckt.unknown_count(),
    );
    // Worst lane: any closed eye beats every open one; among open eyes the
    // smallest height. Re-analyze it last so the analyzer's raster matches
    // the reported metrics.
    let metrics: Vec<EyeMetrics> = waves.iter().map(|wave| analyzer.analyze(wave)).collect();
    let worst_lane = (0..metrics.len())
        .min_by(|&a, &b| {
            let key = |m: &EyeMetrics| if m.open { m.eye_height } else { -1.0 };
            key(&metrics[a]).total_cmp(&key(&metrics[b]))
        })
        .unwrap_or(0);
    let metrics = analyzer.analyze(&waves[worst_lane]);
    Ok((
        waves,
        stats,
        EyeOutcome {
            prbs: w.prbs,
            bits: w.bits,
            seed: w.seed,
            lanes: w.lanes,
            worst_lane,
            metrics,
        },
    ))
}

/// Runs the Monte-Carlo workload: `trials` Latin-hypercube draws over the
/// 2-lane channel parameter space (pad load, coupling, termination,
/// segment length), the model driving lane 0 with a per-trial PRBS stream,
/// lane 1 a passively terminated victim. Returns the driven lane's far-end
/// waveform per trial plus the gated population aggregates.
///
/// # Errors
///
/// An unknown PRBS tag, a degenerate plan, or a failed trial transient.
pub fn run_mc_workload(
    model: &dyn Macromodel,
    w: &McWorkload,
    dt: f64,
) -> crate::Result<(Vec<Waveform>, CellStats, McSummary)> {
    let order = PrbsOrder::from_tag(w.prbs)
        .ok_or_else(|| format!("unknown PRBS order tag {} (expected 7, 15 or 31)", w.prbs))?;
    let plan = McPlan::new(
        w.trials,
        w.seed,
        vec![
            McParam::new("load_cap", 1e-12, 5e-12),
            McParam::new("coupling", 0.25, 1.25),
            McParam::new("r_term", 35.0, 65.0),
            McParam::new("segment_length", 0.015, 0.03),
        ],
    );
    let trials = plan.sample();
    let mut analyzer = EyeAnalyzer::new(EyeConfig::new(w.bit_time));
    let mut waves = Vec::with_capacity(trials.len());
    let mut metrics = Vec::with_capacity(trials.len());
    let mut agg: Option<CellStats> = None;
    for trial in &trials {
        let mut spec = ChannelSpec::new(2);
        spec.segments = 2;
        spec.load_cap = trial.value(&plan, "load_cap").unwrap_or(spec.load_cap);
        spec.coupling = trial.value(&plan, "coupling").unwrap_or(spec.coupling);
        spec.termination = Termination::Resistive(trial.value(&plan, "r_term").unwrap_or(50.0));
        spec.segment_length = trial
            .value(&plan, "segment_length")
            .unwrap_or(spec.segment_length);
        let mut ckt = Circuit::new();
        let f_band = (1.0 / (w.bits as f64 * w.bit_time), 10.0 / w.bit_time);
        let ports = spec.build(&mut ckt, f_band)?;
        let pad = ckt.node("mc_pad0");
        ckt.add(Resistor::new("mc_jn0", pad, ports.near[0], 1e-3));
        // The victim lane is near-end terminated, not driven.
        ckt.add(Resistor::new("mc_rv1", ports.near[1], GROUND, ports.z0));
        let stim = PortStimulus::new(prbs_pattern(order, w.bits, trial.seed), w.bit_time);
        model.instantiate_lanes(&mut ckt, &[(pad, Some(&stim))])?;
        let t_stop = w.bits as f64 * w.bit_time;
        let res = ckt.transient(TranParams::new(dt, t_stop))?;
        let wave = res.voltage(ports.far[0]);
        metrics.push(analyzer.analyze(&wave));
        waves.push(wave);
        let s = CellStats::new(
            res.solve_stats,
            res.total_newton_iterations,
            ckt.unknown_count(),
        );
        agg = Some(match agg {
            None => s,
            Some(a) => CellStats {
                symbolic_analyses: a.symbolic_analyses + s.symbolic_analyses,
                factorizations: a.factorizations + s.factorizations,
                factor_nnz: a.factor_nnz.max(s.factor_nnz),
                flops: a.flops + s.flops,
                newton_iterations: a.newton_iterations + s.newton_iterations,
                unknowns: a.unknowns.max(s.unknowns),
            },
        });
    }
    let summary = McSummary::from_metrics(&metrics, &w.gates, w.seed);
    let stats = agg.unwrap_or(CellStats {
        symbolic_analyses: 0,
        factorizations: 0,
        factor_nnz: 0,
        flops: 0,
        newton_iterations: 0,
        unknowns: 0,
    });
    Ok((waves, stats, summary))
}

/// Runs one (model, scenario) sweep cell.
pub(crate) fn run_sweep_cell(model: &dyn Macromodel, scenario: &Scenario) -> CellReport {
    let t0 = std::time::Instant::now();
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let mut eye = None;
    let mut mc = None;
    let outcome: crate::Result<(Vec<Waveform>, CellStats)> = match &scenario.kind {
        ScenarioKind::Fixture {
            fixture,
            stim,
            t_stop,
        } => (|| {
            let mut ckt = Circuit::new();
            let pad = ckt.node(format!("{}_pad", model.name()));
            fixture.install(&mut ckt, pad);
            model.instantiate(&mut ckt, pad, stim.as_ref())?;
            let res = ckt.transient(TranParams::new(dt, *t_stop))?;
            let stats = CellStats::new(
                res.solve_stats,
                res.total_newton_iterations,
                ckt.unknown_count(),
            );
            Ok((vec![res.voltage(pad)], stats))
        })(),
        ScenarioKind::BusLadder {
            conductors,
            segments,
            pattern,
            bit_time,
            t_stop,
        } => run_bus_cell(
            &[model],
            *conductors,
            *segments,
            pattern,
            *bit_time,
            *t_stop,
            dt,
        ),
        ScenarioKind::Eye(w) => {
            let mut analyzer = EyeAnalyzer::new(EyeConfig::new(w.bit_time));
            run_eye_workload(model, w, dt, &mut analyzer).map(|(waves, stats, outcome)| {
                eye = Some(outcome);
                (waves, stats)
            })
        }
        ScenarioKind::MonteCarlo(w) => {
            run_mc_workload(model, w, dt).map(|(waves, stats, summary)| {
                mc = Some(summary);
                (waves, stats)
            })
        }
    };
    let elapsed_s = t0.elapsed().as_secs_f64();
    match outcome {
        Ok((waves, stats)) => {
            let (samples, v_min, v_max) = waveform_extrema(&waves);
            // Waveform sanity first; eye and MC cells additionally gate on
            // their signal-integrity outcome.
            let mut gate = sanity_gate(&waves);
            if gate.is_ok() {
                if let Some(o) = &eye {
                    if !o.metrics.open {
                        gate = Err(format!("lane {} eye closed", o.worst_lane));
                    }
                }
                if let Some(s) = &mc {
                    if !s.pass {
                        gate = Err(format!(
                            "mc gates failed: {} closed eyes, min eye height {:.4} V, \
                             q-jitter {:.3e} s over {} trials",
                            s.closed_eyes, s.eye_height_min, s.jitter_pp_q_s, s.trials
                        ));
                    }
                }
            }
            CellReport {
                model: model.name().to_string(),
                kind: model.kind().tag().to_string(),
                scenario: scenario.name.clone(),
                pass: gate.is_ok(),
                detail: gate.err().unwrap_or_default(),
                rms_error: None,
                max_error: None,
                timing_error_s: None,
                rms_limit: None,
                samples,
                v_min,
                v_max,
                stats: Some(stats),
                eye,
                mc,
                elapsed_s,
            }
        }
        Err(e) => CellReport {
            elapsed_s,
            ..CellReport::failed(model, &scenario.name, e.to_string())
        },
    }
}

/// Validates one model against its transistor-level reference with the
/// standard per-kind fixture and accuracy gate. `rms_limit` / `timing_limit`
/// override the kind defaults.
pub fn validate_model(
    model: &dyn Macromodel,
    fast: bool,
    rms_limit: Option<f64>,
    timing_limit: Option<f64>,
) -> CellReport {
    let scenario = "reference-validate";
    let t0 = std::time::Instant::now();
    let Some(reference) = reference_for(model) else {
        return CellReport::failed(
            model,
            scenario,
            format!("no reference device known for '{}'", model.name()),
        );
    };
    let vdd = reference.vdd();
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let (fixture, stim, t_stop) = if model.kind().is_driver() {
        let bit = if fast { 3e-9 } else { 4e-9 };
        (
            TestFixture::resistive(50.0),
            Some(PortStimulus::new("010", bit)),
            3.0 * bit,
        )
    } else {
        (
            TestFixture::series_pulse(60.0, 0.0, 0.9 * vdd, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9),
            None,
            3e-9,
        )
    };
    // The estimated models track the reference closely; the baselines
    // (IBIS, C–R̂) only get a sanity bound.
    let default_rms = match model.kind() {
        ModelKind::PwRbfDriver | ModelKind::Receiver => 0.08 * vdd,
        ModelKind::Ibis | ModelKind::CrBaseline => 0.5 * vdd,
    };
    let rms_limit = rms_limit.unwrap_or(default_rms);
    let run = match validate_macromodel(
        &reference,
        model,
        &fixture,
        stim.as_ref(),
        dt,
        t_stop,
        0.5 * vdd,
    ) {
        Ok(run) => run,
        Err(e) => {
            return CellReport {
                elapsed_s: t0.elapsed().as_secs_f64(),
                ..CellReport::failed(model, scenario, e.to_string())
            }
        }
    };
    let m = run.metrics;
    let mut detail = String::new();
    if m.rms_error > rms_limit {
        detail = format!(
            "rms error {:.4} V exceeds limit {:.4} V",
            m.rms_error, rms_limit
        );
    } else if let (Some(limit), Some(te)) = (timing_limit, m.timing_error) {
        if te > limit {
            detail = format!("timing error {te:.3e} s exceeds limit {limit:.3e} s");
        }
    }
    let (samples, v_min, v_max) = waveform_extrema(std::slice::from_ref(&run.model));
    CellReport {
        model: model.name().to_string(),
        kind: model.kind().tag().to_string(),
        scenario: scenario.to_string(),
        pass: detail.is_empty(),
        detail,
        rms_error: Some(m.rms_error),
        max_error: Some(m.max_error),
        timing_error_s: m.timing_error,
        rms_limit: Some(rms_limit),
        samples,
        v_min,
        v_max,
        stats: None,
        eye: None,
        mc: None,
        elapsed_s: t0.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------
// Store-level engines
// ---------------------------------------------------------------------

fn store_header(store: &ModelStore, mode: &str) -> FleetReport {
    // Force every entry to parse first: a lazily opened store reports an
    // empty failure list until its entries are touched, and a fleet report
    // must never call a store healthy it hasn't actually loaded.
    let load_failures = store
        .load_all()
        .into_iter()
        .map(|f| (f.path.display().to_string(), f.error.to_string()))
        .collect();
    let lints = store
        .models()
        .iter()
        .map(|(_, m)| ModelLint::of(m.name(), m))
        .collect();
    FleetReport {
        schema: FLEET_REPORT_SCHEMA,
        store_root: store.root().display().to_string(),
        mode: mode.to_string(),
        artifacts: store.len(),
        models: store.models().len(),
        load_failures,
        lints,
        cells: Vec::new(),
        eyes: Vec::new(),
        mc: Vec::new(),
    }
}

/// Runs the full scenario matrix over every model in the store on parallel
/// workers. When the store holds two or more driver models with a common
/// sample clock, one extra mixed-backend bus cell runs with the drivers
/// assigned round-robin to lanes.
pub fn sweep_store(store: &ModelStore, scenarios: &[Scenario]) -> FleetReport {
    let mut report = store_header(store, "sweep");
    let models = store.models();
    let cells: Vec<(&dyn Macromodel, &Scenario)> = models
        .iter()
        .flat_map(|(_, m)| {
            scenarios
                .iter()
                .filter(|s| s.applies(m.kind()))
                .map(move |s| (m.as_dyn(), s))
        })
        .collect();
    report.cells = par_map(cells, |(m, s)| run_sweep_cell(m, s));

    // Mixed-backend bus: every driver model on one net, one cell.
    let drivers: Vec<&dyn Macromodel> = models
        .iter()
        .map(|(_, m)| m.as_dyn())
        .filter(|m| m.kind().is_driver())
        .collect();
    let clocks: Vec<f64> = drivers.iter().filter_map(|m| m.sample_time()).collect();
    let common_clock = clocks
        .windows(2)
        .all(|w| ((w[0] - w[1]) / w[0]).abs() < 1e-9);
    if drivers.len() >= 2 && common_clock {
        if let Some(ScenarioKind::BusLadder {
            conductors,
            segments,
            pattern,
            bit_time,
            t_stop,
        }) = scenarios
            .iter()
            .find_map(|s| matches!(s.kind, ScenarioKind::BusLadder { .. }).then(|| s.kind.clone()))
        {
            let dt = clocks.first().copied().unwrap_or(DEFAULT_VALIDATION_DT);
            let lanes = conductors.max(drivers.len());
            let t0 = std::time::Instant::now();
            let outcome = run_bus_cell(&drivers, lanes, segments, &pattern, bit_time, t_stop, dt);
            let elapsed_s = t0.elapsed().as_secs_f64();
            let names: Vec<&str> = drivers.iter().map(|m| m.name()).collect();
            let cell = match outcome {
                Ok((waves, stats)) => {
                    let (samples, v_min, v_max) = waveform_extrema(&waves);
                    let gate = sanity_gate(&waves);
                    CellReport {
                        model: format!("mixed:{}", names.join("+")),
                        kind: "mixed".into(),
                        scenario: "bus-mixed".into(),
                        pass: gate.is_ok(),
                        detail: gate.err().unwrap_or_default(),
                        rms_error: None,
                        max_error: None,
                        timing_error_s: None,
                        rms_limit: None,
                        samples,
                        v_min,
                        v_max,
                        stats: Some(stats),
                        eye: None,
                        mc: None,
                        elapsed_s,
                    }
                }
                Err(e) => CellReport {
                    model: format!("mixed:{}", names.join("+")),
                    kind: "mixed".into(),
                    scenario: "bus-mixed".into(),
                    pass: false,
                    detail: e.to_string(),
                    rms_error: None,
                    max_error: None,
                    timing_error_s: None,
                    rms_limit: None,
                    samples: 0,
                    v_min: 0.0,
                    v_max: 0.0,
                    stats: None,
                    eye: None,
                    mc: None,
                    elapsed_s,
                },
            };
            report.cells.push(cell);
        }
    }
    collect_si_aggregates(&mut report);
    report
}

/// Lifts the per-cell eye and MC outcomes into the report's top-level
/// aggregate blocks (the trend-tooling view: one row per signal-integrity
/// cell without walking the full matrix).
fn collect_si_aggregates(report: &mut FleetReport) {
    report.eyes = report
        .cells
        .iter()
        .filter_map(|c| {
            c.eye.clone().map(|outcome| EyeSummary {
                model: c.model.clone(),
                scenario: c.scenario.clone(),
                outcome,
            })
        })
        .collect();
    report.mc = report
        .cells
        .iter()
        .filter_map(|c| {
            c.mc.map(|summary| McCellSummary {
                model: c.model.clone(),
                scenario: c.scenario.clone(),
                summary,
            })
        })
        .collect();
}

/// Re-certifies every model in the store against its transistor-level
/// reference on parallel workers (the CI batch-validation pass).
pub fn validate_store(store: &ModelStore, fast: bool) -> FleetReport {
    let mut report = store_header(store, "validate");
    let models = store.models();
    let duts: Vec<&dyn Macromodel> = models.iter().map(|(_, m)| m.as_dyn()).collect();
    report.cells = par_map(duts, |m| validate_model(m, fast, None, None));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use macromodel::driver::{PwRbfDriverModel, WeightSequence};
    use macromodel::exchange::{save_model_to_path, AnyModel};
    use macromodel::receiver::CrModel;
    use numkit::interp::Pwl;
    use sysid::narx::{NarxModel, NarxOrders};
    use sysid::rbf::RbfNetwork;

    /// A cheap switching PW-RBF driver: the high state pulls the pad to
    /// 1.8 V and the low state to 0 V, each through 20 Ω — pattern-
    /// dependent output, so eye cells see an open eye.
    fn dummy_driver(name: &str) -> AnyModel {
        let narx = |bias: f64| {
            NarxModel::from_network(
                NarxOrders::dynamic(1),
                RbfNetwork::affine(bias, vec![-0.05, 0.0, 0.0]),
            )
            .unwrap()
        };
        AnyModel::PwRbfDriver(PwRbfDriverModel {
            name: name.into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: narx(0.09),
            i_low: narx(0.0),
            up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
        })
    }

    fn dummy_cr(name: &str) -> AnyModel {
        AnyModel::Cr(
            CrModel::new(
                name,
                1e-12,
                Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap(),
            )
            .unwrap(),
        )
    }

    fn tmp_store(tag: &str, models: &[AnyModel]) -> ModelStore {
        let dir = std::env::temp_dir().join(format!("serve_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for (i, m) in models.iter().enumerate() {
            save_model_to_path(m, dir.join(format!("m{i}.mdlx"))).unwrap();
        }
        ModelStore::open(&dir).unwrap()
    }

    #[test]
    fn scenario_applicability_matches_port_direction() {
        let scenarios = standard_scenarios(true);
        let driver_cols = scenarios
            .iter()
            .filter(|s| s.applies(ModelKind::PwRbfDriver))
            .count();
        let load_cols = scenarios
            .iter()
            .filter(|s| s.applies(ModelKind::CrBaseline))
            .count();
        assert_eq!(driver_cols, 5);
        assert_eq!(load_cols, 1);
        assert!(
            scenarios
                .iter()
                .filter(|s| s.applies(ModelKind::Ibis))
                .count()
                >= 5
        );
    }

    #[test]
    fn rotate_pattern_rotates() {
        assert_eq!(rotate_pattern("0110", 0), "0110");
        assert_eq!(rotate_pattern("0110", 1), "1100");
        assert_eq!(rotate_pattern("0110", 5), "1100");
        assert_eq!(rotate_pattern("", 3), "");
    }

    #[test]
    fn reference_resolution_strips_suffixes() {
        let AnyModel::Cr(cr) = dummy_cr("md4_cr") else {
            unreachable!()
        };
        assert!(reference_for(&cr).is_some());
        let AnyModel::PwRbfDriver(d) = dummy_driver("md1_Typical") else {
            unreachable!()
        };
        assert!(reference_for(&d).is_some());
        let AnyModel::PwRbfDriver(d) = dummy_driver("unknown_device") else {
            unreachable!()
        };
        assert!(reference_for(&d).is_none());
    }

    #[test]
    fn sweep_covers_the_cartesian_product_and_mixed_bus() {
        let store = tmp_store(
            "matrix",
            &[dummy_driver("d1"), dummy_driver("d2"), dummy_cr("c1")],
        );
        let scenarios = standard_scenarios(true);
        let report = sweep_store(&store, &scenarios);
        // 2 drivers × 5 driver scenarios + 1 load × 1 load scenario + mixed.
        assert_eq!(report.cells.len(), 2 * 5 + 1 + 1);
        assert!(report.all_passed(), "failures: {:?}", report.cells);
        assert_eq!(report.schema, FLEET_REPORT_SCHEMA);
        // The signal-integrity cells surface their aggregates: one eye and
        // one MC block per driver.
        assert_eq!(report.eyes.len(), 2);
        assert_eq!(report.mc.len(), 2);
        assert!(report.eyes.iter().all(|e| {
            e.scenario == "eye-prbs7"
                && e.outcome.metrics.open
                && e.outcome.metrics.eye_height > 0.0
        }));
        assert!(report
            .mc
            .iter()
            .all(|m| m.scenario == "mc-channel" && m.summary.pass && m.summary.closed_eyes == 0));
        assert_eq!(report.models, 3);
        // Healthy dummies carry clean per-model lint summaries.
        assert_eq!(report.lints.len(), 3);
        assert!(report
            .lints
            .iter()
            .all(|l| l.errors == 0 && l.warnings == 0 && l.codes.is_empty()));
        let mixed = report
            .cells
            .iter()
            .find(|c| c.scenario == "bus-mixed")
            .expect("mixed cell present");
        assert!(mixed.model.contains("d1") && mixed.model.contains("d2"));
        let ladder = report
            .cells
            .iter()
            .find(|c| c.scenario == "bus-ladder")
            .unwrap();
        let stats = ladder.stats.expect("ladder cell carries SolveStats");
        assert!(stats.unknowns > 20);
        assert!(stats.factorizations >= 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn eight_lane_eye_workload_sweeps_through_the_fleet_engine() {
        let store = tmp_store("wide", &[dummy_driver("wide1")]);
        let scenarios = vec![Scenario {
            name: "eye-wide".into(),
            applies_to: Applicability::Drivers,
            kind: ScenarioKind::Eye(EyeWorkload {
                prbs: 7,
                bits: 12,
                seed: 3,
                bit_time: 2e-9,
                lanes: 8,
                segments: 2,
            }),
        }];
        let report = sweep_store(&store, &scenarios);
        assert!(report.all_passed(), "failures: {:?}", report.cells);
        assert_eq!(report.eyes.len(), 1);
        let outcome = &report.eyes[0].outcome;
        assert_eq!(outcome.lanes, 8);
        assert!(outcome.worst_lane < 8);
        assert!(outcome.metrics.open && outcome.metrics.eye_height > 0.0);
        assert!(outcome.metrics.eye_width_ui > 0.5);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn eye_and_mc_workloads_are_seed_reproducible() {
        let AnyModel::PwRbfDriver(d) = dummy_driver("det") else {
            unreachable!()
        };
        let w = EyeWorkload::standard(true);
        let dt = 25e-12;
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(w.bit_time));
        let (_, _, a) = run_eye_workload(&d, &w, dt, &mut analyzer).unwrap();
        let (_, _, b) = run_eye_workload(&d, &w, dt, &mut analyzer).unwrap();
        assert_eq!(a.worst_lane, b.worst_lane);
        assert_eq!(
            a.metrics.eye_height.to_bits(),
            b.metrics.eye_height.to_bits()
        );
        assert_eq!(
            a.metrics.jitter_pp_s.to_bits(),
            b.metrics.jitter_pp_s.to_bits()
        );
        // A different seed steers every lane onto a different PRBS stream.
        let mut other = w.clone();
        other.seed = 99;
        let (_, _, c) = run_eye_workload(&d, &other, dt, &mut analyzer).unwrap();
        assert_eq!(c.seed, 99);

        let mw = McWorkload::standard(true);
        let (_, _, s1) = run_mc_workload(&d, &mw, dt).unwrap();
        let (_, _, s2) = run_mc_workload(&d, &mw, dt).unwrap();
        assert_eq!(s1.eye_height_min.to_bits(), s2.eye_height_min.to_bits());
        assert_eq!(s1.jitter_pp_q_s.to_bits(), s2.jitter_pp_q_s.to_bits());
        assert_eq!(s1.trials, mw.trials);
    }

    #[test]
    fn json_report_is_well_formed() {
        let store = tmp_store("json", &[dummy_driver("d1"), dummy_cr("c\"quote")]);
        let report = sweep_store(&store, &standard_scenarios(true));
        let json = report.to_json();
        assert!(json.contains("\"mode\": \"sweep\""));
        assert!(json.contains("\"all_passed\": true"));
        assert!(json.contains("\"lints\""));
        assert!(json.contains(&format!("\"schema\": {FLEET_REPORT_SCHEMA}")));
        assert!(json.contains("\"eyes\": ["), "top-level eye aggregates");
        assert!(json.contains("\"mc\": ["), "top-level MC aggregates");
        assert!(json.contains("\"eye_height\":"));
        assert!(json.contains("\"jitter_pp_q_s\":"));
        assert!(json.contains("c\\\"quote"), "names are escaped");
        // Balanced braces/brackets (cheap well-formedness proxy given no
        // JSON parser in the dependency set).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn load_failures_fail_the_fleet() {
        let dir = std::env::temp_dir().join(format!("serve_store_bad_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        save_model_to_path(&dummy_driver("d1"), dir.join("ok.mdlx")).unwrap();
        std::fs::write(dir.join("bad.mdlx"), "mdlx 1 pwrbf-driver\njunk\n").unwrap();
        let store = ModelStore::open(&dir).unwrap();
        let report = sweep_store(&store, &standard_scenarios(true));
        assert_eq!(report.load_failures.len(), 1);
        assert!(!report.all_passed(), "load failure must fail the fleet");
        assert_eq!(report.failed(), 0, "the loadable model's cells still pass");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_reference_fails_validation_cell() {
        let store = tmp_store("noref", &[dummy_driver("mystery")]);
        let report = validate_store(&store, true);
        assert_eq!(report.cells.len(), 1);
        assert!(!report.cells[0].pass);
        assert!(report.cells[0].detail.contains("no reference"));
        std::fs::remove_dir_all(store.root()).ok();
    }
}
