//! `mdl bench-eval` — the per-step evaluation-runtime microbenchmark.
//!
//! Times the innermost loop of every transient: one Newton evaluation plus
//! one accepted-step commit of a PW-RBF driver, three ways:
//!
//! * `eval/driver_step/legacy` — the pre-compile scalar path: per-call
//!   regressor `Vec` assembly, [`NarxModel::one_step_with_gradient`] over
//!   `Vec<Vec<f64>>` centers, `rotate_right` history shuffles;
//! * `eval/driver_step/compiled` — a single-lane
//!   [`macromodel::evalrt::DriverLanes`] over the flat compiled slab
//!   (zero allocation per step);
//! * `eval/driver_step/lanesN` — N lanes advancing together; `median_s`
//!   is the per-lane step time, so the record is directly comparable.
//!
//! Records are JSON lines in the `scripts/bench-baseline.sh` schema
//! (`{"bench", "median_s", "samples"}`), with `median_s` = seconds per
//! (lane-)step, so the committed `BENCH_eval.json` trajectory gates
//! step-throughput regressions exactly like the other benches.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::evalrt::{settle_narx, CompiledDriver, DriverLanes, LaneStim};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

use crate::TS;

/// Benchmark knobs. [`EvalBenchConfig::default`] matches the committed
/// `BENCH_eval.json` trajectory — change the defaults and the baseline
/// gate compares unlike workloads.
#[derive(Debug, Clone, Copy)]
pub struct EvalBenchConfig {
    /// RBF centers per NARX submodel (the paper's extractions land in the
    /// tens; 24 keeps the slab bigger than one cache line per row).
    pub centers: usize,
    /// Timesteps per repetition.
    pub steps: usize,
    /// Measured repetitions; the reported time is the best of them.
    pub reps: usize,
    /// Lane count for the batched record.
    pub lanes: usize,
}

impl Default for EvalBenchConfig {
    fn default() -> Self {
        EvalBenchConfig {
            centers: 24,
            steps: 20_000,
            reps: 5,
            lanes: 8,
        }
    }
}

/// One measured bench: per-step wall time plus derived throughput.
#[derive(Debug, Clone)]
pub struct EvalBenchRecord {
    /// Record id (`eval/driver_step/compiled`, ...).
    pub bench: String,
    /// Seconds per (lane-)step: the best of the interleaved repetitions.
    /// (The field keeps the baseline-gate schema name `median_s`.)
    pub median_s: f64,
    /// Steps timed per repetition (lane-steps for batched records).
    pub samples: usize,
}

impl EvalBenchRecord {
    /// Lane-steps per second at the median.
    pub fn steps_per_s(&self) -> f64 {
        1.0 / self.median_s
    }

    /// The baseline-gate JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\": \"{}\", \"median_s\": {:e}, \"samples\": {}}}",
            self.bench, self.median_s, self.samples
        )
    }
}

/// A deterministic splitmix-style stream for reproducible model parameters.
struct ParamStream(u64);

impl ParamStream {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

fn bench_narx(centers: usize, stream: &mut ParamStream) -> NarxModel {
    let orders = NarxOrders::dynamic(1);
    let dim = orders.dim();
    let centers_v: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..dim).map(|_| stream.range(-0.5, 2.3)).collect())
        .collect();
    let widths: Vec<f64> = (0..centers).map(|_| stream.range(0.4, 1.6)).collect();
    let weights: Vec<f64> = (0..centers).map(|_| stream.range(-0.03, 0.03)).collect();
    let linear: Vec<f64> = (0..dim).map(|_| stream.range(-0.05, 0.3)).collect();
    let net = RbfNetwork::from_parts(dim, centers_v, widths, weights, 0.001, linear)
        .expect("bench network parameters are structurally valid");
    NarxModel::from_network(orders, net).expect("bench NARX orders match the network")
}

/// The benchmark workload: a PW-RBF driver sized like the paper's
/// extracted models (`centers` Gaussian units per NARX submodel, one
/// input and one output lag), with the 8-sample switching ramps of the
/// reference extraction.
pub fn bench_model(centers: usize) -> PwRbfDriverModel {
    let mut stream = ParamStream(0x5eed_cafe_f00d_0001);
    let ramp: Vec<f64> = (0..8).map(|k| k as f64 / 7.0).collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    PwRbfDriverModel {
        name: "bench-eval".into(),
        ts: TS,
        vdd: 1.8,
        i_high: bench_narx(centers, &mut stream),
        i_low: bench_narx(centers, &mut stream),
        up: WeightSequence::new(ramp.clone(), inv.clone()).expect("ramp weights are valid"),
        down: WeightSequence::new(inv, ramp).expect("ramp weights are valid"),
    }
}

/// The pre-compile scalar stepper, preserved verbatim as the baseline the
/// compiled runtime is measured against: per-call regressor `Vec`s, the
/// nested-`Vec` RBF evaluation, and `rotate_right` history commits —
/// exactly what the device hot loop did before `evalrt`.
struct LegacyDriverStepper {
    model: PwRbfDriverModel,
    v_past: Vec<f64>,
    ih_past: Vec<f64>,
    il_past: Vec<f64>,
}

impl LegacyDriverStepper {
    fn new(model: PwRbfDriverModel, v0: f64) -> Self {
        let lags_v = model
            .i_high
            .orders()
            .input_lags
            .max(model.i_low.orders().input_lags);
        let ih0 = settle_narx(&model.i_high, v0);
        let il0 = settle_narx(&model.i_low, v0);
        LegacyDriverStepper {
            v_past: vec![v0; lags_v],
            ih_past: vec![ih0; model.i_high.orders().output_lags.max(1)],
            il_past: vec![il0; model.i_low.orders().output_lags.max(1)],
            model,
        }
    }

    fn u_hist(&self, v_now: f64, lags: usize) -> Vec<f64> {
        let mut u = Vec::with_capacity(lags + 1);
        u.push(v_now);
        u.extend_from_slice(&self.v_past[..lags]);
        u
    }

    fn step(&self, wh: f64, wl: f64, v: f64) -> (f64, f64) {
        let (ih, gh) = self.model.i_high.one_step_with_gradient(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let (il, gl) = self.model.i_low.one_step_with_gradient(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        (wh * ih + wl * il, wh * gh + wl * gl)
    }

    fn commit(&mut self, v: f64) {
        let ih = self.model.i_high.one_step(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let il = self.model.i_low.one_step(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        self.v_past.rotate_right(1);
        if !self.v_past.is_empty() {
            self.v_past[0] = v;
        }
        self.ih_past.rotate_right(1);
        self.ih_past[0] = ih;
        self.il_past.rotate_right(1);
        self.il_past[0] = il;
    }
}

/// The pad waveform driven through every stepper: a deterministic swing
/// inside the supply rails, decorrelated per lane.
fn pad_wave(k: usize, lane: usize) -> f64 {
    0.9 + 0.9 * ((0.13 * k as f64) + 0.7 * lane as f64).sin()
}

/// Lane-major waveform table, `steps` rows of `n_lanes` voltages —
/// precomputed so the timed loops measure the steppers, not `sin`.
fn wave_table(steps: usize, n_lanes: usize) -> Vec<f64> {
    let mut w = Vec::with_capacity(steps * n_lanes);
    for k in 0..steps {
        for l in 0..n_lanes {
            w.push(pad_wave(k, l));
        }
    }
    w
}

fn time_legacy_once(
    model: &PwRbfDriverModel,
    compiled: &CompiledDriver,
    stim: &LaneStim,
    wave: &[f64],
) -> f64 {
    let steps = wave.len();
    let mut stepper = LegacyDriverStepper::new(model.clone(), 0.0);
    let mut acc = 0.0;
    let start = Instant::now();
    for (k, &v) in wave.iter().enumerate() {
        let t = k as f64 * model.ts;
        let (wh, wl) = compiled.weights_at(stim, t);
        let (i, g) = stepper.step(wh, wl, black_box(v));
        acc += i + g;
        stepper.commit(v);
    }
    black_box(acc);
    start.elapsed().as_secs_f64() / steps as f64
}

fn time_lanes_once(compiled: &Arc<CompiledDriver>, n_lanes: usize, wave: &[f64]) -> f64 {
    let ts = compiled.ts();
    let steps = wave.len() / n_lanes;
    let stims: Vec<LaneStim> = (0..n_lanes)
        .map(|l| {
            let pattern = if l % 2 == 0 { "0110" } else { "1001" };
            LaneStim::from_pattern(pattern, 64.0 * ts)
        })
        .collect();
    let mut lanes = DriverLanes::new(Arc::clone(compiled), stims);
    lanes.init_dc(&vec![0.0; n_lanes]);
    let mut i = vec![0.0; n_lanes];
    let mut g = vec![0.0; n_lanes];
    let mut acc = 0.0;
    let start = Instant::now();
    for (k, v) in wave.chunks_exact(n_lanes).enumerate() {
        let t = k as f64 * ts;
        lanes.step(t, black_box(v), &mut i, &mut g);
        acc += i[0] + g[n_lanes - 1];
        lanes.commit(v);
    }
    black_box(acc);
    start.elapsed().as_secs_f64() / (steps * n_lanes) as f64
}

/// Runs the three benches and returns their records (legacy, compiled
/// single-lane, batched lanes — in that order).
///
/// Each repetition runs all three paths back to back and the reported
/// time is the minimum over repetitions: interleaving exposes every path
/// to the same transient machine load, and the minimum is the estimator
/// least sensitive to scheduler noise (the uncontended cost is the
/// quantity the regression gate should track). One extra untimed warmup
/// repetition precedes the measured ones.
pub fn run_eval_bench(cfg: &EvalBenchConfig) -> Vec<EvalBenchRecord> {
    let model = bench_model(cfg.centers);
    let compiled = Arc::new(CompiledDriver::compile(&model));
    let stim = LaneStim::from_pattern("0110", 64.0 * model.ts);
    let wave1 = wave_table(cfg.steps, 1);
    let wave_n = wave_table(cfg.steps, cfg.lanes);
    let mut best = [f64::INFINITY; 3];
    for rep in 0..=cfg.reps {
        let t = [
            time_legacy_once(&model, &compiled, &stim, &wave1),
            time_lanes_once(&compiled, 1, &wave1),
            time_lanes_once(&compiled, cfg.lanes, &wave_n),
        ];
        if rep > 0 {
            for (b, t) in best.iter_mut().zip(t) {
                *b = b.min(t);
            }
        }
    }
    vec![
        EvalBenchRecord {
            bench: "eval/driver_step/legacy".into(),
            median_s: best[0],
            samples: cfg.steps,
        },
        EvalBenchRecord {
            bench: "eval/driver_step/compiled".into(),
            median_s: best[1],
            samples: cfg.steps,
        },
        EvalBenchRecord {
            bench: format!("eval/driver_step/lanes{}", cfg.lanes),
            median_s: best[2],
            samples: cfg.steps * cfg.lanes,
        },
    ]
}

/// The human-readable summary: ns/step, steps/s, and the speedups of the
/// compiled and batched paths over the legacy scalar stepper.
pub fn summarize(records: &[EvalBenchRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let _ = writeln!(
            out,
            "{:<28} {:>9.1} ns/step  {:>12.0} steps/s",
            r.bench,
            r.median_s * 1e9,
            r.steps_per_s()
        );
    }
    if let Some(legacy) = records.iter().find(|r| r.bench.ends_with("/legacy")) {
        for r in records.iter().filter(|r| !r.bench.ends_with("/legacy")) {
            let _ = writeln!(
                out,
                "speedup vs legacy ({}): {:.2}x",
                r.bench.rsplit('/').next().unwrap_or(&r.bench),
                legacy.median_s / r.median_s
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_model_compiles_and_steppers_agree() {
        let model = bench_model(8);
        let compiled = Arc::new(CompiledDriver::compile(&model));
        let stim = LaneStim::from_pattern("0110", 64.0 * model.ts);
        let mut lanes = DriverLanes::new(Arc::clone(&compiled), vec![stim.clone()]);
        lanes.init_dc(&[0.0]);
        let mut legacy = LegacyDriverStepper::new(model.clone(), 0.0);
        let (mut i, mut g) = ([0.0], [0.0]);
        for k in 0..64 {
            let t = k as f64 * model.ts;
            let v = pad_wave(k, 0);
            lanes.step(t, &[v], &mut i, &mut g);
            let (wh, wl) = compiled.weights_at(&stim, t);
            let (ri, rg) = legacy.step(wh, wl, v);
            assert_eq!(i[0].to_bits(), ri.to_bits(), "current at step {k}");
            assert_eq!(g[0].to_bits(), rg.to_bits(), "gradient at step {k}");
            lanes.commit(&[v]);
            legacy.commit(v);
        }
    }

    #[test]
    fn records_are_baseline_gate_json() {
        let r = EvalBenchRecord {
            bench: "eval/driver_step/compiled".into(),
            median_s: 1.25e-7,
            samples: 1000,
        };
        let line = r.to_json();
        assert!(line.contains("\"bench\": \"eval/driver_step/compiled\""));
        assert!(line.contains("\"median_s\": 1.25e-7"));
        assert!(line.contains("\"samples\": 1000"));
    }

    #[test]
    fn tiny_bench_run_produces_three_records() {
        let cfg = EvalBenchConfig {
            centers: 4,
            steps: 64,
            reps: 1,
            lanes: 3,
        };
        let records = run_eval_bench(&cfg);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.median_s > 0.0));
        assert_eq!(records[2].bench, "eval/driver_step/lanes3");
        assert_eq!(records[2].samples, 64 * 3);
        let summary = summarize(&records);
        assert!(summary.contains("speedup vs legacy"));
    }
}
