//! `mdl bench-eye` — the signal-integrity workload microbenchmark.
//!
//! Times the three layers an eye cell is built from, bottom up:
//!
//! * `eye/prbs31/gen` — raw LFSR pattern generation ([`si::prbs`]),
//!   seconds per bit;
//! * `eye/fold` — NRZ shaping plus the eye-diagram fold and metric
//!   extraction ([`si::nrz`], [`si::eye`]) on a synthetic waveform,
//!   seconds per waveform sample;
//! * `eye/channel` — the full fleet eye cell
//!   ([`crate::serve::run_eye_workload`]): a PW-RBF driver on every lane
//!   of a generated channel, transient, fold — seconds per lane-bit.
//!
//! Records are JSON lines in the `scripts/bench-baseline.sh` schema
//! (`{"bench", "median_s", "samples"}`), so the committed `BENCH_eye.json`
//! trajectory gates signal-integrity throughput regressions exactly like
//! the eval and serve benches. The reported time is the best over
//! repetitions after one untimed warmup — the estimator least sensitive
//! to scheduler noise.

use std::hint::black_box;
use std::time::Instant;

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use si::{prbs_pattern, EyeAnalyzer, EyeConfig, NrzShaper, PrbsOrder};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

use crate::serve::{run_eye_workload, EyeWorkload};
use crate::TS;

/// Benchmark knobs. [`EyeBenchConfig::default`] matches the committed
/// `BENCH_eye.json` trajectory — change the defaults and the baseline
/// gate compares unlike workloads.
#[derive(Debug, Clone, Copy)]
pub struct EyeBenchConfig {
    /// Bits generated per PRBS repetition.
    pub prbs_bits: usize,
    /// Bits shaped and folded per fold repetition.
    pub fold_bits: usize,
    /// Bits simulated per lane in the channel cell.
    pub channel_bits: usize,
    /// Channel lanes of the cell record.
    pub lanes: usize,
    /// Measured repetitions; the reported time is the best of them.
    pub reps: usize,
}

impl Default for EyeBenchConfig {
    fn default() -> Self {
        EyeBenchConfig {
            prbs_bits: 200_000,
            // Long enough (~0.5 M samples, tens of ms) that best-of-reps
            // sits within a few percent run to run — a 2 k-bit fold rep
            // showed ±25 % scheduler noise, which a 25 % gate cannot hold.
            fold_bits: 16_000,
            channel_bits: 16,
            lanes: 2,
            reps: 7,
        }
    }
}

/// One measured bench in the baseline-gate schema (the `median_s` field
/// keeps the gate's name; the value is the best-of-reps time).
#[derive(Debug, Clone)]
pub struct EyeBenchRecord {
    /// Record id (`eye/prbs31/gen`, `eye/fold`, `eye/channel`).
    pub bench: String,
    /// Seconds per unit (bit, sample, or lane-bit — see the record docs).
    pub median_s: f64,
    /// Units timed per repetition.
    pub samples: usize,
}

impl EyeBenchRecord {
    /// The baseline-gate JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\": \"{}\", \"median_s\": {:e}, \"samples\": {}}}",
            self.bench, self.median_s, self.samples
        )
    }
}

fn time_prbs_once(bits: usize) -> f64 {
    let start = Instant::now();
    let pattern = prbs_pattern(PrbsOrder::P31, bits, black_box(1));
    black_box(pattern.len());
    start.elapsed().as_secs_f64() / bits as f64
}

fn time_fold_once(bits: usize) -> (f64, usize) {
    let bit_time = 2e-9;
    let dt = bit_time / 32.0;
    let pattern = prbs_pattern(PrbsOrder::P15, bits, 7);
    let shaper = NrzShaper::new(bit_time);
    let mut analyzer = EyeAnalyzer::new(EyeConfig::new(bit_time));
    let start = Instant::now();
    let wave = shaper.waveform(black_box(&pattern), dt);
    let metrics = analyzer.analyze(&wave);
    black_box(metrics.eye_height);
    let samples = wave.values().len();
    (start.elapsed().as_secs_f64() / samples as f64, samples)
}

/// The channel-cell workload model: a deterministic switching PW-RBF
/// driver (1.8 V pull-up / 0 V pull-down through 20 Ω, 8-sample ramps).
/// Unlike [`crate::evalbench::bench_model`]'s randomized networks — which
/// only ever step open-loop — this one is passive, so the channel cell's
/// Newton solves converge.
pub fn channel_model() -> PwRbfDriverModel {
    let narx = |bias: f64| {
        let net = RbfNetwork::affine(bias, vec![-0.05, 0.0, 0.0]);
        NarxModel::from_network(NarxOrders::dynamic(1), net)
            .expect("affine network matches the orders")
    };
    let ramp: Vec<f64> = (0..8).map(|k| k as f64 / 7.0).collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    PwRbfDriverModel {
        name: "bench-eye".into(),
        ts: TS,
        vdd: 1.8,
        i_high: narx(0.09),
        i_low: narx(0.0),
        up: WeightSequence::new(ramp.clone(), inv.clone()).expect("ramp weights are valid"),
        down: WeightSequence::new(inv, ramp).expect("ramp weights are valid"),
    }
}

fn time_channel_once(cfg: &EyeBenchConfig) -> f64 {
    let model = channel_model();
    let w = EyeWorkload {
        prbs: 7,
        bits: cfg.channel_bits,
        seed: 1,
        bit_time: 2e-9,
        lanes: cfg.lanes,
        segments: 3,
    };
    let mut analyzer = EyeAnalyzer::new(EyeConfig::new(w.bit_time));
    let start = Instant::now();
    let (_, _, outcome) =
        run_eye_workload(&model, &w, model.ts, &mut analyzer).expect("bench eye cell runs");
    black_box(outcome.metrics.eye_height);
    start.elapsed().as_secs_f64() / (cfg.channel_bits * cfg.lanes) as f64
}

/// Runs the three benches and returns their records (PRBS generation,
/// waveform fold, full channel cell — in that order). Each repetition runs
/// all three back to back; one extra untimed warmup repetition precedes
/// the measured ones.
pub fn run_eye_bench(cfg: &EyeBenchConfig) -> Vec<EyeBenchRecord> {
    let mut best = [f64::INFINITY; 3];
    let mut fold_samples = 0;
    for rep in 0..=cfg.reps {
        let (fold_t, fold_n) = time_fold_once(cfg.fold_bits);
        fold_samples = fold_n;
        let t = [
            time_prbs_once(cfg.prbs_bits),
            fold_t,
            time_channel_once(cfg),
        ];
        if rep > 0 {
            for (b, t) in best.iter_mut().zip(t) {
                *b = b.min(t);
            }
        }
    }
    vec![
        EyeBenchRecord {
            bench: "eye/prbs31/gen".into(),
            median_s: best[0],
            samples: cfg.prbs_bits,
        },
        EyeBenchRecord {
            bench: "eye/fold".into(),
            median_s: best[1],
            samples: fold_samples,
        },
        EyeBenchRecord {
            bench: format!("eye/channel/lanes{}", cfg.lanes),
            median_s: best[2],
            samples: cfg.channel_bits * cfg.lanes,
        },
    ]
}

/// The human-readable summary: per-unit times and derived throughput.
pub fn summarize(records: &[EyeBenchRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let _ = writeln!(
            out,
            "{:<24} {:>10.1} ns/unit  {:>14.0} units/s  ({} units)",
            r.bench,
            r.median_s * 1e9,
            1.0 / r.median_s,
            r.samples
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_baseline_gate_json() {
        let r = EyeBenchRecord {
            bench: "eye/fold".into(),
            median_s: 2.5e-8,
            samples: 64_000,
        };
        let line = r.to_json();
        assert!(line.contains("\"bench\": \"eye/fold\""));
        assert!(line.contains("\"median_s\": 2.5e-8"));
        assert!(line.contains("\"samples\": 64000"));
    }

    #[test]
    fn tiny_bench_run_produces_three_records() {
        let cfg = EyeBenchConfig {
            prbs_bits: 512,
            fold_bits: 64,
            channel_bits: 8,
            lanes: 2,
            reps: 1,
        };
        let records = run_eye_bench(&cfg);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.median_s > 0.0 && r.samples > 0));
        assert_eq!(records[0].bench, "eye/prbs31/gen");
        assert_eq!(records[2].bench, "eye/channel/lanes2");
        assert_eq!(records[2].samples, 16);
        let summary = summarize(&records);
        assert!(summary.contains("eye/fold"));
    }
}
