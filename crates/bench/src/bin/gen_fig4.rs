//! Regenerates Figure 4 (and the Fig. 3 structure): far-end voltages on
//! the active and quiet lands of the coupled lossy MCM interconnect.

use emc_bench::{fig4, Fig4Config};
use macromodel::validate::print_csv;

fn main() -> emc_bench::Result<()> {
    let data = fig4(&Fig4Config::default(), None)?;
    eprintln!("# Fig. 4 — coupled MCM structure, active pattern 011011101010000");
    eprintln!(
        "# active land: rms {:.4} V, max {:.4} V, timing {:?} ps",
        data.metrics_active.rms_error,
        data.metrics_active.max_error,
        data.metrics_active.timing_error.map(|t| t * 1e12)
    );
    eprintln!(
        "# quiet land (crosstalk): rms {:.4} V, max {:.4} V",
        data.metrics_quiet.rms_error, data.metrics_quiet.max_error
    );
    eprintln!(
        "# CPU: transistor {:.2} s, PW-RBF {:.2} s, speedup {:.1}x",
        data.cpu_reference,
        data.cpu_pwrbf,
        data.cpu_reference / data.cpu_pwrbf
    );
    print_csv(
        &[
            "t_s",
            "v21_reference",
            "v21_pwrbf",
            "v22_reference",
            "v22_pwrbf",
        ],
        &[
            &data.v21_reference,
            &data.v21_pwrbf,
            &data.v22_reference,
            &data.v22_pwrbf,
        ],
    );
    Ok(())
}
