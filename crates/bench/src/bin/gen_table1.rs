//! Regenerates Table 1: CPU time of the coupled-structure simulation,
//! transistor-level vs PW-RBF (paper rule-of-thumb: > 20x speedup; the
//! exact ratio depends on how much finer the transistor-level timestep
//! must be than the macromodel sample clock).

use emc_bench::{driver_model, fig4, Fig4Config};

fn main() -> emc_bench::Result<()> {
    // Estimate once, outside the timed region (estimation cost is reported
    // separately by gen_sec5_accuracy / the `estimation` bench).
    let t0 = std::time::Instant::now();
    let model = driver_model(&refdev::md3())?;
    let t_est = t0.elapsed().as_secs_f64();
    let data = fig4(&Fig4Config::default(), Some(model))?;
    println!("Table 1 — CPU time, coupled structure of Fig. 3");
    println!("  model estimation (one-off) : {:>8.2} s", t_est);
    println!(
        "  transistor level           : {:>8.2} s",
        data.cpu_reference
    );
    println!("  PW-RBF                     : {:>8.2} s", data.cpu_pwrbf);
    println!(
        "  speedup                    : {:>8.1} x (paper: >20x rule of thumb)",
        data.cpu_reference / data.cpu_pwrbf
    );
    Ok(())
}
