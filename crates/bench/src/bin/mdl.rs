//! `mdl` — the macromodel artifact tool: the full lifecycle of an
//! estimated model as a durable on-disk artifact.
//!
//! ```text
//! mdl extract <md1|md2|md3|md4> [--kind pwrbf|ibis|receiver|cr]
//!             [--out PATH] [--fast]
//! mdl info <file.mdlx>
//! mdl validate <file.mdlx> [--rms-limit V] [--timing-limit S] [--fast]
//! mdl simulate <file.mdlx> [--fixture r50|linecap|pulse]
//!              [--pattern BITS] [--bit-time S] [--t-stop S]
//! ```
//!
//! `extract` runs a builder-style [`ExtractionSession`] and saves the
//! artifact; `info` prints its summary and metadata; `validate` checks the
//! bit-exact re-save guarantee and re-simulates the artifact against its
//! transistor-level reference, failing on accuracy regressions; `simulate`
//! prints the pad voltage on a standard fixture as CSV. Everything after
//! `extract` works from the file alone — no re-estimation.

use macromodel::exchange::{load_model_from_path, save_model, AnyModel};
use macromodel::validate::{print_csv, validate_macromodel, ReferencePort, DEFAULT_VALIDATION_DT};
use macromodel::{ExtractionSession, Macromodel, ModelKind, PortStimulus, TestFixture};
use refdev::{CmosDriverSpec, ReceiverSpec};

type CliResult<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mdl extract <md1|md2|md3|md4> [--kind pwrbf|ibis|receiver|cr] [--out PATH] [--fast]\n  mdl info <file.mdlx>\n  mdl validate <file.mdlx> [--rms-limit V] [--timing-limit S] [--fast]\n  mdl simulate <file.mdlx> [--fixture r50|linecap|pulse] [--pattern BITS] [--bit-time S] [--t-stop S]"
    );
    std::process::exit(2);
}

fn parse_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_opt(args: &mut Vec<String>, key: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == key)?;
    if pos + 1 >= args.len() {
        eprintln!("{key} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn parse_f64_opt(args: &mut Vec<String>, key: &str) -> Option<f64> {
    parse_opt(args, key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{key}: '{v}' is not a number");
            usage();
        })
    })
}

fn driver_spec(device: &str) -> Option<CmosDriverSpec> {
    match device {
        "md1" => Some(refdev::md1()),
        "md2" => Some(refdev::md2()),
        "md3" => Some(refdev::md3()),
        _ => None,
    }
}

fn receiver_spec(device: &str) -> Option<ReceiverSpec> {
    (device == "md4").then(refdev::md4)
}

/// Resolves the transistor-level reference a loaded artifact stands in for,
/// from its device name (C–R̂ artifacts are named `<device>_cr`).
fn reference_for(model: &AnyModel) -> Option<ReferencePort> {
    let base = model.name().trim_end_matches("_cr").to_string();
    if model.kind().is_driver() {
        driver_spec(&base).map(ReferencePort::Driver)
    } else {
        receiver_spec(&base).map(ReferencePort::Receiver)
    }
}

fn cmd_extract(mut args: Vec<String>) -> CliResult<()> {
    let fast = parse_flag(&mut args, "--fast");
    let kind = parse_opt(&mut args, "--kind");
    let out = parse_opt(&mut args, "--out");
    let [device] = args.as_slice() else { usage() };
    let kind = kind.as_deref().unwrap_or(if driver_spec(device).is_some() {
        "pwrbf"
    } else {
        "receiver"
    });
    let out = out.unwrap_or_else(|| format!("{device}-{kind}.mdlx"));

    let t0 = std::time::Instant::now();
    let estimated = match kind {
        "pwrbf" => {
            let spec = driver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a driver device");
                usage();
            });
            let mut session = ExtractionSession::for_driver(spec);
            if fast {
                session = session.excitation(24, 16, 6).windows(1.5e-9, 3e-9);
            }
            session.run()?
        }
        "ibis" => {
            let spec = driver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a driver device");
                usage();
            });
            let mut session = ExtractionSession::for_ibis(spec);
            if fast {
                session = session.iv_points(21).tables(50e-12, 3e-9);
            }
            session.run()?
        }
        "receiver" => {
            let spec = receiver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a receiver device");
                usage();
            });
            let mut session = ExtractionSession::for_receiver(spec).orders(3, 2, 3);
            if fast {
                session = session.excitation(24, 16, 6);
            } else {
                session = session.excitation(40, 64, 6);
            }
            session.run()?
        }
        "cr" => {
            let spec = receiver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a receiver device");
                usage();
            });
            ExtractionSession::for_cr_baseline(spec).run()?
        }
        other => {
            eprintln!("unknown kind '{other}'");
            usage();
        }
    };
    let est_s = t0.elapsed().as_secs_f64();
    estimated.save(&out)?;
    println!("extracted {} in {est_s:.2} s", estimated.summary());
    println!("saved {out}");
    Ok(())
}

fn cmd_info(args: Vec<String>) -> CliResult<()> {
    let [path] = args.as_slice() else { usage() };
    let model = load_model_from_path(path)?;
    println!("kind      {}", model.kind());
    println!("name      {}", model.name());
    match model.sample_time() {
        Some(ts) => println!("ts        {ts:e} s"),
        None => println!("ts        - (continuous)"),
    }
    println!("summary   {}", model.summary());
    for (k, v) in model.metadata() {
        println!("  {k:<16} {v}");
    }
    Ok(())
}

fn cmd_validate(mut args: Vec<String>) -> CliResult<()> {
    let fast = parse_flag(&mut args, "--fast");
    let rms_limit = parse_f64_opt(&mut args, "--rms-limit");
    let timing_limit = parse_f64_opt(&mut args, "--timing-limit");
    let [path] = args.as_slice() else { usage() };

    // 1. Load with strict validation, then check the bit-exact re-save
    // guarantee against the original file bytes.
    let original = std::fs::read_to_string(path)?;
    let model = load_model_from_path(path)?;
    model.validate()?;
    let re_saved = save_model(&model)?;
    if re_saved != original {
        return Err(format!("{path}: re-save is not byte-identical to the artifact").into());
    }
    println!(
        "round-trip  ok ({} bytes, bit-exact re-save)",
        original.len()
    );

    // 2. Re-simulate against the transistor-level reference.
    let reference = reference_for(&model)
        .ok_or_else(|| format!("no reference device known for '{}'", model.name()))?;
    let vdd = reference.vdd();
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let (fixture, stim, t_stop) = if model.kind().is_driver() {
        let bit = if fast { 3e-9 } else { 4e-9 };
        (
            TestFixture::resistive(50.0),
            Some(PortStimulus::new("010", bit)),
            3.0 * bit,
        )
    } else {
        (
            TestFixture::series_pulse(60.0, 0.0, 0.9 * vdd, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9),
            None,
            3e-9,
        )
    };
    let run = validate_macromodel(
        &reference,
        model.as_dyn(),
        &fixture,
        stim.as_ref(),
        dt,
        t_stop,
        0.5 * vdd,
    )?;
    let m = run.metrics;
    println!(
        "accuracy    rms {:.4} V, max {:.4} V, timing {}",
        m.rms_error,
        m.max_error,
        match m.timing_error {
            Some(te) => format!("{:.1} ps", te * 1e12),
            None => "n/a".into(),
        }
    );

    // 3. Enforce regression limits. The estimated models track the
    // reference closely; the baselines (IBIS, C–R̂) only get a sanity bound.
    let default_rms = match model.kind() {
        ModelKind::PwRbfDriver | ModelKind::Receiver => 0.08 * vdd,
        ModelKind::Ibis | ModelKind::CrBaseline => 0.5 * vdd,
    };
    let rms_limit = rms_limit.unwrap_or(default_rms);
    if m.rms_error > rms_limit {
        return Err(format!("rms error {} V exceeds limit {} V", m.rms_error, rms_limit).into());
    }
    if let (Some(limit), Some(te)) = (timing_limit, m.timing_error) {
        if te > limit {
            return Err(format!("timing error {te} s exceeds limit {limit} s").into());
        }
    }
    println!("validate    ok (rms limit {rms_limit:.4} V)");
    Ok(())
}

fn cmd_simulate(mut args: Vec<String>) -> CliResult<()> {
    let fixture = parse_opt(&mut args, "--fixture");
    let pattern = parse_opt(&mut args, "--pattern").unwrap_or_else(|| "010".into());
    let bit_time = parse_f64_opt(&mut args, "--bit-time").unwrap_or(4e-9);
    let t_stop = parse_f64_opt(&mut args, "--t-stop").unwrap_or(12e-9);
    let [path] = args.as_slice() else { usage() };
    let model = load_model_from_path(path)?;

    let fixture = match fixture.as_deref() {
        None | Some("r50") => TestFixture::resistive(50.0),
        Some("linecap") => TestFixture::line_cap(50.0, 0.8e-9, 10e-12),
        Some("pulse") => TestFixture::series_pulse(60.0, 0.0, 1.0, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9),
        Some(other) => {
            eprintln!("unknown fixture '{other}'");
            usage();
        }
    };
    let stim = model
        .kind()
        .is_driver()
        .then(|| PortStimulus::new(pattern, bit_time));
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let wave = model.simulate_on_load(&fixture, stim.as_ref(), dt, t_stop)?;
    print_csv(&["t", "v_pad"], &[&wave]);
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "extract" => cmd_extract(args),
        "info" => cmd_info(args),
        "validate" => cmd_validate(args),
        "simulate" => cmd_simulate(args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("mdl {cmd}: {e}");
        std::process::exit(1);
    }
}
