//! `mdl` — the macromodel artifact tool: the full lifecycle of an
//! estimated model as a durable on-disk artifact, from extraction to
//! serving a whole library.
//!
//! ```text
//! mdl extract <md1|md2|md3|md4> [--kind pwrbf|ibis|receiver|cr]
//!             [--out PATH] [--fast] [--v2] [--corners]
//! mdl info <file.mdlx>
//! mdl lint <file.mdlx>|<dir> [--json] [--deny CODE] [--allow CODE]
//! mdl validate <file.mdlx> [--rms-limit V] [--timing-limit S] [--fast]
//! mdl simulate <file.mdlx> [--fixture r50|linecap|pulse]
//!              [--pattern BITS] [--bit-time S] [--t-stop S]
//! mdl eye <file.mdlx> [--prbs 7|15|31] [--bits N] [--seed S]
//!         [--lanes N] [--bit-time S] [--json]
//! mdl mc <file.mdlx> [--trials N] [--seed S] [--prbs 7|15|31]
//!        [--bits N] [--json]
//! mdl store ls <dir>
//! mdl store validate <dir> [--fast] [--json PATH]
//! mdl store sweep <dir> [--fast] [--json PATH]
//! mdl serve <dir> --socket PATH [--poll-ms N] [--fast]
//! mdl bench-serve <dir>|--socket PATH [--clients N] [--requests N] [--json PATH]
//! mdl bench-eval [--steps N] [--reps N] [--lanes N] [--centers N] [--json] [--baseline PATH]
//! mdl bench-eye [--prbs-bits N] [--fold-bits N] [--channel-bits N] [--lanes N] [--reps N] [--json] [--baseline PATH]
//! mdl request --socket PATH <request line...>
//! ```
//!
//! `eye` drives every lane of a generated channel ([`si::channel`]) with a
//! seed-offset PRBS stream from the artifact's driver model and folds the
//! far-end waveforms into an eye diagram — metrics plus an ASCII raster of
//! the worst lane; the exit status is nonzero when the eye is closed. `mc`
//! runs the Latin-hypercube Monte-Carlo channel sweep ([`si::mc`]) and
//! gates on population eye statistics. Both are deterministic in `--seed`.
//!
//! `lint` runs the static diagnostic engine ([`macromodel::lint`]) over one
//! artifact or a whole store directory: model-semantic rules (`M00x`) plus
//! the circuit-structural audit (`C00x`), with per-code `--allow`/`--deny`
//! overrides; the exit status is nonzero exactly when an error-severity
//! finding (or a load failure) survives.
//!
//! `extract` runs a builder-style [`ExtractionSession`] and saves the
//! artifact (`--v2` writes a provenance-stamped `mdlx 2` bundle;
//! `--corners` bundles the three IBIS corner variants into one file);
//! `info` prints summaries, metadata and provenance; `validate` checks the
//! bit-exact re-save guarantee and re-simulates every model in the
//! artifact against its transistor-level reference, failing on accuracy
//! regressions; `simulate` prints the pad voltage on a standard fixture as
//! CSV. The `store` family serves a *directory* of artifacts: `ls` prints
//! the inventory (load failures included), `validate` batch-certifies
//! every model against its reference, and `sweep` runs the scenario
//! matrix ([`emc_bench::serve`]) — both write machine-readable JSON
//! reports with `--json` and exit nonzero on any failing cell. Everything
//! after `extract` works from the files alone — no re-estimation.
//!
//! `serve` keeps a store resident behind a Unix socket with hot reload and
//! a digest-keyed artifact cache ([`emc_bench::server`]); `bench-serve`
//! fires a mixed load burst at a daemon (spawning one in-process when
//! given a directory) and reports p50/p95/p99 latency plus throughput;
//! `bench-eval` times the per-step evaluation runtime (legacy scalar vs
//! compiled vs batched lanes, [`emc_bench::evalbench`]) and emits
//! baseline-gate records; `request` is the one-shot protocol client for
//! scripts.

use emc_bench::serve::{
    driver_spec, mc_summary_json, receiver_spec, run_eye_workload, run_mc_workload,
    standard_scenarios, sweep_store, validate_model, validate_store, EyeWorkload, FleetReport,
    McWorkload,
};
use emc_bench::server::{self, LoadGenConfig, ServeConfig};
use macromodel::exchange::binary::{is_binary, save_artifact_bin, save_artifact_bin_to_path};
use macromodel::exchange::{
    load_artifact_bytes, load_artifact_from_path, load_model_from_path, save_artifact,
    save_artifact_to_path, AnyModel, Artifact,
};
use macromodel::validate::{print_csv, DEFAULT_VALIDATION_DT};
use macromodel::{ExtractionSession, Macromodel, ModelStore, PortStimulus, TestFixture};

type CliResult<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mdl extract <md1|md2|md3|md4> [--kind pwrbf|ibis|receiver|cr] [--out PATH] [--fast] [--v2] [--corners] [--bin]\n  mdl convert <in.mdlx|in.mdlxb> <out> [--to text|binary]\n  mdl info <file.mdlx|file.mdlxb>\n  mdl lint <file.mdlx>|<dir> [--json] [--deny CODE] [--allow CODE]\n  mdl validate <file.mdlx|file.mdlxb> [--rms-limit V] [--timing-limit S] [--fast]\n  mdl simulate <file.mdlx> [--fixture r50|linecap|pulse] [--pattern BITS] [--bit-time S] [--t-stop S]\n  mdl eye <file.mdlx> [--prbs 7|15|31] [--bits N] [--seed S] [--lanes N] [--bit-time S] [--json]\n  mdl mc <file.mdlx> [--trials N] [--seed S] [--prbs 7|15|31] [--bits N] [--json]\n  mdl store ls <dir> [--json]\n  mdl store validate <dir> [--fast] [--json PATH]\n  mdl store sweep <dir> [--fast] [--json PATH]\n  mdl serve <dir> --socket PATH [--poll-ms N] [--fast]\n  mdl bench-serve <dir>|--socket PATH [--clients N] [--requests N] [--sweep-every N] [--validate-every N] [--json PATH] [--baseline PATH] [--full]\n  mdl bench-eval [--steps N] [--reps N] [--lanes N] [--centers N] [--json] [--baseline PATH]\n  mdl bench-eye [--prbs-bits N] [--fold-bits N] [--channel-bits N] [--lanes N] [--reps N] [--json] [--baseline PATH]\n  mdl bench-store [--entries N] [--centers N] [--reps N] [--min-speedup X] [--json] [--baseline PATH]\n  mdl request --socket PATH <request line...>"
    );
    std::process::exit(2);
}

fn parse_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_opt(args: &mut Vec<String>, key: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == key)?;
    if pos + 1 >= args.len() {
        eprintln!("{key} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn parse_f64_opt(args: &mut Vec<String>, key: &str) -> Option<f64> {
    parse_opt(args, key).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{key}: '{v}' is not a number");
            usage();
        })
    })
}

fn parse_multi_opt(args: &mut Vec<String>, key: &str) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(v) = parse_opt(args, key) {
        out.push(v);
    }
    out
}

/// Saves an artifact in the chosen container (text `mdlx` or the binary
/// `mdlxb` framing) — the artifact's own version (1 or 2) rides along in
/// either case.
fn save_any(artifact: &Artifact, path: &str, bin: bool) -> CliResult<()> {
    if bin {
        save_artifact_bin_to_path(artifact, path)?;
    } else {
        save_artifact_to_path(artifact, path)?;
    }
    Ok(())
}

fn cmd_convert(mut args: Vec<String>) -> CliResult<()> {
    let to = parse_opt(&mut args, "--to");
    let [input, output] = args.as_slice() else {
        usage()
    };
    let original = std::fs::read(input)?;
    let artifact = load_artifact_bytes(&original)?;
    let to_binary = match to.as_deref() {
        Some("binary" | "bin") => true,
        Some("text") => false,
        Some(other) => {
            eprintln!("--to must be 'text' or 'binary', got '{other}'");
            usage();
        }
        None => std::path::Path::new(output)
            .extension()
            .is_some_and(|ext| ext == "mdlxb"),
    };
    save_any(&artifact, output, to_binary)?;

    // Prove the detour is lossless before reporting success: load the
    // converted file back and re-save it in the *source* container — the
    // bytes must reproduce the input exactly (both writers are
    // deterministic and floats travel as identical bit patterns).
    let converted = std::fs::read(output)?;
    let back = load_artifact_bytes(&converted)?;
    let round_trip = if is_binary(&original) {
        save_artifact_bin(&back)?
    } else {
        save_artifact(&back)?.into_bytes()
    };
    if round_trip != original {
        return Err(format!(
            "round-trip through {output} is not byte-identical to {input}; not trusting the conversion"
        )
        .into());
    }
    println!(
        "converted {input} ({} bytes, {}) -> {output} ({} bytes, {}); round-trip verified",
        original.len(),
        if is_binary(&original) {
            "binary"
        } else {
            "text"
        },
        converted.len(),
        if to_binary { "binary" } else { "text" },
    );
    Ok(())
}

fn cmd_extract(mut args: Vec<String>) -> CliResult<()> {
    let fast = parse_flag(&mut args, "--fast");
    let v2 = parse_flag(&mut args, "--v2");
    let corners = parse_flag(&mut args, "--corners");
    let bin = parse_flag(&mut args, "--bin");
    let kind = parse_opt(&mut args, "--kind");
    let out = parse_opt(&mut args, "--out");
    let [device] = args.as_slice() else { usage() };
    let kind = kind.as_deref().unwrap_or(if driver_spec(device).is_some() {
        "pwrbf"
    } else {
        "receiver"
    });
    // Fail flag mismatches before spending seconds on the extraction.
    if corners && kind != "ibis" {
        return Err("--corners requires --kind ibis".into());
    }
    let ext = if bin { "mdlxb" } else { "mdlx" };
    let out = out.unwrap_or_else(|| format!("{device}-{kind}.{ext}"));

    let t0 = std::time::Instant::now();
    let estimated = match kind {
        "pwrbf" => {
            let spec = driver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a driver device");
                usage();
            });
            let mut session = ExtractionSession::for_driver(spec);
            if fast {
                session = session.excitation(24, 16, 6).windows(1.5e-9, 3e-9);
            }
            session.run()?
        }
        "ibis" => {
            let spec = driver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a driver device");
                usage();
            });
            let mut session = ExtractionSession::for_ibis(spec);
            if fast {
                session = session.iv_points(21).tables(50e-12, 3e-9);
            }
            session.run()?
        }
        "receiver" => {
            let spec = receiver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a receiver device");
                usage();
            });
            let mut session = ExtractionSession::for_receiver(spec).orders(3, 2, 3);
            if fast {
                session = session.excitation(24, 16, 6);
            } else {
                session = session.excitation(40, 64, 6);
            }
            session.run()?
        }
        "cr" => {
            let spec = receiver_spec(device).unwrap_or_else(|| {
                eprintln!("'{device}' is not a receiver device");
                usage();
            });
            ExtractionSession::for_cr_baseline(spec).run()?
        }
        other => {
            eprintln!("unknown kind '{other}'");
            usage();
        }
    };
    let est_s = t0.elapsed().as_secs_f64();
    if corners {
        // Bundle the three IBIS corner variants into one v2 artifact.
        let AnyModel::Ibis(base) = estimated.model() else {
            unreachable!("--corners was gated on --kind ibis above");
        };
        let mut models = Vec::with_capacity(3);
        for corner in [
            refdev::IbisCorner::Typical,
            refdev::IbisCorner::Slow,
            refdev::IbisCorner::Fast,
        ] {
            models.push(AnyModel::Ibis(base.with_corner(corner)?));
        }
        let provenance = estimated
            .provenance()
            .clone()
            .with_param("corners", "Typical,Slow,Fast");
        save_any(&Artifact::bundle(models, Some(provenance)), &out, bin)?;
    } else if v2 {
        save_any(&estimated.to_artifact(), &out, bin)?;
    } else {
        save_any(&Artifact::single(estimated.model().clone()), &out, bin)?;
    }
    println!("extracted {} in {est_s:.2} s", estimated.summary());
    println!("saved {out}");
    Ok(())
}

fn cmd_info(args: Vec<String>) -> CliResult<()> {
    let [path] = args.as_slice() else { usage() };
    let bytes = std::fs::read(path)?;
    let artifact = load_artifact_bytes(&bytes)?;
    println!(
        "format    mdlx {}{}",
        artifact.version,
        if is_binary(&bytes) {
            " (binary container)"
        } else {
            ""
        }
    );
    if let Some(p) = &artifact.provenance {
        println!("tool      {} {}", p.tool, p.tool_version);
        println!("digest    {}", p.config_digest);
        for (k, v) in &p.params {
            println!("  param {k:<10} {v}");
        }
    }
    for model in &artifact.models {
        println!("kind      {}", model.kind());
        println!("name      {}", model.name());
        match model.sample_time() {
            Some(ts) => println!("ts        {ts:e} s"),
            None => println!("ts        - (continuous)"),
        }
        println!("summary   {}", model.summary());
        for (k, v) in model.metadata() {
            println!("  {k:<16} {v}");
        }
    }
    Ok(())
}

fn cmd_lint(mut args: Vec<String>) -> CliResult<()> {
    use macromodel::lint::{code_spec, lint_artifact, LintConfig, LintReport};

    let json = parse_flag(&mut args, "--json");
    let mut cfg = LintConfig::default();
    for (key, deny) in [("--deny", true), ("--allow", false)] {
        for code in parse_multi_opt(&mut args, key) {
            if code_spec(&code).is_none() {
                eprintln!("{key}: unknown diagnostic code '{code}'");
                usage();
            }
            if deny {
                cfg.deny(code);
            } else {
                cfg.allow(code);
            }
        }
    }
    let [path] = args.as_slice() else { usage() };

    let mut report = LintReport::default();
    let mut load_failures: Vec<(String, String)> = Vec::new();
    if std::fs::metadata(path)?.is_dir() {
        let store = ModelStore::open_with_mode(path, macromodel::LoadMode::Eager)?;
        for entry in store.entries() {
            let file = entry.path().display().to_string();
            match entry.artifact() {
                Ok(artifact) => {
                    for mut diag in lint_artifact(artifact).diagnostics {
                        diag.subject = format!("{file}: {}", diag.subject);
                        report.diagnostics.push(diag);
                    }
                }
                Err(e) => load_failures.push((file, e.to_string())),
            }
        }
    } else {
        report = lint_artifact(&load_artifact_from_path(path)?);
    }

    if json {
        let mut out = String::from("{\"load_failures\":[");
        for (i, (file, error)) in load_failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"error\":{}}}",
                emc_bench::serve::json_str(file),
                emc_bench::serve::json_str(error)
            ));
        }
        out.push_str(&format!("],\"report\":{}}}", report.to_json(&cfg)));
        println!("{out}");
    } else {
        for (file, error) in &load_failures {
            println!("LOAD FAIL  {file}: {error}");
        }
        print!("{}", report.render_human(&cfg));
    }
    let denied = report.deny_count(&cfg);
    if denied > 0 || !load_failures.is_empty() {
        return Err(format!(
            "{denied} error-severity finding(s), {} load failure(s)",
            load_failures.len()
        )
        .into());
    }
    Ok(())
}

fn cmd_validate(mut args: Vec<String>) -> CliResult<()> {
    let fast = parse_flag(&mut args, "--fast");
    let rms_limit = parse_f64_opt(&mut args, "--rms-limit");
    let timing_limit = parse_f64_opt(&mut args, "--timing-limit");
    let [path] = args.as_slice() else { usage() };

    // 1. Load with strict validation, then check the bit-exact re-save
    // guarantee against the original file bytes (either format version,
    // text or binary container alike).
    let original = std::fs::read(path)?;
    let artifact = load_artifact_bytes(&original)?;
    let re_saved = if is_binary(&original) {
        save_artifact_bin(&artifact)?
    } else {
        save_artifact(&artifact)?.into_bytes()
    };
    if re_saved != original {
        return Err(format!("{path}: re-save is not byte-identical to the artifact").into());
    }
    println!(
        "round-trip  ok ({} bytes, mdlx {}{}, bit-exact re-save)",
        original.len(),
        artifact.version,
        if is_binary(&original) { " binary" } else { "" }
    );

    // 2. Re-simulate every bundled model against its transistor-level
    // reference and enforce the per-kind regression gates.
    for model in &artifact.models {
        let cell = validate_model(model.as_dyn(), fast, rms_limit, timing_limit);
        println!(
            "accuracy    {} rms {} V, max {} V, timing {}",
            cell.model,
            cell.rms_error.map_or("n/a".into(), |v| format!("{v:.4}")),
            cell.max_error.map_or("n/a".into(), |v| format!("{v:.4}")),
            cell.timing_error_s
                .map_or("n/a".into(), |te| format!("{:.1} ps", te * 1e12)),
        );
        if !cell.pass {
            return Err(format!("{}: {}", cell.model, cell.detail).into());
        }
        println!(
            "validate    {} ok (rms limit {:.4} V)",
            cell.model,
            cell.rms_limit.unwrap_or(f64::NAN)
        );
    }
    Ok(())
}

/// Prints a fleet report as an aligned table, optionally writes the JSON
/// form, and converts failing cells into a CLI error.
fn finish_fleet(report: &FleetReport, json: Option<String>) -> CliResult<()> {
    for (path, error) in &report.load_failures {
        println!("LOAD FAIL  {path}: {error}");
    }
    for c in &report.cells {
        let metrics = match (c.rms_error, &c.stats) {
            (Some(rms), _) => format!("rms {rms:.4} V"),
            (None, Some(s)) => format!(
                "{} unknowns, {} factorizations, {:.1e} flops",
                s.unknowns, s.factorizations, s.flops as f64
            ),
            _ => String::new(),
        };
        println!(
            "{:<4} {:<28} {:<14} {:<12} {metrics} {}",
            if c.pass { "ok" } else { "FAIL" },
            c.model,
            c.kind,
            c.scenario,
            if c.pass { "" } else { c.detail.as_str() },
        );
    }
    println!(
        "fleet: {}/{} cells passed, {} artifacts, {} models, {} load failures",
        report.passed(),
        report.cells.len(),
        report.artifacts,
        report.models,
        report.load_failures.len()
    );
    if let Some(path) = json {
        std::fs::write(&path, report.to_json())?;
        println!("report written to {path}");
    }
    if !report.all_passed() {
        return Err(format!(
            "{} failing cells, {} unloadable artifacts",
            report.failed(),
            report.load_failures.len()
        )
        .into());
    }
    Ok(())
}

/// Renders `store ls` as one JSON document (shape asserted by the CLI
/// tests): load mode, per-entry format/version/bytes/digest, flattened
/// model list, and the error string of unloadable entries.
fn store_ls_json(store: &ModelStore) -> String {
    use emc_bench::serve::json_str;
    let mut out = format!(
        "{{\"root\":{},\"mode\":\"lazy\",\"entries\":[",
        json_str(&store.root().display().to_string())
    );
    let mut models = 0usize;
    for (i, entry) in store.entries().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"format\":\"{}\"",
            json_str(&entry.path().display().to_string()),
            entry.format()
        ));
        match (entry.index(), entry.artifact()) {
            (Ok(index), Ok(artifact)) => {
                models += index.models.len();
                out.push_str(&format!(
                    ",\"version\":{},\"bytes\":{},\"digest\":{},\"models\":[",
                    index.version,
                    index.bytes,
                    json_str(&index.digest)
                ));
                for (j, (kind, name)) in index.models.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"kind\":{},\"name\":{}}}",
                        json_str(kind.tag()),
                        json_str(name)
                    ));
                }
                let prov = artifact
                    .provenance
                    .as_ref()
                    .map(|p| json_str(&p.config_digest))
                    .unwrap_or_else(|| "null".into());
                out.push_str(&format!("],\"provenance_digest\":{prov},\"error\":null}}"));
            }
            (index, artifact) => {
                let error = index
                    .err()
                    .or(artifact.err())
                    .expect("one side failed in this branch");
                out.push_str(&format!(",\"error\":{}}}", json_str(&error.to_string())));
            }
        }
    }
    out.push_str(&format!(
        "],\"artifacts\":{},\"models\":{models},\"load_failures\":{}}}",
        store.len(),
        store.failures().len()
    ));
    out
}

fn cmd_store(mut args: Vec<String>) -> CliResult<()> {
    if args.is_empty() {
        usage();
    }
    let sub = args.remove(0);
    let fast = parse_flag(&mut args, "--fast");
    // For `ls`, --json is a flag (print the listing as JSON); the fleet
    // subcommands take --json PATH to write their report file.
    let json_flag = sub == "ls" && parse_flag(&mut args, "--json");
    let json = if sub == "ls" {
        None
    } else {
        parse_opt(&mut args, "--json")
    };
    let [dir] = args.as_slice() else { usage() };
    // `ls` opens lazily — binary entries inventory from their section
    // headers — then forces a full integrity pass entry by entry (a
    // listing that hides corrupt artifacts is worse than a slow one);
    // the fleet engines force a full load in their report header anyway.
    let mode = if sub == "ls" {
        macromodel::LoadMode::Lazy
    } else {
        macromodel::LoadMode::Eager
    };
    let store = ModelStore::open_with_mode(dir, mode)?;
    match sub.as_str() {
        "ls" => {
            if json_flag {
                println!("{}", store_ls_json(&store));
            } else {
                println!("mode lazy (entries indexed from headers, verified on touch)");
                for entry in store.entries() {
                    match (entry.index(), entry.artifact()) {
                        (Ok(index), Ok(artifact)) => {
                            let prov = artifact
                                .provenance
                                .as_ref()
                                .map(|p| format!(" prov {}", p.config_digest))
                                .unwrap_or_default();
                            for (kind, name) in &index.models {
                                println!(
                                    "{:<40} {:<6} mdlx {} {:>8} B {} {:<14} {}{prov}",
                                    entry.path().display(),
                                    index.format,
                                    index.version,
                                    index.bytes,
                                    index.digest,
                                    kind.tag(),
                                    name,
                                );
                            }
                        }
                        (index, artifact) => {
                            let error = index
                                .err()
                                .or(artifact.err())
                                .expect("one side failed in this branch");
                            println!("{:<40} LOAD FAIL: {error}", entry.path().display());
                        }
                    }
                }
            }
            let failures = store.failures();
            if !json_flag {
                println!(
                    "{} artifacts, {} models, {} load failures",
                    store.len(),
                    store.models().len(),
                    failures.len()
                );
            }
            if !failures.is_empty() {
                return Err(format!("{} artifacts failed to load", failures.len()).into());
            }
            Ok(())
        }
        "validate" => finish_fleet(&validate_store(&store, fast), json),
        "sweep" => finish_fleet(&sweep_store(&store, &standard_scenarios(fast)), json),
        _ => usage(),
    }
}

fn cmd_simulate(mut args: Vec<String>) -> CliResult<()> {
    let fixture = parse_opt(&mut args, "--fixture");
    let pattern = parse_opt(&mut args, "--pattern").unwrap_or_else(|| "010".into());
    let bit_time = parse_f64_opt(&mut args, "--bit-time").unwrap_or(4e-9);
    let t_stop = parse_f64_opt(&mut args, "--t-stop").unwrap_or(12e-9);
    let [path] = args.as_slice() else { usage() };
    let model = load_model_from_path(path)?;

    let fixture = match fixture.as_deref() {
        None | Some("r50") => TestFixture::resistive(50.0),
        Some("linecap") => TestFixture::line_cap(50.0, 0.8e-9, 10e-12),
        Some("pulse") => TestFixture::series_pulse(60.0, 0.0, 1.0, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9),
        Some(other) => {
            eprintln!("unknown fixture '{other}'");
            usage();
        }
    };
    let stim = model
        .kind()
        .is_driver()
        .then(|| PortStimulus::new(pattern, bit_time));
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let wave = model.simulate_on_load(&fixture, stim.as_ref(), dt, t_stop)?;
    print_csv(&["t", "v_pad"], &[&wave]);
    Ok(())
}

fn cmd_eye(mut args: Vec<String>) -> CliResult<()> {
    use si::{EyeAnalyzer, EyeConfig};

    let json = parse_flag(&mut args, "--json");
    let mut w = EyeWorkload::standard(false);
    if let Some(p) = parse_f64_opt(&mut args, "--prbs") {
        w.prbs = p as u32;
    }
    if let Some(b) = parse_f64_opt(&mut args, "--bits") {
        w.bits = (b as usize).max(4);
    }
    if let Some(s) = parse_f64_opt(&mut args, "--seed") {
        w.seed = s as u64;
    }
    if let Some(l) = parse_f64_opt(&mut args, "--lanes") {
        w.lanes = (l as usize).max(1);
    }
    if let Some(bt) = parse_f64_opt(&mut args, "--bit-time") {
        w.bit_time = bt;
    }
    let [path] = args.as_slice() else { usage() };
    let model = load_model_from_path(path)?;
    if !model.kind().is_driver() {
        return Err(format!("eye requires a driver model, got {}", model.kind().tag()).into());
    }
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let mut analyzer = EyeAnalyzer::new(EyeConfig::new(w.bit_time));
    let (_, stats, outcome) = run_eye_workload(model.as_dyn(), &w, dt, &mut analyzer)?;
    if json {
        println!("{}", outcome.json());
    } else {
        let m = &outcome.metrics;
        print!("{}", analyzer.raster().render_ascii());
        println!(
            "eye {} prbs{} bits {} seed {} lanes {} (worst lane {})",
            model.name(),
            outcome.prbs,
            outcome.bits,
            outcome.seed,
            outcome.lanes,
            outcome.worst_lane
        );
        println!(
            "  open {}  height {:.4} V  width {:.3} UI",
            m.open, m.eye_height, m.eye_width_ui
        );
        println!(
            "  jitter pp {:.1} ps  rms {:.1} ps  crossings {}",
            m.jitter_pp_s * 1e12,
            m.jitter_rms_s * 1e12,
            m.crossings
        );
        println!(
            "  rails {:.3} / {:.3} V  overshoot {:.1}%  undershoot {:.1}%",
            m.v_low,
            m.v_high,
            m.overshoot * 100.0,
            m.undershoot * 100.0
        );
        println!(
            "  solver: {} unknowns, {} newton iterations",
            stats.unknowns, stats.newton_iterations
        );
    }
    if !outcome.metrics.open {
        return Err(format!("lane {} eye closed", outcome.worst_lane).into());
    }
    Ok(())
}

fn cmd_mc(mut args: Vec<String>) -> CliResult<()> {
    let json = parse_flag(&mut args, "--json");
    let mut w = McWorkload::standard(false);
    if let Some(t) = parse_f64_opt(&mut args, "--trials") {
        w.trials = (t as usize).max(1);
    }
    if let Some(s) = parse_f64_opt(&mut args, "--seed") {
        w.seed = s as u64;
    }
    if let Some(p) = parse_f64_opt(&mut args, "--prbs") {
        w.prbs = p as u32;
    }
    if let Some(b) = parse_f64_opt(&mut args, "--bits") {
        w.bits = (b as usize).max(4);
    }
    let [path] = args.as_slice() else { usage() };
    let model = load_model_from_path(path)?;
    if !model.kind().is_driver() {
        return Err(format!("mc requires a driver model, got {}", model.kind().tag()).into());
    }
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    let (_, _, s) = run_mc_workload(model.as_dyn(), &w, dt)?;
    if json {
        println!("{}", mc_summary_json(&s));
    } else {
        println!(
            "mc {} trials {} seed {} prbs{} bits {}",
            model.name(),
            s.trials,
            s.seed,
            w.prbs,
            w.bits
        );
        println!(
            "  eye height min {:.4} V  mean {:.4} V  q05 {:.4} V",
            s.eye_height_min, s.eye_height_mean, s.eye_height_q05
        );
        println!(
            "  eye width min {:.3} UI  jitter q{:.0} {:.1} ps  max {:.1} ps",
            s.eye_width_min_ui,
            w.gates.jitter_quantile * 100.0,
            s.jitter_pp_q_s * 1e12,
            s.jitter_pp_max_s * 1e12
        );
        println!(
            "  closed eyes {}  gates: height >= {:.3} V, q-jitter <= {:.1} ps",
            s.closed_eyes,
            w.gates.min_eye_height,
            w.gates.max_jitter_pp_s * 1e12
        );
        println!("  population {}", if s.pass { "PASS" } else { "FAIL" });
    }
    if !s.pass {
        return Err(format!(
            "mc gates failed: {} closed eyes, min eye height {:.4} V over {} trials",
            s.closed_eyes, s.eye_height_min, s.trials
        )
        .into());
    }
    Ok(())
}

fn cmd_serve(mut args: Vec<String>) -> CliResult<()> {
    let fast = parse_flag(&mut args, "--fast");
    let socket = parse_opt(&mut args, "--socket").unwrap_or_else(|| {
        eprintln!("serve needs --socket PATH");
        usage();
    });
    let poll_ms = parse_f64_opt(&mut args, "--poll-ms").unwrap_or(500.0);
    let [dir] = args.as_slice() else { usage() };
    let mut cfg = ServeConfig::new(dir, &socket);
    cfg.poll_interval = std::time::Duration::from_millis(poll_ms.max(1.0) as u64);
    cfg.fast = fast;
    let handle = server::start(cfg)?;
    println!("serving {dir} on {socket} (send 'shutdown' to stop)");
    handle.join();
    println!("daemon stopped");
    Ok(())
}

fn cmd_bench_serve(mut args: Vec<String>) -> CliResult<()> {
    let full = parse_flag(&mut args, "--full");
    let socket = parse_opt(&mut args, "--socket");
    let clients = parse_f64_opt(&mut args, "--clients").map(|v| v as usize);
    let requests = parse_f64_opt(&mut args, "--requests").map(|v| v as usize);
    let sweep_every = parse_f64_opt(&mut args, "--sweep-every").map(|v| v as usize);
    let validate_every = parse_f64_opt(&mut args, "--validate-every").map(|v| v as usize);
    let json = parse_opt(&mut args, "--json");
    let baseline = parse_opt(&mut args, "--baseline");

    // Either bench an already-running daemon (--socket) or spawn one
    // in-process over the given store directory for the duration.
    let (socket_path, handle) = match (socket, args.as_slice()) {
        (Some(sock), []) => (std::path::PathBuf::from(sock), None),
        (None, [dir]) => {
            let sock =
                std::env::temp_dir().join(format!("mdl-bench-serve-{}.sock", std::process::id()));
            let mut cfg = ServeConfig::new(dir, &sock);
            cfg.poll_interval = std::time::Duration::from_millis(200);
            cfg.fast = !full;
            (sock, Some(server::start(cfg)?))
        }
        _ => usage(),
    };

    let mut cfg = LoadGenConfig::new(&socket_path);
    cfg.fast = !full;
    if let Some(n) = clients {
        cfg.clients = n.max(1);
    }
    if let Some(n) = requests {
        cfg.requests_per_client = n.max(1);
    }
    if let Some(n) = sweep_every {
        cfg.sweep_every = n;
    }
    if let Some(n) = validate_every {
        cfg.validate_every = n;
    }
    let result = server::run_load(&cfg);
    if let Some(handle) = handle {
        handle.stop();
    }
    let report = result?;

    println!(
        "bench-serve: {} requests over {} clients in {:.2} s ({:.1} req/s)",
        report.total, cfg.clients, report.elapsed_s, report.throughput_rps
    );
    for s in std::iter::once(&report.overall).chain(&report.per_op) {
        println!(
            "  {:<9} n={:<4} p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  max {:.1} ms",
            s.op,
            s.count,
            s.p50_s * 1e3,
            s.p95_s * 1e3,
            s.p99_s * 1e3,
            s.max_s * 1e3
        );
    }
    println!(
        "  request failures {}  cell failures {}",
        report.request_failures, report.cell_failures
    );
    if let Some(path) = json {
        std::fs::write(&path, report.to_json())?;
        println!("report written to {path}");
    }
    if let Some(path) = baseline {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        for record in report.baseline_records() {
            writeln!(f, "{record}")?;
        }
        println!("baseline records appended to {path}");
    }
    if report.request_failures > 0 {
        return Err(format!("{} requests failed", report.request_failures).into());
    }
    Ok(())
}

fn cmd_bench_eval(mut args: Vec<String>) -> CliResult<()> {
    use emc_bench::evalbench::{run_eval_bench, summarize, EvalBenchConfig};

    let json = parse_flag(&mut args, "--json");
    let baseline = parse_opt(&mut args, "--baseline");
    let mut cfg = EvalBenchConfig::default();
    if let Some(n) = parse_f64_opt(&mut args, "--steps") {
        cfg.steps = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--reps") {
        cfg.reps = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--lanes") {
        cfg.lanes = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--centers") {
        cfg.centers = (n as usize).max(1);
    }
    if !args.is_empty() {
        usage();
    }

    let records = run_eval_bench(&cfg);
    if json {
        for r in &records {
            println!("{}", r.to_json());
        }
    } else {
        print!("{}", summarize(&records));
    }
    if let Some(path) = baseline {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        for r in &records {
            writeln!(f, "{}", r.to_json())?;
        }
        println!("baseline records appended to {path}");
    }
    Ok(())
}

fn cmd_bench_store(mut args: Vec<String>) -> CliResult<()> {
    use emc_bench::storebench::{run_store_bench, speedup, summarize, StoreBenchConfig};

    let json = parse_flag(&mut args, "--json");
    let baseline = parse_opt(&mut args, "--baseline");
    let min_speedup = parse_f64_opt(&mut args, "--min-speedup");
    let mut cfg = StoreBenchConfig::default();
    if let Some(n) = parse_f64_opt(&mut args, "--entries") {
        cfg.entries = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--centers") {
        cfg.centers = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--reps") {
        cfg.reps = (n as usize).max(1);
    }
    if !args.is_empty() {
        usage();
    }

    let records = run_store_bench(&cfg)?;
    if json {
        for r in &records {
            println!("{}", r.to_json());
        }
    } else {
        print!("{}", summarize(&records));
    }
    if let Some(path) = baseline {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        for r in &records {
            writeln!(f, "{}", r.to_json())?;
        }
        println!("baseline records appended to {path}");
    }
    if let Some(min) = min_speedup {
        let s = speedup(&records).ok_or("store bench produced no speedup ratio")?;
        if s < min {
            return Err(format!(
                "lazy binary open speedup {s:.1}x is below the required {min:.1}x"
            )
            .into());
        }
        println!("speedup gate ok: {s:.1}x >= {min:.1}x");
    }
    Ok(())
}

fn cmd_bench_eye(mut args: Vec<String>) -> CliResult<()> {
    use emc_bench::eyebench::{run_eye_bench, summarize, EyeBenchConfig};

    let json = parse_flag(&mut args, "--json");
    let baseline = parse_opt(&mut args, "--baseline");
    let mut cfg = EyeBenchConfig::default();
    if let Some(n) = parse_f64_opt(&mut args, "--prbs-bits") {
        cfg.prbs_bits = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--fold-bits") {
        cfg.fold_bits = (n as usize).max(4);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--channel-bits") {
        cfg.channel_bits = (n as usize).max(4);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--lanes") {
        cfg.lanes = (n as usize).max(1);
    }
    if let Some(n) = parse_f64_opt(&mut args, "--reps") {
        cfg.reps = (n as usize).max(1);
    }
    if !args.is_empty() {
        usage();
    }

    let records = run_eye_bench(&cfg);
    if json {
        for r in &records {
            println!("{}", r.to_json());
        }
    } else {
        print!("{}", summarize(&records));
    }
    if let Some(path) = baseline {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        for r in &records {
            writeln!(f, "{}", r.to_json())?;
        }
        println!("baseline records appended to {path}");
    }
    Ok(())
}

fn cmd_request(mut args: Vec<String>) -> CliResult<()> {
    let socket = parse_opt(&mut args, "--socket").unwrap_or_else(|| {
        eprintln!("request needs --socket PATH");
        usage();
    });
    if args.is_empty() {
        usage();
    }
    let line = args.join(" ");
    let response = server::daemon::request_once(socket.as_ref(), &line)?;
    println!("{response}");
    if !response.contains("\"ok\":true") {
        return Err("daemon reported an error".into());
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "extract" => cmd_extract(args),
        "convert" => cmd_convert(args),
        "info" => cmd_info(args),
        "lint" => cmd_lint(args),
        "validate" => cmd_validate(args),
        "simulate" => cmd_simulate(args),
        "eye" => cmd_eye(args),
        "mc" => cmd_mc(args),
        "store" => cmd_store(args),
        "serve" => cmd_serve(args),
        "bench-serve" => cmd_bench_serve(args),
        "bench-eval" => cmd_bench_eval(args),
        "bench-eye" => cmd_bench_eye(args),
        "bench-store" => cmd_bench_store(args),
        "request" => cmd_request(args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("mdl {cmd}: {e}");
        std::process::exit(1);
    }
}
