//! CI smoke for the sparse-solver scaling workload: the N-segment lossy
//! multi-driver bus ladder.
//!
//! Two stages, both printed to the CI log so ordering/fill regressions are
//! visible as numbers, not just pass/fail:
//!
//! 1. *Golden agreement* at small N — the identical scenario is run on the
//!    sparse Gilbert–Peierls backend and on the dense O(n³) reference
//!    backend; the downsampled far-end waveforms must agree to ≤ 1e-8
//!    relative to the signal peak.
//! 2. *Scale smoke* at ≥ 1000 unknowns — sparse only (the dense backend
//!    would take minutes), asserting the transient completes with a bounded
//!    number of symbolic analyses and printing `SolveStats` (fill-in,
//!    flops) for the log history.
//!
//! Run with: `cargo run --release -p emc-bench --bin gen_ladder_smoke`
//! (or via `scripts/ladder-smoke.sh`).

use emc_bench::{ladder_disagreement, run_bus_ladder, BusLadderRun, Result};

fn print_stats(label: &str, run: &BusLadderRun) {
    let s = run.solve_stats;
    println!(
        "{label}: {} unknowns | symbolic analyses {} | factorizations {} | \
         factor nnz {} | flops {} | newton iters {} | {:.2} s",
        run.unknowns,
        s.symbolic_analyses,
        s.factorizations,
        s.factor_nnz,
        s.flops,
        run.newton_iterations,
        run.elapsed_s,
    );
}

fn run() -> Result<()> {
    // Stage 1: golden agreement, ~300 unknowns (past the old dense-greedy
    // ordering cutoff of 256).
    let sparse = run_bus_ladder(3, 11, false)?;
    let dense = run_bus_ladder(3, 11, true)?;
    print_stats("golden sparse", &sparse);
    print_stats("golden dense ", &dense);
    let err = ladder_disagreement(&sparse, &dense, 8);
    println!("golden sparse-vs-dense downsampled rel err: {err:.3e}");
    if err.is_nan() || err > 1e-8 {
        return Err(format!("golden disagreement {err:.3e} exceeds 1e-8").into());
    }

    // Stage 2: the large ladder the sparse path exists for.
    let big = run_bus_ladder(4, 30, false)?;
    print_stats("large  sparse", &big);
    if big.unknowns < 1000 {
        return Err(format!("large ladder only has {} unknowns", big.unknowns).into());
    }
    let s = big.solve_stats;
    if s.symbolic_analyses > 3 {
        return Err(format!(
            "{} symbolic analyses on a linear circuit (expected 1, tolerate re-pivots ≤ 3)",
            s.symbolic_analyses
        )
        .into());
    }
    // Matched terminations settle every lane near half swing; a solver
    // that silently produced garbage would not.
    for (j, w) in big.far_voltages.iter().enumerate() {
        let v_final = *w.values().last().expect("non-empty transient");
        if (v_final - 0.5).abs() > 0.1 {
            return Err(format!("lane {j} settled at {v_final:.3} V, expected ~0.5 V").into());
        }
    }
    println!("ladder smoke OK");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ladder smoke FAILED: {e}");
        std::process::exit(1);
    }
}
