//! Regenerates Figure 1: MD1 near-end voltage on an ideal line + 10 pF,
//! transistor-level reference vs PW-RBF vs IBIS slow/typ/fast.

use emc_bench::{fig1, Fig1Config};
use macromodel::validate::print_csv;

fn main() -> emc_bench::Result<()> {
    let data = fig1(&Fig1Config::default())?;
    eprintln!("# Fig. 1 — MD1 on 50 Ω / 0.8 ns ideal line + 10 pF, bit \"01\"");
    eprintln!(
        "# PW-RBF : rms {:.4} V, max {:.4} V, timing {:?}",
        data.metrics_pwrbf.rms_error,
        data.metrics_pwrbf.max_error,
        data.metrics_pwrbf.timing_error.map(|t| t * 1e12)
    );
    eprintln!(
        "# IBIS   : rms {:.4} V, max {:.4} V, timing {:?}",
        data.metrics_ibis.rms_error,
        data.metrics_ibis.max_error,
        data.metrics_ibis.timing_error.map(|t| t * 1e12)
    );
    print_csv(
        &[
            "t_s",
            "v_reference",
            "v_pwrbf",
            "v_ibis_typ",
            "v_ibis_slow",
            "v_ibis_fast",
        ],
        &[
            &data.reference,
            &data.pwrbf,
            &data.ibis_typ,
            &data.ibis_slow,
            &data.ibis_fast,
        ],
    );
    Ok(())
}
