//! Regenerates Figure 6: MD4 at the far end of a 10 cm lossy line, pulse
//! amplitudes 1.9 / 2.2 / 2.6 V — reference vs parametric vs C–R̂.

use emc_bench::fig6;
use macromodel::validate::print_csv;

fn main() -> emc_bench::Result<()> {
    let panels = fig6(None, None)?;
    for p in &panels {
        eprintln!(
            "# Fig. 6 (A = {} V): parametric rms {:.4} V / max {:.4} V; C-R rms {:.4} V / max {:.4} V",
            p.amplitude,
            p.metrics_parametric.rms_error, p.metrics_parametric.max_error,
            p.metrics_cr.rms_error, p.metrics_cr.max_error
        );
        println!("# amplitude {}", p.amplitude);
        print_csv(
            &["t_s", "v_in_reference", "v_in_parametric", "v_in_cr"],
            &[&p.reference, &p.parametric, &p.cr],
        );
    }
    Ok(())
}
