//! Regenerates Figure 2: MD2 far-end voltage, 1 ns pulse ("010") into
//! three ideal lines of different impedance/delay.

use emc_bench::fig2;
use macromodel::validate::print_csv;

fn main() -> emc_bench::Result<()> {
    let panels = fig2()?;
    for p in &panels {
        eprintln!(
            "# Fig. 2({}) — Z0 = {} Ω, Td = {:.2e} s: rms {:.4} V, max {:.4} V, timing {:?} ps",
            p.label,
            p.z0,
            p.td,
            p.metrics.rms_error,
            p.metrics.max_error,
            p.metrics.timing_error.map(|t| t * 1e12)
        );
        println!("# panel {}", p.label);
        print_csv(
            &["t_s", "v_fe_reference", "v_fe_pwrbf"],
            &[&p.reference, &p.pwrbf],
        );
    }
    Ok(())
}
