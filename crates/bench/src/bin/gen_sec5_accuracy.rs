//! Regenerates the Section-5 accuracy table: threshold-crossing timing
//! errors of the PW-RBF models across all driver validation fixtures
//! (paper: always below ~30 ps, typically 5 ps, at Ts = 25-50 ps).

use emc_bench::{driver_model, fig1, fig2, Fig1Config};
use macromodel::validate::{resistive_load, validate_driver, AccuracyRow};

fn main() -> emc_bench::Result<()> {
    let t0 = std::time::Instant::now();
    let md1_model = driver_model(&refdev::md1())?;
    let est_s = t0.elapsed().as_secs_f64();
    println!("Section 5 — accuracy & efficiency (Ts = 25 ps)");
    println!("  estimation CPU time (MD1): {est_s:.2} s (paper: ~10 s on a Pentium-II 350)");

    let mut rows: Vec<AccuracyRow> = Vec::new();
    // Resistive validation load (not in the paper's figures, sanity row).
    let spec = refdev::md1();
    let v = validate_driver(&spec, &md1_model, "010", 4e-9, 12e-9, resistive_load(50.0))?;
    rows.push(AccuracyRow {
        label: "md1-r50".into(),
        metrics: v.metrics,
    });

    let f1 = fig1(&Fig1Config::default())?;
    rows.push(AccuracyRow {
        label: "fig1-pwrbf".into(),
        metrics: f1.metrics_pwrbf,
    });
    rows.push(AccuracyRow {
        label: "fig1-ibis-typ".into(),
        metrics: f1.metrics_ibis,
    });

    for p in fig2()? {
        rows.push(AccuracyRow {
            label: format!("fig2-{}", p.label),
            metrics: p.metrics,
        });
    }

    println!(
        "  {:<16} {:>10} {:>10} {:>12}",
        "experiment", "rms [V]", "max [V]", "timing"
    );
    for r in &rows {
        println!("  {r}");
    }
    Ok(())
}
