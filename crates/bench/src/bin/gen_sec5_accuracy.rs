//! Regenerates the Section-5 accuracy table: threshold-crossing timing
//! errors of the PW-RBF models across all driver validation fixtures
//! (paper: always below ~30 ps, typically 5 ps, at Ts = 25-50 ps).
//!
//! The first block is backend-generic: every driver macromodel in the
//! [`ModelRegistry`] (the PW-RBF model *and* the IBIS baseline) is run
//! through the same trait-based validation harness.

use emc_bench::{driver_model, fig1, fig2, Fig1Config};
use macromodel::validate::{resistive_load, validate_driver, AccuracyRow};
use macromodel::ModelRegistry;
use refdev::ibis::IbisExtractConfig;
use refdev::IbisModel;

fn main() -> emc_bench::Result<()> {
    let spec = refdev::md1();
    let t0 = std::time::Instant::now();
    let md1_model = driver_model(&spec)?;
    let est_s = t0.elapsed().as_secs_f64();
    println!("Section 5 — accuracy & efficiency (Ts = 25 ps)");
    println!("  estimation CPU time (MD1): {est_s:.2} s (paper: ~10 s on a Pentium-II 350)");

    // Every estimated backend for MD1 under one registry; the validation
    // loop below never names a concrete model type.
    let mut registry = ModelRegistry::new();
    registry.register(md1_model);
    let mut ibis = IbisModel::extract(&spec, IbisExtractConfig::default())?;
    ibis.name = "md1-ibis".into();
    registry.register(ibis);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for model in registry.iter() {
        let v = validate_driver(&spec, model, "010", 4e-9, 12e-9, resistive_load(50.0))?;
        rows.push(AccuracyRow {
            label: format!("{}-r50", model.name()),
            metrics: v.metrics,
        });
    }

    let f1 = fig1(&Fig1Config::default())?;
    rows.push(AccuracyRow {
        label: "fig1-pwrbf".into(),
        metrics: f1.metrics_pwrbf,
    });
    rows.push(AccuracyRow {
        label: "fig1-ibis-typ".into(),
        metrics: f1.metrics_ibis,
    });

    for p in fig2()? {
        rows.push(AccuracyRow {
            label: format!("fig2-{}", p.label),
            metrics: p.metrics,
        });
    }

    println!(
        "  {:<16} {:>10} {:>10} {:>12}",
        "experiment", "rms [V]", "max [V]", "timing"
    );
    for r in &rows {
        println!("  {r}");
    }
    Ok(())
}
