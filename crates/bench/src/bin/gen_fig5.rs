//! Regenerates Figure 5: MD4 receiver input current under a direct
//! trapezoidal drive — reference vs parametric model vs C–R̂ baseline.

use emc_bench::fig5;
use macromodel::validate::print_csv;

fn main() -> emc_bench::Result<()> {
    let data = fig5(None, None)?;
    eprintln!("# Fig. 5 — MD4 i_in(t), 1 V / 100 ps trapezoid via 60 Ω");
    eprintln!("# parametric rms error: {:.4e} A", data.rms_parametric);
    eprintln!("# C-R baseline rms error: {:.4e} A", data.rms_cr);
    print_csv(
        &["t_s", "i_reference_A", "i_parametric_A", "i_cr_A"],
        &[&data.reference, &data.parametric, &data.cr],
    );
    Ok(())
}
