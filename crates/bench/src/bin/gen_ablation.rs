//! Ablation study of the PW-RBF design choices called out in DESIGN.md:
//! dynamic order `r`, Gaussian center budget, and the transition-window
//! length used for the switching weights. Each variant is scored on the
//! Fig.-1 fixture (timing error + rms voltage error vs the transistor
//! reference).

use emc_bench::Result;
use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
use macromodel::validate::{line_cap_load, validate_driver};
use sysid::narx::RbfTrainConfig;

fn main() -> Result<()> {
    let spec = refdev::md1();
    println!("PW-RBF ablation on the Fig. 1 fixture (MD1, 50 Ω / 0.8 ns line + 10 pF)");
    println!(
        "{:<34} {:>9} {:>9} {:>10}",
        "variant", "rms [mV]", "max [mV]", "timing"
    );

    // A badly configured variant may produce a model that makes the Newton
    // iteration diverge — that is itself an ablation result, so report it
    // instead of aborting the sweep.
    let run = |label: &str, cfg: DriverEstimationConfig| -> Result<()> {
        let outcome = estimate_driver(&spec, cfg).and_then(|model| {
            validate_driver(
                &spec,
                &model,
                "01",
                4e-9,
                12e-9,
                line_cap_load(50.0, 0.8e-9, 10e-12),
            )
        });
        match outcome {
            Ok(v) => println!(
                "{:<34} {:>9.1} {:>9.1} {:>10}",
                label,
                v.metrics.rms_error * 1e3,
                v.metrics.max_error * 1e3,
                match v.metrics.timing_error {
                    Some(t) => format!("{:.1} ps", t * 1e12),
                    None => "n/a".into(),
                }
            ),
            Err(e) => println!("{label:<34} simulation diverged ({e})"),
        }
        Ok(())
    };

    let base = DriverEstimationConfig::default();

    // Dynamic order sweep (paper reports r = 2 for MD1).
    for r in [1usize, 2, 3] {
        run(
            &format!("order r = {r}"),
            DriverEstimationConfig { order: r, ..base },
        )?;
    }

    // Center budget sweep.
    for mc in [4usize, 8, 15, 25] {
        run(
            &format!("max centers = {mc}"),
            DriverEstimationConfig {
                rbf: RbfTrainConfig {
                    max_centers: mc,
                    ..base.rbf
                },
                ..base
            },
        )?;
    }

    // Transition-window length for the switching weights.
    for (label, t_window) in [
        ("window 2 ns", 2e-9),
        ("window 4 ns", 4e-9),
        ("window 6 ns", 6e-9),
    ] {
        run(label, DriverEstimationConfig { t_window, ..base })?;
    }

    // Identification-signal richness.
    for (label, n_levels) in [
        ("20 levels", 20usize),
        ("60 levels", 60),
        ("120 levels", 120),
    ] {
        run(
            &format!("excitation {label}"),
            DriverEstimationConfig { n_levels, ..base },
        )?;
    }
    Ok(())
}
