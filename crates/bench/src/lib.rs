//! Experiment definitions reproducing every table and figure of the paper.
//!
//! Each `figN` function builds the paper's validation fixture, runs the
//! transistor-level reference and the macromodels through it, and returns
//! the waveform sets the figure plots. The `gen_*` binaries print them as
//! CSV; the criterion benches time the underlying simulations (Table 1 and
//! the Section-5 cost claims).
//!
//! Reconstructed parameters (the available scan of the paper corrupts many
//! numbers) are listed per experiment in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

use circuit::devices::{Capacitor, IdealLine, Resistor, SourceWaveform, VoltageSource};
use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use circuit::{Circuit, TranParams, Waveform, GROUND};
use macromodel::device::PwRbfDriver;
use macromodel::pipeline::{
    estimate_cr_baseline, estimate_driver, estimate_receiver, DriverEstimationConfig,
    ReceiverEstimationConfig,
};
use macromodel::validate::ValidationMetrics;
use macromodel::{CrModel, Macromodel, PortStimulus, PwRbfDriverModel, ReceiverModel, TestFixture};
use refdev::extraction::{capture_driver, capture_receiver};
use refdev::ibis::IbisExtractConfig;
use refdev::{CmosDriverSpec, IbisCorner, IbisModel, ReceiverSpec};

pub mod evalbench;
pub mod eyebench;
pub mod serve;
pub mod server;
pub mod storebench;

/// Shared result alias (boxed error keeps the harness code terse; `Send +
/// Sync` so experiment results can cross scoped-worker boundaries).
pub type Result<T> = std::result::Result<T, Box<dyn std::error::Error + Send + Sync>>;

/// The model sample time used across all experiments (s).
pub const TS: f64 = 25e-12;

/// Maps `f` over `items` on scoped worker threads — the harness for
/// embarrassingly parallel experiment sweeps (IBIS corners, figure panels,
/// amplitude sweeps). The last item runs on the calling thread; worker
/// panics are re-raised here.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|s| {
        let f = &f;
        let mut items = items;
        let last = items.pop();
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| s.spawn(move || f(item)))
            .collect();
        let tail = last.map(f);
        let mut out: Vec<R> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        out.extend(tail);
        out
    })
}

/// Estimates the PW-RBF model of a driver with the experiment defaults.
pub fn driver_model(spec: &CmosDriverSpec) -> Result<PwRbfDriverModel> {
    Ok(estimate_driver(spec, DriverEstimationConfig::default())?)
}

/// Estimates the receiver parametric model with the experiment defaults.
pub fn receiver_model(spec: &ReceiverSpec) -> Result<ReceiverModel> {
    Ok(estimate_receiver(
        spec,
        ReceiverEstimationConfig {
            n_levels: 40,
            dwell: 64,
            r_lin: 3,
            ..Default::default()
        },
    )?)
}

/// Estimates the C–R̂ baseline with the experiment defaults.
pub fn cr_model(spec: &ReceiverSpec) -> Result<CrModel> {
    Ok(estimate_cr_baseline(spec, TS)?)
}

// ---------------------------------------------------------------------
// Figure 1 — MD1 near-end voltage on an ideal line + capacitive load,
// PW-RBF vs IBIS slow/typ/fast vs transistor-level reference.
// ---------------------------------------------------------------------

/// Fixture parameters of Fig. 1 (reconstructed: Z0 = 50 Ω, Td = 0.8 ns,
/// C_load = 10 pF, bit "01", 4 ns bit time, 12 ns window).
pub struct Fig1Config {
    /// Line impedance (Ω).
    pub z0: f64,
    /// Line delay (s).
    pub td: f64,
    /// Far-end capacitor (F).
    pub c_load: f64,
    /// Bit time (s).
    pub bit_time: f64,
    /// Simulated window (s).
    pub t_stop: f64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            z0: 50.0,
            td: 0.8e-9,
            c_load: 10e-12,
            bit_time: 4e-9,
            t_stop: 12e-9,
        }
    }
}

/// Waveform set of Fig. 1.
pub struct Fig1Data {
    /// Transistor-level reference `v_out(t)`.
    pub reference: Waveform,
    /// PW-RBF prediction.
    pub pwrbf: Waveform,
    /// IBIS typical prediction.
    pub ibis_typ: Waveform,
    /// IBIS slow corner.
    pub ibis_slow: Waveform,
    /// IBIS fast corner.
    pub ibis_fast: Waveform,
    /// PW-RBF accuracy metrics vs the reference.
    pub metrics_pwrbf: ValidationMetrics,
    /// IBIS typical accuracy metrics vs the reference.
    pub metrics_ibis: ValidationMetrics,
}

fn fig1_load(cfg: &Fig1Config) -> impl FnMut(&mut Circuit, circuit::Node) + '_ {
    move |ckt, pad| {
        let far = ckt.node("fig1_far");
        ckt.add(IdealLine::new(
            "fig1_line",
            pad,
            GROUND,
            far,
            GROUND,
            cfg.z0,
            cfg.td,
        ));
        ckt.add(Capacitor::new("fig1_cl", far, GROUND, cfg.c_load));
    }
}

/// Runs the Fig. 1 experiment.
///
/// # Errors
///
/// Propagates estimation and simulation failures.
pub fn fig1(cfg: &Fig1Config) -> Result<Fig1Data> {
    let spec = refdev::md1();
    let model = driver_model(&spec)?;
    let ibis = IbisModel::extract(&spec, IbisExtractConfig::default())?;
    let stim = PortStimulus::new("01", cfg.bit_time);
    let fixture = TestFixture::line_cap(cfg.z0, cfg.td, cfg.c_load);

    // Reference on a scoped worker; every macromodel backend — the PW-RBF
    // model and the three IBIS corners — through the one trait-generic
    // fixture runner, swept in parallel.
    let (reference, model_waves) = std::thread::scope(|s| {
        let reference = s.spawn(|| -> Result<Waveform> {
            let mut load = fig1_load(cfg);
            Ok(capture_driver(
                &spec,
                spec.pattern("01", cfg.bit_time),
                |ckt, pad| {
                    load(ckt, pad);
                    Ok(())
                },
                TS,
                cfg.t_stop,
            )?
            .voltage)
        });
        let backends: Vec<Box<dyn Macromodel>> = vec![
            Box::new(model.clone()),
            Box::new(ibis.with_corner(IbisCorner::Typical)?),
            Box::new(ibis.with_corner(IbisCorner::Slow)?),
            Box::new(ibis.with_corner(IbisCorner::Fast)?),
        ];
        let (stim, fixture) = (&stim, &fixture);
        let waves = par_map(backends, move |m| -> Result<Waveform> {
            Ok(m.simulate_on_load(fixture, Some(stim), TS, cfg.t_stop)?)
        });
        Ok::<_, Box<dyn std::error::Error + Send + Sync>>((
            reference
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p)),
            waves,
        ))
    })?;
    let reference = reference?;
    let mut model_waves = model_waves.into_iter();
    let pwrbf = model_waves.next().expect("four backends")?;
    let ibis_typ = model_waves.next().expect("four backends")?;
    let ibis_slow = model_waves.next().expect("four backends")?;
    let ibis_fast = model_waves.next().expect("four backends")?;

    let threshold = 0.5 * spec.vdd;
    Ok(Fig1Data {
        metrics_pwrbf: ValidationMetrics::between(&pwrbf, &reference, threshold),
        metrics_ibis: ValidationMetrics::between(&ibis_typ, &reference, threshold),
        reference,
        pwrbf,
        ibis_typ,
        ibis_slow,
        ibis_fast,
    })
}

// ---------------------------------------------------------------------
// Figure 2 — MD2 far-end voltage, 1 ns pulse into three ideal lines.
// ---------------------------------------------------------------------

/// One panel of Fig. 2.
pub struct Fig2Panel {
    /// Panel label (`a`, `b`, `c`).
    pub label: &'static str,
    /// Line impedance (Ω).
    pub z0: f64,
    /// Line delay (s).
    pub td: f64,
    /// Reference far-end waveform.
    pub reference: Waveform,
    /// PW-RBF far-end waveform.
    pub pwrbf: Waveform,
    /// Accuracy metrics.
    pub metrics: ValidationMetrics,
}

/// Runs Fig. 2: panels (a) 30 Ω / 0.5 ns, (b) 120 Ω / 0.5 ns,
/// (c) 75 Ω / 60 ps; far ends loaded by 5 pF; pattern "010", 1 ns bit.
///
/// # Errors
///
/// Propagates estimation and simulation failures.
pub fn fig2() -> Result<Vec<Fig2Panel>> {
    let spec = refdev::md2();
    let model = driver_model(&spec)?;
    let c_load = 5e-12;
    let bit = 1e-9;
    let t_stop = 8e-9;
    // The three panels are independent fixture sweeps: run them in parallel.
    let spec = &spec;
    let model = &model;
    let panel_results = par_map(
        vec![
            ("a", 30.0, 0.5e-9),
            ("b", 120.0, 0.5e-9),
            ("c", 75.0, 60e-12),
        ],
        move |(label, z0, td)| -> Result<Fig2Panel> {
            let build = |ckt: &mut Circuit, pad: circuit::Node| -> circuit::Node {
                let far = ckt.node("fig2_far");
                ckt.add(IdealLine::new(
                    "fig2_line",
                    pad,
                    GROUND,
                    far,
                    GROUND,
                    z0,
                    td,
                ));
                ckt.add(Capacitor::new("fig2_cl", far, GROUND, c_load));
                far
            };
            // Reference: need the far-end node voltage, so build manually.
            let reference = {
                let mut ckt = Circuit::new();
                let ports = spec.instantiate(&mut ckt, spec.pattern("010", bit))?;
                let far = build(&mut ckt, ports.pad);
                let res = ckt.transient(TranParams::new(TS, t_stop))?;
                res.voltage(far)
            };
            let pwrbf = {
                let mut ckt = Circuit::new();
                let out = ckt.node("out");
                ckt.add(PwRbfDriver::new(model.clone(), out, "010", bit));
                let far = build(&mut ckt, out);
                let res = ckt.transient(TranParams::new(TS, t_stop))?;
                res.voltage(far)
            };
            Ok(Fig2Panel {
                label,
                z0,
                td,
                metrics: ValidationMetrics::between(&pwrbf, &reference, 0.5 * spec.vdd),
                reference,
                pwrbf,
            })
        },
    );
    panel_results.into_iter().collect()
}

// ---------------------------------------------------------------------
// Figures 3/4 — coupled lossy MCM structure, crosstalk validation.
// ---------------------------------------------------------------------

/// Configuration of the Fig. 3 coupled-interconnect testbench.
pub struct Fig4Config {
    /// Active-line bit pattern (paper: `011011101010000`).
    pub pattern_active: &'static str,
    /// Bit time (s).
    pub bit_time: f64,
    /// Ladder segments for the 0.1 m coupled line.
    pub segments: usize,
    /// Far-end termination capacitors (F).
    pub c_term: f64,
    /// Simulated window (s).
    pub t_stop: f64,
    /// Timestep of the transistor-level reference run (s). The reference
    /// needs a finer grid than the macromodel clock to resolve the
    /// pre-driver edges — this asymmetry is the substance of Table 1.
    pub dt_reference: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            pattern_active: "011011101010000",
            bit_time: 2e-9,
            segments: 10,
            c_term: 1e-12,
            t_stop: 30e-9,
            dt_reference: 5e-12,
        }
    }
}

/// Waveform set of Fig. 4 plus the Table 1 CPU times.
pub struct Fig4Data {
    /// Far-end voltage of the active land, reference.
    pub v21_reference: Waveform,
    /// Far-end voltage of the active land, PW-RBF.
    pub v21_pwrbf: Waveform,
    /// Far-end voltage of the quiet land, reference.
    pub v22_reference: Waveform,
    /// Far-end voltage of the quiet land (crosstalk), PW-RBF.
    pub v22_pwrbf: Waveform,
    /// Wall-clock seconds of the transistor-level simulation.
    pub cpu_reference: f64,
    /// Wall-clock seconds of the PW-RBF simulation.
    pub cpu_pwrbf: f64,
    /// Metrics on the active land.
    pub metrics_active: ValidationMetrics,
    /// Metrics on the quiet land (crosstalk), threshold at 25 mV.
    pub metrics_quiet: ValidationMetrics,
}

/// Runs the Fig. 3/4 experiment (also produces the Table 1 timings).
///
/// `model` must be the PW-RBF model of [`refdev::md3`]; pass `None` to
/// estimate it in place.
///
/// # Errors
///
/// Propagates estimation and simulation failures.
pub fn fig4(cfg: &Fig4Config, model: Option<PwRbfDriverModel>) -> Result<Fig4Data> {
    let spec = refdev::md3();
    let model = match model {
        Some(m) => m,
        None => driver_model(&spec)?,
    };
    let quiet_pattern: String = "0".repeat(cfg.pattern_active.len());
    let line_spec = CoupledLineSpec::mcm_date02();
    let f_band = (1e8, 2e10);

    // --- transistor-level reference ---
    let t0 = std::time::Instant::now();
    let (v21_reference, v22_reference) = {
        let mut ckt = Circuit::new();
        let line = expand_coupled_line(&mut ckt, &line_spec, cfg.segments, f_band)?;
        let p1 = spec.instantiate(&mut ckt, spec.pattern(cfg.pattern_active, cfg.bit_time))?;
        let p2 = spec.instantiate(&mut ckt, spec.pattern(&quiet_pattern, cfg.bit_time))?;
        // Drivers at the near ends; far ends terminated by capacitors.
        ckt.add(Resistor::new("j1", p1.pad, line.near[0], 1e-3));
        ckt.add(Resistor::new("j2", p2.pad, line.near[1], 1e-3));
        ckt.add(Capacitor::new("ct1", line.far[0], GROUND, cfg.c_term));
        ckt.add(Capacitor::new("ct2", line.far[1], GROUND, cfg.c_term));
        let res = ckt.transient(TranParams::new(cfg.dt_reference, cfg.t_stop))?;
        (res.voltage(line.far[0]), res.voltage(line.far[1]))
    };
    let cpu_reference = t0.elapsed().as_secs_f64();

    // --- PW-RBF macromodels ---
    let t1 = std::time::Instant::now();
    let (v21_pwrbf, v22_pwrbf) = {
        let mut ckt = Circuit::new();
        let line = expand_coupled_line(&mut ckt, &line_spec, cfg.segments, f_band)?;
        let out1 = ckt.node("drv1");
        ckt.add(PwRbfDriver::new(
            model.clone(),
            out1,
            cfg.pattern_active,
            cfg.bit_time,
        ));
        let out2 = ckt.node("drv2");
        ckt.add(PwRbfDriver::new(model, out2, &quiet_pattern, cfg.bit_time));
        ckt.add(Resistor::new("j1", out1, line.near[0], 1e-3));
        ckt.add(Resistor::new("j2", out2, line.near[1], 1e-3));
        ckt.add(Capacitor::new("ct1", line.far[0], GROUND, cfg.c_term));
        ckt.add(Capacitor::new("ct2", line.far[1], GROUND, cfg.c_term));
        let res = ckt.transient(TranParams::new(TS, cfg.t_stop))?;
        (res.voltage(line.far[0]), res.voltage(line.far[1]))
    };
    let cpu_pwrbf = t1.elapsed().as_secs_f64();

    let spec_vdd = refdev::md3().vdd;
    Ok(Fig4Data {
        metrics_active: ValidationMetrics::between(&v21_pwrbf, &v21_reference, 0.5 * spec_vdd),
        metrics_quiet: ValidationMetrics::between(&v22_pwrbf, &v22_reference, 25e-3),
        v21_reference,
        v21_pwrbf,
        v22_reference,
        v22_pwrbf,
        cpu_reference,
        cpu_pwrbf,
    })
}

// ---------------------------------------------------------------------
// Figure 5 — receiver input current under direct trapezoidal drive.
// ---------------------------------------------------------------------

/// Waveform set of Fig. 5 (input currents).
pub struct Fig5Data {
    /// Reference input current.
    pub reference: Waveform,
    /// Parametric-model input current.
    pub parametric: Waveform,
    /// C–R̂ baseline input current.
    pub cr: Waveform,
    /// RMS current error of the parametric model (A).
    pub rms_parametric: f64,
    /// RMS current error of the C–R̂ model (A).
    pub rms_cr: f64,
}

/// Runs Fig. 5: MD4 driven through 60 Ω by a 1 V trapezoid with 100 ps
/// edges; the figure plots `i_in(t)` around the rising edge.
///
/// # Errors
///
/// Propagates estimation and simulation failures.
pub fn fig5(model: Option<ReceiverModel>, cr: Option<CrModel>) -> Result<Fig5Data> {
    let spec = refdev::md4();
    let model = match model {
        Some(m) => m,
        None => receiver_model(&spec)?,
    };
    let cr = match cr {
        Some(c) => c,
        None => cr_model(&spec)?,
    };
    let r_src = 60.0;
    let stim = SourceWaveform::Pulse {
        low: 0.0,
        high: 1.0,
        delay: 0.4e-9,
        rise: 100e-12,
        width: 2e-9,
        fall: 100e-12,
    };
    let t_stop = 3e-9;

    // Reference: probe current directly.
    let reference = capture_receiver(
        &spec,
        |ckt, pad| {
            let s = ckt.node("src");
            ckt.add(VoltageSource::new(
                "vs",
                s,
                GROUND,
                SourceWaveform::Pulse {
                    low: 0.0,
                    high: 1.0,
                    delay: 0.4e-9,
                    rise: 100e-12,
                    width: 2e-9,
                    fall: 100e-12,
                },
            ));
            ckt.add(Resistor::new("rs", s, pad, r_src));
            Ok(())
        },
        TS,
        t_stop,
    )?
    .current;

    // Model runs — any backend through the unified trait; the current is
    // recovered from the source resistor drop.
    let run = |dut: &dyn Macromodel| -> Result<Waveform> {
        let mut ckt = Circuit::new();
        let s = ckt.node("src");
        ckt.add(VoltageSource::new("vs", s, GROUND, stim.clone()));
        let pad = ckt.node("pad");
        ckt.add(Resistor::new("rs", s, pad, r_src));
        dut.instantiate(&mut ckt, pad, None)?;
        let res = ckt.transient(TranParams::new(TS, t_stop))?;
        let vs = res.voltage(s);
        let vp = res.voltage(pad);
        let i: Vec<f64> = vs
            .values()
            .iter()
            .zip(vp.values())
            .map(|(a, b)| (a - b) / r_src)
            .collect();
        Ok(Waveform::from_parts(vs.times().to_vec(), i))
    };
    let parametric = run(&model)?;
    let cr_wave = run(&cr)?;

    let rms_parametric = circuit::waveform::rms_difference(&reference, &parametric);
    let rms_cr = circuit::waveform::rms_difference(&reference, &cr_wave);
    Ok(Fig5Data {
        reference,
        parametric,
        cr: cr_wave,
        rms_parametric,
        rms_cr,
    })
}

// ---------------------------------------------------------------------
// Figure 6 — receiver at the end of a 10 cm lossy line, three amplitudes.
// ---------------------------------------------------------------------

/// One panel of Fig. 6.
pub struct Fig6Panel {
    /// Pulse amplitude (V).
    pub amplitude: f64,
    /// Reference far-end voltage.
    pub reference: Waveform,
    /// Parametric model far-end voltage.
    pub parametric: Waveform,
    /// C–R̂ far-end voltage.
    pub cr: Waveform,
    /// Parametric-model metrics.
    pub metrics_parametric: ValidationMetrics,
    /// C–R̂ metrics.
    pub metrics_cr: ValidationMetrics,
}

/// Runs Fig. 6: 10 cm lossy line driven through 50 Ω by a 3 ns trapezoidal
/// pulse (100 ps edges) of amplitude 1.9 / 2.2 / 2.6 V, loaded by MD4.
///
/// # Errors
///
/// Propagates estimation and simulation failures.
pub fn fig6(model: Option<ReceiverModel>, cr: Option<CrModel>) -> Result<Vec<Fig6Panel>> {
    let spec = refdev::md4();
    let model = match model {
        Some(m) => m,
        None => receiver_model(&spec)?,
    };
    let cr = match cr {
        Some(c) => c,
        None => cr_model(&spec)?,
    };
    let line_spec = CoupledLineSpec::lossy_single(0.1);
    let segments = 12;
    let f_band = (1e8, 2e10);
    let t_stop = 8e-9;
    let r_src = 50.0;

    // The three amplitude panels are independent: sweep them in parallel.
    let (spec, model, cr, line_spec) = (&spec, &model, &cr, &line_spec);
    let panels = par_map(vec![1.9, 2.2, 2.6], move |amplitude| -> Result<Fig6Panel> {
        let stim = SourceWaveform::Pulse {
            low: 0.0,
            high: amplitude,
            delay: 0.5e-9,
            rise: 100e-12,
            width: 3e-9,
            fall: 100e-12,
        };
        // One fixture builder shared by the transistor-level reference and
        // every macromodel backend (trait-generic device installation).
        let run = |dut: Option<&dyn Macromodel>, dt: f64| -> Result<Waveform> {
            let mut ckt = Circuit::new();
            let s = ckt.node("src");
            ckt.add(VoltageSource::new("vs", s, GROUND, stim.clone()));
            let line = expand_coupled_line(&mut ckt, line_spec, segments, f_band)?;
            ckt.add(Resistor::new("rs", s, line.near[0], r_src));
            let far = line.far[0];
            match dut {
                Some(m) => m.instantiate(&mut ckt, far, None)?,
                None => {
                    let ports = spec.instantiate(&mut ckt)?;
                    ckt.add(Resistor::new("jrx", far, ports.pad, 1e-3));
                }
            }
            let res = ckt.transient(TranParams::new(dt, t_stop))?;
            Ok(res.voltage(far))
        };
        let reference = run(None, TS)?;
        let parametric = run(Some(model), TS)?;
        let cr_wave = run(Some(cr), TS)?;
        let threshold = 0.5 * spec.vdd;
        Ok(Fig6Panel {
            amplitude,
            metrics_parametric: ValidationMetrics::between(&parametric, &reference, threshold),
            metrics_cr: ValidationMetrics::between(&cr_wave, &reference, threshold),
            reference,
            parametric,
            cr: cr_wave,
        })
    });
    panels.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Scaling workload: N-segment lossy multi-driver bus ladder
// ---------------------------------------------------------------------------

/// One completed bus-ladder transient plus the numbers the smoke harness
/// and CI logs care about.
#[derive(Debug)]
pub struct BusLadderRun {
    /// MNA unknowns of the expanded ladder.
    pub unknowns: usize,
    /// Far-end voltage waveform per conductor.
    pub far_voltages: Vec<Waveform>,
    /// Solver diagnostics of the whole analysis (DC + every step).
    pub solve_stats: circuit::SolveStats,
    /// Newton iterations summed over all steps.
    pub newton_iterations: usize,
    /// Wall-clock seconds of the transient run.
    pub elapsed_s: f64,
}

/// Builds and runs the sparse-solver scaling scenario: a `conductors`-lane
/// lossy coupled bus (`CoupledLineSpec::bus`), expanded into `segments`
/// RLGC cells, with every lane driven by its own staggered step source
/// through a matched source resistor and terminated at the far end — a
/// multi-driver bus whose unknown count grows as ~9·`conductors`·`segments`.
///
/// `dense_reference` switches the transient to the dense O(n³) backend for
/// golden-agreement comparisons; leave it `false` for real sizes.
///
/// # Errors
///
/// Propagates circuit construction and solver failures.
pub fn run_bus_ladder(
    conductors: usize,
    segments: usize,
    dense_reference: bool,
) -> Result<BusLadderRun> {
    let spec = CoupledLineSpec::bus(conductors, 0.2);
    let z0 = spec.z0(0);
    let mut ckt = Circuit::new();
    let line = expand_coupled_line(&mut ckt, &spec, segments, (1e7, 2e10))?;
    for j in 0..conductors {
        let src = ckt.node(format!("src{j}"));
        // Staggered edges so every driver actually switches within the
        // window (worst-case simultaneous-switching is a different study).
        let delay = 50e-12 * j as f64;
        ckt.add(VoltageSource::new(
            format!("v{j}"),
            src,
            GROUND,
            SourceWaveform::Step {
                from: 0.0,
                to: 1.0,
                delay,
                rise: 100e-12,
            },
        ));
        ckt.add(Resistor::new(format!("rs{j}"), src, line.near[j], z0));
        ckt.add(Resistor::new(format!("rl{j}"), line.far[j], GROUND, z0));
    }
    // ~2 line delays of observation at a step fine enough for the edges.
    let td = spec.delay(0);
    let params = TranParams::new(20e-12, 2.2 * td + 1e-9);
    let params = if dense_reference {
        params.with_dense_solver()
    } else {
        params
    };
    let t0 = std::time::Instant::now();
    let res = ckt.transient(params)?;
    let elapsed_s = t0.elapsed().as_secs_f64();
    Ok(BusLadderRun {
        unknowns: ckt.unknown_count(),
        far_voltages: (0..conductors).map(|j| res.voltage(line.far[j])).collect(),
        solve_stats: res.solve_stats,
        newton_iterations: res.total_newton_iterations,
        elapsed_s,
    })
}

/// Maximum relative disagreement between two ladder runs on a downsampled
/// grid (every `stride`-th sample), normalized by the peak amplitude of
/// `reference`. The golden check between the sparse solver and the dense
/// reference backend.
pub fn ladder_disagreement(a: &BusLadderRun, reference: &BusLadderRun, stride: usize) -> f64 {
    let mut worst = 0.0f64;
    for (wa, wr) in a.far_voltages.iter().zip(&reference.far_voltages) {
        let peak = wr.values().iter().fold(1e-30f64, |m, &v| m.max(v.abs()));
        for (va, vr) in wa.values().iter().zip(wr.values()).step_by(stride.max(1)) {
            worst = worst.max((va - vr).abs() / peak);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_config_default() {
        let c = Fig1Config::default();
        assert_eq!(c.z0, 50.0);
        assert!(c.t_stop > c.bit_time);
    }

    #[test]
    fn fig4_config_default() {
        let c = Fig4Config::default();
        assert_eq!(c.pattern_active.len(), 15);
        assert!(c.dt_reference < TS);
    }
}
