//! `mdl bench-store` — the artifact-I/O benchmark behind the binary
//! container.
//!
//! Builds two equivalent synthetic stores — the same PW-RBF driver fleet
//! once as text `.mdlx` and once as binary `.mdlxb` — and times three
//! ways of opening them:
//!
//! * `store/open_eager_text` — [`ModelStore::open`] on the text tree:
//!   every file fully parsed up front (the pre-container status quo);
//! * `store/open_lazy_bin` — a lazy open of the binary tree plus
//!   [`macromodel::StoreEntry::index`] on every entry: the whole
//!   inventory (names,
//!   kinds, digests, byte sizes) from section headers alone, no model
//!   payload ever decoded;
//! * `store/touch_one_bin` — a lazy binary open followed by one
//!   [`ModelStore::get`]: the time-to-first-model, materializing exactly
//!   one artifact out of the whole tree.
//!
//! `median_s` is **seconds per entry** for the two open benches (so the
//! record is comparable across store sizes) and seconds per lookup for
//! `touch_one`. Records are JSON lines in the `scripts/bench-baseline.sh`
//! schema (`{"bench", "median_s", "samples"}`), committed to
//! `BENCH_store.json` and gated like the other benches. The tentpole
//! claim — a 1 000-entry binary store opens lazily ≥ 10× faster than the
//! eager text parse — is checked by [`speedup`] and enforced in CI via
//! `mdl bench-store --min-speedup`.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::binary::save_artifact_bin_to_path;
use macromodel::exchange::save_model_to_path;
use macromodel::{AnyModel, Artifact, LoadMode, ModelStore};

use crate::evalbench::bench_model;

/// Benchmark knobs. [`StoreBenchConfig::default`] matches the committed
/// `BENCH_store.json` trajectory — change the defaults and the baseline
/// gate compares unlike workloads.
#[derive(Debug, Clone, Copy)]
pub struct StoreBenchConfig {
    /// Artifact files per store (the acceptance scenario is 1 000).
    pub entries: usize,
    /// RBF centers per NARX submodel — sizes each text artifact in the
    /// ~20 kB range the real extractions produce.
    pub centers: usize,
    /// Measured repetitions; the reported time is the best of them.
    pub reps: usize,
}

impl Default for StoreBenchConfig {
    fn default() -> Self {
        StoreBenchConfig {
            entries: 1000,
            centers: 24,
            reps: 3,
        }
    }
}

/// One measured bench in the baseline-gate schema.
#[derive(Debug, Clone)]
pub struct StoreBenchRecord {
    /// Record id (`store/open_eager_text`, ...).
    pub bench: String,
    /// Seconds per entry (opens) or per lookup (`touch_one`): the best of
    /// the repetitions. (The field keeps the baseline schema name.)
    pub median_s: f64,
    /// Entries opened (or lookups performed) per repetition.
    pub samples: usize,
}

impl StoreBenchRecord {
    /// The baseline-gate JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\": \"{}\", \"median_s\": {:e}, \"samples\": {}}}",
            self.bench, self.median_s, self.samples
        )
    }
}

/// The two synthetic store trees, torn down on drop.
struct BenchStores {
    root: PathBuf,
    text_dir: PathBuf,
    bin_dir: PathBuf,
    /// Name of the last model in scan order — the lookup target that
    /// forces `touch_one` to index every file before its single decode.
    probe: String,
}

impl Drop for BenchStores {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

/// The `bench-eval` workload model dressed up to real-extraction size:
/// actual estimations carry ~160-sample switching-weight records (one
/// per sample of the transition window), while the eval bench's model
/// makes do with an 8-sample ramp. The text-parse cost this bench gates
/// is proportional to file bytes, so the synthetic fleet must match the
/// ~20 kB text artifacts the real pipeline produces.
fn store_model(centers: usize) -> PwRbfDriverModel {
    let mut model = bench_model(centers);
    let n = 160;
    let ramp: Vec<f64> = (0..n)
        .map(|k| {
            let x = k as f64 / (n - 1) as f64;
            0.5 - 0.5 * (std::f64::consts::PI * x).cos()
        })
        .collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    model.up = WeightSequence::new(ramp.clone(), inv.clone()).expect("ramp weights are valid");
    model.down = WeightSequence::new(inv, ramp).expect("ramp weights are valid");
    model
}

/// Writes `entries` driver artifacts under `root/text` and `root/bin` —
/// identical fleets, one per format. The driver is the `bench-eval`
/// workload model at extraction-realistic size, renamed per entry.
fn build_stores(cfg: &StoreBenchConfig) -> crate::Result<BenchStores> {
    let root = std::env::temp_dir().join(format!("mdl-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let text_dir = root.join("text");
    let bin_dir = root.join("bin");
    std::fs::create_dir_all(&text_dir)?;
    std::fs::create_dir_all(&bin_dir)?;
    let base = store_model(cfg.centers);
    let mut probe = String::new();
    for i in 0..cfg.entries {
        let mut model = base.clone();
        model.name = format!("drv_{i:05}");
        probe = model.name.clone();
        let model = AnyModel::PwRbfDriver(model);
        save_model_to_path(&model, text_dir.join(format!("drv_{i:05}.mdlx")))?;
        save_artifact_bin_to_path(
            &Artifact::single(model),
            bin_dir.join(format!("drv_{i:05}.mdlxb")),
        )?;
    }
    Ok(BenchStores {
        root,
        text_dir,
        bin_dir,
        probe,
    })
}

/// Times one eager text open: every file parsed during the scan.
fn time_eager_text(dir: &Path, entries: usize) -> crate::Result<f64> {
    let start = Instant::now();
    let store = ModelStore::open(dir)?;
    black_box(store.len());
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(store.len(), entries, "text store scanned short");
    assert!(store.failures().is_empty(), "text store has load failures");
    Ok(elapsed / entries as f64)
}

/// Times one lazy binary open plus a full section-header index pass —
/// the complete inventory with zero payload decodes.
fn time_lazy_bin(dir: &Path, entries: usize) -> crate::Result<f64> {
    let start = Instant::now();
    let store = ModelStore::open_with_mode(dir, LoadMode::Lazy)?;
    let mut models = 0usize;
    for entry in store.entries() {
        models += entry.index()?.models.len();
    }
    black_box(models);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(models, entries, "binary index missed models");
    assert!(
        store.entries().all(|e| !e.is_loaded()),
        "indexing must not materialize artifacts"
    );
    Ok(elapsed / entries as f64)
}

/// Times a lazy binary open followed by one name lookup: the index pass
/// routes the lookup and exactly one artifact decodes.
fn time_touch_one(dir: &Path, probe: &str) -> crate::Result<f64> {
    let start = Instant::now();
    let store = ModelStore::open_with_mode(dir, LoadMode::Lazy)?;
    let model = store.get(probe);
    black_box(model.is_some());
    let elapsed = start.elapsed().as_secs_f64();
    if model.is_none() {
        return Err(format!("probe model '{probe}' not found in the binary store").into());
    }
    assert_eq!(
        store.entries().filter(|e| e.is_loaded()).count(),
        1,
        "touch-one must materialize exactly one artifact"
    );
    Ok(elapsed)
}

/// Runs the three benches and returns their records (eager text, lazy
/// binary index, touch-one — in that order).
///
/// Each repetition runs all three paths back to back and the reported
/// time is the minimum over repetitions (the uncontended cost is what
/// the regression gate should track); one untimed warmup repetition
/// precedes the measured ones to populate the page cache for every path
/// alike.
///
/// # Errors
///
/// Filesystem failures while building the synthetic stores, or a store
/// that fails its own sanity checks.
pub fn run_store_bench(cfg: &StoreBenchConfig) -> crate::Result<Vec<StoreBenchRecord>> {
    let stores = build_stores(cfg)?;
    let mut best = [f64::INFINITY; 3];
    for rep in 0..=cfg.reps {
        let t = [
            time_eager_text(&stores.text_dir, cfg.entries)?,
            time_lazy_bin(&stores.bin_dir, cfg.entries)?,
            time_touch_one(&stores.bin_dir, &stores.probe)?,
        ];
        if rep > 0 {
            for (b, t) in best.iter_mut().zip(t) {
                *b = b.min(t);
            }
        }
    }
    Ok(vec![
        StoreBenchRecord {
            bench: "store/open_eager_text".into(),
            median_s: best[0],
            samples: cfg.entries,
        },
        StoreBenchRecord {
            bench: "store/open_lazy_bin".into(),
            median_s: best[1],
            samples: cfg.entries,
        },
        StoreBenchRecord {
            bench: "store/touch_one_bin".into(),
            median_s: best[2],
            samples: 1,
        },
    ])
}

/// Lazy-binary-open speedup over the eager text parse (per entry) — the
/// tentpole acceptance number.
pub fn speedup(records: &[StoreBenchRecord]) -> Option<f64> {
    let eager = records.iter().find(|r| r.bench.ends_with("eager_text"))?;
    let lazy = records.iter().find(|r| r.bench.ends_with("lazy_bin"))?;
    (lazy.median_s > 0.0).then(|| eager.median_s / lazy.median_s)
}

/// The human-readable summary: µs/entry per path plus the lazy speedup.
pub fn summarize(records: &[StoreBenchRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let _ = writeln!(
            out,
            "{:<24} {:>10.2} us/{}  ({} samples)",
            r.bench,
            r.median_s * 1e6,
            if r.samples == 1 { "lookup" } else { "entry" },
            r.samples
        );
    }
    if let Some(s) = speedup(records) {
        let _ = writeln!(out, "lazy binary open speedup vs eager text: {s:.1}x");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_store_bench_produces_three_records() {
        let cfg = StoreBenchConfig {
            entries: 6,
            centers: 4,
            reps: 1,
        };
        let records = run_store_bench(&cfg).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.median_s > 0.0));
        assert_eq!(records[0].bench, "store/open_eager_text");
        assert_eq!(records[1].samples, 6);
        assert_eq!(records[2].samples, 1);
        assert!(speedup(&records).is_some());
        let summary = summarize(&records);
        assert!(summary.contains("speedup"));
        let line = records[0].to_json();
        assert!(line.contains("\"bench\": \"store/open_eager_text\""));
        assert!(line.contains("\"samples\": 6"));
    }
}
