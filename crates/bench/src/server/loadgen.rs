//! `mdl bench-serve` — the daemon load generator.
//!
//! Opens `clients` concurrent connections against a running daemon and
//! fires a deterministic mixed traffic pattern (simulate cells with
//! periodic validate and sweep requests folded in), timing every
//! request/response round trip. The report carries p50/p95/p99/max
//! latency and mean per operation, overall throughput, and the daemon's
//! own final `stats` payload (cache hit rate, scheduler batching) — the
//! numbers `BENCH_serve.json` records and the serve-smoke CI step uploads.
//!
//! Request failures (`"ok":false`) and cell failures (`"pass":false`) are
//! counted separately: the former means the daemon mishandled traffic,
//! the latter that a model failed its gate — a load test cares about the
//! first and reports the second.

use std::path::PathBuf;
use std::time::Instant;

use numkit::stats::percentile_nearest_rank as percentile;

use crate::par_map;
use crate::serve::{json_f64, json_str};

use super::daemon::Client;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Socket of the daemon under test.
    pub socket_path: PathBuf,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Every `sweep_every`-th request per client is a full `sweep`
    /// (0 disables sweeps).
    pub sweep_every: usize,
    /// Every `validate_every`-th request per client is a reference
    /// `validate` (0 disables — required when the served models have no
    /// transistor-level reference).
    pub validate_every: usize,
    /// Pass `--fast` on sweep and validate requests.
    pub fast: bool,
}

impl LoadGenConfig {
    /// The standard mixed burst: 4 clients × 32 requests, a sweep every
    /// 16th and a validate every 8th request, fast windows.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        LoadGenConfig {
            socket_path: socket_path.into(),
            clients: 4,
            requests_per_client: 32,
            sweep_every: 16,
            validate_every: 8,
            fast: true,
        }
    }
}

/// Latency summary of one operation class (seconds).
#[derive(Debug, Clone)]
pub struct OpSummary {
    /// Operation name (`simulate`, `validate`, `sweep`, or `all`).
    pub op: String,
    /// Requests issued.
    pub count: usize,
    /// Median latency.
    pub p50_s: f64,
    /// 95th percentile latency.
    pub p95_s: f64,
    /// 99th percentile latency.
    pub p99_s: f64,
    /// Mean latency.
    pub mean_s: f64,
    /// Worst latency.
    pub max_s: f64,
}

/// The finished load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total requests issued across all clients.
    pub total: usize,
    /// Responses with `"ok":false` (or transport failures).
    pub request_failures: usize,
    /// Responses with `"pass":false` (cell gate failures).
    pub cell_failures: usize,
    /// Wall-clock seconds of the whole burst.
    pub elapsed_s: f64,
    /// Requests per second over the burst.
    pub throughput_rps: f64,
    /// Latency summary over every request.
    pub overall: OpSummary,
    /// Per-operation latency summaries.
    pub per_op: Vec<OpSummary>,
    /// The daemon's final `stats` response payload (raw JSON).
    pub server_stats: Option<String>,
}

impl LoadReport {
    /// Serializes the report as one JSON object (same dependency-free
    /// emitter discipline as [`crate::serve::FleetReport::to_json`]).
    pub fn to_json(&self) -> String {
        fn op_json(s: &OpSummary) -> String {
            format!(
                "{{\"op\":{},\"count\":{},\"p50_s\":{},\"p95_s\":{},\"p99_s\":{},\
                 \"mean_s\":{},\"max_s\":{}}}",
                json_str(&s.op),
                s.count,
                json_f64(s.p50_s),
                json_f64(s.p95_s),
                json_f64(s.p99_s),
                json_f64(s.mean_s),
                json_f64(s.max_s),
            )
        }
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!(
            "  \"request_failures\": {},\n",
            self.request_failures
        ));
        out.push_str(&format!("  \"cell_failures\": {},\n", self.cell_failures));
        out.push_str(&format!("  \"elapsed_s\": {},\n", json_f64(self.elapsed_s)));
        out.push_str(&format!(
            "  \"throughput_rps\": {},\n",
            json_f64(self.throughput_rps)
        ));
        out.push_str(&format!("  \"overall\": {},\n", op_json(&self.overall)));
        out.push_str("  \"per_op\": [");
        for (i, s) in self.per_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&op_json(s));
        }
        if !self.per_op.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        match &self.server_stats {
            // The stats payload is itself JSON — embed it verbatim.
            Some(stats) => out.push_str(&format!("  \"server_stats\": {stats}\n")),
            None => out.push_str("  \"server_stats\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// JSON-lines records in the `scripts/bench-baseline.sh` schema
    /// (`bench` + `median_s`), one per tracked percentile.
    pub fn baseline_records(&self) -> Vec<String> {
        let mut records = Vec::new();
        let mut push = |name: &str, value: f64| {
            if value.is_finite() && value > 0.0 {
                records.push(format!(
                    "{{\"bench\": {}, \"median_s\": {}, \"samples\": {}}}",
                    json_str(name),
                    json_f64(value),
                    self.total
                ));
            }
        };
        for s in std::iter::once(&self.overall).chain(&self.per_op) {
            push(&format!("serve/{}/p50", s.op), s.p50_s);
            push(&format!("serve/{}/p95", s.op), s.p95_s);
            push(&format!("serve/{}/p99", s.op), s.p99_s);
        }
        if self.throughput_rps > 0.0 {
            push("serve/seconds_per_request", 1.0 / self.throughput_rps);
        }
        records
    }
}

/// One timed request.
struct Sample {
    op: &'static str,
    seconds: f64,
    ok: bool,
    pass: bool,
}

fn summarize(op: &str, latencies: &[f64]) -> OpSummary {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    OpSummary {
        op: op.to_string(),
        count: sorted.len(),
        p50_s: percentile(&sorted, 0.50),
        p95_s: percentile(&sorted, 0.95),
        p99_s: percentile(&sorted, 0.99),
        mean_s: mean,
        max_s: sorted.last().copied().unwrap_or(0.0),
    }
}

/// Pulls every string value of `"key":"..."` pairs out of a compact JSON
/// payload — enough of a parser for the daemon's own responses, without a
/// JSON dependency.
fn json_string_values(payload: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":\"");
    let mut out = Vec::new();
    let mut rest = payload;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        if let Some(end) = rest.find('"') {
            out.push(rest[..end].to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Runs the load burst against a daemon at `cfg.socket_path`.
///
/// # Errors
///
/// Connection failures during setup, and an inventory with no served
/// models (nothing to load-test).
pub fn run_load(cfg: &LoadGenConfig) -> crate::Result<LoadReport> {
    // Discover the served inventory first — the burst round-robins
    // simulate/validate targets across every model.
    let inventory = super::daemon::request_once(&cfg.socket_path, "ls")?;
    if !inventory.contains("\"ok\":true") {
        return Err(format!("daemon rejected ls: {inventory}").into());
    }
    let names = json_string_values(&inventory, "name");
    if names.is_empty() {
        return Err("daemon serves no models; nothing to bench".into());
    }

    let t0 = Instant::now();
    let names = &names;
    let per_client: Vec<std::io::Result<Vec<Sample>>> =
        par_map((0..cfg.clients.max(1)).collect(), move |client| {
            let mut conn = Client::connect(&cfg.socket_path)?;
            let mut samples = Vec::with_capacity(cfg.requests_per_client);
            let fast = if cfg.fast { " --fast" } else { "" };
            for k in 0..cfg.requests_per_client {
                let serial = k + 1;
                let target = &names[(client + k) % names.len()];
                let (op, line): (&'static str, String) =
                    if cfg.sweep_every > 0 && serial % cfg.sweep_every == 0 {
                        ("sweep", format!("sweep{fast}"))
                    } else if cfg.validate_every > 0 && serial % cfg.validate_every == 0 {
                        ("validate", format!("validate {target}{fast}"))
                    } else {
                        ("simulate", format!("simulate {target}"))
                    };
                let t = Instant::now();
                let response = conn.request(&line)?;
                samples.push(Sample {
                    op,
                    seconds: t.elapsed().as_secs_f64(),
                    ok: response.contains("\"ok\":true"),
                    pass: !response.contains("\"pass\":false"),
                });
            }
            Ok(samples)
        });
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut samples = Vec::new();
    for client in per_client {
        samples.extend(client?);
    }
    let server_stats = super::daemon::request_once(&cfg.socket_path, "stats").ok();

    let total = samples.len();
    let request_failures = samples.iter().filter(|s| !s.ok).count();
    let cell_failures = samples.iter().filter(|s| s.ok && !s.pass).count();
    let all: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let per_op: Vec<OpSummary> = ["simulate", "validate", "sweep"]
        .iter()
        .filter_map(|op| {
            let lat: Vec<f64> = samples
                .iter()
                .filter(|s| s.op == *op)
                .map(|s| s.seconds)
                .collect();
            (!lat.is_empty()).then(|| summarize(op, &lat))
        })
        .collect();
    Ok(LoadReport {
        total,
        request_failures,
        cell_failures,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            total as f64 / elapsed_s
        } else {
            0.0
        },
        overall: summarize("all", &all),
        per_op,
        server_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn json_string_values_extracts_names() {
        let payload = r#"{"ok":true,"models":[{"name":"d1","kind":"x"},{"name":"d2"}]}"#;
        assert_eq!(json_string_values(payload, "name"), vec!["d1", "d2"]);
        assert!(json_string_values(payload, "missing").is_empty());
    }

    #[test]
    fn report_json_and_baseline_records_are_well_formed() {
        let summary = |op: &str| OpSummary {
            op: op.into(),
            count: 10,
            p50_s: 1e-3,
            p95_s: 2e-3,
            p99_s: 3e-3,
            mean_s: 1.2e-3,
            max_s: 4e-3,
        };
        let report = LoadReport {
            total: 20,
            request_failures: 0,
            cell_failures: 1,
            elapsed_s: 0.5,
            throughput_rps: 40.0,
            overall: summary("all"),
            per_op: vec![summary("simulate"), summary("sweep")],
            server_stats: Some("{\"ok\":true,\"op\":\"stats\"}".into()),
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"throughput_rps\""));
        assert!(json.contains("\"server_stats\": {\"ok\":true"));
        let records = report.baseline_records();
        assert!(records.iter().any(|r| r.contains("serve/all/p50")));
        assert!(records
            .iter()
            .any(|r| r.contains("serve/seconds_per_request")));
        for r in &records {
            assert!(r.contains("\"median_s\""), "baseline schema key: {r}");
        }
    }
}
