//! The digest-keyed artifact cache with LRU eviction.
//!
//! The daemon parses each artifact at most once per unique byte content:
//! reloads hash the file and look the digest up here. The cache is bounded;
//! when a flood of new digests (e.g. a directory of freshly generated
//! artifacts rotating through the store) pushes it past capacity, the
//! **least recently used** entries leave first, so the models the serving
//! traffic actually touches stay parsed.

use std::collections::HashMap;
use std::sync::Arc;

use super::ServedModel;

/// A bounded digest → parsed-models map with least-recently-used eviction.
#[derive(Debug)]
pub struct DigestCache {
    cap: usize,
    tick: u64,
    entries: HashMap<String, (u64, Vec<Arc<ServedModel>>)>,
}

impl DigestCache {
    /// An empty cache holding at most `cap` digests (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        DigestCache {
            cap: cap.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Cached digests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a digest, marking it most recently used on a hit.
    pub fn get(&mut self, digest: &str) -> Option<Vec<Arc<ServedModel>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(digest).map(|(used, models)| {
            *used = tick;
            models.clone()
        })
    }

    /// Inserts (or refreshes) a digest as most recently used, evicting the
    /// least recently used entries while over capacity.
    pub fn insert(&mut self, digest: String, models: Vec<Arc<ServedModel>>) {
        self.tick += 1;
        self.entries.insert(digest, (self.tick, models));
        while self.entries.len() > self.cap {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(digest, _)| digest.clone())
            else {
                break;
            };
            self.entries.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> Vec<Arc<ServedModel>> {
        vec![Arc::new(super::super::tests::served_dummy(name))]
    }

    #[test]
    fn hot_entries_survive_a_cold_flood() {
        let mut cache = DigestCache::new(8);
        let hot: Vec<String> = (0..3).map(|i| format!("hot{i}")).collect();
        for d in &hot {
            cache.insert(d.clone(), entry(d));
        }
        // Flood with cold digests, touching the hot set between waves the
        // way serving traffic would: each wave's colds displace the
        // previous wave's, never the recently used hot set.
        for wave in 0..10 {
            for d in &hot {
                assert!(cache.get(d).is_some(), "hot digest {d} evicted");
            }
            for i in 0..5 {
                cache.insert(format!("cold{wave}_{i}"), entry("cold"));
            }
        }
        assert!(cache.len() <= 8, "capacity respected: {}", cache.len());
        for d in &hot {
            assert!(
                cache.get(d).is_some(),
                "hot digest {d} must survive the flood"
            );
        }
        // The most recent cold wave displaced the older cold entries.
        assert!(cache.get("cold0_0").is_none(), "oldest cold entry evicted");
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = DigestCache::new(2);
        cache.insert("a".into(), entry("a"));
        cache.insert("b".into(), entry("b"));
        // Touch `a`, then insert `c`: `b` is now the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut cache = DigestCache::new(2);
        cache.insert("a".into(), entry("a"));
        cache.insert("b".into(), entry("b"));
        cache.insert("a".into(), entry("a"));
        cache.insert("c".into(), entry("c"));
        assert!(cache.get("a").is_some(), "reinserted entry is recent");
        assert!(cache.get("b").is_none());
    }
}
