//! The `mdl serve` daemon: a resident model store behind a Unix socket.
//!
//! Three long-lived threads plus one thread per connection:
//!
//! * the **listener** accepts connections on the socket and spawns a
//!   handler per client;
//! * the **watcher** polls artifact [`FileFingerprint`]s through
//!   [`ModelStore::refresh`] and publishes a new `Generation` when
//!   anything on disk changed;
//! * the **scheduler runner** drains the batched cell queue
//!   ([`super::scheduler`]).
//!
//! The inventory is an immutable `Generation` behind `RwLock<Arc<_>>`.
//! Requests resolve their model to an `Arc<ServedModel>` and drop the
//! lock before simulating, so a reload mid-cell swaps the published
//! generation without invalidating anything in flight — the old instance
//! lives until its last request releases it.
//!
//! Parsing is keyed by **artifact digest**
//! ([`macromodel::artifact_digest`]): for text files the FNV-1a hash of
//! the raw bytes, for binary `.mdlxb` containers the body digest embedded
//! in the file header (a fixed-offset read — no hash pass at all). A
//! reload therefore only re-parses artifacts whose bytes actually
//! changed; a `touch`ed but identical file is a cache hit, and the
//! `stats` request reports the hit/miss counters.
//!
//! [`FileFingerprint`]: macromodel::FileFingerprint

use std::collections::HashMap;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use macromodel::{
    artifact_digest, load_artifact_bytes, LoadMode, Macromodel, ModelKind, ModelStore,
};

use crate::serve::{
    json_f64, json_opt, json_str, mc_summary_json, standard_scenarios, Applicability, CellReport,
    EyeWorkload, McWorkload, Scenario, ScenarioKind,
};

use super::cache::DigestCache;
use super::protocol::{self, Request};
use super::scheduler::{CellTask, Job, Scheduler};
use super::ServedModel;

/// Bound on live digest-cache entries; least-recently-used digests are
/// evicted past this.
const CACHE_CAP: usize = 128;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Artifact directory to serve (scanned recursively).
    pub store_dir: PathBuf,
    /// Unix-domain socket path; a stale file at this path is replaced.
    pub socket_path: PathBuf,
    /// Fingerprint polling interval of the hot-reload watcher.
    pub poll_interval: Duration,
    /// Use the shrunken smoke-test scenario set for `simulate` and as the
    /// `sweep` default.
    pub fast: bool,
}

impl ServeConfig {
    /// A config with the default 500 ms poll interval and full scenarios.
    pub fn new(store_dir: impl Into<PathBuf>, socket_path: impl Into<PathBuf>) -> Self {
        ServeConfig {
            store_dir: store_dir.into(),
            socket_path: socket_path.into(),
            poll_interval: Duration::from_millis(500),
            fast: false,
        }
    }
}

/// One published inventory snapshot. Immutable once behind the `RwLock`.
struct Generation {
    /// Every served model, flattened across artifacts in path order.
    models: Vec<Arc<ServedModel>>,
    /// Name → index into `models` (duplicate names: later path wins).
    by_name: HashMap<String, usize>,
    /// `.mdlx` files scanned.
    artifacts: usize,
    /// Unreadable or unparsable files: `(path, error)`.
    failures: Vec<(String, String)>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
    generation: AtomicU64,
    op_ls: AtomicU64,
    op_info: AtomicU64,
    op_validate: AtomicU64,
    op_simulate: AtomicU64,
    op_sweep: AtomicU64,
    op_eye: AtomicU64,
    op_mc: AtomicU64,
    op_stats: AtomicU64,
}

struct Inner {
    cfg: ServeConfig,
    store: Mutex<ModelStore>,
    generation: RwLock<Arc<Generation>>,
    /// Content digest → parsed artifact models, LRU-bounded. Shared across
    /// generations: the hot-reload path only pays a parse for bytes it has
    /// never seen recently.
    cache: Mutex<DigestCache>,
    scheduler: Arc<Scheduler>,
    stop: AtomicBool,
    counters: Counters,
    started: Instant,
    /// Reader clones of live connections, shut down on stop to unblock
    /// handler threads parked in `read_frame`.
    conns: Mutex<Vec<UnixStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A started daemon: join it (runs until a `shutdown` request) or stop it
/// programmatically. Dropping the handle without either leaks the daemon
/// threads for the process lifetime.
pub struct ServerHandle {
    inner: Arc<Inner>,
    core_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket the daemon listens on.
    pub fn socket_path(&self) -> PathBuf {
        self.inner.cfg.socket_path.clone()
    }

    /// Blocks until the daemon exits (a client sent `shutdown`), then
    /// tears down the remaining threads and the socket file.
    pub fn join(mut self) {
        self.finish();
    }

    /// Stops the daemon from this side and tears it down.
    pub fn stop(mut self) {
        self.inner.begin_shutdown();
        self.finish();
    }

    fn finish(&mut self) {
        for t in self.core_threads.drain(..) {
            t.join().ok();
        }
        for s in self
            .inner
            .conns
            .lock()
            .expect("connection registry poisoned")
            .drain(..)
        {
            s.shutdown(std::net::Shutdown::Both).ok();
        }
        let handles: Vec<_> = self
            .inner
            .conn_threads
            .lock()
            .expect("connection threads poisoned")
            .drain(..)
            .collect();
        for t in handles {
            t.join().ok();
        }
        std::fs::remove_file(&self.inner.cfg.socket_path).ok();
    }
}

impl Inner {
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.scheduler.shutdown();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Starts the daemon: scans the store, publishes the first generation,
/// binds the socket, and spawns the listener/watcher/scheduler threads.
/// Returns once the socket accepts connections.
///
/// # Errors
///
/// Unreadable store directory or an unbindable socket path.
pub fn start(cfg: ServeConfig) -> crate::Result<ServerHandle> {
    let store = ModelStore::open_with_mode(&cfg.store_dir, LoadMode::Lazy)?;
    if cfg.socket_path.exists() {
        std::fs::remove_file(&cfg.socket_path)?;
    }
    let listener = UnixListener::bind(&cfg.socket_path)?;
    listener.set_nonblocking(true)?;

    let inner = Arc::new(Inner {
        cfg,
        store: Mutex::new(store),
        generation: RwLock::new(Arc::new(Generation {
            models: Vec::new(),
            by_name: HashMap::new(),
            artifacts: 0,
            failures: Vec::new(),
        })),
        cache: Mutex::new(DigestCache::new(CACHE_CAP)),
        scheduler: Scheduler::new(),
        stop: AtomicBool::new(false),
        counters: Counters::default(),
        started: Instant::now(),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    publish_generation(&inner);

    let mut core_threads = Vec::with_capacity(3);
    {
        let scheduler = Arc::clone(&inner.scheduler);
        core_threads.push(std::thread::spawn(move || scheduler.run()));
    }
    {
        let inner = Arc::clone(&inner);
        core_threads.push(std::thread::spawn(move || watcher_loop(&inner)));
    }
    {
        let inner = Arc::clone(&inner);
        core_threads.push(std::thread::spawn(move || listener_loop(&inner, listener)));
    }
    Ok(ServerHandle {
        inner,
        core_threads,
    })
}

// ---------------------------------------------------------------------
// Generation building — the digest-keyed cache
// ---------------------------------------------------------------------

/// Builds a generation from the store's current entry list and swaps it
/// into place. Parse work is skipped for every file whose content digest
/// is already cached.
fn publish_generation(inner: &Inner) {
    let (paths, mut failures) = {
        let store = inner.store.lock().expect("store poisoned");
        let paths: Vec<PathBuf> = store.entries().map(|e| e.path().to_path_buf()).collect();
        // Scan-level failures (unreadable subdirectories); per-file load
        // errors are collected below from the daemon's own read+parse.
        let failures: Vec<(String, String)> = store
            .failures()
            .into_iter()
            .map(|f| (f.path.display().to_string(), f.error.to_string()))
            .collect();
        (paths, failures)
    };

    let mut models: Vec<Arc<ServedModel>> = Vec::new();
    let mut by_name = HashMap::new();
    let artifacts = paths.len();
    let mut cache = inner.cache.lock().expect("artifact cache poisoned");
    for path in paths {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                failures.push((path.display().to_string(), e.to_string()));
                continue;
            }
        };
        // Binary containers carry their body digest in the header, so a
        // cache key costs a fixed-offset read instead of a hash pass.
        let digest = artifact_digest(&bytes);
        let served = if let Some(cached) = cache.get(&digest) {
            inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            cached
        } else {
            let parsed = load_artifact_bytes(&bytes).map_err(|e| e.to_string());
            let artifact = match parsed {
                Ok(a) => a,
                Err(e) => {
                    failures.push((path.display().to_string(), e));
                    continue;
                }
            };
            inner.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            let config_digest = artifact
                .provenance
                .as_ref()
                .map(|p| p.config_digest.clone());
            let served: Vec<Arc<ServedModel>> = artifact
                .models
                .into_iter()
                .map(|model| {
                    // Lint once per parse; cache hits carry the summary
                    // along with the models (same bytes, same findings).
                    let lint = crate::serve::ModelLint::of(model.name(), &model);
                    Arc::new(ServedModel {
                        lint,
                        model,
                        digest: digest.clone(),
                        config_digest: config_digest.clone(),
                        path: path.clone(),
                    })
                })
                .collect();
            cache.insert(digest.clone(), served.clone());
            served
        };
        for m in served {
            by_name.insert(m.model.name().to_string(), models.len());
            models.push(m);
        }
    }
    drop(cache);

    *inner.generation.write().expect("generation lock poisoned") = Arc::new(Generation {
        models,
        by_name,
        artifacts,
        failures,
    });
    inner.counters.generation.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Daemon loops
// ---------------------------------------------------------------------

/// Polls artifact fingerprints and republishes on any filesystem change.
fn watcher_loop(inner: &Arc<Inner>) {
    while !inner.stopped() {
        let deadline = Instant::now() + inner.cfg.poll_interval;
        while Instant::now() < deadline && !inner.stopped() {
            std::thread::sleep(Duration::from_millis(10));
        }
        if inner.stopped() {
            return;
        }
        let outcome = inner.store.lock().expect("store poisoned").refresh();
        if outcome.any() {
            inner.counters.reloads.fetch_add(1, Ordering::Relaxed);
            publish_generation(inner);
        }
    }
}

/// Accepts connections until shutdown; one handler thread per client.
fn listener_loop(inner: &Arc<Inner>, listener: UnixListener) {
    while !inner.stopped() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false).ok();
                if let Ok(clone) = stream.try_clone() {
                    inner
                        .conns
                        .lock()
                        .expect("connection registry poisoned")
                        .push(clone);
                }
                let handler_inner = Arc::clone(inner);
                let handle = std::thread::spawn(move || handle_conn(&handler_inner, stream));
                let mut threads = inner
                    .conn_threads
                    .lock()
                    .expect("connection threads poisoned");
                threads.retain(|t| !t.is_finished());
                threads.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One connection: read framed request lines, answer each with one JSON
/// frame, until EOF, error, or a `shutdown` request.
fn handle_conn(inner: &Arc<Inner>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match protocol::read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, close) = respond(inner, &line);
        if protocol::write_frame(&mut writer, &response).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

fn error_json(op: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"op\":{},\"error\":{}}}",
        json_str(op),
        json_str(message)
    )
}

fn respond(inner: &Arc<Inner>, line: &str) -> (String, bool) {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            inner.counters.errors.fetch_add(1, Ordering::Relaxed);
            return (error_json("parse", &e), false);
        }
    };
    let response = match request {
        Request::Ls => {
            inner.counters.op_ls.fetch_add(1, Ordering::Relaxed);
            Ok(ls_json(inner))
        }
        Request::Info { name } => {
            inner.counters.op_info.fetch_add(1, Ordering::Relaxed);
            info_json(inner, &name)
        }
        Request::Validate { name, fast } => {
            inner.counters.op_validate.fetch_add(1, Ordering::Relaxed);
            run_one(
                inner,
                &name,
                |_| Ok(CellTask::Validate { fast }),
                "validate",
            )
        }
        Request::Simulate { name, scenario } => {
            inner.counters.op_simulate.fetch_add(1, Ordering::Relaxed);
            let fast = inner.cfg.fast;
            run_one(
                inner,
                &name,
                |kind| resolve_scenario(fast, kind, &scenario).map(CellTask::Scenario),
                "simulate",
            )
        }
        Request::Sweep { fast } => {
            inner.counters.op_sweep.fetch_add(1, Ordering::Relaxed);
            sweep_json(inner, fast)
        }
        Request::Eye {
            name,
            prbs,
            bits,
            seed,
        } => {
            inner.counters.op_eye.fetch_add(1, Ordering::Relaxed);
            let mut w = EyeWorkload::standard(inner.cfg.fast);
            if let Some(p) = prbs {
                w.prbs = p;
            }
            if let Some(b) = bits {
                w.bits = b;
            }
            if let Some(s) = seed {
                w.seed = s;
            }
            run_one(
                inner,
                &name,
                |kind| {
                    if !kind.is_driver() {
                        return Err(format!("eye requires a driver model, got {}", kind.tag()));
                    }
                    Ok(CellTask::Scenario(Scenario {
                        name: "eye".into(),
                        applies_to: Applicability::Drivers,
                        kind: ScenarioKind::Eye(w),
                    }))
                },
                "eye",
            )
        }
        Request::Mc { name, trials, seed } => {
            inner.counters.op_mc.fetch_add(1, Ordering::Relaxed);
            let mut w = McWorkload::standard(inner.cfg.fast);
            if let Some(t) = trials {
                w.trials = t;
            }
            if let Some(s) = seed {
                w.seed = s;
            }
            run_one(
                inner,
                &name,
                |kind| {
                    if !kind.is_driver() {
                        return Err(format!("mc requires a driver model, got {}", kind.tag()));
                    }
                    Ok(CellTask::Scenario(Scenario {
                        name: "mc".into(),
                        applies_to: Applicability::Drivers,
                        kind: ScenarioKind::MonteCarlo(w),
                    }))
                },
                "mc",
            )
        }
        Request::Stats => {
            inner.counters.op_stats.fetch_add(1, Ordering::Relaxed);
            Ok(stats_json(inner))
        }
        Request::Shutdown => {
            inner.begin_shutdown();
            return ("{\"ok\":true,\"op\":\"shutdown\"}".to_string(), true);
        }
    };
    match response {
        Ok(json) => (json, false),
        Err((op, message)) => {
            inner.counters.errors.fetch_add(1, Ordering::Relaxed);
            (error_json(op, &message), false)
        }
    }
}

type RespResult = std::result::Result<String, (&'static str, String)>;

fn resolve_scenario(fast: bool, kind: ModelKind, wanted: &str) -> Result<Scenario, String> {
    let wanted = if wanted == "auto" {
        if kind.is_driver() {
            "r50"
        } else {
            "pulse"
        }
    } else {
        wanted
    };
    let scenario = standard_scenarios(fast)
        .into_iter()
        .find(|s| s.name == wanted)
        .ok_or_else(|| format!("unknown scenario '{wanted}'"))?;
    if !scenario.applies(kind) {
        return Err(format!(
            "scenario '{}' does not apply to {} models",
            scenario.name,
            kind.tag()
        ));
    }
    Ok(scenario)
}

/// Resolves a model, builds its task, schedules the cell, and waits for
/// the report.
fn run_one(
    inner: &Arc<Inner>,
    name: &str,
    task: impl FnOnce(ModelKind) -> Result<CellTask, String>,
    op: &'static str,
) -> RespResult {
    let model = {
        let generation = inner.generation.read().expect("generation lock poisoned");
        let generation = Arc::clone(&generation);
        generation
            .by_name
            .get(name)
            .map(|&i| Arc::clone(&generation.models[i]))
    };
    let Some(model) = model else {
        return Err((op, format!("no model named '{name}' in the store")));
    };
    let task = task(model.model.kind()).map_err(|e| (op, e))?;
    let (tx, rx) = mpsc::channel();
    if !inner.scheduler.submit(Job {
        model: Arc::clone(&model),
        task,
        reply: tx,
    }) {
        return Err((op, "daemon is shutting down".into()));
    }
    let report = rx
        .recv()
        .map_err(|_| (op, "scheduler dropped the cell".to_string()))?;
    Ok(cell_json(op, &model, &report))
}

fn cell_json(op: &str, model: &ServedModel, c: &CellReport) -> String {
    format!(
        "{{\"ok\":true,\"op\":{},\"model\":{},\"kind\":{},\"scenario\":{},\"pass\":{},\
         \"detail\":{},\"digest\":{},\"config_digest\":{},\"rms_error\":{},\"samples\":{},\
         \"v_min\":{},\"v_max\":{},\"eye\":{},\"mc\":{},\"elapsed_s\":{}}}",
        json_str(op),
        json_str(&c.model),
        json_str(&c.kind),
        json_str(&c.scenario),
        c.pass,
        json_str(&c.detail),
        json_str(&model.digest),
        model
            .config_digest
            .as_deref()
            .map_or_else(|| "null".to_string(), json_str),
        json_opt(c.rms_error),
        c.samples,
        json_f64(c.v_min),
        json_f64(c.v_max),
        c.eye
            .as_ref()
            .map_or_else(|| "null".to_string(), |e| e.json()),
        c.mc.as_ref()
            .map_or_else(|| "null".to_string(), mc_summary_json),
        json_f64(c.elapsed_s),
    )
}

fn ls_json(inner: &Arc<Inner>) -> String {
    let generation = Arc::clone(&inner.generation.read().expect("generation lock poisoned"));
    let mut out = format!(
        "{{\"ok\":true,\"op\":\"ls\",\"generation\":{},\"artifacts\":{},\"models\":[",
        inner.counters.generation.load(Ordering::Relaxed),
        generation.artifacts
    );
    for (i, m) in generation.models.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"kind\":{},\"digest\":{},\"config_digest\":{},\"path\":{}}}",
            json_str(m.model.name()),
            json_str(m.model.kind().tag()),
            json_str(&m.digest),
            m.config_digest
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            json_str(&m.path.display().to_string()),
        ));
    }
    out.push_str("],\"failures\":[");
    for (i, (path, error)) in generation.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"error\":{}}}",
            json_str(path),
            json_str(error)
        ));
    }
    out.push_str("]}");
    out
}

fn lint_json(l: &crate::serve::ModelLint) -> String {
    let codes: Vec<String> = l.codes.iter().map(|c| json_str(c)).collect();
    format!(
        "{{\"errors\":{},\"warnings\":{},\"infos\":{},\"codes\":[{}]}}",
        l.errors,
        l.warnings,
        l.infos,
        codes.join(",")
    )
}

fn info_json(inner: &Arc<Inner>, name: &str) -> RespResult {
    let generation = Arc::clone(&inner.generation.read().expect("generation lock poisoned"));
    let Some(&idx) = generation.by_name.get(name) else {
        return Err(("info", format!("no model named '{name}' in the store")));
    };
    let m = &generation.models[idx];
    Ok(format!(
        "{{\"ok\":true,\"op\":\"info\",\"name\":{},\"kind\":{},\"digest\":{},\
         \"config_digest\":{},\"path\":{},\"sample_time_s\":{},\"summary\":{},\"lint\":{}}}",
        json_str(m.model.name()),
        json_str(m.model.kind().tag()),
        json_str(&m.digest),
        m.config_digest
            .as_deref()
            .map_or_else(|| "null".to_string(), json_str),
        json_str(&m.path.display().to_string()),
        json_opt(m.model.sample_time()),
        json_str(&m.model.summary()),
        lint_json(&m.lint),
    ))
}

fn sweep_json(inner: &Arc<Inner>, fast: bool) -> RespResult {
    let generation = Arc::clone(&inner.generation.read().expect("generation lock poisoned"));
    let scenarios = standard_scenarios(fast);
    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    for model in &generation.models {
        for scenario in scenarios.iter().filter(|s| s.applies(model.model.kind())) {
            if !inner.scheduler.submit(Job {
                model: Arc::clone(model),
                task: CellTask::Scenario(scenario.clone()),
                reply: tx.clone(),
            }) {
                return Err(("sweep", "daemon is shutting down".into()));
            }
            submitted += 1;
        }
    }
    drop(tx);
    let reports: Vec<CellReport> = rx.iter().collect();
    if reports.len() != submitted {
        return Err(("sweep", "scheduler dropped sweep cells".into()));
    }
    let passed = reports.iter().filter(|c| c.pass).count();
    let mut out = format!(
        "{{\"ok\":true,\"op\":\"sweep\",\"generation\":{},\"cells\":{},\"passed\":{},\
         \"failed\":{},\"failing\":[",
        inner.counters.generation.load(Ordering::Relaxed),
        reports.len(),
        passed,
        reports.len() - passed
    );
    for (i, c) in reports.iter().filter(|c| !c.pass).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"model\":{},\"scenario\":{},\"detail\":{}}}",
            json_str(&c.model),
            json_str(&c.scenario),
            json_str(&c.detail)
        ));
    }
    out.push_str("]}");
    Ok(out)
}

fn stats_json(inner: &Arc<Inner>) -> String {
    let generation = Arc::clone(&inner.generation.read().expect("generation lock poisoned"));
    let c = &inner.counters;
    let hits = c.cache_hits.load(Ordering::Relaxed);
    let misses = c.cache_misses.load(Ordering::Relaxed);
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let sched = inner.scheduler.snapshot();
    // Static-analysis totals of the published generation: a hot reload that
    // swaps in a defective artifact shows up here without any new request.
    let (lint_e, lint_w, lint_i) = generation.models.iter().fold((0, 0, 0), |acc, m| {
        (
            acc.0 + m.lint.errors,
            acc.1 + m.lint.warnings,
            acc.2 + m.lint.infos,
        )
    });
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"generation\":{},\"models\":{},\"artifacts\":{},\
         \"requests\":{},\"errors\":{},\
         \"ops\":{{\"ls\":{},\"info\":{},\"validate\":{},\"simulate\":{},\"sweep\":{},\
         \"eye\":{},\"mc\":{},\"stats\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{},\"entries\":{}}},\
         \"lint\":{{\"errors\":{lint_e},\"warnings\":{lint_w},\"infos\":{lint_i}}},\
         \"reloads\":{},\
         \"scheduler\":{{\"batches\":{},\"cells\":{},\"max_batch\":{}}},\
         \"uptime_s\":{}}}",
        c.generation.load(Ordering::Relaxed),
        generation.models.len(),
        generation.artifacts,
        c.requests.load(Ordering::Relaxed),
        c.errors.load(Ordering::Relaxed),
        c.op_ls.load(Ordering::Relaxed),
        c.op_info.load(Ordering::Relaxed),
        c.op_validate.load(Ordering::Relaxed),
        c.op_simulate.load(Ordering::Relaxed),
        c.op_sweep.load(Ordering::Relaxed),
        c.op_eye.load(Ordering::Relaxed),
        c.op_mc.load(Ordering::Relaxed),
        c.op_stats.load(Ordering::Relaxed),
        hits,
        misses,
        json_f64(hit_rate),
        inner.cache.lock().expect("artifact cache poisoned").len(),
        c.reloads.load(Ordering::Relaxed),
        sched.batches,
        sched.cells,
        sched.max_batch,
        json_f64(inner.started.elapsed().as_secs_f64()),
    )
}

/// Connects to a running daemon and performs one framed request/response
/// round trip (shared by the CLI one-shot client and the load generator).
///
/// # Errors
///
/// Connection and framing failures; an early-closed server surfaces as
/// `UnexpectedEof`.
pub fn request_once(socket: &Path, line: &str) -> std::io::Result<String> {
    let stream = UnixStream::connect(socket)?;
    let mut client = Client::new(stream)?;
    client.request(line)
}

/// A connected daemon client speaking the framed protocol.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon socket.
    ///
    /// # Errors
    ///
    /// Socket connection failures.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        Client::new(UnixStream::connect(socket)?)
    }

    fn new(stream: UnixStream) -> std::io::Result<Client> {
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// Framing and I/O failures; a server that closed without answering
    /// surfaces as `UnexpectedEof`.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        protocol::write_frame(&mut self.writer, line)?;
        protocol::read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )
        })
    }
}
