//! The model-server daemon: `mdl serve` as a long-running process.
//!
//! The one-shot `mdl store` commands re-scan and re-parse the artifact
//! library on every invocation — fine for CI, wasteful for interactive
//! serving. This module keeps a [`macromodel::ModelStore`] resident behind
//! a Unix-domain socket:
//!
//! * [`protocol`] — the length-framed request/response codec;
//! * [`scheduler`] — the batched cell scheduler packing queued requests
//!   onto the [`crate::par_map`] worker pool, grouping same-model cells
//!   so one worker steps a model's cells back to back;
//! * [`cache`] — the bounded, LRU-evicting digest → parsed-models cache
//!   behind hot reload;
//! * [`daemon`] — the daemon itself: generation-swapped inventory,
//!   content-digest artifact cache, mtime/len polling hot reload, and the
//!   connection loops;
//! * [`loadgen`] — the `mdl bench-serve` load generator measuring
//!   p50/p95/p99 latency and throughput against a running daemon.
//!
//! Hot reload is drop-free by construction: the inventory is an immutable
//! generation behind an `RwLock<Arc<_>>`, every in-flight request holds
//! `Arc` references into the generation it resolved against, and a reload
//! publishes a *new* generation without touching the old one. Requests
//! admitted before the swap finish on the artifacts they started with;
//! requests after it see the fresh bytes.

pub mod cache;
pub mod daemon;
pub mod loadgen;
pub mod protocol;
pub mod scheduler;

pub use daemon::{start, ServeConfig, ServerHandle};
pub use loadgen::{run_load, LoadGenConfig, LoadReport};

use crate::serve::ModelLint;
use macromodel::AnyModel;
use std::path::PathBuf;

/// One model as the daemon serves it: the parsed model plus the identity
/// of the artifact bytes it came from.
#[derive(Debug, Clone)]
pub struct ServedModel {
    /// The parsed model.
    pub model: AnyModel,
    /// Content digest of the source artifact's raw bytes — the cache key,
    /// computable without parsing.
    pub digest: String,
    /// Provenance `config_digest` of the artifact (v2 bundles only).
    pub config_digest: Option<String>,
    /// Source artifact path.
    pub path: PathBuf,
    /// Static-analysis summary, computed once when the bytes were parsed
    /// (cache hits reuse it — same bytes, same findings).
    pub lint: ModelLint,
}

#[cfg(test)]
pub(crate) mod tests {
    use super::ServedModel;
    use macromodel::driver::{PwRbfDriverModel, WeightSequence};
    use macromodel::AnyModel;
    use sysid::narx::{NarxModel, NarxOrders};
    use sysid::rbf::RbfNetwork;

    /// A cheap switching PW-RBF driver for daemon and scheduler tests —
    /// one affine RBF per state (1.8 V pull-up / 0 V pull-down through
    /// 20 Ω), millisecond-scale transients with pattern-dependent output.
    pub(crate) fn dummy_driver(name: &str) -> AnyModel {
        let narx = |bias: f64| {
            NarxModel::from_network(
                NarxOrders::dynamic(1),
                RbfNetwork::affine(bias, vec![-0.05, 0.0, 0.0]),
            )
            .unwrap()
        };
        AnyModel::PwRbfDriver(PwRbfDriverModel {
            name: name.into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: narx(0.09),
            i_low: narx(0.0),
            up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
        })
    }

    pub(crate) fn served_dummy(name: &str) -> ServedModel {
        let model = dummy_driver(name);
        ServedModel {
            lint: crate::serve::ModelLint::of(name, &model),
            model,
            digest: "0123456789abcdef".into(),
            config_digest: None,
            path: std::path::PathBuf::from(format!("{name}.mdlx")),
        }
    }
}
