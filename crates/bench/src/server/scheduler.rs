//! The batched request scheduler: connection threads enqueue scenario
//! cells, one runner thread drains the queue in batches and packs each
//! batch onto the [`crate::par_map`] worker pool.
//!
//! Batching is what turns N concurrent single-cell requests into one
//! parallel sweep instead of N serialized transients: every drain takes
//! whatever has accumulated (up to [`MAX_BATCH`]) so queued cells from
//! different connections share a worker fan-out. Each drained batch is
//! grouped by model digest so cells of one model run back to back on a
//! worker (warm compiled-model state). Replies travel back over per-job
//! `mpsc` channels and are sent the moment each cell finishes, so a slow
//! bus-ladder cell never holds a quick `r50` cell's response hostage
//! beyond the shared batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::par_map;
use crate::serve::{run_sweep_cell, validate_model, CellReport, Scenario};

use super::ServedModel;

/// Upper bound on cells drained per batch — bounds the scoped-thread
/// fan-out of one `par_map` round.
pub const MAX_BATCH: usize = 16;

/// The work a queued cell performs.
#[derive(Debug, Clone)]
pub enum CellTask {
    /// One scenario-matrix cell.
    Scenario(Scenario),
    /// Re-certification against the transistor-level reference.
    Validate {
        /// Shrink the validation window to smoke-test budgets.
        fast: bool,
    },
}

/// One queued unit: a model, its task, and the reply channel.
pub struct Job {
    /// The served model the cell runs against (kept alive across reloads
    /// by this reference).
    pub model: Arc<ServedModel>,
    /// What to run.
    pub task: CellTask,
    /// Where the finished [`CellReport`] goes.
    pub reply: Sender<CellReport>,
}

/// Monotonic scheduler counters (exposed through the daemon's `stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerSnapshot {
    /// Batches drained.
    pub batches: u64,
    /// Cells executed.
    pub cells: u64,
    /// Largest single batch.
    pub max_batch: u64,
}

/// The shared queue + runner state.
pub struct Scheduler {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    batches: AtomicU64,
    cells: AtomicU64,
    max_batch: AtomicU64,
}

impl Scheduler {
    /// A fresh scheduler behind an [`Arc`] (the runner thread and every
    /// connection thread share it).
    pub fn new() -> Arc<Scheduler> {
        Arc::new(Scheduler {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            cells: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        })
    }

    /// Enqueues one job and wakes the runner. Returns `false` (dropping
    /// the job) when [`shutdown`] already landed — the stop check happens
    /// under the queue lock, so a `true` return guarantees the runner will
    /// execute the job before exiting.
    ///
    /// [`shutdown`]: Scheduler::shutdown
    #[must_use]
    pub fn submit(&self, job: Job) -> bool {
        let mut q = self.queue.lock().expect("scheduler queue poisoned");
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        q.push_back(job);
        self.ready.notify_all();
        true
    }

    /// Asks the runner to exit once the queue drains.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Current counter values.
    pub fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// The runner loop: drain batches onto `par_map` until [`shutdown`]
    /// lands *and* the queue is empty (queued work always completes).
    ///
    /// [`shutdown`]: Scheduler::shutdown
    pub fn run(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("scheduler queue poisoned");
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let (guard, _timeout) = self
                        .ready
                        .wait_timeout(q, Duration::from_millis(100))
                        .expect("scheduler queue poisoned");
                    q = guard;
                }
                let n = q.len().min(MAX_BATCH);
                let mut batch: Vec<Job> = q.drain(..n).collect();
                // Group same-model cells (stable, by artifact digest) so a
                // worker sweeping its slice of the batch steps one model's
                // cells back to back over the same compiled parameter slab
                // instead of bouncing between models.
                batch.sort_by(|a, b| a.model.digest.cmp(&b.model.digest));
                batch
            };
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.cells.fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.max_batch
                .fetch_max(batch.len() as u64, Ordering::Relaxed);
            par_map(batch, |job| {
                let report = run_cell(&job.model, &job.task);
                // A dropped receiver means the connection died mid-flight;
                // the cell still ran to completion, nothing to unwind.
                job.reply.send(report).ok();
            });
        }
    }
}

/// Executes one cell against a served model.
fn run_cell(model: &ServedModel, task: &CellTask) -> CellReport {
    match task {
        CellTask::Scenario(scenario) => run_sweep_cell(model.model.as_dyn(), scenario),
        CellTask::Validate { fast } => validate_model(model.model.as_dyn(), *fast, None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{standard_scenarios, Applicability};
    use macromodel::Macromodel;
    use std::sync::mpsc;

    #[test]
    fn scheduler_batches_and_replies() {
        let scheduler = Scheduler::new();
        let runner = {
            let s = Arc::clone(&scheduler);
            std::thread::spawn(move || s.run())
        };
        let model = Arc::new(super::super::tests::served_dummy("drv"));
        let scenario = standard_scenarios(true)
            .into_iter()
            .find(|s| s.applies_to == Applicability::Drivers)
            .unwrap();
        let n = 24;
        let (tx, rx) = mpsc::channel();
        for _ in 0..n {
            assert!(scheduler.submit(Job {
                model: Arc::clone(&model),
                task: CellTask::Scenario(scenario.clone()),
                reply: tx.clone(),
            }));
        }
        drop(tx);
        let reports: Vec<CellReport> = rx.iter().collect();
        assert_eq!(reports.len(), n);
        assert!(reports.iter().all(|r| r.pass), "dummy driver cells pass");
        assert!(reports.iter().all(|r| r.model == model.model.name()));
        let snap = scheduler.snapshot();
        assert_eq!(snap.cells, n as u64);
        assert!(snap.batches >= 2, "24 cells cannot fit one MAX_BATCH drain");
        assert!(snap.max_batch <= MAX_BATCH as u64);
        scheduler.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn shutdown_completes_queued_work() {
        let scheduler = Scheduler::new();
        let model = Arc::new(super::super::tests::served_dummy("drv"));
        let scenario = standard_scenarios(true)
            .into_iter()
            .find(|s| s.applies_to == Applicability::Drivers)
            .unwrap();
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            assert!(scheduler.submit(Job {
                model: Arc::clone(&model),
                task: CellTask::Scenario(scenario.clone()),
                reply: tx.clone(),
            }));
        }
        drop(tx);
        // Stop is requested before the runner ever starts: the queued jobs
        // must still execute before the runner exits.
        scheduler.shutdown();
        let runner = {
            let s = Arc::clone(&scheduler);
            std::thread::spawn(move || s.run())
        };
        assert_eq!(rx.iter().count(), 3);
        runner.join().unwrap();
    }
}
