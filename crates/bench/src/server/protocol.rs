//! Wire protocol of the model-server daemon: length-framed UTF-8 payloads
//! over a stream socket, CLI-shaped request lines, JSON response objects.
//!
//! A frame is the ASCII decimal byte length of the payload, a newline, then
//! exactly that many payload bytes. The framing is symmetric — requests and
//! responses use the same codec — and deliberately trivial to speak from a
//! shell (`printf '2\nls' | nc -U serve.sock`). Requests mirror the `mdl`
//! CLI surface so the daemon answers the same questions the one-shot tool
//! does, minus the per-invocation store load.

use std::io::{BufRead, Write};

/// Upper bound on a single frame's payload (bytes). A sweep response over a
/// large fleet is the biggest legitimate frame; anything beyond this is a
/// corrupt length header, not traffic.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Writes one frame: `<len>\n<payload>`.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before a length header.
///
/// # Errors
///
/// I/O failures, a non-numeric or oversized length header, truncated
/// payloads, and non-UTF-8 payloads all surface as `std::io::Error`.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length header {header:?}"),
        )
    })?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// A parsed daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List the served inventory (names, kinds, digests, load failures).
    Ls,
    /// Describe one served model.
    Info {
        /// Model name.
        name: String,
    },
    /// Re-certify one model against its transistor-level reference.
    Validate {
        /// Model name.
        name: String,
        /// Shrink the validation window to smoke-test budgets.
        fast: bool,
    },
    /// Run one scenario cell on a served model.
    Simulate {
        /// Model name.
        name: String,
        /// Scenario name from the standard matrix, or `auto` to pick the
        /// default cell for the model's port direction.
        scenario: String,
    },
    /// Run the full scenario matrix over every served model.
    Sweep {
        /// Use the shrunken smoke-test scenario set.
        fast: bool,
    },
    /// Fold a PRBS eye diagram on one served driver model.
    Eye {
        /// Model name.
        name: String,
        /// PRBS order tag (7, 15 or 31); `None` keeps the standard workload.
        prbs: Option<u32>,
        /// Bits simulated per lane.
        bits: Option<usize>,
        /// Master seed of the lane streams.
        seed: Option<u64>,
    },
    /// Run a Monte-Carlo channel sweep on one served driver model.
    Mc {
        /// Model name.
        name: String,
        /// Latin-hypercube trials.
        trials: Option<usize>,
        /// Master seed of the sweep.
        seed: Option<u64>,
    },
    /// Report request, cache, reload, and scheduler counters.
    Stats,
    /// Stop the daemon after acknowledging.
    Shutdown,
}

fn take_flag(tokens: &mut Vec<&str>, flag: &str) -> bool {
    if let Some(pos) = tokens.iter().position(|t| *t == flag) {
        tokens.remove(pos);
        true
    } else {
        false
    }
}

fn take_opt(tokens: &mut Vec<&str>, key: &str) -> Result<Option<String>, String> {
    let Some(pos) = tokens.iter().position(|t| *t == key) else {
        return Ok(None);
    };
    if pos + 1 >= tokens.len() {
        return Err(format!("{key} needs a value"));
    }
    tokens.remove(pos);
    Ok(Some(tokens.remove(pos).to_string()))
}

/// Parses one request line into a [`Request`].
///
/// # Errors
///
/// A human-readable message for empty lines, unknown verbs, missing or
/// surplus arguments.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() {
        return Err("empty request".into());
    }
    let verb = tokens.remove(0);
    let req = match verb {
        "ls" => Request::Ls,
        "info" => Request::Info {
            name: one_name(&mut tokens, verb)?,
        },
        "validate" => {
            let fast = take_flag(&mut tokens, "--fast");
            Request::Validate {
                name: one_name(&mut tokens, verb)?,
                fast,
            }
        }
        "simulate" => {
            let scenario = take_opt(&mut tokens, "--scenario")?.unwrap_or_else(|| "auto".into());
            Request::Simulate {
                name: one_name(&mut tokens, verb)?,
                scenario,
            }
        }
        "sweep" => Request::Sweep {
            fast: take_flag(&mut tokens, "--fast"),
        },
        "eye" => {
            let prbs = take_parsed(&mut tokens, "--prbs")?;
            let bits = take_parsed(&mut tokens, "--bits")?;
            let seed = take_parsed(&mut tokens, "--seed")?;
            Request::Eye {
                name: one_name(&mut tokens, verb)?,
                prbs,
                bits,
                seed,
            }
        }
        "mc" => {
            let trials = take_parsed(&mut tokens, "--trials")?;
            let seed = take_parsed(&mut tokens, "--seed")?;
            Request::Mc {
                name: one_name(&mut tokens, verb)?,
                trials,
                seed,
            }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown request '{other}'")),
    };
    if !tokens.is_empty() {
        return Err(format!("unexpected arguments: {}", tokens.join(" ")));
    }
    Ok(req)
}

/// [`take_opt`] plus a parse of the value into `T`.
fn take_parsed<T: std::str::FromStr>(
    tokens: &mut Vec<&str>,
    key: &str,
) -> Result<Option<T>, String> {
    match take_opt(tokens, key)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{key} value '{v}' does not parse")),
    }
}

fn one_name(tokens: &mut Vec<&str>, verb: &str) -> Result<String, String> {
    if tokens.is_empty() {
        return Err(format!("{verb} needs a model name"));
    }
    Ok(tokens.remove(0).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "simulate md1 --scenario r50").unwrap();
        write_frame(&mut wire, "").unwrap();
        write_frame(&mut wire, "payload\nwith newlines\n").unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("simulate md1 --scenario r50")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("payload\nwith newlines\n")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn bad_frames_are_rejected() {
        let mut r = BufReader::new(&b"notanumber\nxx"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"99999999999\n"[..]);
        assert!(read_frame(&mut r).is_err(), "oversized length header");
        let mut r = BufReader::new(&b"10\nshort"[..]);
        assert!(read_frame(&mut r).is_err(), "truncated payload");
        let mut sink = Vec::new();
        let huge = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut sink, &huge).is_err());
    }

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("ls").unwrap(), Request::Ls);
        assert_eq!(
            parse_request("info md1").unwrap(),
            Request::Info { name: "md1".into() }
        );
        assert_eq!(
            parse_request("validate md1 --fast").unwrap(),
            Request::Validate {
                name: "md1".into(),
                fast: true
            }
        );
        assert_eq!(
            parse_request("simulate md1").unwrap(),
            Request::Simulate {
                name: "md1".into(),
                scenario: "auto".into()
            }
        );
        assert_eq!(
            parse_request("simulate md1 --scenario bus-ladder").unwrap(),
            Request::Simulate {
                name: "md1".into(),
                scenario: "bus-ladder".into()
            }
        );
        assert_eq!(
            parse_request("sweep --fast").unwrap(),
            Request::Sweep { fast: true }
        );
        assert_eq!(
            parse_request("eye md1").unwrap(),
            Request::Eye {
                name: "md1".into(),
                prbs: None,
                bits: None,
                seed: None
            }
        );
        assert_eq!(
            parse_request("eye md1 --prbs 15 --bits 48 --seed 7").unwrap(),
            Request::Eye {
                name: "md1".into(),
                prbs: Some(15),
                bits: Some(48),
                seed: Some(7)
            }
        );
        assert_eq!(
            parse_request("mc md1 --trials 12 --seed 42").unwrap(),
            Request::Mc {
                name: "md1".into(),
                trials: Some(12),
                seed: Some(42)
            }
        );
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("   ").is_err());
        assert!(parse_request("frobnicate").is_err());
        assert!(parse_request("info").is_err(), "missing name");
        assert!(parse_request("ls extra").is_err(), "surplus arguments");
        assert!(parse_request("simulate md1 --scenario").is_err());
        assert!(parse_request("eye").is_err(), "missing name");
        assert!(
            parse_request("eye md1 --prbs nine").is_err(),
            "non-numeric option value"
        );
        assert!(parse_request("mc md1 --trials").is_err());
    }
}
