//! `mdl store ls` and `mdl convert` end to end: the built binary run
//! against a mixed text + binary store directory, pinning the documented
//! `--json` shape (load mode, per-entry format/version/bytes/digest,
//! flattened model list, per-entry error field) and the byte-exact
//! text ⇄ binary conversion contract.

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::binary::save_artifact_bin_to_path;
use macromodel::exchange::{save_artifact_to_path, save_model_to_path, AnyModel, Artifact};
use std::path::PathBuf;
use std::process::{Command, Output};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_cli_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mdl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdl"))
        .args(args)
        .output()
        .unwrap()
}

fn driver(name: &str) -> AnyModel {
    let narx = || {
        NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.2]),
        )
        .unwrap()
    };
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx(),
        i_low: narx(),
        up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    })
}

/// A store with one text artifact, one binary artifact, and one corrupt
/// file — the three cases every listing has to represent.
fn mixed_store(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    save_model_to_path(&driver("text_drv"), dir.join("text_drv.mdlx")).unwrap();
    save_artifact_bin_to_path(
        &Artifact::single(driver("bin_drv")),
        dir.join("bin_drv.mdlxb"),
    )
    .unwrap();
    std::fs::write(dir.join("broken.mdlx"), "mdlx 1 pwrbf-driver\nname x\n").unwrap();
    dir
}

#[test]
fn store_ls_json_shape() {
    let dir = mixed_store("json");
    let out = mdl(&["store", "ls", dir.to_str().unwrap(), "--json"]);
    // Unloadable entries are reported in-band (the document still renders
    // completely) while the exit status stays nonzero, same as human mode.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "unloadable artifact fails ls");

    // Document-level shape.
    assert!(
        text.starts_with("{\"root\":"),
        "leads with the root: {text}"
    );
    assert!(
        text.contains("\"mode\":\"lazy\""),
        "documents the load mode: {text}"
    );
    assert!(
        text.contains("\"artifacts\":3"),
        "counts all entries: {text}"
    );
    assert!(
        text.contains("\"models\":2"),
        "counts loadable models: {text}"
    );
    assert!(
        text.contains("\"load_failures\":1"),
        "counts failures: {text}"
    );

    // Per-entry shape: formats, versions, models, and the digest/bytes
    // fields that make the listing a usable inventory.
    assert!(text.contains("\"format\":\"text\""), "{text}");
    assert!(text.contains("\"format\":\"binary\""), "{text}");
    assert!(text.contains("\"version\":1"), "{text}");
    assert!(
        text.contains("{\"kind\":\"pwrbf-driver\",\"name\":\"text_drv\"}"),
        "{text}"
    );
    assert!(
        text.contains("{\"kind\":\"pwrbf-driver\",\"name\":\"bin_drv\"}"),
        "{text}"
    );
    assert!(text.contains("\"provenance_digest\":null"), "{text}");
    assert!(text.contains("\"error\":null"), "{text}");

    // Each loadable entry carries its byte size and 16-hex-digit digest.
    for name in ["text_drv.mdlx", "bin_drv.mdlxb"] {
        let entry = text.split("{\"path\":").find(|e| e.contains(name)).unwrap();
        let bytes = entry.split("\"bytes\":").nth(1).unwrap();
        let bytes: u64 = bytes[..bytes.find(',').unwrap()].parse().unwrap();
        assert!(bytes > 0, "entry {name} has a real byte size");
        let digest = entry.split("\"digest\":\"").nth(1).unwrap();
        let digest = &digest[..digest.find('"').unwrap()];
        assert_eq!(
            digest.len(),
            16,
            "FNV-1a 64 digest is 16 hex chars: {digest}"
        );
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()), "{digest}");
    }

    // The broken entry reports its typed error in-band.
    let broken = text
        .split("{\"path\":")
        .find(|e| e.contains("broken.mdlx"))
        .unwrap();
    assert!(
        broken.contains("\"error\":\""),
        "broken entry carries the error: {broken}"
    );
    assert!(!broken.contains("\"error\":null"), "{broken}");
}

#[test]
fn store_ls_human_output_documents_mode_and_sizes() {
    let dir = mixed_store("human");
    let out = mdl(&["store", "ls", dir.to_str().unwrap()]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("mode lazy"),
        "documents the load mode: {text}"
    );
    assert!(text.contains(" B "), "per-entry byte sizes: {text}");
    assert!(text.contains("binary"), "binary entries labeled: {text}");
    assert!(text.contains("text"), "text entries labeled: {text}");
    // The corrupt entry makes the listing exit nonzero in human mode.
    assert!(!out.status.success(), "unloadable artifact fails ls");
}

#[test]
fn convert_round_trips_byte_exactly() {
    let dir = temp_dir("convert");
    let text_path = dir.join("m.mdlx");
    let bin_path = dir.join("m.mdlxb");
    let back_path = dir.join("m.back.mdlx");
    save_model_to_path(&driver("conv"), &text_path).unwrap();

    let out = mdl(&[
        "convert",
        text_path.to_str().unwrap(),
        bin_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = mdl(&[
        "convert",
        bin_path.to_str().unwrap(),
        back_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let original = std::fs::read(&text_path).unwrap();
    let round_tripped = std::fs::read(&back_path).unwrap();
    assert_eq!(
        original, round_tripped,
        "text -> binary -> text must be byte-exact"
    );
}

#[test]
fn convert_v2_bundle_round_trips() {
    let dir = temp_dir("convert_v2");
    let text_path = dir.join("b.mdlx");
    let bin_path = dir.join("b.mdlxb");
    let back_path = dir.join("b.back.mdlx");
    let artifact = Artifact::bundle(vec![driver("a"), driver("b")], None);
    save_artifact_to_path(&artifact, &text_path).unwrap();

    assert!(mdl(&[
        "convert",
        text_path.to_str().unwrap(),
        bin_path.to_str().unwrap()
    ])
    .status
    .success());
    assert!(mdl(&[
        "convert",
        bin_path.to_str().unwrap(),
        back_path.to_str().unwrap()
    ])
    .status
    .success());
    assert_eq!(
        std::fs::read(&text_path).unwrap(),
        std::fs::read(&back_path).unwrap()
    );
}
