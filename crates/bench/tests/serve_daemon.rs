//! End-to-end daemon integration: a real store directory served over a
//! real Unix socket, exercised through the framed protocol — inventory,
//! scheduled cells, digest-keyed caching, drop-free hot reload — plus the
//! lazy-store concurrency guarantees the daemon builds on.

use emc_bench::par_map;
use emc_bench::server::daemon::Client;
use emc_bench::server::{start, ServeConfig};
use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::{
    save_artifact_to_path, save_model_to_path, AnyModel, Artifact, Provenance,
};
use macromodel::{LoadMode, ModelStore};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// A cheap switching PW-RBF driver (pull-up to 1.8 V / pull-down to 0 V
/// through `1/gain` Ω, so eye cells see an open eye); `gain` also varies
/// the artifact bytes so two calls with different gains produce different
/// content digests.
fn dummy_driver(name: &str, gain: f64) -> AnyModel {
    let narx = |bias: f64| {
        NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(bias, vec![-gain, 0.0, 0.0]),
        )
        .unwrap()
    };
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx(1.8 * gain),
        i_low: narx(0.0),
        up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_daemon_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_cfg(dir: &std::path::Path, tag: &str, poll_ms: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(
        dir,
        std::env::temp_dir().join(format!("serve_daemon_{tag}_{}.sock", std::process::id())),
    );
    cfg.poll_interval = Duration::from_millis(poll_ms);
    cfg.fast = true;
    cfg
}

/// Extracts the string value of a `"key":"value"` pair from a compact
/// JSON payload.
fn json_str_value(payload: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = payload.find(&needle)? + needle.len();
    let end = payload[start..].find('"')?;
    Some(payload[start..start + end].to_string())
}

/// Extracts the raw numeric text of a `"key":N` pair (any JSON number —
/// returned as text so bit-exact reproducibility can be compared without
/// parsing).
fn json_num_field(payload: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = payload.find(&needle)? + needle.len();
    let end = payload[start..]
        .find([',', '}'])
        .map(|e| start + e)
        .unwrap_or(payload.len());
    Some(payload[start..end].to_string())
}

/// Extracts the integer value of a `"key":N` pair.
fn json_u64_value(payload: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = payload.find(&needle)? + needle.len();
    let digits: String = payload[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn daemon_serves_schedules_and_reports_cache_stats() {
    let dir = temp_dir("basic");
    save_model_to_path(&dummy_driver("drv_a", 0.02), dir.join("a.mdlx")).unwrap();
    save_artifact_to_path(
        &Artifact::bundle(
            vec![dummy_driver("drv_b", 0.03)],
            Some(Provenance::new("cfg-digest-b")),
        ),
        dir.join("b.mdlx"),
    )
    .unwrap();

    let handle = start(serve_cfg(&dir, "basic", 200)).unwrap();
    let socket = handle.socket_path();
    let mut client = Client::connect(&socket).unwrap();

    // Inventory: both artifacts served, bundle provenance digest exposed.
    let ls = client.request("ls").unwrap();
    assert!(ls.contains("\"ok\":true"), "ls failed: {ls}");
    assert!(ls.contains("\"name\":\"drv_a\"") && ls.contains("\"name\":\"drv_b\""));
    assert!(ls.contains("\"config_digest\":\"cfg-digest-b\""));
    assert!(ls.contains("\"artifacts\":2"));
    assert!(ls.contains("\"failures\":[]"));

    let info = client.request("info drv_a").unwrap();
    assert!(info.contains("\"ok\":true"), "info failed: {info}");
    let digest = json_str_value(&info, "digest").unwrap();
    assert_eq!(digest.len(), 16, "content digest is 16 hex chars: {digest}");

    // Scheduled cells: simulate through the batched scheduler.
    let sim = client.request("simulate drv_a").unwrap();
    assert!(
        sim.contains("\"ok\":true") && sim.contains("\"pass\":true"),
        "{sim}"
    );
    assert!(
        sim.contains("\"scenario\":\"r50\""),
        "auto picks r50: {sim}"
    );
    let sim2 = client
        .request("simulate drv_b --scenario bus-ladder")
        .unwrap();
    assert!(
        sim2.contains("\"ok\":true") && sim2.contains("\"pass\":true"),
        "{sim2}"
    );

    // Request-level failures answer with ok:false, connection stays up.
    let missing = client.request("simulate nosuch").unwrap();
    assert!(missing.contains("\"ok\":false") && missing.contains("nosuch"));
    let inapplicable = client.request("simulate drv_a --scenario pulse").unwrap();
    assert!(inapplicable.contains("\"ok\":false"), "{inapplicable}");
    let garbage = client.request("frobnicate").unwrap();
    assert!(garbage.contains("\"ok\":false"));

    // A validate cell runs end to end; the dummy has no transistor-level
    // reference, so the request succeeds and the cell reports its failure.
    let val = client.request("validate drv_a --fast").unwrap();
    assert!(
        val.contains("\"ok\":true") && val.contains("\"pass\":false"),
        "{val}"
    );
    assert!(val.contains("no reference"));

    // Eye and Monte-Carlo cells run through the same scheduler; the
    // switching dummy keeps the eye open, and a repeated request with the
    // same seed folds bit-identical metrics.
    let eye = client.request("eye drv_a --bits 12 --seed 5").unwrap();
    assert!(
        eye.contains("\"ok\":true") && eye.contains("\"pass\":true"),
        "{eye}"
    );
    assert!(eye.contains("\"open\": true"), "{eye}");
    let height = json_num_field(&eye, "eye_height").unwrap();
    let eye2 = client.request("eye drv_a --bits 12 --seed 5").unwrap();
    assert_eq!(
        json_num_field(&eye2, "eye_height").unwrap(),
        height,
        "same seed, same eye"
    );
    let mc = client.request("mc drv_a --trials 3 --seed 9").unwrap();
    assert!(
        mc.contains("\"ok\":true") && mc.contains("\"pass\":true"),
        "{mc}"
    );
    assert!(
        mc.contains("\"trials\": 3") && mc.contains("\"closed_eyes\": 0"),
        "{mc}"
    );
    let inapplicable_eye = client.request("eye nosuch").unwrap();
    assert!(inapplicable_eye.contains("\"ok\":false"));

    // Sweep: 2 drivers × 5 driver scenarios (incl. the PRBS eye and the
    // Monte-Carlo channel cells), all green.
    let sweep = client.request("sweep --fast").unwrap();
    assert!(sweep.contains("\"ok\":true"), "sweep failed: {sweep}");
    assert_eq!(json_u64_value(&sweep, "cells"), Some(10));
    assert_eq!(json_u64_value(&sweep, "failed"), Some(0));

    // Stats: both artifacts were parse misses at startup, scheduler saw
    // the cells, request counter covers this whole conversation.
    let stats = client.request("stats").unwrap();
    assert!(stats.contains("\"ok\":true"));
    assert_eq!(json_u64_value(&stats, "misses"), Some(2));
    assert!(json_u64_value(&stats, "requests").unwrap() >= 9);
    assert!(
        json_u64_value(&stats, "cells").unwrap() >= 9,
        "sweep + singles: {stats}"
    );
    assert!(stats.contains("\"hit_rate\":"));

    // Clean remote shutdown: acknowledged, then the daemon exits.
    let bye = client.request("shutdown").unwrap();
    assert!(bye.contains("\"ok\":true"));
    handle.join();
    assert!(!socket.exists(), "socket file removed on shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_swaps_digests_without_dropping_requests() {
    let dir = temp_dir("reload");
    let artifact = dir.join("drv.mdlx");
    save_model_to_path(&dummy_driver("drv", 0.02), &artifact).unwrap();

    let handle = start(serve_cfg(&dir, "reload", 30)).unwrap();
    let socket = handle.socket_path();
    let mut client = Client::connect(&socket).unwrap();
    let digest0 = json_str_value(&client.request("info drv").unwrap(), "digest").unwrap();

    // Continuous simulate burst on its own connection while the artifact
    // is overwritten mid-flight.
    let burst_socket = socket.clone();
    let burst = std::thread::spawn(move || {
        let mut conn = Client::connect(&burst_socket).unwrap();
        let mut failures = Vec::new();
        for i in 0..40 {
            let resp = match conn.request("simulate drv") {
                Ok(r) => r,
                Err(e) => {
                    failures.push(format!("request {i}: {e}"));
                    continue;
                }
            };
            if !(resp.contains("\"ok\":true") && resp.contains("\"pass\":true")) {
                failures.push(format!("request {i}: {resp}"));
            }
        }
        failures
    });

    // Overwrite with different content mid-burst: the next generation must
    // serve the new digest.
    std::thread::sleep(Duration::from_millis(100));
    save_model_to_path(&dummy_driver("drv", 0.05), &artifact).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let digest1 = loop {
        let digest = json_str_value(&client.request("info drv").unwrap(), "digest").unwrap();
        if digest != digest0 {
            break digest;
        }
        assert!(
            Instant::now() < deadline,
            "reload never served the new digest"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_ne!(digest1, digest0);

    let failures = burst.join().unwrap();
    assert!(
        failures.is_empty(),
        "hot reload dropped requests: {failures:?}"
    );
    let stats = client.request("stats").unwrap();
    assert!(json_u64_value(&stats, "reloads").unwrap() >= 1, "{stats}");

    // Touch without a content change: the fingerprint poll fires, but the
    // digest cache answers — a reload with zero re-parses.
    let bytes = std::fs::read(&artifact).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::fs::write(&artifact, &bytes).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        let stats = client.request("stats").unwrap();
        if json_u64_value(&stats, "hits").unwrap() >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "identical rewrite never produced a cache hit: {stats}"
        );
    }

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// `dummy_driver` with one switching weight pushed outside the plausible
/// [-0.5, 1.5] range: still loads (the clamp lives in extraction), so a
/// hot reload swaps it in — and the parse-time lint must flag M007.
fn hot_weight_driver(name: &str) -> AnyModel {
    let AnyModel::PwRbfDriver(mut m) = dummy_driver(name, 0.02) else {
        unreachable!()
    };
    m.up = WeightSequence::new(vec![0.0, 3.0], vec![1.0, 0.0]).unwrap();
    AnyModel::PwRbfDriver(m)
}

#[test]
fn hot_reload_surfaces_lint_findings_without_dropping_requests() {
    let dir = temp_dir("lint");
    save_model_to_path(&dummy_driver("drv_ok", 0.02), dir.join("ok.mdlx")).unwrap();
    let bad_path = dir.join("bad.mdlx");
    save_model_to_path(&dummy_driver("drv_bad", 0.03), &bad_path).unwrap();

    let handle = start(serve_cfg(&dir, "lint", 30)).unwrap();
    let socket = handle.socket_path();
    let mut client = Client::connect(&socket).unwrap();

    // Healthy generation: per-model and aggregate lint totals are zero.
    let info = client.request("info drv_bad").unwrap();
    assert!(
        info.contains("\"lint\":{\"errors\":0,\"warnings\":0,\"infos\":0,\"codes\":[]}"),
        "clean model must report an empty lint summary: {info}"
    );
    let stats = client.request("stats").unwrap();
    assert!(
        stats.contains("\"lint\":{\"errors\":0,\"warnings\":0,\"infos\":0}"),
        "clean fleet must aggregate to zero: {stats}"
    );

    // Keep traffic on the *other* model flowing through the swap.
    let burst_socket = socket.clone();
    let burst = std::thread::spawn(move || {
        let mut conn = Client::connect(&burst_socket).unwrap();
        let mut failures = Vec::new();
        for i in 0..40 {
            match conn.request("simulate drv_ok") {
                Ok(r) if r.contains("\"ok\":true") && r.contains("\"pass\":true") => {}
                Ok(r) => failures.push(format!("request {i}: {r}")),
                Err(e) => failures.push(format!("request {i}: {e}")),
            }
        }
        failures
    });

    // Swap the defective artifact in mid-burst and wait for the daemon to
    // republish with its lint findings.
    std::thread::sleep(Duration::from_millis(100));
    save_model_to_path(&hot_weight_driver("drv_bad"), &bad_path).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.request("stats").unwrap();
        if stats.contains("\"lint\":{\"errors\":0,\"warnings\":1,\"infos\":0}") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reload never surfaced the lint warning: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let info = client.request("info drv_bad").unwrap();
    assert!(
        info.contains("\"codes\":[\"M007\"]"),
        "defective model must name its code: {info}"
    );

    let failures = burst.join().unwrap();
    assert!(
        failures.is_empty(),
        "hot reload dropped requests: {failures:?}"
    );
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Lazy-store guarantees the daemon builds on
// ---------------------------------------------------------------------

#[test]
fn lazy_store_surfaces_failures_once_entries_are_touched() {
    let dir = temp_dir("lazyfail");
    save_model_to_path(&dummy_driver("good", 0.02), dir.join("good.mdlx")).unwrap();
    std::fs::write(dir.join("broken.mdlx"), "mdlx 1 pwrbf-driver\njunk\n").unwrap();

    let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
    // The documented (and previously misleading) behavior: nothing parsed,
    // so nothing reported yet — the store *looks* healthy.
    assert!(
        store.failures().is_empty(),
        "unparsed lazy store reports nothing"
    );

    // The `store ls` path: iterate entries, forcing each parse; the
    // memoized failure must surface afterwards.
    let mut seen_err = 0;
    for entry in store.entries() {
        if entry.artifact().is_err() {
            seen_err += 1;
            assert!(entry.failure().is_some(), "memoized failure per entry");
        }
    }
    assert_eq!(seen_err, 1);
    let failures = store.failures();
    assert_eq!(failures.len(), 1, "failures now visible without load_all");
    assert!(failures[0].path.ends_with("broken.mdlx"));

    // load_all is idempotent and returns the same list.
    assert_eq!(store.load_all().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_lazy_access_parses_once_and_replays_errors() {
    let dir = temp_dir("lazyconc");
    save_model_to_path(&dummy_driver("good", 0.02), dir.join("good.mdlx")).unwrap();
    std::fs::write(dir.join("broken.mdlx"), "mdlx 1 pwrbf-driver\njunk\n").unwrap();

    let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
    let entries: Vec<_> = store.entries().collect();
    let broken = entries
        .iter()
        .find(|e| e.path().ends_with("broken.mdlx"))
        .unwrap();
    let good = entries
        .iter()
        .find(|e| e.path().ends_with("good.mdlx"))
        .unwrap();

    // Hammer both entries from parallel workers: the OnceLock slot must
    // parse each file exactly once and hand every thread the same memoized
    // result — identical &Artifact for the good file, an identical
    // replayed error for the corrupt one.
    let outcomes = par_map((0..16).collect::<Vec<usize>>(), |i| {
        if i % 2 == 0 {
            good.artifact()
                .map(|a| a as *const _ as usize)
                .map_err(|e| e.to_string())
        } else {
            broken
                .artifact()
                .map(|a| a as *const _ as usize)
                .map_err(|e| e.to_string())
        }
    });
    let oks: Vec<usize> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok().copied())
        .collect();
    let errs: Vec<&String> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
    assert_eq!(oks.len(), 8);
    assert_eq!(errs.len(), 8);
    assert!(
        oks.windows(2).all(|w| w[0] == w[1]),
        "every thread sees the same memoized Artifact"
    );
    assert!(
        errs.windows(2).all(|w| w[0] == w[1]),
        "the load error replays identically"
    );
    assert_eq!(store.failures().len(), 1, "one failure after the stampede");
    std::fs::remove_dir_all(&dir).ok();
}
