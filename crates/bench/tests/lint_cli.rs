//! `mdl lint` end to end: the built binary run against real artifact
//! files and store directories, asserting the documented diagnostic codes
//! appear in the output and the exit status follows the contract — 0 for
//! clean (or warnings-only), 1 when a deny-level finding or load failure
//! is present, 2 for usage errors.

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::{save_artifact_to_path, AnyModel, Artifact};
use macromodel::receiver::ReceiverModel;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lint_cli_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mdl_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdl"))
        .arg("lint")
        .args(args)
        .output()
        .unwrap()
}

fn narx_with_tail(tail: f64) -> NarxModel {
    NarxModel::from_network(
        NarxOrders::dynamic(1),
        RbfNetwork::affine(0.0, vec![0.01, 0.0, tail]),
    )
    .unwrap()
}

/// Driver that lints clean: stable tails, in-range ramped weights. (With
/// no RBF units the center rules don't apply.)
fn clean_driver(name: &str) -> AnyModel {
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx_with_tail(0.2),
        i_low: narx_with_tail(0.2),
        up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    })
}

/// Same driver with one switching weight pushed outside [-0.5, 1.5]:
/// loads fine (the clamp lives in extraction), warns M007.
fn hot_weight_driver(name: &str) -> AnyModel {
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx_with_tail(0.2),
        i_low: narx_with_tail(0.2),
        up: WeightSequence::new(vec![0.0, 3.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    })
}

/// Driver whose output-feedback tail sits outside the unit circle: passes
/// `validate()` (which checks shape, not dynamics), warns M002.
fn unstable_tail_driver(name: &str) -> AnyModel {
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx_with_tail(1.2),
        i_low: narx_with_tail(0.2),
        up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    })
}

/// Receiver whose ARX pole sits exactly on the unit circle: spectral
/// radius 1.0 clears `validate()` but fails the Jury margin — the only
/// error-severity model defect reachable from an on-disk artifact.
fn marginal_receiver(name: &str) -> AnyModel {
    AnyModel::Receiver(ReceiverModel {
        name: name.into(),
        ts: 25e-12,
        vdd: 1.8,
        linear: ArxModel::from_coefficients(
            ArxOrders { na: 1, nb: 1 },
            vec![1.0],
            vec![0.1, -0.05],
        )
        .unwrap(),
        up: narx_with_tail(0.2),
        down: narx_with_tail(0.2),
    })
}

fn save(dir: &Path, file: &str, model: AnyModel) -> PathBuf {
    let path = dir.join(file);
    save_artifact_to_path(&Artifact::single(model), &path).unwrap();
    path
}

#[test]
fn clean_artifact_exits_zero() {
    let dir = temp_dir("clean");
    let path = save(&dir, "drv.mdlx", clean_driver("drv"));
    let out = mdl_lint(&[path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("lint: 0 error(s), 0 warning(s), 0 info(s)"),
        "got: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_finding_exits_one_with_code() {
    let dir = temp_dir("m001");
    let path = save(&dir, "rx.mdlx", marginal_receiver("rx"));
    let out = mdl_lint(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[M001]"), "got: {stdout}");
    assert!(stdout.contains("hint:"), "got: {stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("1 error-severity finding(s)"),
        "got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warning_exits_zero_and_deny_allow_override() {
    let dir = temp_dir("m007");
    let path = save(&dir, "drv.mdlx", hot_weight_driver("drv"));
    let path = path.to_str().unwrap();

    // Default policy: warnings don't fail the run.
    let out = mdl_lint(&[path]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[M007]"), "got: {stdout}");

    // --deny promotes the code to error severity and flips the exit code.
    let out = mdl_lint(&[path, "--deny", "M007"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[M007]"), "got: {stdout}");

    // --allow suppresses the finding entirely.
    let out = mdl_lint(&[path, "--allow", "M007"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("lint: 0 error(s), 0 warning(s), 0 info(s)"),
        "got: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_code_is_usage_error() {
    let dir = temp_dir("usage");
    let path = save(&dir, "drv.mdlx", clean_driver("drv"));
    let out = mdl_lint(&[path.to_str().unwrap(), "--deny", "Z999"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown diagnostic code 'Z999'"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn directory_mode_aggregates_and_json_reports_load_failures() {
    let dir = temp_dir("store");
    save(&dir, "clean.mdlx", clean_driver("drv_ok"));
    save(&dir, "tail.mdlx", unstable_tail_driver("drv_tail"));
    save(&dir, "rx.mdlx", marginal_receiver("rx_bad"));
    std::fs::write(dir.join("garbage.mdlx"), "not an artifact\n").unwrap();

    let out = mdl_lint(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "error + load failure present");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("LOAD FAIL"), "got: {stdout}");
    assert!(stdout.contains("garbage.mdlx"), "got: {stdout}");
    // Findings carry the source file ahead of the model subject.
    assert!(stdout.contains("rx.mdlx"), "got: {stdout}");
    assert!(stdout.contains("error[M001]"), "got: {stdout}");
    assert!(stdout.contains("warning[M002]"), "got: {stdout}");

    // Machine-readable shape: load failures and the report side by side.
    let out = mdl_lint(&[dir.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(
        json.contains("\"load_failures\":[{\"path\":"),
        "got: {json}"
    );
    assert!(json.contains("\"code\":\"M001\""), "got: {json}");
    assert!(json.contains("\"code\":\"M002\""), "got: {json}");
    assert!(json.contains("\"errors\":1"), "got: {json}");
    std::fs::remove_dir_all(&dir).ok();
}
