//! Pseudo-random binary sequences (PRBS-7/15/31).
//!
//! Maximal-length Fibonacci LFSRs with the standard ITU-T O.150 feedback
//! polynomials:
//!
//! | order | polynomial        | period       |
//! |-------|-------------------|--------------|
//! | 7     | x⁷ + x⁶ + 1       | 127          |
//! | 15    | x¹⁵ + x¹⁴ + 1     | 32 767       |
//! | 31    | x³¹ + x²⁸ + 1     | 2³¹ − 1      |
//!
//! A maximal sequence of order *n* visits every nonzero state exactly once
//! per period, so it is balanced to within one bit (2ⁿ⁻¹ ones,
//! 2ⁿ⁻¹ − 1 zeros) and has the textbook run-length distribution — the
//! properties the proptests in this module pin down.
//!
//! Seeding is deterministic: the `u64` seed folds onto the nonzero state
//! space, so the same seed always produces the same bit stream and every
//! seed yields a valid (never-stuck) generator.

/// Which maximal-length sequence to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrbsOrder {
    /// PRBS-7: x⁷ + x⁶ + 1, period 127.
    P7,
    /// PRBS-15: x¹⁵ + x¹⁴ + 1, period 32 767.
    P15,
    /// PRBS-31: x³¹ + x²⁸ + 1, period 2³¹ − 1.
    P31,
}

impl PrbsOrder {
    /// Parses the conventional order tag (7, 15 or 31).
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            7 => Some(PrbsOrder::P7),
            15 => Some(PrbsOrder::P15),
            31 => Some(PrbsOrder::P31),
            _ => None,
        }
    }

    /// The LFSR register width `n`.
    pub fn order(self) -> u32 {
        match self {
            PrbsOrder::P7 => 7,
            PrbsOrder::P15 => 15,
            PrbsOrder::P31 => 31,
        }
    }

    /// The conventional order tag (7, 15 or 31), for reports.
    pub fn tag(self) -> u32 {
        self.order()
    }

    /// The sequence period `2ⁿ − 1`.
    pub fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }

    /// Zero-based feedback tap positions `(n − 1, t − 1)` of the
    /// polynomial `xⁿ + xᵗ + 1`.
    fn taps(self) -> (u32, u32) {
        match self {
            PrbsOrder::P7 => (6, 5),
            PrbsOrder::P15 => (14, 13),
            PrbsOrder::P31 => (30, 27),
        }
    }
}

/// A running PRBS generator. Iterates bits forever (the sequence is
/// periodic); use [`prbs_pattern`] for a bounded `'0'`/`'1'` string.
#[derive(Debug, Clone)]
pub struct Prbs {
    order: PrbsOrder,
    state: u64,
}

impl Prbs {
    /// A generator of `order` seeded deterministically from `seed`.
    ///
    /// The seed is reduced onto `[1, 2ⁿ − 1]`, the nonzero state space of
    /// the register — every `u64` seed yields a valid generator, equal
    /// seeds yield identical streams, and the all-zeros stuck state is
    /// unreachable.
    pub fn new(order: PrbsOrder, seed: u64) -> Self {
        Prbs {
            order,
            state: (seed % order.period()) + 1,
        }
    }

    /// The sequence order.
    pub fn order(&self) -> PrbsOrder {
        self.order
    }

    /// The current register state (nonzero, `< 2ⁿ`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the register one step and returns the output bit (the
    /// feedback bit of the Fibonacci form).
    pub fn next_bit(&mut self) -> bool {
        let (a, b) = self.order.taps();
        let fb = ((self.state >> a) ^ (self.state >> b)) & 1;
        let mask = self.order.period(); // 2ⁿ − 1: an n-bit all-ones mask.
        self.state = ((self.state << 1) | fb) & mask;
        fb == 1
    }
}

impl Iterator for Prbs {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

/// The first `bits` bits of the seeded sequence as a `'0'`/`'1'` pattern
/// string — the format the workspace's bit-pattern port stimulus consumes
/// directly.
pub fn prbs_pattern(order: PrbsOrder, bits: usize, seed: u64) -> String {
    Prbs::new(order, seed)
        .take(bits)
        .map(|b| if b { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Cyclic run-length histogram of one period: `(ones_runs, zeros_runs)`
    /// indexed by run length.
    fn run_lengths(order: PrbsOrder, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let bits: Vec<bool> = Prbs::new(order, seed)
            .take(order.period() as usize)
            .collect();
        let n = bits.len();
        // Start at a cyclic run boundary so wraparound runs count once.
        let start = (0..n)
            .find(|&i| bits[i] != bits[(i + n - 1) % n])
            .expect("a maximal sequence is not constant");
        let cap = order.order() as usize + 1;
        let (mut ones, mut zeros) = (vec![0usize; cap + 1], vec![0usize; cap + 1]);
        let mut i = 0;
        while i < n {
            let value = bits[(start + i) % n];
            let mut len = 0;
            while i < n && bits[(start + i) % n] == value {
                len += 1;
                i += 1;
            }
            let slot = len.min(cap);
            if value {
                ones[slot] += 1;
            } else {
                zeros[slot] += 1;
            }
        }
        (ones, zeros)
    }

    #[test]
    fn periods_are_exactly_2n_minus_1() {
        // Exhaustive for the enumerable orders: the register returns to
        // its initial state after exactly 2ⁿ − 1 steps and never earlier.
        for order in [PrbsOrder::P7, PrbsOrder::P15] {
            let mut gen = Prbs::new(order, 1);
            let initial = gen.state();
            let period = order.period();
            for step in 1..=period {
                gen.next_bit();
                if gen.state() == initial {
                    assert_eq!(step, period, "short cycle in {order:?}");
                }
            }
            assert_eq!(gen.state(), initial, "{order:?} did not close its cycle");
        }
    }

    #[test]
    fn prbs31_never_degenerates_over_a_long_window() {
        // 2³¹ − 1 steps are not enumerable in a unit test; instead check
        // the register stays nonzero and aperiodic-looking over a window
        // far longer than any low-order cycle.
        let mut gen = Prbs::new(PrbsOrder::P31, 0xdead_beef);
        let initial = gen.state();
        for step in 1..=100_000u64 {
            gen.next_bit();
            assert_ne!(gen.state(), 0, "stuck state at step {step}");
            assert_ne!(gen.state(), initial, "short cycle at step {step}");
        }
    }

    proptest! {
        // Each case walks full PRBS-7/15 periods; 16 cases keep the suite
        // fast while still sampling the seed space.
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn balance_within_one_bit_over_a_period(seed in any::<u64>()) {
            for order in [PrbsOrder::P7, PrbsOrder::P15] {
                let ones = Prbs::new(order, seed)
                    .take(order.period() as usize)
                    .filter(|&b| b)
                    .count() as u64;
                let zeros = order.period() - ones;
                prop_assert_eq!(ones, zeros + 1, "{:?} unbalanced", order);
            }
        }

        #[test]
        fn seed_determinism_and_state_folding(seed in any::<u64>()) {
            let a = prbs_pattern(PrbsOrder::P31, 256, seed);
            let b = prbs_pattern(PrbsOrder::P31, 256, seed);
            prop_assert_eq!(&a, &b, "same seed, same stream");
            // Seeds congruent modulo the period alias to the same state.
            let c = prbs_pattern(PrbsOrder::P7, 64, seed % PrbsOrder::P7.period());
            let d = prbs_pattern(PrbsOrder::P7, 64, seed);
            prop_assert_eq!(c, d);
        }

        #[test]
        fn run_length_distribution_is_the_maximal_sequence_one(seed in any::<u64>()) {
            // A maximal sequence of order n has, per period: one run of n
            // ones, one run of n−1 zeros, and 2^(n−2−k) runs of each value
            // for lengths 1 ≤ k ≤ n−2.
            for order in [PrbsOrder::P7, PrbsOrder::P15] {
                let n = order.order() as usize;
                let (ones, zeros) = run_lengths(order, seed);
                prop_assert_eq!(ones[n], 1, "{:?}: runs of {} ones", order, n);
                prop_assert_eq!(zeros[n - 1], 1, "{:?}: runs of {} zeros", order, n - 1);
                for k in 1..=(n - 2) {
                    let expect = 1usize << (n - 2 - k);
                    prop_assert_eq!(ones[k], expect, "{:?}: one-runs of {}", order, k);
                    prop_assert_eq!(zeros[k], expect, "{:?}: zero-runs of {}", order, k);
                }
            }
        }
    }

    #[test]
    fn pattern_string_is_bit_chars() {
        let p = prbs_pattern(PrbsOrder::P7, 127, 42);
        assert_eq!(p.len(), 127);
        assert!(p.chars().all(|c| c == '0' || c == '1'));
        assert_ne!(p, prbs_pattern(PrbsOrder::P7, 127, 43));
    }

    #[test]
    fn order_tags_round_trip() {
        for tag in [7u32, 15, 31] {
            let order = PrbsOrder::from_tag(tag).unwrap();
            assert_eq!(order.tag(), tag);
            assert_eq!(order.period(), (1u64 << tag) - 1);
        }
        assert!(PrbsOrder::from_tag(9).is_none());
    }
}
