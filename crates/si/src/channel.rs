//! Parameterized channel topologies.
//!
//! [`ChannelSpec`] is the combinatorial replacement for hand-written bus
//! fixtures: lane count, segment count/length, coupling strength,
//! termination scheme and pad loading are free parameters, and
//! [`ChannelSpec::build`] expands the resulting coupled line into a
//! circuit through [`circuit::mtl::expand_coupled_line`]. Driven at high
//! lane/segment counts this is also the generator of the
//! 10⁴⁺-unknown MNA systems the sparse-LU roadmap items target.

use circuit::devices::{Capacitor, Resistor};
use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use circuit::{Circuit, Node, Result, GROUND};

/// Far-end termination scheme of every lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Resistor matched to the lane's nominal characteristic impedance.
    Matched,
    /// A fixed resistance (Ω) to ground.
    Resistive(f64),
    /// No resistive termination (CMOS receiver input).
    Open,
}

/// A parameterized multi-lane channel.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Coupled signal lanes.
    pub lanes: usize,
    /// RLGC segments the line expands into.
    pub segments: usize,
    /// Physical length per segment (m).
    pub segment_length: f64,
    /// Coupling-strength scale on the mutual L/C matrices: 1.0 keeps the
    /// [`CoupledLineSpec::bus`] nearest-neighbor coupling, 0.0 decouples
    /// the lanes entirely.
    pub coupling: f64,
    /// Far-end termination scheme.
    pub termination: Termination,
    /// Far-end pad capacitance per lane (F); 0 disables.
    pub load_cap: f64,
}

/// Port nodes of a built channel.
#[derive(Debug, Clone)]
pub struct ChannelPorts {
    /// Near-end (transmitter) node per lane.
    pub near: Vec<Node>,
    /// Far-end (receiver) node per lane.
    pub far: Vec<Node>,
    /// Nominal characteristic impedance of lane 0 (Ω).
    pub z0: f64,
    /// Nominal one-way delay of lane 0 (s).
    pub delay: f64,
}

impl ChannelSpec {
    /// The standard short channel: 4 segments of 25 mm, nominal coupling,
    /// matched terminations, 2 pF pads.
    pub fn new(lanes: usize) -> Self {
        ChannelSpec {
            lanes,
            segments: 4,
            segment_length: 0.025,
            coupling: 1.0,
            termination: Termination::Matched,
            load_cap: 2e-12,
        }
    }

    /// Total physical length (m).
    pub fn length(&self) -> f64 {
        self.segments as f64 * self.segment_length
    }

    /// The per-unit-length line description: the 50 Ω-class
    /// [`CoupledLineSpec::bus`] geometry with the mutual L/C matrices
    /// scaled by the coupling strength.
    pub fn line_spec(&self) -> CoupledLineSpec {
        let mut spec = CoupledLineSpec::bus(self.lanes, self.length());
        for i in 0..self.lanes {
            for j in 0..self.lanes {
                if i != j {
                    spec.l_mutual
                        .set(i, j, spec.l_mutual.get(i, j) * self.coupling);
                    spec.c_mutual
                        .set(i, j, spec.c_mutual.get(i, j) * self.coupling);
                }
            }
        }
        spec
    }

    /// Expands the channel into `ckt`: the coupled line plus the far-end
    /// terminations and pad capacitors. `f_band` is the skin-effect fit
    /// band — use roughly `(1/t_bit, 1/t_rise)` of the intended signals.
    ///
    /// The near-end nodes are returned bare: the caller attaches drivers
    /// (macromodel lanes, ideal NRZ sources) there.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`circuit::Error`] for a degenerate spec
    /// (zero lanes or segments, non-positive lengths).
    pub fn build(&self, ckt: &mut Circuit, f_band: (f64, f64)) -> Result<ChannelPorts> {
        let spec = self.line_spec();
        let line = expand_coupled_line(ckt, &spec, self.segments, f_band)?;
        let z0 = spec.z0(0);
        for (lane, &far) in line.far.iter().enumerate() {
            match self.termination {
                Termination::Matched => {
                    ckt.add(Resistor::new(format!("chan_rt{lane}"), far, GROUND, z0));
                }
                Termination::Resistive(r) => {
                    ckt.add(Resistor::new(format!("chan_rt{lane}"), far, GROUND, r));
                }
                Termination::Open => {}
            }
            if self.load_cap > 0.0 {
                ckt.add(Capacitor::new(
                    format!("chan_cl{lane}"),
                    far,
                    GROUND,
                    self.load_cap,
                ));
            }
        }
        Ok(ChannelPorts {
            near: line.near,
            far: line.far,
            z0,
            delay: spec.delay(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::devices::{SourceWaveform, VoltageSource};
    use circuit::TranParams;

    #[test]
    fn builds_an_eight_lane_channel() {
        let spec = ChannelSpec::new(8);
        let mut ckt = Circuit::new();
        let ports = spec.build(&mut ckt, (1e7, 2e10)).unwrap();
        assert_eq!(ports.near.len(), 8);
        assert_eq!(ports.far.len(), 8);
        assert!(ports.z0 > 40.0 && ports.z0 < 60.0, "z0 {}", ports.z0);
        assert!(ports.delay > 0.0);
        // 8 lanes × 4 segments of RLGC cells dwarf a hand-written fixture.
        assert!(
            ckt.unknown_count() > 100,
            "unknowns {}",
            ckt.unknown_count()
        );
    }

    #[test]
    fn unknowns_scale_with_segments() {
        let count = |segments: usize| {
            let mut spec = ChannelSpec::new(4);
            spec.segments = segments;
            let mut ckt = Circuit::new();
            spec.build(&mut ckt, (1e7, 2e10)).unwrap();
            ckt.unknown_count()
        };
        assert!(count(16) > 2 * count(4));
    }

    #[test]
    fn decoupled_channel_has_no_crosstalk() {
        // Drive lane 0 of a coupling=0 channel; the victim lane must stay
        // quiet while the coupled build shows aggressor energy.
        let run = |coupling: f64| {
            let mut spec = ChannelSpec::new(2);
            spec.coupling = coupling;
            let mut ckt = Circuit::new();
            let ports = spec.build(&mut ckt, (1e7, 2e10)).unwrap();
            ckt.add(VoltageSource::new(
                "vdrv",
                ports.near[0],
                GROUND,
                SourceWaveform::step(0.0, 1.0, 0.1e-9),
            ));
            ckt.add(Resistor::new("rterm1", ports.near[1], GROUND, 50.0));
            let res = ckt.transient(TranParams::new(20e-12, 4e-9)).unwrap();
            res.voltage(ports.far[1])
                .values()
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let quiet = run(0.0);
        let coupled = run(1.0);
        assert!(quiet < 1e-6, "decoupled victim saw {quiet} V");
        assert!(
            coupled > 10.0 * quiet.max(1e-9),
            "coupled victim {coupled} V"
        );
    }

    #[test]
    fn termination_schemes_install_expected_elements() {
        for (term, cap) in [
            (Termination::Matched, 0.0),
            (Termination::Resistive(75.0), 1e-12),
            (Termination::Open, 2e-12),
        ] {
            let mut spec = ChannelSpec::new(2);
            spec.termination = term;
            spec.load_cap = cap;
            let mut ckt = Circuit::new();
            let ports = spec.build(&mut ckt, (1e7, 2e10)).unwrap();
            assert_eq!(ports.far.len(), 2);
        }
    }

    #[test]
    fn degenerate_specs_error_instead_of_panicking() {
        let mut bad = ChannelSpec::new(0);
        let mut ckt = Circuit::new();
        assert!(bad.build(&mut ckt, (1e7, 2e10)).is_err());
        bad = ChannelSpec::new(2);
        bad.segments = 0;
        assert!(bad.build(&mut ckt, (1e7, 2e10)).is_err());
    }
}
