//! Eye-diagram folding and scalar eye metrics.
//!
//! [`EyeAnalyzer`] folds a transient waveform at the recovered bit clock
//! into a fixed-resolution [`EyeRaster`] and reduces it to the scalar
//! figures a signal-integrity sign-off consumes ([`EyeMetrics`]): eye
//! height and width at a BER-proxy percentile, peak-to-peak and RMS jitter
//! at the mid-level crossing, overshoot/undershoot, and the recovered
//! rails.
//!
//! The bit clock is *recovered*, not assumed: the nominal unit interval is
//! given, but the fold phase is the circular mean of the mid-level
//! crossing times modulo the unit interval, so a fixed propagation delay
//! through a channel does not smear the eye. Percentiles use the shared
//! nearest-rank definition ([`numkit::stats::percentile_nearest_rank`]) —
//! the same code path as the serve-daemon latency reports.
//!
//! The analyzer reuses every internal buffer across calls (fleet sweeps
//! fold thousands of eyes) and is fully deterministic: same waveform, same
//! configuration, bit-identical metrics. Degenerate inputs — a flat
//! waveform, a stream with no transitions — report a *closed* eye instead
//! of panicking.

use circuit::Waveform;
use numkit::stats::percentile_nearest_rank;

/// Eye-folding configuration.
#[derive(Debug, Clone, Copy)]
pub struct EyeConfig {
    /// Nominal unit interval (s).
    pub bit_time: f64,
    /// Time bins per unit interval in the raster.
    pub cols: usize,
    /// Voltage bins in the raster.
    pub rows: usize,
    /// BER-proxy percentile `q` for eye height/width: the eye opening is
    /// measured between the `q` / `1 − q` tails of the level and crossing
    /// distributions instead of worst-case samples.
    pub ber_percentile: f64,
    /// Startup unit intervals excluded from the fold (line charge-up).
    pub skip_ui: usize,
}

impl EyeConfig {
    /// The standard fold: 64 × 48 raster, 1 % BER-proxy tails, 2 startup
    /// UIs skipped.
    pub fn new(bit_time: f64) -> Self {
        EyeConfig {
            bit_time,
            cols: 64,
            rows: 48,
            ber_percentile: 0.01,
            skip_ui: 2,
        }
    }
}

/// The folded eye: sample counts on a `rows × cols` grid covering one unit
/// interval (time) by the observed voltage range.
#[derive(Debug, Clone)]
pub struct EyeRaster {
    /// Time bins per unit interval.
    pub cols: usize,
    /// Voltage bins.
    pub rows: usize,
    /// Row-major counts; row 0 is the *lowest* voltage bin.
    pub counts: Vec<u32>,
    /// Voltage of the bottom raster edge (V).
    pub v_lo: f64,
    /// Voltage of the top raster edge (V).
    pub v_hi: f64,
}

impl EyeRaster {
    fn new(cols: usize, rows: usize) -> Self {
        EyeRaster {
            cols,
            rows,
            counts: vec![0; cols * rows],
            v_lo: 0.0,
            v_hi: 0.0,
        }
    }

    /// Sample count of bin (`row`, `col`).
    pub fn count(&self, row: usize, col: usize) -> u32 {
        self.counts[row * self.cols + col]
    }

    /// A terminal rendering: one character per bin, density-ramped,
    /// highest voltage row first.
    pub fn render_ascii(&self) -> String {
        const RAMP: [char; 5] = [' ', '.', ':', '+', '#'];
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let c = self.count(row, col);
                let idx = if c == 0 {
                    0
                } else {
                    // Log-ish ramp: sparse trails stay visible next to the
                    // heavily-hit rails.
                    1 + (3 * c as usize).div_ceil(peak as usize).min(3)
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

/// Scalar eye metrics. All voltages in volts, times in seconds.
#[derive(Debug, Clone, Copy)]
pub struct EyeMetrics {
    /// Whether the eye is open (positive height and width).
    pub open: bool,
    /// Vertical opening at the sampling instant between the BER-proxy
    /// tails of the high and low level distributions; non-positive when
    /// the eye is closed.
    pub eye_height: f64,
    /// Horizontal opening in unit intervals (1.0 = jitter-free).
    pub eye_width_ui: f64,
    /// Peak-to-peak crossing jitter (s).
    pub jitter_pp_s: f64,
    /// RMS crossing jitter about the recovered clock phase (s).
    pub jitter_rms_s: f64,
    /// Worst excursion above the settled high rail (V).
    pub overshoot: f64,
    /// Worst excursion below the settled low rail (V).
    pub undershoot: f64,
    /// Recovered high rail (median of the high cluster at the sampling
    /// instant, V).
    pub v_high: f64,
    /// Recovered low rail (V).
    pub v_low: f64,
    /// Mid-level crossings observed after the startup skip.
    pub crossings: usize,
    /// Waveform samples folded.
    pub samples: usize,
}

impl EyeMetrics {
    /// The closed-eye report used for degenerate inputs (flat waveform,
    /// no transitions): everything zero, `open == false`.
    pub fn closed(samples: usize, crossings: usize) -> Self {
        EyeMetrics {
            open: false,
            eye_height: 0.0,
            eye_width_ui: 0.0,
            jitter_pp_s: 0.0,
            jitter_rms_s: 0.0,
            overshoot: 0.0,
            undershoot: 0.0,
            v_high: 0.0,
            v_low: 0.0,
            crossings,
            samples,
        }
    }
}

/// Wraps `x` onto `[0, period)`.
fn wrap(x: f64, period: f64) -> f64 {
    let w = x - period * (x / period).floor();
    if w >= period {
        0.0
    } else {
        w
    }
}

/// The eye-folding engine. Construct once, call [`EyeAnalyzer::analyze`]
/// per waveform — every internal buffer (raster counts, level clusters,
/// crossing deviations) is reused across calls.
#[derive(Debug, Clone)]
pub struct EyeAnalyzer {
    cfg: EyeConfig,
    raster: EyeRaster,
    highs: Vec<f64>,
    lows: Vec<f64>,
    devs: Vec<f64>,
}

impl EyeAnalyzer {
    /// An analyzer for the given fold configuration.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive bit time, a zero-sized raster, or a
    /// BER-proxy percentile outside `(0, 0.5)` — fold misconfiguration is
    /// a programming error in the workload definition.
    pub fn new(cfg: EyeConfig) -> Self {
        assert!(cfg.bit_time > 0.0, "bit time must be positive");
        assert!(cfg.cols > 0 && cfg.rows > 0, "raster must be non-empty");
        assert!(
            cfg.ber_percentile > 0.0 && cfg.ber_percentile < 0.5,
            "BER-proxy percentile must be in (0, 0.5)"
        );
        EyeAnalyzer {
            raster: EyeRaster::new(cfg.cols, cfg.rows),
            cfg,
            highs: Vec::new(),
            lows: Vec::new(),
            devs: Vec::new(),
        }
    }

    /// The fold configuration.
    pub fn config(&self) -> &EyeConfig {
        &self.cfg
    }

    /// The raster of the most recent [`EyeAnalyzer::analyze`] call.
    pub fn raster(&self) -> &EyeRaster {
        &self.raster
    }

    /// Folds `wave` at the recovered bit clock and returns the scalar
    /// metrics; the raster stays available through
    /// [`EyeAnalyzer::raster`]. Degenerate inputs return
    /// [`EyeMetrics::closed`].
    pub fn analyze(&mut self, wave: &Waveform) -> EyeMetrics {
        let t_ui = self.cfg.bit_time;
        let t_skip = self.cfg.skip_ui as f64 * t_ui;
        self.raster.counts.iter_mut().for_each(|c| *c = 0);
        self.highs.clear();
        self.lows.clear();
        self.devs.clear();

        // Observed range over the analyzed window.
        let (mut v_min, mut v_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut samples = 0usize;
        for (&t, &v) in wave.times().iter().zip(wave.values()) {
            if t < t_skip {
                continue;
            }
            samples += 1;
            v_min = v_min.min(v);
            v_max = v_max.max(v);
        }
        self.raster.v_lo = if v_min.is_finite() { v_min } else { 0.0 };
        self.raster.v_hi = if v_max.is_finite() { v_max } else { 0.0 };
        if samples == 0 || (v_max - v_min) < 1e-9 {
            // Flat stream (all-zeros pattern, dead driver): closed eye.
            return EyeMetrics::closed(samples, 0);
        }
        let v_mid = 0.5 * (v_min + v_max);

        // Mid-level crossings after the startup skip.
        let crossings = wave.threshold_crossings(v_mid);
        let times: Vec<f64> = crossings
            .iter()
            .map(|c| c.time)
            .filter(|&t| t >= t_skip)
            .collect();
        if times.len() < 2 {
            return EyeMetrics::closed(samples, times.len());
        }

        // Clock recovery: circular mean of the crossing phases modulo the
        // unit interval — immune to the phase wraparound a plain mean
        // would smear.
        let two_pi = 2.0 * std::f64::consts::PI;
        let (mut s, mut c) = (0.0, 0.0);
        for &t in &times {
            let theta = two_pi * wrap(t, t_ui) / t_ui;
            s += theta.sin();
            c += theta.cos();
        }
        let phase = wrap(s.atan2(c) / two_pi * t_ui, t_ui);

        // Crossing deviations from the recovered clock, in
        // [-T/2, T/2).
        for &t in &times {
            self.devs
                .push(wrap(t - phase + 0.5 * t_ui, t_ui) - 0.5 * t_ui);
        }
        let mean_dev = self.devs.iter().sum::<f64>() / self.devs.len() as f64;
        let jitter_rms_s = (self
            .devs
            .iter()
            .map(|d| (d - mean_dev) * (d - mean_dev))
            .sum::<f64>()
            / self.devs.len() as f64)
            .sqrt();
        let (mut d_min, mut d_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &d in &self.devs {
            d_min = d_min.min(d);
            d_max = d_max.max(d);
        }
        let jitter_pp_s = d_max - d_min;

        // Fold every sample; collect the level clusters in the central
        // quarter-UI sampling window around the eye center (T/2 after the
        // recovered crossing phase).
        let v_span = v_max - v_min;
        for (&t, &v) in wave.times().iter().zip(wave.values()) {
            if t < t_skip {
                continue;
            }
            let x = wrap(t - phase, t_ui);
            let col = ((x / t_ui * self.cfg.cols as f64) as usize).min(self.cfg.cols - 1);
            let row =
                (((v - v_min) / v_span * self.cfg.rows as f64) as usize).min(self.cfg.rows - 1);
            self.raster.counts[row * self.cfg.cols + col] += 1;
            if (x - 0.5 * t_ui).abs() <= 0.125 * t_ui {
                if v >= v_mid {
                    self.highs.push(v);
                } else {
                    self.lows.push(v);
                }
            }
        }
        if self.highs.is_empty() || self.lows.is_empty() {
            return EyeMetrics::closed(samples, times.len());
        }

        // BER-proxy opening: the q-tail of the highs against the
        // (1 − q)-tail of the lows, nearest-rank like every other
        // percentile in the workspace.
        let q = self.cfg.ber_percentile;
        self.highs.sort_by(f64::total_cmp);
        self.lows.sort_by(f64::total_cmp);
        self.devs.sort_by(f64::total_cmp);
        let high_floor = percentile_nearest_rank(&self.highs, q);
        let low_ceil = percentile_nearest_rank(&self.lows, 1.0 - q);
        let eye_height = high_floor - low_ceil;
        let dev_lo = percentile_nearest_rank(&self.devs, q);
        let dev_hi = percentile_nearest_rank(&self.devs, 1.0 - q);
        let eye_width_ui = (1.0 - (dev_hi - dev_lo) / t_ui).clamp(0.0, 1.0);

        let v_high = percentile_nearest_rank(&self.highs, 0.5);
        let v_low = percentile_nearest_rank(&self.lows, 0.5);
        EyeMetrics {
            open: eye_height > 0.0 && eye_width_ui > 0.0,
            eye_height,
            eye_width_ui,
            jitter_pp_s,
            jitter_rms_s,
            overshoot: (v_max - v_high).max(0.0),
            undershoot: (v_low - v_min).max(0.0),
            v_high,
            v_low,
            crossings: times.len(),
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrz::NrzShaper;
    use crate::prbs::{prbs_pattern, PrbsOrder};

    fn trapezoid_eye(pattern: &str) -> (EyeMetrics, EyeAnalyzer) {
        let shaper = NrzShaper {
            bit_time: 1e-9,
            rise: 0.2e-9,
            fall: 0.2e-9,
            low: 0.0,
            high: 1.0,
            pre_emphasis: 0.0,
        };
        let wave = shaper.waveform(pattern, 0.01e-9);
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(1e-9));
        let metrics = analyzer.analyze(&wave);
        (metrics, analyzer)
    }

    #[test]
    fn golden_trapezoid_alternating_pattern() {
        // An ideal alternating trapezoid: every crossing at the same
        // phase, fully settled rails. Analytically: height 1 V, width
        // 1 UI, zero jitter, zero over/undershoot.
        let (m, an) = trapezoid_eye("0101010101010101");
        assert!(m.open);
        assert!((m.eye_height - 1.0).abs() < 1e-9, "height {}", m.eye_height);
        assert!(
            (m.eye_width_ui - 1.0).abs() < 1e-6,
            "width {}",
            m.eye_width_ui
        );
        assert!(m.jitter_pp_s < 1e-13, "pp jitter {}", m.jitter_pp_s);
        assert!(m.jitter_rms_s < 1e-13, "rms jitter {}", m.jitter_rms_s);
        assert!(m.overshoot < 1e-9 && m.undershoot < 1e-9);
        assert!((m.v_high - 1.0).abs() < 1e-9);
        assert!(m.v_low.abs() < 1e-9);
        // 14 analyzed transitions (2 UIs skipped): one crossing per
        // boundary.
        assert_eq!(m.crossings, 14);
        // The raster saw every analyzed sample.
        let folded: u32 = an.raster().counts.iter().sum();
        assert_eq!(folded as usize, m.samples);
    }

    #[test]
    fn golden_known_jitter_from_alternating_edge_offsets() {
        // Hand-built NRZ with edges alternately on time and late by
        // delta: pp jitter = delta, rms = delta/2, width = 1 − delta/T.
        let (t_ui, delta, dt) = (1e-9, 0.08e-9, 0.005e-9);
        let bits = 24usize;
        let rise = 0.1e-9;
        let mut t = Vec::new();
        let mut y = Vec::new();
        let n = (bits as f64 * t_ui / dt) as usize;
        for k in 0..=n {
            let tk = k as f64 * dt;
            let i = ((tk / t_ui) as usize).min(bits - 1);
            let (lo, hi) = if i.is_multiple_of(2) {
                (1.0, 0.0)
            } else {
                (0.0, 1.0)
            };
            // Odd-indexed boundaries start their edge late by delta.
            let start = i as f64 * t_ui + if i.is_multiple_of(2) { 0.0 } else { delta };
            let phase = tk - start;
            let v = if phase <= 0.0 {
                lo
            } else if phase >= rise {
                hi
            } else {
                lo + (hi - lo) * phase / rise
            };
            t.push(tk);
            y.push(v);
        }
        let wave = Waveform::from_parts(t, y);
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(t_ui));
        let m = analyzer.analyze(&wave);
        assert!(m.open);
        assert!(
            (m.jitter_pp_s - delta).abs() < 1e-12,
            "pp {} vs {}",
            m.jitter_pp_s,
            delta
        );
        assert!(
            (m.jitter_rms_s - 0.5 * delta).abs() < 1e-12,
            "rms {} vs {}",
            m.jitter_rms_s,
            0.5 * delta
        );
        assert!(
            (m.eye_width_ui - (1.0 - delta / t_ui)).abs() < 1e-6,
            "width {}",
            m.eye_width_ui
        );
    }

    #[test]
    fn degenerate_streams_report_closed_eyes_without_panicking() {
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(1e-9));
        // All-zeros stream: flat waveform.
        let n = 1000;
        let flat = Waveform::from_parts((0..n).map(|k| k as f64 * 0.01e-9).collect(), vec![0.0; n]);
        let m = analyzer.analyze(&flat);
        assert!(!m.open);
        assert_eq!(m.eye_height, 0.0);
        assert_eq!(m.crossings, 0);
        // A single step: one crossing is not an eye.
        let step = Waveform::from_parts(
            (0..n).map(|k| k as f64 * 0.01e-9).collect(),
            (0..n).map(|k| if k > n / 2 { 1.0 } else { 0.0 }).collect(),
        );
        let m = analyzer.analyze(&step);
        assert!(!m.open);
        assert!(m.crossings <= 1);
        // Empty waveform.
        let m = analyzer.analyze(&Waveform::empty());
        assert!(!m.open);
        assert_eq!(m.samples, 0);
    }

    #[test]
    fn analysis_is_deterministic_and_reuses_buffers() {
        let shaper = NrzShaper::new(2e-9);
        let wave = shaper.waveform(&prbs_pattern(PrbsOrder::P7, 96, 7), 0.025e-9);
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(2e-9));
        let a = analyzer.analyze(&wave);
        // Interleave an unrelated analysis, then repeat: bit-identical.
        analyzer.analyze(&shaper.waveform("0110", 0.025e-9));
        let b = analyzer.analyze(&wave);
        assert_eq!(a.eye_height.to_bits(), b.eye_height.to_bits());
        assert_eq!(a.eye_width_ui.to_bits(), b.eye_width_ui.to_bits());
        assert_eq!(a.jitter_rms_s.to_bits(), b.jitter_rms_s.to_bits());
        assert_eq!(a.crossings, b.crossings);
        assert!(a.open);
    }

    #[test]
    fn delayed_waveform_recovers_the_clock() {
        // A constant propagation delay must not smear the fold: shift the
        // ideal trapezoid by 0.37 UI and expect the same open eye.
        let shaper = NrzShaper::new(1e-9);
        let base = shaper.waveform("01010101010101", 0.01e-9);
        let delayed = Waveform::from_parts(
            base.times().iter().map(|t| t + 0.37e-9).collect(),
            base.values().to_vec(),
        );
        let mut analyzer = EyeAnalyzer::new(EyeConfig::new(1e-9));
        let m = analyzer.analyze(&delayed);
        assert!(m.open, "delayed eye closed: {m:?}");
        assert!(m.eye_height > 0.9, "height {}", m.eye_height);
        assert!(m.eye_width_ui > 0.95, "width {}", m.eye_width_ui);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let (_, analyzer) = trapezoid_eye("01010101");
        let art = analyzer.raster().render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), analyzer.config().rows);
        assert!(lines.iter().all(|l| l.len() == analyzer.config().cols));
        assert!(art.contains('#'), "rails should be dense");
        assert!(art.contains(' '), "the eye opening should be empty");
    }
}
