//! NRZ symbol shaping: bit strings to sampled waveforms.
//!
//! Turns a `'0'`/`'1'` pattern into a non-return-to-zero voltage waveform
//! with finite rise/fall edges and an optional one-tap pre-emphasis boost
//! — the ideal-transmitter stimulus for driving channels and receivers
//! directly, and the synthetic input of the eye-folding golden tests
//! (piecewise-linear edges make eye height, width and jitter analytically
//! known).

use circuit::Waveform;

/// NRZ waveform shaper.
///
/// Levels transition linearly over `rise` (low→high) or `fall`
/// (high→low) seconds starting at each bit boundary. With a nonzero
/// `pre_emphasis` tap, the first bit after every transition over- and
/// under-shoots its rail by `pre_emphasis · (high − low)` — the classic
/// 2-tap FIR transmit equalization that compensates channel loss.
#[derive(Debug, Clone)]
pub struct NrzShaper {
    /// Unit interval (s).
    pub bit_time: f64,
    /// 0 → 100 % rise time (s), shorter than `bit_time`.
    pub rise: f64,
    /// 100 % → 0 fall time (s), shorter than `bit_time`.
    pub fall: f64,
    /// Logic-low level (V).
    pub low: f64,
    /// Logic-high level (V).
    pub high: f64,
    /// Pre-emphasis tap weight in `[0, 0.5)`; 0 disables the tap.
    pub pre_emphasis: f64,
}

impl NrzShaper {
    /// A unit-swing shaper (0 → 1 V) with 10 % edges and no pre-emphasis.
    pub fn new(bit_time: f64) -> Self {
        NrzShaper {
            bit_time,
            rise: 0.1 * bit_time,
            fall: 0.1 * bit_time,
            low: 0.0,
            high: 1.0,
            pre_emphasis: 0.0,
        }
    }

    /// The target level of bit `i`: the rail, plus the pre-emphasis boost
    /// on the first bit after a transition.
    fn level(&self, bits: &[bool], i: usize) -> f64 {
        let rail = if bits[i] { self.high } else { self.low };
        if self.pre_emphasis == 0.0 || i == 0 || bits[i] == bits[i - 1] {
            return rail;
        }
        let boost = self.pre_emphasis * (self.high - self.low);
        if bits[i] {
            rail + boost
        } else {
            rail - boost
        }
    }

    /// Samples the shaped waveform on a uniform `dt` grid covering
    /// `bits.len()` unit intervals (plus the final sample).
    ///
    /// # Panics
    ///
    /// Panics when the pattern contains characters other than `'0'`/`'1'`,
    /// or when `dt`, `bit_time` or the edge times are non-positive /
    /// longer than a unit interval — stimulus misconfiguration is a
    /// programming error in the workload definition.
    pub fn waveform(&self, pattern: &str, dt: f64) -> Waveform {
        assert!(dt > 0.0, "sample step must be positive");
        assert!(self.bit_time > 0.0, "bit time must be positive");
        assert!(
            self.rise > 0.0 && self.rise < self.bit_time,
            "rise time must be in (0, bit_time)"
        );
        assert!(
            self.fall > 0.0 && self.fall < self.bit_time,
            "fall time must be in (0, bit_time)"
        );
        let bits: Vec<bool> = pattern
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid pattern character '{other}'"),
            })
            .collect();
        assert!(!bits.is_empty(), "empty bit pattern");

        let t_stop = bits.len() as f64 * self.bit_time;
        let n = (t_stop / dt).round() as usize;
        let mut t = Vec::with_capacity(n + 1);
        let mut y = Vec::with_capacity(n + 1);
        let mut prev = self.level(&bits, 0);
        for k in 0..=n {
            let tk = k as f64 * dt;
            let i = ((tk / self.bit_time) as usize).min(bits.len() - 1);
            let target = self.level(&bits, i);
            // Track the settled level of the previous bit so each edge
            // ramps from where the last interval ended.
            if i > 0 {
                prev = self.level(&bits, i - 1);
            }
            let phase = tk - i as f64 * self.bit_time;
            let edge = if target >= prev { self.rise } else { self.fall };
            let v = if phase >= edge {
                target
            } else {
                prev + (target - prev) * phase / edge
            };
            t.push(tk);
            y.push(v);
        }
        Waveform::from_parts(t, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_linear_edges_at_bit_boundaries() {
        let shaper = NrzShaper {
            bit_time: 1e-9,
            rise: 0.2e-9,
            fall: 0.2e-9,
            low: 0.0,
            high: 1.0,
            pre_emphasis: 0.0,
        };
        let w = shaper.waveform("010", 0.05e-9);
        // Settled levels at bit centers.
        assert!((w.sample_at(0.5e-9) - 0.0).abs() < 1e-12);
        assert!((w.sample_at(1.5e-9) - 1.0).abs() < 1e-12);
        assert!((w.sample_at(2.5e-9) - 0.0).abs() < 1e-12);
        // Mid-rise exactly halfway up the edge.
        assert!((w.sample_at(1.1e-9) - 0.5).abs() < 1e-9);
        // Mid-fall on the way back down.
        assert!((w.sample_at(2.1e-9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pre_emphasis_boosts_only_transition_bits() {
        let mut shaper = NrzShaper::new(1e-9);
        shaper.pre_emphasis = 0.2;
        let w = shaper.waveform("0110", 0.05e-9);
        // First 1 after the transition is boosted to 1.2 V...
        assert!((w.sample_at(1.5e-9) - 1.2).abs() < 1e-9);
        // ...the repeated 1 settles back on the rail...
        assert!((w.sample_at(2.5e-9) - 1.0).abs() < 1e-9);
        // ...and the 0 after the falling transition undershoots.
        assert!((w.sample_at(3.5e-9) - (-0.2)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid pattern character")]
    fn rejects_non_bit_patterns() {
        NrzShaper::new(1e-9).waveform("01x", 0.1e-9);
    }
}
