//! Signal-integrity workloads for the macromodel fleet.
//!
//! The paper's buffer macromodels exist to be *used*: dropped into
//! production signal-integrity and EMC analyses where the stimulus is a
//! long pseudo-random bit stream, the figure of merit is a statistical eye
//! diagram, and acceptance rests on population statistics over corner and
//! parameter spreads — not on one golden trace. This crate is that
//! workload layer, in four pieces:
//!
//! * [`prbs`] — PRBS-7/15/31 maximal-length LFSR bit generators with
//!   deterministic seeding, emitting `'0'`/`'1'` pattern strings directly
//!   compatible with the bit-pattern port stimulus used across the
//!   workspace;
//! * [`nrz`] — NRZ symbol shaping (bit time, rise/fall, optional
//!   pre-emphasis tap) turning a bit string into a sampled
//!   [`circuit::Waveform`];
//! * [`eye`] — eye-diagram folding of a transient waveform at the
//!   recovered bit clock into a fixed-resolution raster plus scalar
//!   metrics (eye height/width at BER-proxy percentiles, crossing jitter,
//!   overshoot/undershoot), allocation-reused and deterministic;
//! * [`channel`] — a parameterized coupled-channel topology generator
//!   ([`channel::ChannelSpec`]) expanding into the RLGC bus ladders of
//!   [`circuit::mtl`], so the scenario matrix grows combinatorially
//!   instead of by hand-written fixture;
//! * [`mc`] — Monte-Carlo sweep plans over parameter ranges (the
//!   stratified / Latin-hypercube discipline of
//!   [`sysid::signals::stratified_samples`]) with aggregate pass gates
//!   (minimum eye height over N trials, quantile jitter bounds).
//!
//! Every stochastic path in this crate is driven by one explicit `u64`
//! seed, so fleet and CI runs are bit-reproducible.

#![forbid(unsafe_code)]

pub mod channel;
pub mod eye;
pub mod mc;
pub mod nrz;
pub mod prbs;

pub use channel::{ChannelPorts, ChannelSpec, Termination};
pub use eye::{EyeAnalyzer, EyeConfig, EyeMetrics, EyeRaster};
pub use mc::{McGates, McParam, McPlan, McSummary, McTrial};
pub use nrz::NrzShaper;
pub use prbs::{prbs_pattern, Prbs, PrbsOrder};
