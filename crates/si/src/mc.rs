//! Monte-Carlo sweep plans and statistical pass gates.
//!
//! Fleet-scale acceptance should rest on population statistics with
//! explicit thresholds, not on a single golden trace. [`McPlan`] turns a
//! `u64` seed and a set of parameter ranges into a deterministic
//! Latin-hypercube trial list: each parameter column is drawn with
//! [`sysid::signals::stratified_samples`] (one draw per equal-width
//! stratum, shuffled) under an independently derived seed, so `N` trials
//! cover every stratum of every parameter — plain uniform draws can
//! cluster and leave corners untested. [`McSummary`] reduces the per-trial
//! eye metrics to the aggregates a gate consumes: minimum/quantile eye
//! height, quantile jitter, closed-eye count.
//!
//! Everything downstream of the seed is bit-reproducible: same seed, same
//! trials, same aggregates.

use numkit::stats::percentile_nearest_rank;
use sysid::signals::stratified_samples;

use crate::eye::EyeMetrics;

/// SplitMix64 finalizer: derives stream-independent child seeds from one
/// master seed (the same construction the eval-bench parameter stream
/// uses).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One swept parameter: a named uniform range.
#[derive(Debug, Clone)]
pub struct McParam {
    /// Stable parameter name (report key).
    pub name: String,
    /// Lower range edge.
    pub lo: f64,
    /// Upper range edge.
    pub hi: f64,
}

impl McParam {
    /// A parameter spanning `[lo, hi]`.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        McParam {
            name: name.into(),
            lo,
            hi,
        }
    }
}

/// One sampled trial: the parameter values plus a derived per-trial seed
/// for any further stochastic choice (the trial's PRBS seed).
#[derive(Debug, Clone)]
pub struct McTrial {
    /// Trial index in `[0, trials)`.
    pub index: usize,
    /// Per-trial child seed, derived deterministically from the master.
    pub seed: u64,
    /// Sampled value per plan parameter, in plan order.
    pub values: Vec<f64>,
}

impl McTrial {
    /// The sampled value of the parameter named `name`, if the plan
    /// carries it.
    pub fn value(&self, plan: &McPlan, name: &str) -> Option<f64> {
        plan.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| self.values[i])
    }
}

/// A deterministic Monte-Carlo sweep plan.
#[derive(Debug, Clone)]
pub struct McPlan {
    /// Trials to run.
    pub trials: usize,
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Swept parameters.
    pub params: Vec<McParam>,
}

impl McPlan {
    /// A plan of `trials` trials over `params`, seeded by `seed`.
    pub fn new(trials: usize, seed: u64, params: Vec<McParam>) -> Self {
        McPlan {
            trials,
            seed,
            params,
        }
    }

    /// Samples the trial list: a Latin hypercube with one stratified,
    /// independently shuffled column per parameter.
    ///
    /// # Panics
    ///
    /// Panics when the plan is degenerate (zero trials, or a parameter
    /// with `hi <= lo`) — plan misconfiguration is a programming error in
    /// the workload definition.
    pub fn sample(&self) -> Vec<McTrial> {
        assert!(self.trials > 0, "trial count must be positive");
        let columns: Vec<Vec<f64>> = self
            .params
            .iter()
            .enumerate()
            .map(|(k, p)| stratified_samples(p.lo, p.hi, self.trials, mix(self.seed, k as u64)))
            .collect();
        (0..self.trials)
            .map(|i| McTrial {
                index: i,
                seed: mix(self.seed, 0x5eed_0000 + i as u64),
                values: columns.iter().map(|col| col[i]).collect(),
            })
            .collect()
    }
}

/// Statistical pass gates over a Monte-Carlo population.
#[derive(Debug, Clone, Copy)]
pub struct McGates {
    /// Every trial's eye height must reach this (V).
    pub min_eye_height: f64,
    /// The `jitter_quantile`-quantile of peak-to-peak jitter must stay
    /// below this (s); `f64::INFINITY` disables the bound.
    pub max_jitter_pp_s: f64,
    /// Quantile at which the jitter bound is enforced.
    pub jitter_quantile: f64,
}

impl Default for McGates {
    /// The standard gate: every eye ≥ 0.1 V open, 95th-percentile
    /// peak-to-peak jitter under half a nanosecond.
    fn default() -> Self {
        McGates {
            min_eye_height: 0.1,
            max_jitter_pp_s: 0.5e-9,
            jitter_quantile: 0.95,
        }
    }
}

/// Aggregate outcome of a Monte-Carlo sweep.
#[derive(Debug, Clone, Copy)]
pub struct McSummary {
    /// Trials aggregated.
    pub trials: usize,
    /// Master seed of the sweep.
    pub seed: u64,
    /// Trials whose eye never opened.
    pub closed_eyes: usize,
    /// Worst (minimum) eye height over the population (V).
    pub eye_height_min: f64,
    /// Mean eye height (V).
    pub eye_height_mean: f64,
    /// 5th-percentile eye height (V) — the statistical floor.
    pub eye_height_q05: f64,
    /// Worst (minimum) eye width (UI).
    pub eye_width_min_ui: f64,
    /// Jitter at the gate quantile (s).
    pub jitter_pp_q_s: f64,
    /// Worst peak-to-peak jitter (s).
    pub jitter_pp_max_s: f64,
    /// Whether the population passed every gate.
    pub pass: bool,
}

impl McSummary {
    /// Reduces per-trial eye metrics under `gates`.
    ///
    /// An empty population fails: a sweep that produced no trials cannot
    /// certify anything.
    pub fn from_metrics(metrics: &[EyeMetrics], gates: &McGates, seed: u64) -> Self {
        if metrics.is_empty() {
            return McSummary {
                trials: 0,
                seed,
                closed_eyes: 0,
                eye_height_min: 0.0,
                eye_height_mean: 0.0,
                eye_height_q05: 0.0,
                eye_width_min_ui: 0.0,
                jitter_pp_q_s: 0.0,
                jitter_pp_max_s: 0.0,
                pass: false,
            };
        }
        let closed_eyes = metrics.iter().filter(|m| !m.open).count();
        let mut heights: Vec<f64> = metrics.iter().map(|m| m.eye_height).collect();
        let mut jitters: Vec<f64> = metrics.iter().map(|m| m.jitter_pp_s).collect();
        heights.sort_by(f64::total_cmp);
        jitters.sort_by(f64::total_cmp);
        let eye_height_min = heights[0];
        let eye_height_mean = heights.iter().sum::<f64>() / heights.len() as f64;
        let eye_height_q05 = percentile_nearest_rank(&heights, 0.05);
        let eye_width_min_ui = metrics
            .iter()
            .map(|m| m.eye_width_ui)
            .fold(f64::INFINITY, f64::min);
        let jitter_pp_q_s = percentile_nearest_rank(&jitters, gates.jitter_quantile);
        let jitter_pp_max_s = jitters[jitters.len() - 1];
        let pass = closed_eyes == 0
            && eye_height_min >= gates.min_eye_height
            && jitter_pp_q_s <= gates.max_jitter_pp_s;
        McSummary {
            trials: metrics.len(),
            seed,
            closed_eyes,
            eye_height_min,
            eye_height_mean,
            eye_height_q05,
            eye_width_min_ui,
            jitter_pp_q_s,
            jitter_pp_max_s,
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> McPlan {
        McPlan::new(
            16,
            0xfeed,
            vec![
                McParam::new("load_cap", 1e-12, 6e-12),
                McParam::new("coupling", 0.5, 1.5),
            ],
        )
    }

    #[test]
    fn sampling_is_a_reproducible_latin_hypercube() {
        let a = plan().sample();
        let b = plan().sample();
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.values, y.values);
        }
        // Different master seed, different trials.
        let mut other = plan();
        other.seed = 0xfeee;
        assert_ne!(a[0].values, other.sample()[0].values);
        // Every stratum of every parameter is covered.
        for (k, p) in plan().params.iter().enumerate() {
            let width = (p.hi - p.lo) / 16.0;
            for s in 0..16 {
                let (lo, hi) = (p.lo + s as f64 * width, p.lo + (s + 1) as f64 * width);
                assert!(
                    a.iter().any(|t| t.values[k] >= lo && t.values[k] <= hi),
                    "param {} stratum {s} empty",
                    p.name
                );
            }
        }
        // Per-trial seeds are distinct streams.
        let mut seeds: Vec<u64> = a.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn trial_value_lookup_by_name() {
        let p = plan();
        let trials = p.sample();
        let v = trials[3].value(&p, "coupling").unwrap();
        assert!((0.5..=1.5).contains(&v));
        assert!(trials[3].value(&p, "missing").is_none());
    }

    fn open_eye(height: f64, jitter: f64) -> EyeMetrics {
        EyeMetrics {
            open: true,
            eye_height: height,
            eye_width_ui: 0.9,
            jitter_pp_s: jitter,
            jitter_rms_s: jitter / 4.0,
            overshoot: 0.0,
            undershoot: 0.0,
            v_high: 1.0,
            v_low: 0.0,
            crossings: 50,
            samples: 1000,
        }
    }

    #[test]
    fn summary_gates_on_min_height_and_quantile_jitter() {
        let gates = McGates {
            min_eye_height: 0.4,
            max_jitter_pp_s: 100e-12,
            jitter_quantile: 0.95,
        };
        let healthy: Vec<EyeMetrics> = (0..20).map(|_| open_eye(0.8, 20e-12)).collect();
        let s = McSummary::from_metrics(&healthy, &gates, 7);
        assert!(s.pass);
        assert_eq!(s.trials, 20);
        assert_eq!(s.closed_eyes, 0);
        assert!((s.eye_height_min - 0.8).abs() < 1e-12);

        // One marginal trial under the height gate fails the population.
        let mut weak = healthy.clone();
        weak[7] = open_eye(0.2, 20e-12);
        let s = McSummary::from_metrics(&weak, &gates, 7);
        assert!(!s.pass);
        assert!((s.eye_height_min - 0.2).abs() < 1e-12);

        // A single jitter outlier beyond the 95th percentile is tolerated…
        let mut outlier = healthy.clone();
        outlier[3] = open_eye(0.8, 500e-12);
        let s = McSummary::from_metrics(&outlier, &gates, 7);
        assert!(s.pass, "q95 jitter {} s", s.jitter_pp_q_s);
        assert!((s.jitter_pp_max_s - 500e-12).abs() < 1e-15);

        // …but a population-wide jitter shift is not.
        let shifted: Vec<EyeMetrics> = (0..20).map(|_| open_eye(0.8, 200e-12)).collect();
        assert!(!McSummary::from_metrics(&shifted, &gates, 7).pass);

        // Closed eyes always fail.
        let mut dead = healthy;
        dead[0].open = false;
        assert!(!McSummary::from_metrics(&dead, &gates, 7).pass);
        assert_eq!(McSummary::from_metrics(&dead, &gates, 7).closed_eyes, 1);
    }

    #[test]
    fn empty_population_fails() {
        assert!(!McSummary::from_metrics(&[], &McGates::default(), 0).pass);
    }
}
