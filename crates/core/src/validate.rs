//! Reference-vs-model validation harness and Section-5 accuracy metrics.
//!
//! The harness is backend-generic: it compares *any* [`Macromodel`]
//! implementation (PW-RBF, receiver parametric, C–R̂, IBIS) against its
//! transistor-level reference on the same load network.

use crate::macromodel::{Macromodel, PortStimulus, TestFixture};
use crate::{Error, Result};
use circuit::waveform::{max_difference, rms_difference, timing_error};
use circuit::{Circuit, Node, TranParams, Waveform, GROUND};
use refdev::extraction::{capture_driver, capture_receiver};
use refdev::{CmosDriverSpec, ReceiverSpec};

/// Transient step used when a model has no sample clock of its own (e.g.
/// the IBIS baseline): the experiments' standard 25 ps grid.
pub const DEFAULT_VALIDATION_DT: f64 = 25e-12;

/// Accuracy metrics between a model waveform and its reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationMetrics {
    /// Root-mean-square voltage difference (V).
    pub rms_error: f64,
    /// Maximum absolute voltage difference (V).
    pub max_error: f64,
    /// Maximum threshold-crossing timing error (s); `None` when either
    /// waveform never crosses the threshold.
    pub timing_error: Option<f64>,
    /// Threshold used for the timing measurement (V).
    pub threshold: f64,
}

impl ValidationMetrics {
    /// Computes the metric set between `model` and `reference` waveforms.
    pub fn between(model: &Waveform, reference: &Waveform, threshold: f64) -> Self {
        ValidationMetrics {
            rms_error: rms_difference(reference, model),
            max_error: max_difference(reference, model),
            timing_error: timing_error(reference, model, threshold),
            threshold,
        }
    }
}

/// Result of one validation run: both waveforms plus metrics.
#[derive(Debug, Clone)]
pub struct DriverValidation {
    /// Pad voltage of the transistor-level reference.
    pub reference: Waveform,
    /// Pad voltage predicted by the macromodel.
    pub model: Waveform,
    /// Comparison metrics at `vdd/2`.
    pub metrics: ValidationMetrics,
}

/// The transistor-level source a macromodel stands in for.
#[derive(Debug, Clone)]
pub enum ReferencePort {
    /// A CMOS output buffer.
    Driver(CmosDriverSpec),
    /// An input port.
    Receiver(ReceiverSpec),
}

impl ReferencePort {
    /// Supply voltage of the reference device (V).
    pub fn vdd(&self) -> f64 {
        match self {
            ReferencePort::Driver(s) => s.vdd,
            ReferencePort::Receiver(s) => s.vdd,
        }
    }

    /// Device name of the reference.
    pub fn name(&self) -> &str {
        match self {
            ReferencePort::Driver(s) => s.name,
            ReferencePort::Receiver(s) => s.name,
        }
    }
}

/// Runs the transistor-level reference and *any* macromodel backend against
/// the same [`TestFixture`] and compares pad voltages — the backend-generic
/// core of the validation harness.
///
/// Driver references require `stim` (the bit pattern the port produces);
/// receiver references take their excitation from the fixture itself.
///
/// # Errors
///
/// Propagates simulation failures from either run; a driver reference
/// without a stimulus is [`Error::InvalidModel`].
pub fn validate_macromodel(
    reference: &ReferencePort,
    model: &dyn Macromodel,
    fixture: &TestFixture,
    stim: Option<&PortStimulus>,
    dt: f64,
    t_stop: f64,
    threshold: f64,
) -> Result<DriverValidation> {
    let ref_wave = match reference {
        ReferencePort::Driver(spec) => {
            let stim = stim.ok_or_else(|| Error::InvalidModel {
                message: format!(
                    "validating driver reference '{}' needs a PortStimulus",
                    spec.name
                ),
            })?;
            capture_driver(
                spec,
                spec.pattern(&stim.pattern, stim.bit_time),
                |ckt, pad| {
                    fixture.install(ckt, pad);
                    Ok(())
                },
                dt,
                t_stop,
            )?
            .voltage
        }
        ReferencePort::Receiver(spec) => {
            capture_receiver(
                spec,
                |ckt, pad| {
                    fixture.install(ckt, pad);
                    Ok(())
                },
                dt,
                t_stop,
            )?
            .voltage
        }
    };
    let model_wave = model.simulate_on_load(fixture, stim, dt, t_stop)?;
    let metrics = ValidationMetrics::between(&model_wave, &ref_wave, threshold);
    Ok(DriverValidation {
        reference: ref_wave,
        model: model_wave,
        metrics,
    })
}

/// Runs the transistor-level reference and a driver macromodel (any backend
/// implementing [`Macromodel`]) against the *same* load network and
/// compares the pad voltages.
///
/// `load` is invoked once per simulation with the circuit and the pad/output
/// node; it must build identical load networks both times (it receives a
/// fresh circuit each time). For the standard fixtures prefer
/// [`validate_macromodel`], which takes a [`TestFixture`] description.
///
/// # Errors
///
/// Propagates simulation failures from either run.
pub fn validate_driver<F>(
    spec: &CmosDriverSpec,
    model: &dyn Macromodel,
    pattern: &str,
    bit_time: f64,
    t_stop: f64,
    mut load: F,
) -> Result<DriverValidation>
where
    F: FnMut(&mut Circuit, Node) -> Result<()>,
{
    let dt = model.sample_time().unwrap_or(DEFAULT_VALIDATION_DT);
    // Reference run (transistor level), sampled at the model clock so the
    // comparison grids line up.
    let reference = capture_driver(
        spec,
        spec.pattern(pattern, bit_time),
        |ckt, pad| {
            load(ckt, pad).map_err(|e| refdev::Error::InvalidSpec {
                message: format!("load construction failed: {e}"),
            })?;
            Ok(())
        },
        dt,
        t_stop,
    )?;

    // Macromodel run, through the unified trait.
    let mut ckt = Circuit::new();
    let out = ckt.node(format!("{}_out", model.name()));
    let stim = PortStimulus::new(pattern, bit_time);
    model.instantiate(&mut ckt, out, Some(&stim))?;
    load(&mut ckt, out)?;
    let res = ckt.transient(TranParams::new(dt, t_stop))?;
    let v_model = res.voltage(out);

    let metrics = ValidationMetrics::between(&v_model, &reference.voltage, 0.5 * spec.vdd);
    Ok(DriverValidation {
        reference: reference.voltage,
        model: v_model,
        metrics,
    })
}

/// Convenience: a resistive load to ground.
pub fn resistive_load(r: f64) -> impl FnMut(&mut Circuit, Node) -> Result<()> {
    move |ckt, pad| {
        ckt.add(circuit::devices::Resistor::new("val_rload", pad, GROUND, r));
        Ok(())
    }
}

/// Convenience: an ideal transmission line terminated by a capacitor — the
/// Fig. 1 validation fixture.
pub fn line_cap_load(
    z0: f64,
    td: f64,
    c_load: f64,
) -> impl FnMut(&mut Circuit, Node) -> Result<()> {
    move |ckt, pad| {
        let far = ckt.node("val_far");
        ckt.add(circuit::devices::IdealLine::new(
            "val_line", pad, GROUND, far, GROUND, z0, td,
        ));
        ckt.add(circuit::devices::Capacitor::new(
            "val_cload",
            far,
            GROUND,
            c_load,
        ));
        Ok(())
    }
}

/// Runs a stimulus waveform through an arbitrary one-port circuit builder —
/// generic scaffolding used by the receiver figures, where the "device under
/// test" side varies (reference, parametric model, C–R̂ model).
///
/// Builds a fresh circuit, lets `build` install everything (sources, lines,
/// device) and returns the voltage at the node `build` returns.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fixture<F>(dt: f64, t_stop: f64, build: F) -> Result<Waveform>
where
    F: FnOnce(&mut Circuit) -> Result<Node>,
{
    let mut ckt = Circuit::new();
    let probe_node = build(&mut ckt)?;
    let res = ckt.transient(TranParams::new(dt, t_stop))?;
    Ok(res.voltage(probe_node))
}

/// Per-experiment accuracy summary row (EXPERIMENTS.md bookkeeping).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Experiment label (e.g. "fig1", "fig4-active").
    pub label: String,
    /// Metrics of the PW-RBF (or receiver parametric) model.
    pub metrics: ValidationMetrics,
}

impl std::fmt::Display for AccuracyRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} rms = {:.4} V, max = {:.4} V, timing = {}",
            self.label,
            self.metrics.rms_error,
            self.metrics.max_error,
            match self.metrics.timing_error {
                Some(te) => format!("{:.1} ps", te * 1e12),
                None => "n/a".to_string(),
            }
        )
    }
}

/// Helper for figure binaries: prints aligned CSV rows of several waveforms
/// on the time axis of the first.
pub fn print_csv(header: &[&str], waveforms: &[&Waveform]) {
    println!("{}", header.join(","));
    if waveforms.is_empty() {
        return;
    }
    let t_axis = waveforms[0].times();
    for (idx, &t) in t_axis.iter().enumerate() {
        let mut row = Vec::with_capacity(waveforms.len() + 1);
        row.push(format!("{:.6e}", t));
        for w in waveforms {
            let v = if std::ptr::eq(*w, waveforms[0]) {
                w.values()[idx]
            } else {
                w.sample_at(t)
            };
            row.push(format!("{:.6e}", v));
        }
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_between_identical_waveforms() {
        let t: Vec<f64> = (0..100).map(|k| k as f64 * 1e-11).collect();
        let y: Vec<f64> = t.iter().map(|&x| (x * 1e10).tanh()).collect();
        let w = Waveform::from_parts(t, y);
        let m = ValidationMetrics::between(&w, &w, 0.5);
        assert_eq!(m.rms_error, 0.0);
        assert_eq!(m.max_error, 0.0);
        assert_eq!(m.timing_error, Some(0.0));
        assert_eq!(m.threshold, 0.5);
    }

    #[test]
    fn accuracy_row_display() {
        let row = AccuracyRow {
            label: "fig1".into(),
            metrics: ValidationMetrics {
                rms_error: 0.01,
                max_error: 0.05,
                timing_error: Some(5e-12),
                threshold: 1.65,
            },
        };
        let s = row.to_string();
        assert!(s.contains("fig1"));
        assert!(s.contains("5.0 ps"));
        let row = AccuracyRow {
            label: "x".into(),
            metrics: ValidationMetrics {
                rms_error: 0.0,
                max_error: 0.0,
                timing_error: None,
                threshold: 0.0,
            },
        };
        assert!(row.to_string().contains("n/a"));
    }

    #[test]
    fn run_fixture_simple_divider() {
        use circuit::devices::{Resistor, SourceWaveform, VoltageSource};
        let v = run_fixture(1e-10, 1e-8, |ckt| {
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(2.0)));
            ckt.add(Resistor::new("r1", a, b, 100.0));
            ckt.add(Resistor::new("r2", b, GROUND, 100.0));
            Ok(b)
        })
        .unwrap();
        assert!((v.values().last().unwrap() - 1.0).abs() < 1e-6);
    }
}
