//! Builder-style extraction sessions: one reusable object per estimation
//! campaign.
//!
//! The free functions ([`crate::pipeline::estimate_driver`] and friends)
//! answer "give me a model once"; a session answers the real workflow —
//! estimate, inspect, tweak a hyperparameter, re-estimate, validate, save:
//!
//! ```no_run
//! use macromodel::ExtractionSession;
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let mut session = ExtractionSession::for_driver(refdev::md1())
//!     .thresholds(1e-7)
//!     .windows(2e-9, 4e-9);
//! let estimated = session.run()?;
//! let check = estimated.validate_against_reference(
//!     &macromodel::TestFixture::resistive(50.0),
//!     Some(&macromodel::PortStimulus::new("010", 4e-9)),
//!     12e-9,
//!     None,
//! )?;
//! println!("rms {} V", check.metrics.rms_error);
//! estimated.save("md1.mdlx")?;
//! # Ok(())
//! # }
//! ```
//!
//! Sessions separate the *capture* phase (transistor-level transients — the
//! expensive half, seconds of simulation) from the *fit* phase (RBF/ARX
//! training — milliseconds). The captured waveforms are cached inside the
//! session keyed by the capture-determining parameters, so re-running after
//! changing only fit parameters (orders, center budgets, OLS thresholds)
//! skips every circuit simulation. Within one capture pass the underlying
//! machinery already shares solver workspaces: DC sweeps build their
//! circuit once and warm-start each point from the previous solution, and
//! each transient holds a single factorization workspace for its whole run.

use crate::exchange::{
    config_digest, save_artifact_to_path, save_model, save_model_to_path, AnyModel, Artifact,
    Provenance,
};
use crate::macromodel::{Macromodel, PortStimulus, TestFixture};
use crate::pipeline::{
    check_driver_config, check_receiver_config, fit_cr_from_captures, fit_driver_from_captures,
    fit_receiver_from_captures, run_cr_captures, run_driver_captures, run_receiver_captures,
    CrCaptures, DriverCaptureKey, DriverCaptures, DriverEstimationConfig, ReceiverCaptureKey,
    ReceiverCaptures, ReceiverEstimationConfig, StateIdRecord,
};
use crate::validate::{validate_macromodel, DriverValidation, ReferencePort};
use crate::{driver::PwRbfDriverModel, Error, Result};
use circuit::{Circuit, Node};
use refdev::ibis::IbisExtractConfig;
use refdev::{CmosDriverSpec, IbisModel, ReceiverSpec};
use std::path::Path;
use sysid::narx::RbfTrainConfig;

/// Entry point of the builder API: picks the estimation target.
pub struct ExtractionSession;

impl ExtractionSession {
    /// Starts a PW-RBF driver extraction session.
    pub fn for_driver(spec: CmosDriverSpec) -> DriverSession {
        DriverSession {
            spec,
            cfg: DriverEstimationConfig::default(),
            cache: None,
            capture_runs: 0,
        }
    }

    /// Starts a receiver parametric-model extraction session.
    pub fn for_receiver(spec: ReceiverSpec) -> ReceiverSession {
        ReceiverSession {
            spec,
            cfg: ReceiverEstimationConfig::default(),
            cache: None,
            capture_runs: 0,
        }
    }

    /// Starts a C–R̂ baseline extraction session.
    pub fn for_cr_baseline(spec: ReceiverSpec) -> CrSession {
        CrSession {
            spec,
            ts: 25e-12,
            cache: None,
            capture_runs: 0,
        }
    }

    /// Starts an IBIS baseline extraction session.
    pub fn for_ibis(spec: CmosDriverSpec) -> IbisSession {
        IbisSession {
            spec,
            cfg: IbisExtractConfig::default(),
            cache: None,
        }
    }
}

/// An estimated model bound to the reference it came from: the handle a
/// session returns, ready to be validated, saved, or instantiated.
#[derive(Debug, Clone)]
pub struct EstimatedModel {
    model: AnyModel,
    reference: ReferencePort,
    records: Option<(StateIdRecord, StateIdRecord)>,
    provenance: Provenance,
}

/// Provenance stamp shared by every session: the extraction-config digest
/// plus the parameters that identify the estimation run.
fn session_provenance(cfg: &impl std::fmt::Debug, device: &str, kind: &str) -> Provenance {
    Provenance::new(config_digest(cfg))
        .with_param("device", device)
        .with_param("kind", kind)
}

impl EstimatedModel {
    /// The estimated artifact.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// The artifact behind the unified trait.
    pub fn as_dyn(&self) -> &dyn Macromodel {
        self.model.as_dyn()
    }

    /// Unwraps the artifact.
    pub fn into_model(self) -> AnyModel {
        self.model
    }

    /// The transistor-level reference this model was estimated from.
    pub fn reference(&self) -> &ReferencePort {
        &self.reference
    }

    /// High/Low identification records (driver sessions only).
    pub fn records(&self) -> Option<(&StateIdRecord, &StateIdRecord)> {
        self.records.as_ref().map(|(h, l)| (h, l))
    }

    /// One-line structural summary of the artifact.
    pub fn summary(&self) -> String {
        self.model.summary()
    }

    /// Serializes the artifact to exchange text (see [`crate::exchange`]).
    ///
    /// # Errors
    ///
    /// See [`save_model`].
    pub fn to_exchange_string(&self) -> Result<String> {
        save_model(&self.model)
    }

    /// Saves the artifact to a `.mdlx` file in the v1 single-model format.
    ///
    /// # Errors
    ///
    /// See [`save_model_to_path`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        save_model_to_path(&self.model, path)
    }

    /// Provenance of the estimation run: extraction-config digest, tool
    /// version, device and kind parameters.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Wraps the model into a v2 single-model bundle carrying the session's
    /// provenance.
    pub fn to_artifact(&self) -> Artifact {
        Artifact::bundle(vec![self.model.clone()], Some(self.provenance.clone()))
    }

    /// Saves the artifact as a provenance-stamped `mdlx 2` bundle.
    ///
    /// # Errors
    ///
    /// See [`crate::exchange::save_artifact_to_path`].
    pub fn save_v2(&self, path: impl AsRef<Path>) -> Result<()> {
        save_artifact_to_path(&self.to_artifact(), path)
    }

    /// Installs the artifact as a one-port device at `pad`.
    ///
    /// # Errors
    ///
    /// See [`Macromodel::instantiate`].
    pub fn instantiate(
        &self,
        ckt: &mut Circuit,
        pad: Node,
        stim: Option<&PortStimulus>,
    ) -> Result<()> {
        self.model.instantiate(ckt, pad, stim)
    }

    /// Runs the transistor-level reference and the estimated model against
    /// the same fixture and compares pad voltages. `threshold` defaults to
    /// half the reference supply.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from either run.
    pub fn validate_against_reference(
        &self,
        fixture: &TestFixture,
        stim: Option<&PortStimulus>,
        t_stop: f64,
        threshold: Option<f64>,
    ) -> Result<DriverValidation> {
        let threshold = threshold.unwrap_or(0.5 * self.reference.vdd());
        let dt = self
            .model
            .sample_time()
            .unwrap_or(crate::validate::DEFAULT_VALIDATION_DT);
        validate_macromodel(
            &self.reference,
            self.model.as_dyn(),
            fixture,
            stim,
            dt,
            t_stop,
            threshold,
        )
    }

    /// Splits a driver estimation into its classic
    /// `(model, high record, low record)` triple.
    pub(crate) fn into_driver_parts(
        self,
    ) -> Result<(PwRbfDriverModel, StateIdRecord, StateIdRecord)> {
        let EstimatedModel { model, records, .. } = self;
        let AnyModel::PwRbfDriver(m) = model else {
            return Err(Error::InvalidModel {
                message: "not a driver estimation".into(),
            });
        };
        let (rec_h, rec_l) = records.expect("driver sessions keep identification records");
        Ok((m, rec_h, rec_l))
    }
}

/// Builder/session for PW-RBF driver extraction.
///
/// Setters are consuming (chainable); [`DriverSession::run`] borrows, so a
/// session can run repeatedly while its capture cache persists.
pub struct DriverSession {
    spec: CmosDriverSpec,
    cfg: DriverEstimationConfig,
    cache: Option<(DriverCaptureKey, DriverCaptures)>,
    capture_runs: usize,
}

impl DriverSession {
    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: DriverEstimationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Model sample time (s).
    pub fn sample_time(mut self, ts: f64) -> Self {
        self.cfg.ts = ts;
        self
    }

    /// Dynamic order `r` of the state submodels.
    pub fn order(mut self, r: usize) -> Self {
        self.cfg.order = r;
        self
    }

    /// RBF training configuration (centers, widths, OLS stop).
    pub fn rbf(mut self, rbf: RbfTrainConfig) -> Self {
        self.cfg.rbf = rbf;
        self
    }

    /// Identification-quality thresholds: the OLS stopping tolerance on the
    /// unexplained energy fraction (fit-phase only — captures are reused).
    pub fn thresholds(mut self, ols_tolerance: f64) -> Self {
        self.cfg.rbf.ols_tolerance = ols_tolerance;
        self
    }

    /// Switching-capture windows: settling time before the edge and
    /// captured transition window after it (s).
    pub fn windows(mut self, t_pre: f64, t_window: f64) -> Self {
        self.cfg.t_pre = t_pre;
        self.cfg.t_window = t_window;
        self
    }

    /// Multilevel identification-signal shape.
    pub fn excitation(mut self, n_levels: usize, dwell: usize, edge_samples: usize) -> Self {
        self.cfg.n_levels = n_levels;
        self.cfg.dwell = dwell;
        self.cfg.edge_samples = edge_samples;
        self
    }

    /// Excitation margin beyond the rails (V).
    pub fn margin(mut self, v_margin: f64) -> Self {
        self.cfg.v_margin = v_margin;
        self
    }

    /// The two identification loads (Ω to ground, Ω to VDD).
    pub fn loads(mut self, r_load_a: f64, r_load_b: f64) -> Self {
        self.cfg.r_load_a = r_load_a;
        self.cfg.r_load_b = r_load_b;
        self
    }

    /// Seed of the multilevel signal generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Number of fresh capture passes performed so far (diagnostic: stays
    /// at 1 across re-runs that only change fit parameters).
    pub fn capture_runs(&self) -> usize {
        self.capture_runs
    }

    /// Runs (or re-runs) the estimation. Captures are reused whenever the
    /// capture-determining parameters are unchanged since the last run.
    ///
    /// # Errors
    ///
    /// Propagates configuration, simulation and identification failures.
    pub fn run(&mut self) -> Result<EstimatedModel> {
        check_driver_config(&self.cfg)?;
        let key = DriverCaptureKey::of(&self.cfg);
        if !matches!(&self.cache, Some((k, _)) if *k == key) {
            let caps = run_driver_captures(&self.spec, &self.cfg)?;
            self.cache = Some((key, caps));
            self.capture_runs += 1;
        }
        let caps = &self.cache.as_ref().expect("captures just ensured").1;
        let (model, rec_h, rec_l) = fit_driver_from_captures(&self.spec, &self.cfg, caps)?;
        Ok(EstimatedModel {
            model: AnyModel::PwRbfDriver(model),
            reference: ReferencePort::Driver(self.spec.clone()),
            records: Some((rec_h, rec_l)),
            provenance: session_provenance(&self.cfg, self.spec.name, "pwrbf-driver"),
        })
    }
}

/// Builder/session for receiver parametric-model extraction.
pub struct ReceiverSession {
    spec: ReceiverSpec,
    cfg: ReceiverEstimationConfig,
    cache: Option<(ReceiverCaptureKey, ReceiverCaptures)>,
    capture_runs: usize,
}

impl ReceiverSession {
    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: ReceiverEstimationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Model sample time (s).
    pub fn sample_time(mut self, ts: f64) -> Self {
        self.cfg.ts = ts;
        self
    }

    /// Submodel orders: linear ARX, up-protection, down-protection.
    pub fn orders(mut self, r_lin: usize, r_up: usize, r_down: usize) -> Self {
        self.cfg.r_lin = r_lin;
        self.cfg.r_up = r_up;
        self.cfg.r_down = r_down;
        self
    }

    /// RBF training configuration.
    pub fn rbf(mut self, rbf: RbfTrainConfig) -> Self {
        self.cfg.rbf = rbf;
        self
    }

    /// Identification-quality thresholds: the OLS stopping tolerance
    /// (fit-phase only — captures are reused).
    pub fn thresholds(mut self, ols_tolerance: f64) -> Self {
        self.cfg.rbf.ols_tolerance = ols_tolerance;
        self
    }

    /// Multilevel identification-signal shape.
    pub fn excitation(mut self, n_levels: usize, dwell: usize, edge_samples: usize) -> Self {
        self.cfg.n_levels = n_levels;
        self.cfg.dwell = dwell;
        self.cfg.edge_samples = edge_samples;
        self
    }

    /// Overdrive beyond the rails for the protection signals (V).
    pub fn overdrive(mut self, v_over: f64) -> Self {
        self.cfg.v_over = v_over;
        self
    }

    /// Seed of the multilevel generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Number of fresh capture passes performed so far.
    pub fn capture_runs(&self) -> usize {
        self.capture_runs
    }

    /// Runs (or re-runs) the estimation, reusing captures when possible.
    ///
    /// # Errors
    ///
    /// Propagates configuration, simulation and identification failures.
    pub fn run(&mut self) -> Result<EstimatedModel> {
        check_receiver_config(&self.cfg)?;
        let key = ReceiverCaptureKey::of(&self.cfg);
        if !matches!(&self.cache, Some((k, _)) if *k == key) {
            let caps = run_receiver_captures(&self.spec, &self.cfg)?;
            self.cache = Some((key, caps));
            self.capture_runs += 1;
        }
        let caps = &self.cache.as_ref().expect("captures just ensured").1;
        let model = fit_receiver_from_captures(&self.spec, &self.cfg, caps)?;
        Ok(EstimatedModel {
            model: AnyModel::Receiver(model),
            reference: ReferencePort::Receiver(self.spec.clone()),
            records: None,
            provenance: session_provenance(&self.cfg, self.spec.name, "receiver"),
        })
    }
}

/// Builder/session for the C–R̂ baseline.
pub struct CrSession {
    spec: ReceiverSpec,
    ts: f64,
    cache: Option<(f64, CrCaptures)>,
    capture_runs: usize,
}

impl CrSession {
    /// Sample time of the step capture the capacitance is fitted on (s).
    pub fn sample_time(mut self, ts: f64) -> Self {
        self.ts = ts;
        self
    }

    /// Number of fresh capture passes performed so far.
    pub fn capture_runs(&self) -> usize {
        self.capture_runs
    }

    /// Runs (or re-runs) the estimation, reusing captures when possible.
    ///
    /// # Errors
    ///
    /// Propagates configuration, simulation and fit failures.
    pub fn run(&mut self) -> Result<EstimatedModel> {
        if self.ts <= 0.0 || !self.ts.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("sample time must be positive, got {}", self.ts),
            });
        }
        if !matches!(&self.cache, Some((t, _)) if *t == self.ts) {
            let caps = run_cr_captures(&self.spec, self.ts)?;
            self.cache = Some((self.ts, caps));
            self.capture_runs += 1;
        }
        let caps = &self.cache.as_ref().expect("captures just ensured").1;
        let model = fit_cr_from_captures(&self.spec, self.ts, caps)?;
        Ok(EstimatedModel {
            model: AnyModel::Cr(model),
            reference: ReferencePort::Receiver(self.spec.clone()),
            records: None,
            provenance: session_provenance(&self.ts, self.spec.name, "cr-baseline"),
        })
    }
}

/// Builder/session for the IBIS comparison baseline.
pub struct IbisSession {
    spec: CmosDriverSpec,
    cfg: IbisExtractConfig,
    /// IBIS extraction has no cheap fit phase to re-run, so the cache holds
    /// the finished model per configuration.
    cache: Option<(IbisExtractConfig, IbisModel)>,
}

impl IbisSession {
    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: IbisExtractConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Number of points in the I–V tables.
    pub fn iv_points(mut self, n: usize) -> Self {
        self.cfg.iv_points = n;
        self
    }

    /// Fixture resistance of the V–T waveform captures (Ω).
    pub fn fixture(mut self, r: f64) -> Self {
        self.cfg.r_fixture = r;
        self
    }

    /// Switching-table resolution and captured edge duration (s).
    pub fn tables(mut self, dt: f64, t_table: f64) -> Self {
        self.cfg.dt = dt;
        self.cfg.t_table = t_table;
        self
    }

    /// Runs (or re-runs) the extraction; an unchanged configuration returns
    /// the cached model without re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn run(&mut self) -> Result<EstimatedModel> {
        if !matches!(&self.cache, Some((c, _)) if *c == self.cfg) {
            let model = IbisModel::extract(&self.spec, self.cfg)?;
            self.cache = Some((self.cfg, model));
        }
        let model = self.cache.as_ref().expect("model just ensured").1.clone();
        Ok(EstimatedModel {
            model: AnyModel::Ibis(model),
            reference: ReferencePort::Driver(self.spec.clone()),
            records: None,
            provenance: session_provenance(&self.cfg, self.spec.name, "ibis"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::ModelKind;

    fn fast_cfg() -> DriverEstimationConfig {
        DriverEstimationConfig {
            n_levels: 20,
            dwell: 14,
            rbf: RbfTrainConfig {
                max_centers: 6,
                candidate_pool: 40,
                width_scale: 1.0,
                ols_tolerance: 1e-6,
            },
            t_pre: 1.5e-9,
            t_window: 2.5e-9,
            ..Default::default()
        }
    }

    #[test]
    fn driver_session_caches_captures_across_fit_changes() {
        let mut session = ExtractionSession::for_driver(refdev::md1()).config(fast_cfg());
        let est1 = session.run().unwrap();
        assert_eq!(session.capture_runs(), 1);
        assert_eq!(est1.as_dyn().kind(), ModelKind::PwRbfDriver);
        assert!(est1.records().is_some());

        // Fit-only change: the OLS threshold. No new captures.
        session = session.thresholds(1e-5);
        let est2 = session.run().unwrap();
        assert_eq!(session.capture_runs(), 1);
        // A looser stop can only shrink the center set.
        let n1 = est1.as_dyn().metadata()["basis_functions"].clone();
        let n2 = est2.as_dyn().metadata()["basis_functions"].clone();
        assert!(n2.parse::<usize>().unwrap() <= n1.parse::<usize>().unwrap());

        // Capture-determining change: new windows force a fresh pass.
        session = session.windows(1.5e-9, 3e-9);
        session.run().unwrap();
        assert_eq!(session.capture_runs(), 2);
    }

    #[test]
    fn identical_reruns_reproduce_the_model() {
        let mut session = ExtractionSession::for_driver(refdev::md1()).config(fast_cfg());
        let a = session.run().unwrap();
        let b = session.run().unwrap();
        assert_eq!(session.capture_runs(), 1);
        let (AnyModel::PwRbfDriver(ma), AnyModel::PwRbfDriver(mb)) =
            (a.into_model(), b.into_model())
        else {
            panic!("driver kind expected");
        };
        assert_eq!(ma.up.w_high(), mb.up.w_high());
        assert_eq!(ma.i_high.network().weights(), mb.i_high.network().weights());
    }

    #[test]
    fn session_artifact_saves_and_validates() {
        let mut session = ExtractionSession::for_driver(refdev::md1()).config(fast_cfg());
        let est = session.run().unwrap();
        // Exchange text round-trips.
        let text = est.to_exchange_string().unwrap();
        let loaded = crate::exchange::load_model(&text).unwrap();
        assert_eq!(loaded.name(), est.as_dyn().name());
        // Reference validation runs end-to-end on a resistive fixture.
        let run = est
            .validate_against_reference(
                &TestFixture::resistive(50.0),
                Some(&PortStimulus::new("01", 3e-9)),
                6e-9,
                None,
            )
            .unwrap();
        assert!(
            run.metrics.rms_error < 0.3,
            "rms {} V",
            run.metrics.rms_error
        );
    }

    #[test]
    fn cr_session_runs_and_caches() {
        let mut session = ExtractionSession::for_cr_baseline(refdev::md4()).sample_time(25e-12);
        let est = session.run().unwrap();
        assert_eq!(est.as_dyn().kind(), ModelKind::CrBaseline);
        session.run().unwrap();
        assert_eq!(session.capture_runs(), 1);
        let mut session = session.sample_time(50e-12);
        session.run().unwrap();
        assert_eq!(session.capture_runs(), 2);
    }

    #[test]
    fn sessions_reject_bad_configs() {
        let mut s = ExtractionSession::for_driver(refdev::md1()).sample_time(0.0);
        assert!(s.run().is_err());
        let mut s = ExtractionSession::for_receiver(refdev::md4()).sample_time(-1.0);
        assert!(s.run().is_err());
        let mut s = ExtractionSession::for_cr_baseline(refdev::md4()).sample_time(f64::NAN);
        assert!(s.run().is_err());
    }
}
