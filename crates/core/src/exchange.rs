//! Versioned, self-contained model-exchange format (`mdlx`).
//!
//! An estimated macromodel is only useful if it can be shipped: extracted
//! once, saved, and loaded by a downstream simulation that never sees the
//! transistor-level device. This module defines the on-disk artifact —
//! a line-oriented, human-auditable text format — and the [`save_model`] /
//! [`load_model`] pair with strict validation on load.
//!
//! # Format
//!
//! ```text
//! mdlx <version> <kind-tag>
//! name <device name>
//! <kind-specific records>
//! end
//! ```
//!
//! * every record is one line: a key followed by space-separated values;
//! * vectors carry an explicit length (`wh 3 0e0 5e-1 1e0`), so truncation
//!   is always detectable;
//! * floats are written in shortest round-trip scientific notation
//!   (`2.5e-11`), which makes **save → load → save byte-identical**;
//! * the record sequence per kind is fixed; any unexpected key is rejected
//!   ([`ExchangeError::UnknownField`]) — there are no optional or ignored
//!   fields;
//! * every numeric value must be finite ([`ExchangeError::NonFinite`])
//!   and the assembled model must pass its structural validation before
//!   [`load_model`] returns.
//!
//! Version `1` is the only version readers accept; a future tag fails with
//! [`ExchangeError::UnsupportedVersion`] instead of being misparsed.
//!
//! # Example
//!
//! ```no_run
//! use macromodel::exchange::{load_model_from_path, save_model_to_path, AnyModel};
//! use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let model = estimate_driver(&refdev::md1(), DriverEstimationConfig::default())?;
//! save_model_to_path(&AnyModel::from(model), "md1.mdlx")?;
//! let loaded = load_model_from_path("md1.mdlx")?;
//! println!("{}", macromodel::Macromodel::summary(&loaded));
//! # Ok(())
//! # }
//! ```

use crate::driver::{PwRbfDriverModel, WeightSequence};
use crate::macromodel::{Macromodel, ModelKind, PortStimulus, TestFixture};
use crate::receiver::{CrModel, ReceiverModel};
use crate::Result;
use circuit::{Circuit, Node, Waveform};
use numkit::interp::Pwl;
use refdev::IbisModel;
use std::collections::BTreeMap;
use std::path::Path;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Current (and only) exchange-format version.
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure modes of the exchange layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The file declares a version this reader does not understand.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// The file declares an unknown model kind.
    UnknownKind {
        /// The kind tag found in the header.
        tag: String,
    },
    /// A line failed to parse (malformed tokens, wrong count).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record key other than the one the grammar expects next.
    UnknownField {
        /// 1-based line number.
        line: usize,
        /// The unexpected key.
        field: String,
    },
    /// A numeric value parsed to NaN or infinity.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// The record key holding the value.
        field: String,
    },
    /// The file ended before the grammar was complete.
    Truncated {
        /// The record key that was expected next.
        expected: String,
    },
    /// The records parsed but assemble into an invalid model, or the model
    /// handed to [`save_model`] is not serializable (e.g. a multi-line
    /// name).
    Invalid {
        /// Description of the violation.
        message: String,
    },
    /// Filesystem failure.
    Io {
        /// The offending path.
        path: String,
        /// The OS error text.
        message: String,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version '{found}' (reader understands {FORMAT_VERSION})"
                )
            }
            ExchangeError::UnknownKind { tag } => write!(f, "unknown model kind '{tag}'"),
            ExchangeError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ExchangeError::UnknownField { line, field } => {
                write!(f, "line {line}: unknown field '{field}'")
            }
            ExchangeError::NonFinite { line, field } => {
                write!(f, "line {line}: non-finite value in '{field}'")
            }
            ExchangeError::Truncated { expected } => {
                write!(f, "file truncated: expected '{expected}'")
            }
            ExchangeError::Invalid { message } => write!(f, "invalid model data: {message}"),
            ExchangeError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// A macromodel of any supported kind — the unit of exchange.
///
/// Wraps the concrete model types so heterogeneous artifacts share one
/// save/load path; implements [`Macromodel`] by delegation, so a loaded
/// model plugs into every trait-generic consumer directly.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// PW-RBF driver model.
    PwRbfDriver(PwRbfDriverModel),
    /// Receiver parametric model.
    Receiver(ReceiverModel),
    /// C–R̂ baseline.
    Cr(CrModel),
    /// IBIS-style driver baseline.
    Ibis(IbisModel),
}

impl From<PwRbfDriverModel> for AnyModel {
    fn from(m: PwRbfDriverModel) -> Self {
        AnyModel::PwRbfDriver(m)
    }
}

impl From<ReceiverModel> for AnyModel {
    fn from(m: ReceiverModel) -> Self {
        AnyModel::Receiver(m)
    }
}

impl From<CrModel> for AnyModel {
    fn from(m: CrModel) -> Self {
        AnyModel::Cr(m)
    }
}

impl From<IbisModel> for AnyModel {
    fn from(m: IbisModel) -> Self {
        AnyModel::Ibis(m)
    }
}

impl AnyModel {
    /// The model behind the unified trait.
    pub fn as_dyn(&self) -> &dyn Macromodel {
        match self {
            AnyModel::PwRbfDriver(m) => m,
            AnyModel::Receiver(m) => m,
            AnyModel::Cr(m) => m,
            AnyModel::Ibis(m) => m,
        }
    }
}

impl Macromodel for AnyModel {
    fn kind(&self) -> ModelKind {
        self.as_dyn().kind()
    }

    fn name(&self) -> &str {
        self.as_dyn().name()
    }

    fn sample_time(&self) -> Option<f64> {
        self.as_dyn().sample_time()
    }

    fn summary(&self) -> String {
        self.as_dyn().summary()
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        self.as_dyn().metadata()
    }

    fn validate(&self) -> Result<()> {
        self.as_dyn().validate()
    }

    fn instantiate(&self, ckt: &mut Circuit, pad: Node, stim: Option<&PortStimulus>) -> Result<()> {
        self.as_dyn().instantiate(ckt, pad, stim)
    }

    fn simulate_on_load(
        &self,
        fixture: &TestFixture,
        stim: Option<&PortStimulus>,
        dt: f64,
        t_stop: f64,
    ) -> Result<Waveform> {
        self.as_dyn().simulate_on_load(fixture, stim, dt, t_stop)
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Shortest round-trip scientific form; the single float syntax of the
/// format (both ends of the byte-identity guarantee).
fn fmt_f64(v: f64) -> String {
    format!("{v:e}")
}

struct Writer {
    out: String,
}

impl Writer {
    fn new(kind: ModelKind) -> Self {
        Writer {
            out: format!("mdlx {FORMAT_VERSION} {}\n", kind.tag()),
        }
    }

    fn raw(&mut self, line: &str) {
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn name(&mut self, name: &str) -> std::result::Result<(), ExchangeError> {
        if name.contains('\n') || name.contains('\r') {
            return Err(ExchangeError::Invalid {
                message: "model name must not contain line breaks".into(),
            });
        }
        self.raw(&format!("name {name}"));
        Ok(())
    }

    fn scalar(&mut self, key: &str, v: f64) -> std::result::Result<(), ExchangeError> {
        if !v.is_finite() {
            return Err(ExchangeError::Invalid {
                message: format!("'{key}' is not finite: {v}"),
            });
        }
        self.raw(&format!("{key} {}", fmt_f64(v)));
        Ok(())
    }

    fn pair(&mut self, key: &str, a: usize, b: usize) {
        self.raw(&format!("{key} {a} {b}"));
    }

    fn vector(&mut self, key: &str, vs: &[f64]) -> std::result::Result<(), ExchangeError> {
        let mut line = format!("{key} {}", vs.len());
        for v in vs {
            if !v.is_finite() {
                return Err(ExchangeError::Invalid {
                    message: format!("'{key}' contains a non-finite value"),
                });
            }
            line.push(' ');
            line.push_str(&fmt_f64(*v));
        }
        self.raw(&line);
        Ok(())
    }

    fn narx(&mut self, label: &str, m: &NarxModel) -> std::result::Result<(), ExchangeError> {
        let net = m.network();
        self.raw(&format!("submodel {label}"));
        self.pair("orders", m.orders().input_lags, m.orders().output_lags);
        self.pair("rbf", net.dim(), net.n_centers());
        self.scalar("bias", net.bias())?;
        self.vector("linear", net.linear())?;
        for c in net.centers() {
            self.vector("center", c)?;
        }
        self.vector("widths", net.widths())?;
        self.vector("gweights", net.weights())?;
        Ok(())
    }

    fn finish(mut self) -> String {
        self.raw("end");
        self.out
    }
}

/// Serializes a model to the exchange text.
///
/// # Errors
///
/// Returns [`Error::Exchange`] for non-serializable data (non-finite values,
/// multi-line names) and [`Error::InvalidModel`] when the model fails its
/// own validation — nothing invalid is ever written.
pub fn save_model(model: &AnyModel) -> Result<String> {
    model.validate()?;
    let text = match model {
        AnyModel::PwRbfDriver(m) => {
            let mut w = Writer::new(ModelKind::PwRbfDriver);
            w.name(&m.name)?;
            w.scalar("ts", m.ts)?;
            w.scalar("vdd", m.vdd)?;
            w.narx("i_high", &m.i_high)?;
            w.narx("i_low", &m.i_low)?;
            for (label, seq) in [("up", &m.up), ("down", &m.down)] {
                w.raw(&format!("transition {label}"));
                w.vector("wh", seq.w_high())?;
                w.vector("wl", seq.w_low())?;
            }
            w.finish()
        }
        AnyModel::Receiver(m) => {
            let mut w = Writer::new(ModelKind::Receiver);
            w.name(&m.name)?;
            w.scalar("ts", m.ts)?;
            w.scalar("vdd", m.vdd)?;
            w.pair("arx", m.linear.orders().na, m.linear.orders().nb);
            w.vector("a", m.linear.a())?;
            w.vector("b", m.linear.b())?;
            w.narx("up", &m.up)?;
            w.narx("down", &m.down)?;
            w.finish()
        }
        AnyModel::Cr(m) => {
            let mut w = Writer::new(ModelKind::CrBaseline);
            w.name(&m.name)?;
            w.scalar("c", m.c)?;
            w.vector("iv_x", m.static_iv.x())?;
            w.vector("iv_y", m.static_iv.y())?;
            w.finish()
        }
        AnyModel::Ibis(m) => {
            let mut w = Writer::new(ModelKind::Ibis);
            w.name(&m.name)?;
            w.scalar("vdd", m.vdd)?;
            w.scalar("c_comp", m.c_comp)?;
            w.scalar("dt", m.dt)?;
            w.vector("pullup_x", m.pullup.x())?;
            w.vector("pullup_y", m.pullup.y())?;
            w.vector("pulldown_x", m.pulldown.x())?;
            w.vector("pulldown_y", m.pulldown.y())?;
            w.vector("ku_rise", &m.ku_rise)?;
            w.vector("kd_rise", &m.kd_rise)?;
            w.vector("ku_fall", &m.ku_fall)?;
            w.vector("kd_fall", &m.kd_fall)?;
            w.finish()
        }
    };
    Ok(text)
}

/// Saves a model to a file (see [`save_model`]).
///
/// # Errors
///
/// [`save_model`] failures plus [`ExchangeError::Io`].
pub fn save_model_to_path(model: &AnyModel, path: impl AsRef<Path>) -> Result<()> {
    let text = save_model(model)?;
    std::fs::write(path.as_ref(), text).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Upper bound on any count a file can declare (vector lengths, center
/// counts, model orders). Far above every legitimate model size, and low
/// enough that a corrupted length can neither overflow arithmetic nor
/// drive a pathological allocation — corruption must surface as a typed
/// error, never a panic or abort.
const MAX_DECLARED_COUNT: usize = 1 << 20;

struct Reader<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

type ExResult<T> = std::result::Result<T, ExchangeError>;

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines().collect(),
            pos: 0,
        }
    }

    /// 1-based number of the line most recently consumed.
    fn line_no(&self) -> usize {
        self.pos
    }

    /// Consumes the next line, splitting off its leading key; fails with
    /// [`ExchangeError::UnknownField`] when the key is not `key`.
    fn expect(&mut self, key: &str) -> ExResult<&'a str> {
        let Some(line) = self.lines.get(self.pos) else {
            return Err(ExchangeError::Truncated {
                expected: key.to_string(),
            });
        };
        self.pos += 1;
        let (found, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (*line, ""),
        };
        if found != key {
            return Err(ExchangeError::UnknownField {
                line: self.pos,
                field: found.to_string(),
            });
        }
        Ok(rest)
    }

    fn scalar(&mut self, key: &str) -> ExResult<f64> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let (Some(tok), None) = (toks.next(), toks.next()) else {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects exactly one value"),
            });
        };
        self.parse_f64(tok, key)
    }

    fn parse_f64(&self, tok: &str, key: &str) -> ExResult<f64> {
        let v: f64 = tok.parse().map_err(|_| ExchangeError::Syntax {
            line: self.line_no(),
            message: format!("'{tok}' is not a number in '{key}'"),
        })?;
        if !v.is_finite() {
            return Err(ExchangeError::NonFinite {
                line: self.line_no(),
                field: key.to_string(),
            });
        }
        Ok(v)
    }

    fn pair(&mut self, key: &str) -> ExResult<(usize, usize)> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let parse = |tok: Option<&str>, line: usize| -> ExResult<usize> {
            tok.and_then(|t| t.parse().ok())
                .filter(|&v| v <= MAX_DECLARED_COUNT)
                .ok_or(ExchangeError::Syntax {
                    line,
                    message: format!("'{key}' expects two integers below {MAX_DECLARED_COUNT}"),
                })
        };
        let a = parse(toks.next(), self.line_no())?;
        let b = parse(toks.next(), self.line_no())?;
        if toks.next().is_some() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects exactly two integers"),
            });
        }
        Ok((a, b))
    }

    fn vector(&mut self, key: &str) -> ExResult<Vec<f64>> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let len: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .filter(|&v| v <= MAX_DECLARED_COUNT)
            .ok_or(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects a length prefix below {MAX_DECLARED_COUNT}"),
            })?;
        // Reserve from the *actual* payload size, not the declared length —
        // a lying prefix must fail the length check below, not allocate.
        let mut vs = Vec::with_capacity(len.min(rest.len() / 2 + 1));
        for tok in toks.by_ref() {
            vs.push(self.parse_f64(tok, key)?);
        }
        if vs.len() != len {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' declares {len} values but carries {}", vs.len()),
            });
        }
        Ok(vs)
    }

    /// A section header with a fixed label, e.g. `submodel i_high`.
    fn section(&mut self, key: &str, label: &str) -> ExResult<()> {
        let rest = self.expect(key)?;
        if rest != label {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("expected '{key} {label}', found '{key} {rest}'"),
            });
        }
        Ok(())
    }

    fn narx(&mut self, label: &str) -> ExResult<NarxModel> {
        self.section("submodel", label)?;
        let (input_lags, output_lags) = self.pair("orders")?;
        let orders = NarxOrders {
            input_lags,
            output_lags,
        };
        let (dim, n_centers) = self.pair("rbf")?;
        if dim != orders.dim() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!(
                    "rbf dimension {dim} contradicts orders ({} expected)",
                    orders.dim()
                ),
            });
        }
        let bias = self.scalar("bias")?;
        let linear = self.vector("linear")?;
        // A corrupt center count runs into a missing 'center' line (typed
        // error) long before the vector grows; don't pre-reserve from it.
        let mut centers = Vec::with_capacity(n_centers.min(1024));
        for _ in 0..n_centers {
            centers.push(self.vector("center")?);
        }
        let widths = self.vector("widths")?;
        let weights = self.vector("gweights")?;
        let net =
            RbfNetwork::from_parts(dim, centers, widths, weights, bias, linear).map_err(invalid)?;
        NarxModel::from_network(orders, net).map_err(invalid)
    }

    fn end(&mut self) -> ExResult<()> {
        let rest = self.expect("end")?;
        if !rest.is_empty() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: "trailing content after 'end'".into(),
            });
        }
        if self.pos != self.lines.len() {
            return Err(ExchangeError::Syntax {
                line: self.pos + 1,
                message: "content after 'end'".into(),
            });
        }
        Ok(())
    }
}

fn invalid(e: impl std::fmt::Display) -> ExchangeError {
    ExchangeError::Invalid {
        message: e.to_string(),
    }
}

/// Deserializes a model from exchange text, rejecting anything malformed,
/// non-finite, truncated, structurally inconsistent, or of a future format
/// version.
///
/// # Errors
///
/// Returns [`Error::Exchange`] with the precise [`ExchangeError`], or the
/// assembled model's own validation failure.
pub fn load_model(text: &str) -> Result<AnyModel> {
    let mut r = Reader::new(text);
    let header = r.expect("mdlx")?;
    let (version, tag) = header.split_once(' ').ok_or(ExchangeError::Syntax {
        line: 1,
        message: "header must be 'mdlx <version> <kind>'".into(),
    })?;
    if version != "1" {
        return Err(ExchangeError::UnsupportedVersion {
            found: version.to_string(),
        }
        .into());
    }
    let kind = ModelKind::from_tag(tag).ok_or(ExchangeError::UnknownKind {
        tag: tag.to_string(),
    })?;
    let name = r.expect("name")?.to_string();

    let model = match kind {
        ModelKind::PwRbfDriver => {
            let ts = r.scalar("ts")?;
            let vdd = r.scalar("vdd")?;
            let i_high = r.narx("i_high")?;
            let i_low = r.narx("i_low")?;
            let mut seqs = Vec::with_capacity(2);
            for label in ["up", "down"] {
                r.section("transition", label)?;
                let wh = r.vector("wh")?;
                let wl = r.vector("wl")?;
                seqs.push(WeightSequence::new(wh, wl).map_err(invalid)?);
            }
            r.end()?;
            let down = seqs.pop().expect("two transitions parsed");
            let up = seqs.pop().expect("two transitions parsed");
            AnyModel::PwRbfDriver(PwRbfDriverModel {
                name,
                ts,
                vdd,
                i_high,
                i_low,
                up,
                down,
            })
        }
        ModelKind::Receiver => {
            let ts = r.scalar("ts")?;
            let vdd = r.scalar("vdd")?;
            let (na, nb) = r.pair("arx")?;
            let a = r.vector("a")?;
            let b = r.vector("b")?;
            let linear =
                ArxModel::from_coefficients(ArxOrders { na, nb }, a, b).map_err(invalid)?;
            let up = r.narx("up")?;
            let down = r.narx("down")?;
            r.end()?;
            AnyModel::Receiver(ReceiverModel {
                name,
                ts,
                vdd,
                linear,
                up,
                down,
            })
        }
        ModelKind::CrBaseline => {
            let c = r.scalar("c")?;
            let x = r.vector("iv_x")?;
            let y = r.vector("iv_y")?;
            let static_iv = Pwl::new(x, y).map_err(invalid)?;
            r.end()?;
            AnyModel::Cr(CrModel::new(name, c, static_iv).map_err(invalid)?)
        }
        ModelKind::Ibis => {
            let vdd = r.scalar("vdd")?;
            let c_comp = r.scalar("c_comp")?;
            let dt = r.scalar("dt")?;
            let pullup = Pwl::new(r.vector("pullup_x")?, r.vector("pullup_y")?).map_err(invalid)?;
            let pulldown =
                Pwl::new(r.vector("pulldown_x")?, r.vector("pulldown_y")?).map_err(invalid)?;
            let ku_rise = r.vector("ku_rise")?;
            let kd_rise = r.vector("kd_rise")?;
            let ku_fall = r.vector("ku_fall")?;
            let kd_fall = r.vector("kd_fall")?;
            r.end()?;
            AnyModel::Ibis(IbisModel {
                name,
                vdd,
                pullup,
                pulldown,
                c_comp,
                dt,
                ku_rise,
                kd_rise,
                ku_fall,
                kd_fall,
            })
        }
    };
    model.validate()?;
    Ok(model)
}

/// Loads a model from a file (see [`load_model`]).
///
/// # Errors
///
/// [`load_model`] failures plus [`ExchangeError::Io`].
pub fn load_model_from_path(path: impl AsRef<Path>) -> Result<AnyModel> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    load_model(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    fn narx(order: usize, scale: f64) -> NarxModel {
        let orders = NarxOrders::dynamic(order);
        let dim = orders.dim();
        let centers: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..dim)
                    .map(|j| scale * (i as f64 + 0.1 * j as f64))
                    .collect()
            })
            .collect();
        let net = RbfNetwork::from_parts(
            dim,
            centers,
            vec![0.5, 0.25, 1.5],
            vec![1e-3, -2e-3, 0.7e-3],
            1e-4,
            (0..dim).map(|j| 1e-2 / (j + 1) as f64).collect(),
        )
        .unwrap();
        NarxModel::from_network(orders, net).unwrap()
    }

    fn driver_model() -> PwRbfDriverModel {
        PwRbfDriverModel {
            name: "md_test".into(),
            ts: 25e-12,
            vdd: 3.3,
            i_high: narx(2, 1.0),
            i_low: narx(2, -0.5),
            up: WeightSequence::new(vec![0.0, 0.3, 1.0], vec![1.0, 0.6, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.4, 0.0], vec![0.0, 0.7, 1.0]).unwrap(),
        }
    }

    fn receiver_model() -> ReceiverModel {
        ReceiverModel {
            name: "rx_test".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear: ArxModel::from_coefficients(
                ArxOrders { na: 2, nb: 1 },
                vec![0.4, -0.1],
                vec![0.08, -0.07],
            )
            .unwrap(),
            up: narx(1, 2.0),
            down: narx(1, -2.0),
        }
    }

    fn cr_model() -> CrModel {
        CrModel::new(
            "cr_test",
            2.5e-12,
            Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap(),
        )
        .unwrap()
    }

    fn ibis_model() -> IbisModel {
        IbisModel {
            name: "ibis_test".into(),
            vdd: 3.3,
            pullup: Pwl::new(vec![-1.0, 1.0, 4.0], vec![0.08, 0.04, -0.05]).unwrap(),
            pulldown: Pwl::new(vec![-1.0, 1.0, 4.0], vec![-0.06, 0.01, 0.09]).unwrap(),
            c_comp: 3e-12,
            dt: 50e-12,
            ku_rise: vec![0.0, 0.5, 1.0],
            kd_rise: vec![1.0, 0.5, 0.0],
            ku_fall: vec![1.0, 0.4, 0.0],
            kd_fall: vec![0.0, 0.6, 1.0],
        }
    }

    fn all_models() -> Vec<AnyModel> {
        vec![
            driver_model().into(),
            receiver_model().into(),
            cr_model().into(),
            ibis_model().into(),
        ]
    }

    #[test]
    fn round_trip_every_kind_byte_identical() {
        for model in all_models() {
            let text = save_model(&model).unwrap();
            let loaded = load_model(&text).unwrap();
            assert_eq!(loaded.kind(), model.kind());
            assert_eq!(loaded.name(), model.name());
            let re_saved = save_model(&loaded).unwrap();
            assert_eq!(text, re_saved, "{} re-save differs", model.kind());
        }
    }

    #[test]
    fn driver_round_trip_preserves_structure() {
        let m = driver_model();
        let text = save_model(&AnyModel::from(m.clone())).unwrap();
        let AnyModel::PwRbfDriver(l) = load_model(&text).unwrap() else {
            panic!("kind changed");
        };
        assert_eq!(l.ts, m.ts);
        assert_eq!(l.up.w_high(), m.up.w_high());
        assert_eq!(l.i_high.network().centers(), m.i_high.network().centers());
        assert_eq!(l.i_high.network().weights(), m.i_high.network().weights());
        assert_eq!(l.i_high.network().bias(), m.i_high.network().bias());
        // Loaded and original produce bit-identical predictions.
        let u = [0.3, 0.1, -0.2];
        let y = [0.01, 0.02];
        assert_eq!(l.i_high.one_step(&u, &y), m.i_high.one_step(&u, &y));
    }

    #[test]
    fn future_version_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        let bumped = text.replacen("mdlx 1 ", "mdlx 2 ", 1);
        match load_model(&bumped) {
            Err(Error::Exchange(ExchangeError::UnsupportedVersion { found })) => {
                assert_eq!(found, "2")
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let e = load_model("mdlx 1 hologram\nname x\nend\n").unwrap_err();
        assert!(matches!(
            e,
            Error::Exchange(ExchangeError::UnknownKind { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        for model in all_models() {
            let text = save_model(&model).unwrap();
            // Drop the final 'end' line.
            let truncated = text.trim_end_matches("end\n");
            let e = load_model(truncated).unwrap_err();
            assert!(
                matches!(
                    e,
                    Error::Exchange(ExchangeError::Truncated { .. } | ExchangeError::Syntax { .. })
                ),
                "{}: {e:?}",
                model.kind()
            );
            // Drop half the file.
            let half = &text[..text.len() / 2];
            assert!(load_model(half).is_err(), "{}", model.kind());
        }
    }

    #[test]
    fn non_finite_values_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        // Corrupt one weight value into NaN.
        let corrupted = text.replacen("wh 3 0e0", "wh 3 NaN", 1);
        assert_ne!(text, corrupted, "corruption target must exist");
        let e = load_model(&corrupted).unwrap_err();
        assert!(
            matches!(e, Error::Exchange(ExchangeError::NonFinite { .. })),
            "{e:?}"
        );
        let corrupted = text.replacen("bias 1e-4", "bias inf", 1);
        assert_ne!(text, corrupted);
        let e = load_model(&corrupted).unwrap_err();
        assert!(matches!(
            e,
            Error::Exchange(ExchangeError::NonFinite { .. })
        ));
    }

    #[test]
    fn unknown_field_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        let with_extra = text.replacen("ts ", "temperature 300\nts ", 1);
        let e = load_model(&with_extra).unwrap_err();
        match e {
            Error::Exchange(ExchangeError::UnknownField { line, field }) => {
                assert_eq!(line, 3);
                assert_eq!(field, "temperature");
            }
            other => panic!("expected unknown-field error, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        // Declare 4 samples but carry 3.
        let corrupted = text.replacen("wh 3 ", "wh 4 ", 1);
        let e = load_model(&corrupted).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Syntax { .. })));
    }

    /// Absurd declared counts must fail as syntax errors, never drive an
    /// allocation or arithmetic overflow (the strict-loading contract).
    #[test]
    fn pathological_declared_counts_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        for corrupted in [
            text.replacen("wh 3 ", &format!("wh {} ", usize::MAX), 1),
            text.replacen("wh 3 ", "wh 999999999999999999 ", 1),
            text.replacen("rbf 5 3", "rbf 5 999999999999999999", 1),
            text.replacen("orders 2 2", &format!("orders {} 2", usize::MAX), 1),
        ] {
            assert_ne!(text, corrupted, "corruption target must exist");
            let e = load_model(&corrupted).unwrap_err();
            assert!(
                matches!(e, Error::Exchange(ExchangeError::Syntax { .. })),
                "{e:?}"
            );
        }
    }

    #[test]
    fn non_serializable_models_rejected() {
        let mut m = driver_model();
        m.name = "two\nlines".into();
        let e = save_model(&AnyModel::from(m)).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Invalid { .. })));
        let mut m = driver_model();
        m.ts = f64::NAN;
        // Caught by the model's own validation before writing.
        assert!(save_model(&AnyModel::from(m)).is_err());
    }

    #[test]
    fn path_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join("mdlx_exchange_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mdlx");
        let model = AnyModel::from(cr_model());
        save_model_to_path(&model, &path).unwrap();
        let loaded = load_model_from_path(&path).unwrap();
        assert_eq!(loaded.name(), "cr_test");
        let missing = dir.join("nope.mdlx");
        assert!(matches!(
            load_model_from_path(&missing).unwrap_err(),
            Error::Exchange(ExchangeError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = ExchangeError::UnsupportedVersion { found: "9".into() };
        assert!(e.to_string().contains('9'));
        let e = ExchangeError::NonFinite {
            line: 7,
            field: "wh".into(),
        };
        assert!(e.to_string().contains("wh"));
        let e = ExchangeError::Truncated {
            expected: "end".into(),
        };
        assert!(e.to_string().contains("end"));
    }
}
