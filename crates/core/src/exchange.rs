//! Versioned, self-contained model-exchange format (`mdlx`).
//!
//! An estimated macromodel is only useful if it can be shipped: extracted
//! once, saved, and loaded by a downstream simulation that never sees the
//! transistor-level device. This module defines the on-disk artifact —
//! a line-oriented, human-auditable text format — and the [`save_model`] /
//! [`load_model`] pair with strict validation on load.
//!
//! # Format
//!
//! ```text
//! mdlx <version> <kind-tag>
//! name <device name>
//! <kind-specific records>
//! end
//! ```
//!
//! * every record is one line: a key followed by space-separated values;
//! * vectors carry an explicit length (`wh 3 0e0 5e-1 1e0`), so truncation
//!   is always detectable;
//! * floats are written in shortest round-trip scientific notation
//!   (`2.5e-11`), which makes **save → load → save byte-identical**;
//! * the record sequence per kind is fixed; any unexpected key is rejected
//!   ([`ExchangeError::UnknownField`]) — there are no optional or ignored
//!   fields;
//! * every numeric value must be finite ([`ExchangeError::NonFinite`])
//!   and the assembled model must pass its structural validation before
//!   [`load_model`] returns.
//!
//! # Format versions
//!
//! * **`mdlx 1`** — one model per file, exactly the grammar above. This is
//!   still what [`save_model`] writes, so existing artifacts remain
//!   byte-identical under save → load → save.
//! * **`mdlx 2`** — a *bundle*: an optional provenance block (extraction
//!   config digest, tool version, creation parameters) followed by one or
//!   more embedded models (driver + receiver + corner variants in one
//!   file). Written by [`save_artifact`] for [`Artifact::bundle`] values:
//!
//! ```text
//! mdlx 2 bundle
//! provenance
//! tool emc-io-macromodel
//! toolver 0.1.0
//! digest 9a3fb2c41d70e655
//! params 1
//! param device md1
//! endprovenance
//! models 2
//! model pwrbf-driver
//! name md1
//! <kind-specific records>
//! endmodel
//! model ibis
//! name md1_Typical
//! <kind-specific records>
//! endmodel
//! end
//! ```
//!
//! [`load_artifact`] reads both versions (v1 files load as single-model
//! artifacts); a version tag beyond `2` fails with
//! [`ExchangeError::UnsupportedVersion`] instead of being misparsed. The
//! lexer tolerates CRLF line endings and trailing blank lines — artifacts
//! that crossed a Windows checkout or an editor that appends a final
//! newline load cleanly (the *canonical* byte form, which re-save
//! produces and `mdl validate` enforces, remains LF with no trailing
//! blank line).
//!
//! # Binary container
//!
//! The same artifacts also ship in a length-framed binary container
//! (**`mdlx-bin 1`**, extension `.mdlxb`) defined in the [`binary`]
//! submodule: a fixed 32-byte file header, then one section per
//! provenance block / model, each framed by its byte length and guarded
//! by an FNV-1a 64 digest, so a reader can inventory or verify a file
//! without decoding payloads. [`load_artifact_bytes`] dispatches on the
//! leading magic and accepts either encoding; text ⇄ binary conversion
//! is lossless and byte-exact in both directions because text floats use
//! shortest round-trip notation and binary floats are the raw IEEE-754
//! bits. The normative specification of all three encodings — grammar,
//! field tables, error taxonomy, version migration — is
//! `docs/FORMAT.md` at the repository root.
//!
//! # Example
//!
//! ```no_run
//! use macromodel::exchange::binary::save_artifact_bin_to_path;
//! use macromodel::exchange::{
//!     load_artifact_auto_from_path, load_model_from_path, save_model_to_path, AnyModel, Artifact,
//! };
//! use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let model = estimate_driver(&refdev::md1(), DriverEstimationConfig::default())?;
//! save_model_to_path(&AnyModel::from(model), "md1.mdlx")?;
//! let loaded = load_model_from_path("md1.mdlx")?;
//! println!("{}", macromodel::Macromodel::summary(&loaded));
//!
//! // The same artifact in binary framing; the auto loader dispatches on
//! // the leading magic, so both paths read back identically.
//! save_artifact_bin_to_path(&Artifact::single(loaded), "md1.mdlxb")?;
//! let artifact = load_artifact_auto_from_path("md1.mdlxb")?;
//! assert_eq!(artifact.models.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod binary;

use crate::driver::{PwRbfDriverModel, WeightSequence};
use crate::macromodel::{Macromodel, ModelKind, PortStimulus, TestFixture};
use crate::receiver::{CrModel, ReceiverModel};
use crate::Result;
use circuit::{Circuit, Node, Waveform};
use numkit::interp::Pwl;
use refdev::IbisModel;
use std::collections::BTreeMap;
use std::path::Path;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Version written for single-model artifacts (the `mdlx 1` grammar).
pub const FORMAT_VERSION: u32 = 1;

/// Version written for bundles with provenance (the `mdlx 2` grammar).
pub const BUNDLE_FORMAT_VERSION: u32 = 2;

/// Typed failure modes of the exchange layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The file declares a version this reader does not understand.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// The file declares an unknown model kind.
    UnknownKind {
        /// The kind tag found in the header.
        tag: String,
    },
    /// A line failed to parse (malformed tokens, wrong count).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record key other than the one the grammar expects next.
    UnknownField {
        /// 1-based line number.
        line: usize,
        /// The unexpected key.
        field: String,
    },
    /// A numeric value parsed to NaN or infinity.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// The record key holding the value.
        field: String,
    },
    /// The file ended before the grammar was complete.
    Truncated {
        /// The record key that was expected next.
        expected: String,
    },
    /// The records parsed but assemble into an invalid model, or the model
    /// handed to [`save_model`] is not serializable (e.g. a multi-line
    /// name).
    Invalid {
        /// Description of the violation.
        message: String,
    },
    /// Filesystem failure.
    Io {
        /// The offending path.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// A binary container whose leading bytes are not the `mdlxb` magic.
    BadMagic {
        /// Hex rendering of the bytes found where the magic was expected.
        found: String,
    },
    /// A binary section whose stored FNV-1a digest does not match its
    /// bytes — the container was corrupted after writing.
    DigestMismatch {
        /// Which section failed (`body`, or `model <name>`).
        section: String,
        /// The digest stored in the container, hex.
        expected: String,
        /// The digest recomputed over the bytes, hex.
        found: String,
    },
    /// A binary record failed to decode (impossible count, trailing
    /// bytes, malformed string).
    Corrupt {
        /// Byte offset of the offending record.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version '{found}' (reader understands \
                     {FORMAT_VERSION}..={BUNDLE_FORMAT_VERSION})"
                )
            }
            ExchangeError::UnknownKind { tag } => write!(f, "unknown model kind '{tag}'"),
            ExchangeError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ExchangeError::UnknownField { line, field } => {
                write!(f, "line {line}: unknown field '{field}'")
            }
            ExchangeError::NonFinite { line, field } => {
                write!(f, "line {line}: non-finite value in '{field}'")
            }
            ExchangeError::Truncated { expected } => {
                write!(f, "file truncated: expected '{expected}'")
            }
            ExchangeError::Invalid { message } => write!(f, "invalid model data: {message}"),
            ExchangeError::Io { path, message } => write!(f, "{path}: {message}"),
            ExchangeError::BadMagic { found } => {
                write!(f, "not an mdlxb container (leading bytes {found})")
            }
            ExchangeError::DigestMismatch {
                section,
                expected,
                found,
            } => write!(
                f,
                "digest mismatch in {section}: stored {expected}, computed {found}"
            ),
            ExchangeError::Corrupt { offset, message } => {
                write!(f, "byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

/// A macromodel of any supported kind — the unit of exchange.
///
/// Wraps the concrete model types so heterogeneous artifacts share one
/// save/load path; implements [`Macromodel`] by delegation, so a loaded
/// model plugs into every trait-generic consumer directly.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// PW-RBF driver model.
    PwRbfDriver(PwRbfDriverModel),
    /// Receiver parametric model.
    Receiver(ReceiverModel),
    /// C–R̂ baseline.
    Cr(CrModel),
    /// IBIS-style driver baseline.
    Ibis(IbisModel),
}

impl From<PwRbfDriverModel> for AnyModel {
    fn from(m: PwRbfDriverModel) -> Self {
        AnyModel::PwRbfDriver(m)
    }
}

impl From<ReceiverModel> for AnyModel {
    fn from(m: ReceiverModel) -> Self {
        AnyModel::Receiver(m)
    }
}

impl From<CrModel> for AnyModel {
    fn from(m: CrModel) -> Self {
        AnyModel::Cr(m)
    }
}

impl From<IbisModel> for AnyModel {
    fn from(m: IbisModel) -> Self {
        AnyModel::Ibis(m)
    }
}

impl AnyModel {
    /// The model behind the unified trait.
    pub fn as_dyn(&self) -> &dyn Macromodel {
        match self {
            AnyModel::PwRbfDriver(m) => m,
            AnyModel::Receiver(m) => m,
            AnyModel::Cr(m) => m,
            AnyModel::Ibis(m) => m,
        }
    }
}

impl Macromodel for AnyModel {
    fn kind(&self) -> ModelKind {
        self.as_dyn().kind()
    }

    fn name(&self) -> &str {
        self.as_dyn().name()
    }

    fn sample_time(&self) -> Option<f64> {
        self.as_dyn().sample_time()
    }

    fn summary(&self) -> String {
        self.as_dyn().summary()
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        self.as_dyn().metadata()
    }

    fn validate(&self) -> Result<()> {
        self.as_dyn().validate()
    }

    fn instantiate(&self, ckt: &mut Circuit, pad: Node, stim: Option<&PortStimulus>) -> Result<()> {
        self.as_dyn().instantiate(ckt, pad, stim)
    }

    fn simulate_on_load(
        &self,
        fixture: &TestFixture,
        stim: Option<&PortStimulus>,
        dt: f64,
        t_stop: f64,
    ) -> Result<Waveform> {
        self.as_dyn().simulate_on_load(fixture, stim, dt, t_stop)
    }
}

// ---------------------------------------------------------------------
// Provenance and artifacts (format v2)
// ---------------------------------------------------------------------

/// FNV-1a 64-bit digest of a byte string, hex-encoded.
///
/// This is the digest a *serving* layer keys caches with: two artifact
/// files with equal content digests parse into identical models, so a
/// parsed instance can be reused across file touches and hot-reloads
/// without re-reading the grammar. (Contrast [`config_digest`], which
/// identifies the extraction *configuration* embedded in provenance.)
pub fn content_digest(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// The raw FNV-1a 64-bit hash behind every digest of the exchange layer —
/// [`content_digest`], [`config_digest`], and the per-section digests of
/// the binary container ([`binary`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The digest a serving layer should key caches with, for a file of
/// *either* container: the embedded body digest of a binary `mdlxb` file
/// (read from its header, no hashing), or [`content_digest`] over the raw
/// bytes of a text artifact.
///
/// Two files with equal digests parse into identical models (binary body
/// digests cover every section, and parsing verifies them), so a parsed
/// instance can be reused across touches and hot-reloads.
pub fn artifact_digest(bytes: &[u8]) -> String {
    binary::embedded_digest(bytes).unwrap_or_else(|| content_digest(bytes))
}

/// FNV-1a 64-bit digest of a configuration's `Debug` rendering, hex-encoded.
///
/// The digest ties an artifact to the extraction configuration that
/// produced it: two artifacts with equal digests came from identical
/// estimation settings (same struct layout and values), without the format
/// having to serialize every config field.
pub fn config_digest(cfg: &impl std::fmt::Debug) -> String {
    content_digest(format!("{cfg:?}").as_bytes())
}

/// Embedded provenance of a `mdlx 2` artifact: where the models came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Producing tool name.
    pub tool: String,
    /// Producing tool version.
    pub tool_version: String,
    /// Digest of the extraction configuration (see [`config_digest`]);
    /// `-` when unknown.
    pub config_digest: String,
    /// Ordered creation parameters (key must be a single whitespace-free
    /// token, value one line).
    pub params: Vec<(String, String)>,
}

impl Provenance {
    /// Provenance stamped with this crate's name and version.
    pub fn new(config_digest: impl Into<String>) -> Self {
        Provenance {
            tool: env!("CARGO_PKG_NAME").to_string(),
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            config_digest: config_digest.into(),
            params: Vec::new(),
        }
    }

    /// Appends a creation parameter (builder-style).
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    fn check_serializable(&self) -> std::result::Result<(), ExchangeError> {
        let one_line = |label: &str, s: &str| {
            if s.contains('\n') || s.contains('\r') {
                return Err(ExchangeError::Invalid {
                    message: format!("provenance {label} must not contain line breaks"),
                });
            }
            Ok(())
        };
        one_line("tool", &self.tool)?;
        one_line("tool version", &self.tool_version)?;
        one_line("digest", &self.config_digest)?;
        for (k, v) in &self.params {
            if k.is_empty() || k.chars().any(|c| c.is_whitespace()) {
                return Err(ExchangeError::Invalid {
                    message: format!("provenance param key '{k}' must be one non-empty token"),
                });
            }
            one_line("param value", v)?;
        }
        Ok(())
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance::new("-")
    }
}

/// A parsed `.mdlx` artifact of either format version: one model (v1) or a
/// provenance-stamped multi-model bundle (v2). The unit the model store
/// works with.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Format version this artifact serializes as (1 or 2).
    pub version: u32,
    /// Embedded provenance (v2 only; `None` for v1 artifacts).
    pub provenance: Option<Provenance>,
    /// The models; exactly one for v1, one or more for v2.
    pub models: Vec<AnyModel>,
}

impl Artifact {
    /// A v1 single-model artifact — serializes byte-identically to
    /// [`save_model`].
    pub fn single(model: AnyModel) -> Self {
        Artifact {
            version: FORMAT_VERSION,
            provenance: None,
            models: vec![model],
        }
    }

    /// A v2 bundle of one or more models with optional provenance.
    pub fn bundle(models: Vec<AnyModel>, provenance: Option<Provenance>) -> Self {
        Artifact {
            version: BUNDLE_FORMAT_VERSION,
            provenance,
            models,
        }
    }

    /// The first model — the whole artifact for v1 files.
    pub fn primary(&self) -> Option<&AnyModel> {
        self.models.first()
    }

    /// Unwraps a single-model artifact.
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Invalid`] when the artifact bundles several models.
    pub fn into_single(mut self) -> Result<AnyModel> {
        if self.models.len() != 1 {
            return Err(ExchangeError::Invalid {
                message: format!(
                    "artifact bundles {} models; load it with load_artifact",
                    self.models.len()
                ),
            }
            .into());
        }
        Ok(self.models.pop().expect("length checked"))
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Shortest round-trip scientific form; the single float syntax of the
/// format (both ends of the byte-identity guarantee).
fn fmt_f64(v: f64) -> String {
    format!("{v:e}")
}

struct Writer {
    out: String,
}

impl Writer {
    fn new(version: u32, tag: &str) -> Self {
        Writer {
            out: format!("mdlx {version} {tag}\n"),
        }
    }

    fn raw(&mut self, line: &str) {
        self.out.push_str(line);
        self.out.push('\n');
    }

    fn name(&mut self, name: &str) -> std::result::Result<(), ExchangeError> {
        if name.contains('\n') || name.contains('\r') {
            return Err(ExchangeError::Invalid {
                message: "model name must not contain line breaks".into(),
            });
        }
        self.raw(&format!("name {name}"));
        Ok(())
    }

    fn scalar(&mut self, key: &str, v: f64) -> std::result::Result<(), ExchangeError> {
        if !v.is_finite() {
            return Err(ExchangeError::Invalid {
                message: format!("'{key}' is not finite: {v}"),
            });
        }
        self.raw(&format!("{key} {}", fmt_f64(v)));
        Ok(())
    }

    fn pair(&mut self, key: &str, a: usize, b: usize) {
        self.raw(&format!("{key} {a} {b}"));
    }

    fn vector(&mut self, key: &str, vs: &[f64]) -> std::result::Result<(), ExchangeError> {
        let mut line = format!("{key} {}", vs.len());
        for v in vs {
            if !v.is_finite() {
                return Err(ExchangeError::Invalid {
                    message: format!("'{key}' contains a non-finite value"),
                });
            }
            line.push(' ');
            line.push_str(&fmt_f64(*v));
        }
        self.raw(&line);
        Ok(())
    }

    fn narx(&mut self, label: &str, m: &NarxModel) -> std::result::Result<(), ExchangeError> {
        let net = m.network();
        self.raw(&format!("submodel {label}"));
        self.pair("orders", m.orders().input_lags, m.orders().output_lags);
        self.pair("rbf", net.dim(), net.n_centers());
        self.scalar("bias", net.bias())?;
        self.vector("linear", net.linear())?;
        for c in net.centers() {
            self.vector("center", c)?;
        }
        self.vector("widths", net.widths())?;
        self.vector("gweights", net.weights())?;
        Ok(())
    }

    fn finish(mut self) -> String {
        self.raw("end");
        self.out
    }
}

/// Writes the name line plus every kind-specific record of `model` — the
/// body shared by the v1 single-model grammar and each `model … endmodel`
/// section of a v2 bundle.
fn write_model_records(w: &mut Writer, model: &AnyModel) -> std::result::Result<(), ExchangeError> {
    match model {
        AnyModel::PwRbfDriver(m) => {
            w.name(&m.name)?;
            w.scalar("ts", m.ts)?;
            w.scalar("vdd", m.vdd)?;
            w.narx("i_high", &m.i_high)?;
            w.narx("i_low", &m.i_low)?;
            for (label, seq) in [("up", &m.up), ("down", &m.down)] {
                w.raw(&format!("transition {label}"));
                w.vector("wh", seq.w_high())?;
                w.vector("wl", seq.w_low())?;
            }
        }
        AnyModel::Receiver(m) => {
            w.name(&m.name)?;
            w.scalar("ts", m.ts)?;
            w.scalar("vdd", m.vdd)?;
            w.pair("arx", m.linear.orders().na, m.linear.orders().nb);
            w.vector("a", m.linear.a())?;
            w.vector("b", m.linear.b())?;
            w.narx("up", &m.up)?;
            w.narx("down", &m.down)?;
        }
        AnyModel::Cr(m) => {
            w.name(&m.name)?;
            w.scalar("c", m.c)?;
            w.vector("iv_x", m.static_iv.x())?;
            w.vector("iv_y", m.static_iv.y())?;
        }
        AnyModel::Ibis(m) => {
            w.name(&m.name)?;
            w.scalar("vdd", m.vdd)?;
            w.scalar("c_comp", m.c_comp)?;
            w.scalar("dt", m.dt)?;
            w.vector("pullup_x", m.pullup.x())?;
            w.vector("pullup_y", m.pullup.y())?;
            w.vector("pulldown_x", m.pulldown.x())?;
            w.vector("pulldown_y", m.pulldown.y())?;
            w.vector("ku_rise", &m.ku_rise)?;
            w.vector("kd_rise", &m.kd_rise)?;
            w.vector("ku_fall", &m.ku_fall)?;
            w.vector("kd_fall", &m.kd_fall)?;
        }
    }
    Ok(())
}

/// Serializes a model to the v1 exchange text.
///
/// # Errors
///
/// Returns [`crate::Error::Exchange`] for non-serializable data (non-finite values,
/// multi-line names) and [`crate::Error::InvalidModel`] when the model fails its
/// own validation — nothing invalid is ever written.
pub fn save_model(model: &AnyModel) -> Result<String> {
    model.validate()?;
    let mut w = Writer::new(FORMAT_VERSION, model.kind().tag());
    write_model_records(&mut w, model)?;
    Ok(w.finish())
}

/// Serializes an artifact: v1 single-model text (byte-identical to
/// [`save_model`]) or a v2 bundle with optional provenance.
///
/// # Errors
///
/// [`save_model`] failures per model, plus [`ExchangeError::Invalid`] for an
/// empty bundle, a v1 artifact that is not exactly one provenance-free
/// model, or an unknown version.
pub fn save_artifact(artifact: &Artifact) -> Result<String> {
    match artifact.version {
        FORMAT_VERSION => {
            if artifact.provenance.is_some() {
                return Err(ExchangeError::Invalid {
                    message: "format v1 cannot carry a provenance block".into(),
                }
                .into());
            }
            let [model] = artifact.models.as_slice() else {
                return Err(ExchangeError::Invalid {
                    message: format!(
                        "format v1 holds exactly one model, got {}",
                        artifact.models.len()
                    ),
                }
                .into());
            };
            save_model(model)
        }
        BUNDLE_FORMAT_VERSION => {
            if artifact.models.is_empty() {
                return Err(ExchangeError::Invalid {
                    message: "a bundle must hold at least one model".into(),
                }
                .into());
            }
            for model in &artifact.models {
                model.validate()?;
            }
            let mut w = Writer::new(BUNDLE_FORMAT_VERSION, "bundle");
            if let Some(p) = &artifact.provenance {
                p.check_serializable()?;
                w.raw("provenance");
                w.raw(&format!("tool {}", p.tool));
                w.raw(&format!("toolver {}", p.tool_version));
                w.raw(&format!("digest {}", p.config_digest));
                w.raw(&format!("params {}", p.params.len()));
                for (k, v) in &p.params {
                    w.raw(&format!("param {k} {v}"));
                }
                w.raw("endprovenance");
            }
            w.raw(&format!("models {}", artifact.models.len()));
            for model in &artifact.models {
                w.raw(&format!("model {}", model.kind().tag()));
                write_model_records(&mut w, model)?;
                w.raw("endmodel");
            }
            Ok(w.finish())
        }
        other => Err(ExchangeError::Invalid {
            message: format!("cannot write unknown format version {other}"),
        }
        .into()),
    }
}

/// Saves an artifact to a file (see [`save_artifact`]).
///
/// # Errors
///
/// [`save_artifact`] failures plus [`ExchangeError::Io`].
pub fn save_artifact_to_path(artifact: &Artifact, path: impl AsRef<Path>) -> Result<()> {
    let text = save_artifact(artifact)?;
    std::fs::write(path.as_ref(), text).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    Ok(())
}

/// Saves a model to a file (see [`save_model`]).
///
/// # Errors
///
/// [`save_model`] failures plus [`ExchangeError::Io`].
pub fn save_model_to_path(model: &AnyModel, path: impl AsRef<Path>) -> Result<()> {
    let text = save_model(model)?;
    std::fs::write(path.as_ref(), text).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Upper bound on any count a file can declare (vector lengths, center
/// counts, model orders). Far above every legitimate model size, and low
/// enough that a corrupted length can neither overflow arithmetic nor
/// drive a pathological allocation — corruption must surface as a typed
/// error, never a panic or abort.
const MAX_DECLARED_COUNT: usize = 1 << 20;

struct Reader<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

type ExResult<T> = std::result::Result<T, ExchangeError>;

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        // Normalize line endings: `str::lines` already splits `\r\n`, but a
        // lone trailing `\r` (mixed-ending files) is stripped here too, and
        // trailing blank lines — the final-newline convention of many
        // editors and CRLF checkouts — are dropped so `end` stays the last
        // line of the grammar. Interior blank lines remain syntax errors.
        let mut lines: Vec<&str> = text
            .lines()
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .collect();
        while lines.last().is_some_and(|l| l.trim_ascii().is_empty()) {
            lines.pop();
        }
        Reader { lines, pos: 0 }
    }

    /// 1-based number of the line most recently consumed.
    fn line_no(&self) -> usize {
        self.pos
    }

    /// Key of the next line without consuming it.
    fn peek_key(&self) -> Option<&'a str> {
        let line = self.lines.get(self.pos)?;
        Some(line.split_once(' ').map_or(*line, |(k, _)| k))
    }

    /// Consumes the next line, splitting off its leading key; fails with
    /// [`ExchangeError::UnknownField`] when the key is not `key`.
    fn expect(&mut self, key: &str) -> ExResult<&'a str> {
        let Some(line) = self.lines.get(self.pos) else {
            return Err(ExchangeError::Truncated {
                expected: key.to_string(),
            });
        };
        self.pos += 1;
        let (found, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (*line, ""),
        };
        if found != key {
            return Err(ExchangeError::UnknownField {
                line: self.pos,
                field: found.to_string(),
            });
        }
        Ok(rest)
    }

    fn scalar(&mut self, key: &str) -> ExResult<f64> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let (Some(tok), None) = (toks.next(), toks.next()) else {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects exactly one value"),
            });
        };
        self.parse_f64(tok, key)
    }

    fn parse_f64(&self, tok: &str, key: &str) -> ExResult<f64> {
        let v: f64 = tok.parse().map_err(|_| ExchangeError::Syntax {
            line: self.line_no(),
            message: format!("'{tok}' is not a number in '{key}'"),
        })?;
        if !v.is_finite() {
            return Err(ExchangeError::NonFinite {
                line: self.line_no(),
                field: key.to_string(),
            });
        }
        Ok(v)
    }

    fn pair(&mut self, key: &str) -> ExResult<(usize, usize)> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let parse = |tok: Option<&str>, line: usize| -> ExResult<usize> {
            tok.and_then(|t| t.parse().ok())
                .filter(|&v| v <= MAX_DECLARED_COUNT)
                .ok_or(ExchangeError::Syntax {
                    line,
                    message: format!("'{key}' expects two integers below {MAX_DECLARED_COUNT}"),
                })
        };
        let a = parse(toks.next(), self.line_no())?;
        let b = parse(toks.next(), self.line_no())?;
        if toks.next().is_some() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects exactly two integers"),
            });
        }
        Ok((a, b))
    }

    /// A record carrying exactly one bounded count, e.g. `models 3`.
    fn count(&mut self, key: &str) -> ExResult<usize> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let (Some(tok), None) = (toks.next(), toks.next()) else {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects exactly one integer"),
            });
        };
        tok.parse()
            .ok()
            .filter(|&v| v <= MAX_DECLARED_COUNT)
            .ok_or(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects an integer below {MAX_DECLARED_COUNT}"),
            })
    }

    fn vector(&mut self, key: &str) -> ExResult<Vec<f64>> {
        let rest = self.expect(key)?;
        let mut toks = rest.split_ascii_whitespace();
        let len: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .filter(|&v| v <= MAX_DECLARED_COUNT)
            .ok_or(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' expects a length prefix below {MAX_DECLARED_COUNT}"),
            })?;
        // Reserve from the *actual* payload size, not the declared length —
        // a lying prefix must fail the length check below, not allocate.
        let mut vs = Vec::with_capacity(len.min(rest.len() / 2 + 1));
        for tok in toks.by_ref() {
            vs.push(self.parse_f64(tok, key)?);
        }
        if vs.len() != len {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("'{key}' declares {len} values but carries {}", vs.len()),
            });
        }
        Ok(vs)
    }

    /// A section header with a fixed label, e.g. `submodel i_high`.
    fn section(&mut self, key: &str, label: &str) -> ExResult<()> {
        let rest = self.expect(key)?;
        if rest != label {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("expected '{key} {label}', found '{key} {rest}'"),
            });
        }
        Ok(())
    }

    fn narx(&mut self, label: &str) -> ExResult<NarxModel> {
        self.section("submodel", label)?;
        let (input_lags, output_lags) = self.pair("orders")?;
        let orders = NarxOrders {
            input_lags,
            output_lags,
        };
        let (dim, n_centers) = self.pair("rbf")?;
        if dim != orders.dim() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!(
                    "rbf dimension {dim} contradicts orders ({} expected)",
                    orders.dim()
                ),
            });
        }
        let bias = self.scalar("bias")?;
        let linear = self.vector("linear")?;
        // A corrupt center count runs into a missing 'center' line (typed
        // error) long before the vector grows; don't pre-reserve from it.
        let mut centers = Vec::with_capacity(n_centers.min(1024));
        for _ in 0..n_centers {
            centers.push(self.vector("center")?);
        }
        let widths = self.vector("widths")?;
        let weights = self.vector("gweights")?;
        let net =
            RbfNetwork::from_parts(dim, centers, widths, weights, bias, linear).map_err(invalid)?;
        NarxModel::from_network(orders, net).map_err(invalid)
    }

    /// A bare keyword line with no operands, e.g. `endmodel`.
    fn keyword(&mut self, key: &str) -> ExResult<()> {
        let rest = self.expect(key)?;
        if !rest.is_empty() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: format!("trailing content after '{key}'"),
            });
        }
        Ok(())
    }

    fn end(&mut self) -> ExResult<()> {
        let rest = self.expect("end")?;
        if !rest.is_empty() {
            return Err(ExchangeError::Syntax {
                line: self.line_no(),
                message: "trailing content after 'end'".into(),
            });
        }
        if self.pos != self.lines.len() {
            return Err(ExchangeError::Syntax {
                line: self.pos + 1,
                message: "content after 'end'".into(),
            });
        }
        Ok(())
    }
}

fn invalid(e: impl std::fmt::Display) -> ExchangeError {
    ExchangeError::Invalid {
        message: e.to_string(),
    }
}

/// Reads the name line plus every kind-specific record of one model,
/// stopping before the terminator (`end` for v1, `endmodel` for v2
/// sections). The structural constructors reject inconsistent data; the
/// assembled model's own validation runs in the callers.
fn read_model_records(r: &mut Reader, kind: ModelKind) -> ExResult<AnyModel> {
    let name = r.expect("name")?.to_string();
    let model = match kind {
        ModelKind::PwRbfDriver => {
            let ts = r.scalar("ts")?;
            let vdd = r.scalar("vdd")?;
            let i_high = r.narx("i_high")?;
            let i_low = r.narx("i_low")?;
            let mut seqs = Vec::with_capacity(2);
            for label in ["up", "down"] {
                r.section("transition", label)?;
                let wh = r.vector("wh")?;
                let wl = r.vector("wl")?;
                seqs.push(WeightSequence::new(wh, wl).map_err(invalid)?);
            }
            let down = seqs.pop().expect("two transitions parsed");
            let up = seqs.pop().expect("two transitions parsed");
            AnyModel::PwRbfDriver(PwRbfDriverModel {
                name,
                ts,
                vdd,
                i_high,
                i_low,
                up,
                down,
            })
        }
        ModelKind::Receiver => {
            let ts = r.scalar("ts")?;
            let vdd = r.scalar("vdd")?;
            let (na, nb) = r.pair("arx")?;
            let a = r.vector("a")?;
            let b = r.vector("b")?;
            let linear =
                ArxModel::from_coefficients(ArxOrders { na, nb }, a, b).map_err(invalid)?;
            let up = r.narx("up")?;
            let down = r.narx("down")?;
            AnyModel::Receiver(ReceiverModel {
                name,
                ts,
                vdd,
                linear,
                up,
                down,
            })
        }
        ModelKind::CrBaseline => {
            let c = r.scalar("c")?;
            let x = r.vector("iv_x")?;
            let y = r.vector("iv_y")?;
            let static_iv = Pwl::new(x, y).map_err(invalid)?;
            AnyModel::Cr(CrModel::new(name, c, static_iv).map_err(invalid)?)
        }
        ModelKind::Ibis => {
            let vdd = r.scalar("vdd")?;
            let c_comp = r.scalar("c_comp")?;
            let dt = r.scalar("dt")?;
            let pullup = Pwl::new(r.vector("pullup_x")?, r.vector("pullup_y")?).map_err(invalid)?;
            let pulldown =
                Pwl::new(r.vector("pulldown_x")?, r.vector("pulldown_y")?).map_err(invalid)?;
            let ku_rise = r.vector("ku_rise")?;
            let kd_rise = r.vector("kd_rise")?;
            let ku_fall = r.vector("ku_fall")?;
            let kd_fall = r.vector("kd_fall")?;
            AnyModel::Ibis(IbisModel {
                name,
                vdd,
                pullup,
                pulldown,
                c_comp,
                dt,
                ku_rise,
                kd_rise,
                ku_fall,
                kd_fall,
            })
        }
    };
    Ok(model)
}

/// Reads the optional provenance block of a v2 bundle.
fn read_provenance(r: &mut Reader) -> ExResult<Provenance> {
    r.keyword("provenance")?;
    let tool = r.expect("tool")?.to_string();
    let tool_version = r.expect("toolver")?.to_string();
    let config_digest = r.expect("digest")?.to_string();
    let n_params = r.count("params")?;
    let mut params = Vec::with_capacity(n_params.min(1024));
    for _ in 0..n_params {
        let rest = r.expect("param")?;
        let (key, value) = rest.split_once(' ').unwrap_or((rest, ""));
        if key.is_empty() {
            return Err(ExchangeError::Syntax {
                line: r.line_no(),
                message: "'param' expects a key token".into(),
            });
        }
        params.push((key.to_string(), value.to_string()));
    }
    r.keyword("endprovenance")?;
    Ok(Provenance {
        tool,
        tool_version,
        config_digest,
        params,
    })
}

/// Deserializes an artifact of either format version, rejecting anything
/// malformed, non-finite, truncated, structurally inconsistent, or of a
/// future format version.
///
/// # Errors
///
/// Returns [`crate::Error::Exchange`] with the precise [`ExchangeError`], or the
/// first assembled model's own validation failure.
pub fn load_artifact(text: &str) -> Result<Artifact> {
    let mut r = Reader::new(text);
    let header = r.expect("mdlx")?;
    let (version, tag) = header.split_once(' ').ok_or(ExchangeError::Syntax {
        line: 1,
        message: "header must be 'mdlx <version> <kind>'".into(),
    })?;
    let artifact = match version {
        "1" => {
            let kind = ModelKind::from_tag(tag).ok_or(ExchangeError::UnknownKind {
                tag: tag.to_string(),
            })?;
            let model = read_model_records(&mut r, kind)?;
            r.end()?;
            Artifact::single(model)
        }
        "2" => {
            if tag != "bundle" {
                return Err(ExchangeError::Syntax {
                    line: 1,
                    message: format!("version 2 artifacts are bundles; found kind '{tag}'"),
                }
                .into());
            }
            let provenance = match r.peek_key() {
                Some("provenance") => Some(read_provenance(&mut r)?),
                _ => None,
            };
            let n_models = r.count("models")?;
            if n_models == 0 {
                return Err(ExchangeError::Invalid {
                    message: "a bundle must hold at least one model".into(),
                }
                .into());
            }
            let mut models = Vec::with_capacity(n_models.min(1024));
            for _ in 0..n_models {
                let tag = r.expect("model")?;
                let kind = ModelKind::from_tag(tag).ok_or(ExchangeError::UnknownKind {
                    tag: tag.to_string(),
                })?;
                models.push(read_model_records(&mut r, kind)?);
                r.keyword("endmodel")?;
            }
            r.end()?;
            Artifact::bundle(models, provenance)
        }
        other => {
            return Err(ExchangeError::UnsupportedVersion {
                found: other.to_string(),
            }
            .into())
        }
    };
    for model in &artifact.models {
        model.validate()?;
    }
    Ok(artifact)
}

/// Loads an artifact from a file (see [`load_artifact`]).
///
/// # Errors
///
/// [`load_artifact`] failures plus [`ExchangeError::Io`].
pub fn load_artifact_from_path(path: impl AsRef<Path>) -> Result<Artifact> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    load_artifact(&text)
}

/// Deserializes a single model from exchange text of either version; a v2
/// bundle must hold exactly one model (use [`load_artifact`] for larger
/// bundles).
///
/// # Errors
///
/// See [`load_artifact`]; a multi-model bundle is [`ExchangeError::Invalid`].
pub fn load_model(text: &str) -> Result<AnyModel> {
    load_artifact(text)?.into_single()
}

/// Loads a model from a file (see [`load_model`]).
///
/// # Errors
///
/// [`load_model`] failures plus [`ExchangeError::Io`].
pub fn load_model_from_path(path: impl AsRef<Path>) -> Result<AnyModel> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    load_model(&text)
}

/// Deserializes an artifact from raw bytes of *either* container,
/// dispatching on content: the binary `mdlxb` magic selects
/// [`binary::load_artifact_bin`], anything else parses as UTF-8 exchange
/// text via [`load_artifact`].
///
/// # Errors
///
/// The selected loader's failures; non-UTF-8 bytes without the binary
/// magic are [`ExchangeError::Corrupt`].
pub fn load_artifact_bytes(bytes: &[u8]) -> Result<Artifact> {
    if binary::is_binary(bytes) {
        return binary::load_artifact_bin(bytes);
    }
    let text = std::str::from_utf8(bytes).map_err(|e| ExchangeError::Corrupt {
        offset: e.valid_up_to(),
        message: "artifact is neither an mdlxb container nor UTF-8 exchange text".into(),
    })?;
    load_artifact(text)
}

/// Loads an artifact of either container from a file (see
/// [`load_artifact_bytes`]).
///
/// # Errors
///
/// [`load_artifact_bytes`] failures plus [`ExchangeError::Io`].
pub fn load_artifact_auto_from_path(path: impl AsRef<Path>) -> Result<Artifact> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    load_artifact_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    fn narx(order: usize, scale: f64) -> NarxModel {
        let orders = NarxOrders::dynamic(order);
        let dim = orders.dim();
        let centers: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..dim)
                    .map(|j| scale * (i as f64 + 0.1 * j as f64))
                    .collect()
            })
            .collect();
        let net = RbfNetwork::from_parts(
            dim,
            centers,
            vec![0.5, 0.25, 1.5],
            vec![1e-3, -2e-3, 0.7e-3],
            1e-4,
            (0..dim).map(|j| 1e-2 / (j + 1) as f64).collect(),
        )
        .unwrap();
        NarxModel::from_network(orders, net).unwrap()
    }

    fn driver_model() -> PwRbfDriverModel {
        PwRbfDriverModel {
            name: "md_test".into(),
            ts: 25e-12,
            vdd: 3.3,
            i_high: narx(2, 1.0),
            i_low: narx(2, -0.5),
            up: WeightSequence::new(vec![0.0, 0.3, 1.0], vec![1.0, 0.6, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.4, 0.0], vec![0.0, 0.7, 1.0]).unwrap(),
        }
    }

    fn receiver_model() -> ReceiverModel {
        ReceiverModel {
            name: "rx_test".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear: ArxModel::from_coefficients(
                ArxOrders { na: 2, nb: 1 },
                vec![0.4, -0.1],
                vec![0.08, -0.07],
            )
            .unwrap(),
            up: narx(1, 2.0),
            down: narx(1, -2.0),
        }
    }

    fn cr_model() -> CrModel {
        CrModel::new(
            "cr_test",
            2.5e-12,
            Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap(),
        )
        .unwrap()
    }

    fn ibis_model() -> IbisModel {
        IbisModel {
            name: "ibis_test".into(),
            vdd: 3.3,
            pullup: Pwl::new(vec![-1.0, 1.0, 4.0], vec![0.08, 0.04, -0.05]).unwrap(),
            pulldown: Pwl::new(vec![-1.0, 1.0, 4.0], vec![-0.06, 0.01, 0.09]).unwrap(),
            c_comp: 3e-12,
            dt: 50e-12,
            ku_rise: vec![0.0, 0.5, 1.0],
            kd_rise: vec![1.0, 0.5, 0.0],
            ku_fall: vec![1.0, 0.4, 0.0],
            kd_fall: vec![0.0, 0.6, 1.0],
        }
    }

    fn all_models() -> Vec<AnyModel> {
        vec![
            driver_model().into(),
            receiver_model().into(),
            cr_model().into(),
            ibis_model().into(),
        ]
    }

    #[test]
    fn round_trip_every_kind_byte_identical() {
        for model in all_models() {
            let text = save_model(&model).unwrap();
            let loaded = load_model(&text).unwrap();
            assert_eq!(loaded.kind(), model.kind());
            assert_eq!(loaded.name(), model.name());
            let re_saved = save_model(&loaded).unwrap();
            assert_eq!(text, re_saved, "{} re-save differs", model.kind());
        }
    }

    #[test]
    fn driver_round_trip_preserves_structure() {
        let m = driver_model();
        let text = save_model(&AnyModel::from(m.clone())).unwrap();
        let AnyModel::PwRbfDriver(l) = load_model(&text).unwrap() else {
            panic!("kind changed");
        };
        assert_eq!(l.ts, m.ts);
        assert_eq!(l.up.w_high(), m.up.w_high());
        assert_eq!(l.i_high.network().centers(), m.i_high.network().centers());
        assert_eq!(l.i_high.network().weights(), m.i_high.network().weights());
        assert_eq!(l.i_high.network().bias(), m.i_high.network().bias());
        // Loaded and original produce bit-identical predictions.
        let u = [0.3, 0.1, -0.2];
        let y = [0.01, 0.02];
        assert_eq!(l.i_high.one_step(&u, &y), m.i_high.one_step(&u, &y));
    }

    #[test]
    fn future_version_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        let bumped = text.replacen("mdlx 1 ", "mdlx 3 ", 1);
        match load_model(&bumped) {
            Err(Error::Exchange(ExchangeError::UnsupportedVersion { found })) => {
                assert_eq!(found, "3")
            }
            other => panic!("expected version error, got {other:?}"),
        }
        // `mdlx 2` is understood, but only as the bundle grammar.
        let v2_kind = text.replacen("mdlx 1 ", "mdlx 2 ", 1);
        assert!(matches!(
            load_model(&v2_kind),
            Err(Error::Exchange(ExchangeError::Syntax { line: 1, .. }))
        ));
    }

    #[test]
    fn crlf_and_trailing_blank_lines_load_cleanly() {
        for model in all_models() {
            let text = save_model(&model).unwrap();
            // CRLF endings (Windows checkout).
            let crlf = text.replace('\n', "\r\n");
            let loaded = load_model(&crlf)
                .unwrap_or_else(|e| panic!("{}: CRLF artifact failed to load: {e}", model.kind()));
            assert_eq!(save_model(&loaded).unwrap(), text, "{}", model.kind());
            // Trailing blank line(s), both conventions.
            for suffix in ["\n", "\n\n", "\r\n", "  \n"] {
                let padded = format!("{text}{suffix}");
                let loaded = load_model(&padded).unwrap_or_else(|e| {
                    panic!(
                        "{}: artifact with trailing {suffix:?} failed to load: {e}",
                        model.kind()
                    )
                });
                assert_eq!(save_model(&loaded).unwrap(), text);
            }
            // A lone trailing '\r' after the final newline.
            let loaded = load_model(&format!("{text}\r")).unwrap();
            assert_eq!(save_model(&loaded).unwrap(), text);
        }
        // Interior blank lines are still rejected.
        let text = save_model(&all_models()[0]).unwrap();
        let interior = text.replacen("ts ", "\nts ", 1);
        assert!(load_model(&interior).is_err());
    }

    fn sample_provenance() -> Provenance {
        Provenance::new("9a3fb2c41d70e655")
            .with_param("device", "md1")
            .with_param("note", "fast extraction, two words")
    }

    #[test]
    fn bundle_round_trip_byte_identical() {
        let bundle = Artifact::bundle(all_models(), Some(sample_provenance()));
        let text = save_artifact(&bundle).unwrap();
        assert!(text.starts_with("mdlx 2 bundle\n"));
        let loaded = load_artifact(&text).unwrap();
        assert_eq!(loaded.version, BUNDLE_FORMAT_VERSION);
        assert_eq!(loaded.models.len(), 4);
        assert_eq!(loaded.provenance, Some(sample_provenance()));
        assert_eq!(save_artifact(&loaded).unwrap(), text);
    }

    #[test]
    fn bundle_without_provenance_round_trips() {
        let bundle = Artifact::bundle(vec![all_models().remove(2)], None);
        let text = save_artifact(&bundle).unwrap();
        let loaded = load_artifact(&text).unwrap();
        assert!(loaded.provenance.is_none());
        assert_eq!(save_artifact(&loaded).unwrap(), text);
        // A single-model v2 bundle loads through load_model too.
        assert_eq!(load_model(&text).unwrap().name(), "cr_test");
    }

    #[test]
    fn v1_artifact_round_trips_as_v1() {
        let model = all_models().remove(0);
        let v1_text = save_model(&model).unwrap();
        let artifact = load_artifact(&v1_text).unwrap();
        assert_eq!(artifact.version, FORMAT_VERSION);
        assert!(artifact.provenance.is_none());
        // Re-saving through the artifact path stays on the v1 byte form.
        assert_eq!(save_artifact(&artifact).unwrap(), v1_text);
    }

    #[test]
    fn multi_model_bundle_rejected_by_load_model() {
        let text = save_artifact(&Artifact::bundle(all_models(), None)).unwrap();
        assert!(matches!(
            load_model(&text),
            Err(Error::Exchange(ExchangeError::Invalid { .. }))
        ));
    }

    #[test]
    fn invalid_bundles_rejected_on_save() {
        // Empty bundle.
        let e = save_artifact(&Artifact::bundle(vec![], None)).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Invalid { .. })));
        // v1 cannot carry provenance.
        let mut artifact = Artifact::single(all_models().remove(0));
        artifact.provenance = Some(sample_provenance());
        assert!(save_artifact(&artifact).is_err());
        // v1 holds exactly one model.
        let mut artifact = Artifact::single(all_models().remove(0));
        artifact.models.push(all_models().remove(1));
        assert!(save_artifact(&artifact).is_err());
        // Unknown version.
        let mut artifact = Artifact::single(all_models().remove(0));
        artifact.version = 7;
        assert!(save_artifact(&artifact).is_err());
        // Multi-line provenance values.
        let mut p = sample_provenance();
        p.tool = "two\nlines".into();
        let e = save_artifact(&Artifact::bundle(all_models(), Some(p))).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Invalid { .. })));
        // Param key with whitespace.
        let p = sample_provenance().with_param("", "x");
        assert!(save_artifact(&Artifact::bundle(all_models(), Some(p))).is_err());
    }

    #[test]
    fn corrupted_bundles_rejected_per_section() {
        let text =
            save_artifact(&Artifact::bundle(all_models(), Some(sample_provenance()))).unwrap();
        // Truncation inside the provenance block.
        let cut = text.find("endprovenance").unwrap();
        assert!(load_artifact(&text[..cut]).is_err());
        // Wrong model count.
        let lying = text.replacen("models 4", "models 5", 1);
        assert!(load_artifact(&lying).is_err());
        let lying = text.replacen("models 4", "models 2", 1);
        assert!(load_artifact(&lying).is_err());
        // Zero-model bundle.
        let empty = "mdlx 2 bundle\nmodels 0\nend\n";
        assert!(matches!(
            load_artifact(empty),
            Err(Error::Exchange(ExchangeError::Invalid { .. }))
        ));
        // Unknown embedded kind.
        let unknown = text.replacen("model pwrbf-driver", "model hologram", 1);
        assert!(matches!(
            load_artifact(&unknown),
            Err(Error::Exchange(ExchangeError::UnknownKind { .. }))
        ));
        // Dropped section terminator.
        let dropped = text.replacen("endmodel\n", "", 1);
        assert!(load_artifact(&dropped).is_err());
        // Content after 'end'.
        let trailing = format!("{text}junk\n");
        assert!(load_artifact(&trailing).is_err());
    }

    #[test]
    fn config_digest_is_stable_and_value_sensitive() {
        #[derive(Debug)]
        struct Cfg {
            // Read only through the derived Debug rendering the digest
            // hashes — which is exactly the property under test.
            #[allow(dead_code)]
            n: usize,
        }
        let a = config_digest(&Cfg { n: 40 });
        assert_eq!(a.len(), 16);
        assert_eq!(a, config_digest(&Cfg { n: 40 }));
        assert_ne!(a, config_digest(&Cfg { n: 41 }));
    }

    #[test]
    fn unknown_kind_rejected() {
        let e = load_model("mdlx 1 hologram\nname x\nend\n").unwrap_err();
        assert!(matches!(
            e,
            Error::Exchange(ExchangeError::UnknownKind { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        for model in all_models() {
            let text = save_model(&model).unwrap();
            // Drop the final 'end' line.
            let truncated = text.trim_end_matches("end\n");
            let e = load_model(truncated).unwrap_err();
            assert!(
                matches!(
                    e,
                    Error::Exchange(ExchangeError::Truncated { .. } | ExchangeError::Syntax { .. })
                ),
                "{}: {e:?}",
                model.kind()
            );
            // Drop half the file.
            let half = &text[..text.len() / 2];
            assert!(load_model(half).is_err(), "{}", model.kind());
        }
    }

    #[test]
    fn non_finite_values_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        // Corrupt one weight value into NaN.
        let corrupted = text.replacen("wh 3 0e0", "wh 3 NaN", 1);
        assert_ne!(text, corrupted, "corruption target must exist");
        let e = load_model(&corrupted).unwrap_err();
        assert!(
            matches!(e, Error::Exchange(ExchangeError::NonFinite { .. })),
            "{e:?}"
        );
        let corrupted = text.replacen("bias 1e-4", "bias inf", 1);
        assert_ne!(text, corrupted);
        let e = load_model(&corrupted).unwrap_err();
        assert!(matches!(
            e,
            Error::Exchange(ExchangeError::NonFinite { .. })
        ));
    }

    #[test]
    fn unknown_field_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        let with_extra = text.replacen("ts ", "temperature 300\nts ", 1);
        let e = load_model(&with_extra).unwrap_err();
        match e {
            Error::Exchange(ExchangeError::UnknownField { line, field }) => {
                assert_eq!(line, 3);
                assert_eq!(field, "temperature");
            }
            other => panic!("expected unknown-field error, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        // Declare 4 samples but carry 3.
        let corrupted = text.replacen("wh 3 ", "wh 4 ", 1);
        let e = load_model(&corrupted).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Syntax { .. })));
    }

    /// Absurd declared counts must fail as syntax errors, never drive an
    /// allocation or arithmetic overflow (the strict-loading contract).
    #[test]
    fn pathological_declared_counts_rejected() {
        let text = save_model(&all_models()[0]).unwrap();
        for corrupted in [
            text.replacen("wh 3 ", &format!("wh {} ", usize::MAX), 1),
            text.replacen("wh 3 ", "wh 999999999999999999 ", 1),
            text.replacen("rbf 5 3", "rbf 5 999999999999999999", 1),
            text.replacen("orders 2 2", &format!("orders {} 2", usize::MAX), 1),
        ] {
            assert_ne!(text, corrupted, "corruption target must exist");
            let e = load_model(&corrupted).unwrap_err();
            assert!(
                matches!(e, Error::Exchange(ExchangeError::Syntax { .. })),
                "{e:?}"
            );
        }
    }

    #[test]
    fn non_serializable_models_rejected() {
        let mut m = driver_model();
        m.name = "two\nlines".into();
        let e = save_model(&AnyModel::from(m)).unwrap_err();
        assert!(matches!(e, Error::Exchange(ExchangeError::Invalid { .. })));
        let mut m = driver_model();
        m.ts = f64::NAN;
        // Caught by the model's own validation before writing.
        assert!(save_model(&AnyModel::from(m)).is_err());
    }

    #[test]
    fn path_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join("mdlx_exchange_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mdlx");
        let model = AnyModel::from(cr_model());
        save_model_to_path(&model, &path).unwrap();
        let loaded = load_model_from_path(&path).unwrap();
        assert_eq!(loaded.name(), "cr_test");
        let missing = dir.join("nope.mdlx");
        assert!(matches!(
            load_model_from_path(&missing).unwrap_err(),
            Error::Exchange(ExchangeError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = ExchangeError::UnsupportedVersion { found: "9".into() };
        assert!(e.to_string().contains('9'));
        let e = ExchangeError::NonFinite {
            line: 7,
            field: "wh".into(),
        };
        assert!(e.to_string().contains("wh"));
        let e = ExchangeError::Truncated {
            expected: "end".into(),
        };
        assert!(e.to_string().contains("end"));
    }

    mod binary_tests {
        use super::*;

        fn v2_bundle() -> Artifact {
            Artifact::bundle(
                all_models(),
                Some(Provenance {
                    tool: "mdl-extract".into(),
                    tool_version: "0.9".into(),
                    config_digest: content_digest(b"cfg"),
                    params: vec![
                        ("order".into(), "2".into()),
                        ("note".into(), "two words fine".into()),
                    ],
                }),
            )
        }

        #[test]
        fn text_binary_text_byte_identical_v1() {
            for model in all_models() {
                let artifact = Artifact::single(model);
                let text = save_artifact(&artifact).unwrap();
                let bin = binary::save_artifact_bin(&artifact).unwrap();
                let back = binary::load_artifact_bin(&bin).unwrap();
                assert_eq!(back.version, FORMAT_VERSION);
                assert_eq!(save_artifact(&back).unwrap(), text);
            }
        }

        #[test]
        fn text_binary_text_byte_identical_v2() {
            let artifact = v2_bundle();
            let text = save_artifact(&artifact).unwrap();
            let bin = binary::save_artifact_bin(&artifact).unwrap();
            let back = binary::load_artifact_bin(&bin).unwrap();
            assert_eq!(back.version, BUNDLE_FORMAT_VERSION);
            assert_eq!(back.provenance, artifact.provenance);
            assert_eq!(save_artifact(&back).unwrap(), text);
        }

        #[test]
        fn binary_save_is_deterministic() {
            let artifact = v2_bundle();
            let a = binary::save_artifact_bin(&artifact).unwrap();
            let b = binary::save_artifact_bin(&artifact).unwrap();
            assert_eq!(a, b);
        }

        #[test]
        fn embedded_digest_matches_body_hash() {
            let bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let embedded = binary::embedded_digest(&bin).unwrap();
            let computed = format!("{:016x}", fnv1a(&bin[binary::FILE_HEADER_LEN..]));
            assert_eq!(embedded, computed);
            assert_eq!(artifact_digest(&bin), embedded);
            assert!(binary::embedded_digest(b"mdlx 1\n").is_none());
        }

        #[test]
        fn index_lists_models_without_decoding() {
            let bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let index = binary::index_bytes(&bin).unwrap();
            assert_eq!(index.text_version, BUNDLE_FORMAT_VERSION);
            assert_eq!(index.sections.len(), 5);
            assert!(index.sections[0].kind.is_none());
            let names: Vec<&str> = index.models().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["md_test", "rx_test", "cr_test", "ibis_test"]);
            let kinds: Vec<ModelKind> = index.models().map(|s| s.kind.unwrap()).collect();
            assert_eq!(kinds, ModelKind::ALL);
        }

        #[test]
        fn single_section_decodes_independently() {
            let bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let index = binary::index_bytes(&bin).unwrap();
            let section = index.models().find(|s| s.name == "cr_test").unwrap();
            let model = binary::decode_model(&bin, section).unwrap();
            assert_eq!(model.kind(), ModelKind::CrBaseline);
            let prov = binary::decode_provenance_section(&bin, &index.sections[0]).unwrap();
            assert_eq!(prov.tool, "mdl-extract");
        }

        #[test]
        fn index_path_matches_index_bytes() {
            let dir = std::env::temp_dir().join("mdlxb_index_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("bundle.mdlxb");
            let artifact = v2_bundle();
            binary::save_artifact_bin_to_path(&artifact, &path).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let from_path = binary::index_path(&path).unwrap();
            let from_bytes = binary::index_bytes(&bytes).unwrap();
            assert_eq!(from_path, from_bytes);
            let loaded = load_artifact_auto_from_path(&path).unwrap();
            assert_eq!(loaded.models.len(), 4);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn bad_magic_rejected() {
            let e = load_artifact_bytes(&[0xff, 0xfe, 0x00, 0x01]).unwrap_err();
            match e {
                Error::Exchange(ExchangeError::Corrupt { .. }) => {}
                other => panic!("expected corrupt (not UTF-8), got {other:?}"),
            }
            let mut bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            bin[0] ^= 0x20;
            let e = binary::load_artifact_bin(&bin).unwrap_err();
            assert!(matches!(e, Error::Exchange(ExchangeError::BadMagic { .. })));
        }

        #[test]
        fn truncated_container_rejected() {
            let bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            for cut in [10, binary::FILE_HEADER_LEN + 5, bin.len() - 3] {
                let e = binary::load_artifact_bin(&bin[..cut]).unwrap_err();
                assert!(
                    matches!(e, Error::Exchange(ExchangeError::Truncated { .. })),
                    "cut at {cut}: {e:?}"
                );
            }
        }

        #[test]
        fn flipped_payload_byte_fails_digest() {
            let mut bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let index = binary::index_bytes(&bin).unwrap();
            let target = index.models().next().unwrap().payload_offset + 3;
            bin[target] ^= 0x01;
            let e = binary::load_artifact_bin(&bin).unwrap_err();
            match e {
                Error::Exchange(ExchangeError::DigestMismatch { section, .. }) => {
                    // The body digest covers everything, so it trips first.
                    assert_eq!(section, "body");
                }
                other => panic!("expected digest mismatch, got {other:?}"),
            }
        }

        #[test]
        fn flipped_digest_byte_fails_section_check() {
            let bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let index = binary::index_bytes(&bin).unwrap();
            let section = index.models().next().unwrap().clone();
            let mut corrupted = section.clone();
            corrupted.digest = {
                let mut d = section.digest.clone().into_bytes();
                d[0] = if d[0] == b'0' { b'1' } else { b'0' };
                String::from_utf8(d).unwrap()
            };
            let e = binary::decode_model(&bin, &corrupted).unwrap_err();
            assert!(matches!(
                e,
                Error::Exchange(ExchangeError::DigestMismatch { .. })
            ));
        }

        #[test]
        fn unknown_kind_code_rejected() {
            let mut bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            let index = binary::index_bytes(&bin).unwrap();
            let section = index.models().next().unwrap();
            // Kind code byte sits 20 bytes before the name start
            // (section header is 24 bytes, kind at +4).
            let header_start =
                section.payload_offset - section.name.len() - binary::SECTION_HEADER_LEN;
            bin[header_start + 4] = 99;
            let e = binary::index_bytes(&bin).unwrap_err();
            assert!(matches!(
                e,
                Error::Exchange(ExchangeError::UnknownKind { .. })
            ));
        }

        #[test]
        fn unsupported_versions_rejected() {
            let mut bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            bin[8] = 9;
            assert!(matches!(
                binary::load_artifact_bin(&bin).unwrap_err(),
                Error::Exchange(ExchangeError::UnsupportedVersion { .. })
            ));
            let mut bin = binary::save_artifact_bin(&v2_bundle()).unwrap();
            bin[12] = 7;
            assert!(matches!(
                binary::load_artifact_bin(&bin).unwrap_err(),
                Error::Exchange(ExchangeError::UnsupportedVersion { .. })
            ));
        }

        #[test]
        fn v1_shape_enforced_in_binary() {
            let mut artifact = Artifact::single(all_models().remove(2));
            artifact.provenance = Some(Provenance {
                tool: "t".into(),
                tool_version: "1".into(),
                config_digest: content_digest(b"x"),
                params: vec![],
            });
            assert!(binary::save_artifact_bin(&artifact).is_err());
        }

        #[test]
        fn auto_loader_dispatches_on_magic() {
            let artifact = v2_bundle();
            let text = save_artifact(&artifact).unwrap();
            let bin = binary::save_artifact_bin(&artifact).unwrap();
            let from_text = load_artifact_bytes(text.as_bytes()).unwrap();
            let from_bin = load_artifact_bytes(&bin).unwrap();
            assert_eq!(
                save_artifact(&from_text).unwrap(),
                save_artifact(&from_bin).unwrap()
            );
        }
    }
}
