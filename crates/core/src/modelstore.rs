//! The model library layer: a directory tree of `.mdlx` / `.mdlxb`
//! artifacts served as one queryable collection.
//!
//! [`ModelStore::open`] scans a directory (recursively, in a deterministic
//! sorted order) for text `.mdlx` and binary `.mdlxb` files side by side
//! and loads each through the format-dispatching
//! [`crate::exchange::load_artifact_auto_from_path`] — v1 single-model
//! files, v2 provenance-stamped bundles, and binary containers in one
//! tree. A file that fails to load does **not** abort the scan: its typed
//! error is collected in [`ModelStore::failures`], so one corrupt
//! artifact never takes the rest of the fleet down with it.
//!
//! Two load modes:
//!
//! * [`LoadMode::Eager`] (the [`ModelStore::open`] default) — every file is
//!   parsed during the scan; load errors are available immediately.
//! * [`LoadMode::Lazy`] — the scan only records paths; each artifact is
//!   parsed on first access ([`StoreEntry::artifact`]) and memoized. Use
//!   this when a harness touches a few models out of a large library.
//!
//! Lazy mode pairs with the binary container: [`StoreEntry::index`] reads
//! only a binary file's section headers (a few dozen bytes per model, via
//! seeks — payloads are never touched), so [`ModelStore::get`] can route a
//! name lookup straight to the one file holding the model and leave every
//! other entry unopened. Text entries fall back to a full parse for their
//! index, so a 1 000-artifact binary tree opens orders of magnitude
//! faster than the same tree in text — `mdl bench-store` measures exactly
//! this gap.
//!
//! The store indexes by model name ([`ModelStore::get`]) and kind
//! ([`ModelStore::of_kind`]) across every model of every artifact, and
//! flattens into a [`ModelRegistry`] for trait-generic harnesses.
//!
//! # Example
//!
//! ```no_run
//! use macromodel::{Macromodel, ModelKind, ModelStore};
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let store = ModelStore::open("artifacts/")?;
//! for failure in store.failures() {
//!     eprintln!("skipping {}: {}", failure.path.display(), failure.error);
//! }
//! for (path, model) in store.models() {
//!     println!("{} [{}] from {}", model.name(), model.kind(), path.display());
//! }
//! let drivers = store.of_kind(ModelKind::PwRbfDriver);
//! println!("{} PW-RBF drivers on the shelf", drivers.len());
//! # Ok(())
//! # }
//! ```

use crate::exchange::{
    binary, content_digest, load_artifact_auto_from_path, AnyModel, Artifact, ExchangeError,
};
use crate::macromodel::{Macromodel, ModelKind, ModelRegistry};
use crate::{Error, Result};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::SystemTime;

/// Directory-nesting bound of the store scan — far deeper than any sane
/// artifact layout, shallow enough to break symlink cycles.
const MAX_SCAN_DEPTH: usize = 32;

/// When the store parses artifact files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Parse every file during [`ModelStore::open`].
    Eager,
    /// Record paths during the scan; parse on first access.
    Lazy,
}

/// An artifact file that failed to index or load, with its typed error.
#[derive(Debug, Clone)]
pub struct StoreFailure {
    /// Path of the offending file.
    pub path: PathBuf,
    /// The load failure.
    pub error: Error,
}

/// Cheap change-detection fingerprint of an artifact file: byte length plus
/// modification time. The polling hot-reload watcher compares fingerprints
/// between scans — no inotify or other platform watcher dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileFingerprint {
    /// File length in bytes.
    pub len: u64,
    /// Modification time (`None` on filesystems that do not report one).
    pub mtime: Option<SystemTime>,
}

impl FileFingerprint {
    /// Stats `path` and captures its fingerprint.
    ///
    /// # Errors
    ///
    /// The underlying `stat` failure (vanished file, permissions).
    pub fn of(path: &Path) -> std::io::Result<FileFingerprint> {
        let meta = std::fs::metadata(path)?;
        Ok(FileFingerprint {
            len: meta.len(),
            mtime: meta.modified().ok(),
        })
    }
}

/// On-disk representation of a store entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// Line-oriented `mdlx` text (`.mdlx`).
    Text,
    /// The length-framed binary container (`.mdlxb`).
    Binary,
}

impl std::fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArtifactFormat::Text => "text",
            ArtifactFormat::Binary => "binary",
        })
    }
}

/// The cheap per-entry catalog: which models a file holds and how to
/// identify its bytes, built **without decoding model payloads** for
/// binary entries (section headers only, read with seeks). Text entries
/// derive the same catalog from a full parse — the text grammar has no
/// skippable framing — so the index is only as lazy as the format allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryIndex {
    /// Text or binary container.
    pub format: ArtifactFormat,
    /// Text format version the artifact carries (1 or 2).
    pub version: u32,
    /// File length in bytes.
    pub bytes: u64,
    /// Content identity: the embedded body digest for binary entries
    /// (read, not computed), the FNV-1a digest of the file bytes for text.
    pub digest: String,
    /// `(kind, name)` of every model in the artifact, in file order.
    pub models: Vec<(ModelKind, String)>,
}

impl EntryIndex {
    /// Whether the artifact holds a model with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.models.iter().any(|(_, n)| n == name)
    }
}

/// One `.mdlx` / `.mdlxb` file in the store.
pub struct StoreEntry {
    path: PathBuf,
    format: ArtifactFormat,
    /// Fingerprint captured at scan time (`None` when the stat failed —
    /// the parse will surface the real error on access).
    fingerprint: Option<FileFingerprint>,
    /// Section-header catalog, memoized on first access.
    index: OnceLock<std::result::Result<EntryIndex, Error>>,
    /// Parse result, memoized on first access (pre-filled in eager mode).
    slot: OnceLock<std::result::Result<Artifact, Error>>,
}

impl StoreEntry {
    fn new(path: PathBuf) -> Self {
        let fingerprint = FileFingerprint::of(&path).ok();
        let format = if path.extension().is_some_and(|ext| ext == "mdlxb") {
            ArtifactFormat::Binary
        } else {
            ArtifactFormat::Text
        };
        StoreEntry {
            path,
            format,
            fingerprint,
            index: OnceLock::new(),
            slot: OnceLock::new(),
        }
    }

    /// Path of the artifact file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fingerprint captured when the entry was scanned.
    pub fn fingerprint(&self) -> Option<FileFingerprint> {
        self.fingerprint
    }

    /// Text or binary, judged by extension at scan time (the loaders judge
    /// by content, so a mislabeled file still loads — or fails — on its
    /// actual bytes).
    pub fn format(&self) -> ArtifactFormat {
        self.format
    }

    /// The memoized failure of this entry, if indexing or parsing was
    /// attempted and failed. `None` means "fine so far" *or* "not touched
    /// yet" — a lazy store cannot know a file is corrupt before touching
    /// it.
    pub fn failure(&self) -> Option<StoreFailure> {
        let error = match (self.slot.get(), self.index.get()) {
            (Some(Err(e)), _) => e,
            (_, Some(Err(e))) => e,
            _ => return None,
        };
        Some(StoreFailure {
            path: self.path.clone(),
            error: error.clone(),
        })
    }

    /// Whether the artifact has been parsed yet (always true in eager
    /// mode; in lazy mode, true after the first [`StoreEntry::artifact`]
    /// call). Indexing alone does not count as loaded.
    pub fn is_loaded(&self) -> bool {
        self.slot.get().is_some()
    }

    /// The entry's cheap catalog — model names/kinds, byte length, digest
    /// — memoized on first access. For a binary entry this reads only the
    /// file and section headers (seeking past payloads, no decoding, no
    /// hashing: the digest is the one embedded in the header). For a text
    /// entry it reads and parses the whole file (memoizing the parse into
    /// the artifact slot, so the work is not repeated) and hashes the
    /// bytes.
    ///
    /// # Errors
    ///
    /// The index/load failure, replayed on every access.
    pub fn index(&self) -> Result<&EntryIndex> {
        self.index
            .get_or_init(|| match self.format {
                ArtifactFormat::Binary => {
                    let len = self.fingerprint.map(|f| f.len);
                    let index = binary::index_path_with_len(&self.path, len)?;
                    let bytes = len
                        .or_else(|| FileFingerprint::of(&self.path).ok().map(|f| f.len))
                        .unwrap_or(0);
                    Ok(EntryIndex {
                        format: ArtifactFormat::Binary,
                        version: index.text_version,
                        bytes,
                        digest: index.body_digest,
                        models: index
                            .sections
                            .iter()
                            .filter_map(|s| s.kind.map(|k| (k, s.name.clone())))
                            .collect(),
                    })
                }
                ArtifactFormat::Text => {
                    let raw = std::fs::read(&self.path).map_err(|e| ExchangeError::Io {
                        path: self.path.display().to_string(),
                        message: e.to_string(),
                    })?;
                    let digest = content_digest(&raw);
                    let bytes = raw.len() as u64;
                    let artifact = self.artifact()?;
                    Ok(EntryIndex {
                        format: ArtifactFormat::Text,
                        version: artifact.version,
                        bytes,
                        digest,
                        models: artifact
                            .models
                            .iter()
                            .map(|m| (m.kind(), m.name().to_string()))
                            .collect(),
                    })
                }
            })
            .as_ref()
            .map_err(Error::clone)
    }

    /// The parsed artifact, loading and memoizing it on first access.
    /// Dispatches on content: text and binary files both load here.
    ///
    /// # Errors
    ///
    /// The file's load failure, replayed on every access.
    pub fn artifact(&self) -> Result<&Artifact> {
        self.slot
            .get_or_init(|| load_artifact_auto_from_path(&self.path))
            .as_ref()
            .map_err(Error::clone)
    }
}

impl std::fmt::Debug for StoreEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreEntry")
            .field("path", &self.path)
            .field("loaded", &self.is_loaded())
            .finish()
    }
}

/// A directory tree of `.mdlx` / `.mdlxb` artifacts, scanned into one
/// collection.
///
/// See the [module docs](self) for the serving model.
#[derive(Debug)]
pub struct ModelStore {
    root: PathBuf,
    entries: Vec<StoreEntry>,
    /// Subdirectories that could not be scanned (vanished mounts,
    /// permission failures) — collected, like per-file load errors, so one
    /// bad branch never hides sibling artifacts.
    scan_failures: Vec<StoreFailure>,
}

impl ModelStore {
    /// Opens a store eagerly: scans `dir` recursively for `.mdlx` and
    /// `.mdlxb` files and parses each one. Per-file load errors are collected, not fatal.
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Io`] when the root directory itself cannot be read
    /// (unreadable *sub*directories degrade to [`ModelStore::failures`]
    /// entries instead).
    pub fn open(dir: impl AsRef<Path>) -> Result<ModelStore> {
        ModelStore::open_with_mode(dir, LoadMode::Eager)
    }

    /// Opens a store in the given [`LoadMode`].
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Io`] when the root directory itself cannot be read.
    pub fn open_with_mode(dir: impl AsRef<Path>, mode: LoadMode) -> Result<ModelStore> {
        let root = dir.as_ref().to_path_buf();
        let mut files = Vec::new();
        let mut scan_failures = Vec::new();
        // The root must be readable — an unopenable store is an error, not
        // an empty one.
        std::fs::read_dir(&root).map_err(|e| ExchangeError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        scan_dir(&root, 0, &mut files, &mut scan_failures);
        files.sort();
        let entries: Vec<StoreEntry> = files.into_iter().map(StoreEntry::new).collect();
        if mode == LoadMode::Eager {
            for e in &entries {
                let _ = e.artifact();
            }
        }
        Ok(ModelStore {
            root,
            entries,
            scan_failures,
        })
    }

    /// The scanned directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of artifact files found (loadable or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the scan found no artifact files at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every scanned file, in sorted path order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// The scan failures plus the load failures among the *parsed* entries,
    /// collected from the memoized [`StoreEntry`] slots — every entry in
    /// eager mode; in lazy mode only the entries accessed so far. A lazy
    /// store therefore reports an empty list right after open even when
    /// artifacts are corrupt: health checks (`mdl store ls`, fleet report
    /// headers) must force parsing first via [`ModelStore::load_all`] or by
    /// iterating [`StoreEntry::artifact`], or the fleet looks misleadingly
    /// healthy.
    pub fn failures(&self) -> Vec<StoreFailure> {
        self.scan_failures
            .iter()
            .cloned()
            .chain(self.entries.iter().filter_map(StoreEntry::failure))
            .collect()
    }

    /// Forces every entry to parse (a no-op in eager mode) and returns the
    /// complete failure list.
    pub fn load_all(&self) -> Vec<StoreFailure> {
        for e in &self.entries {
            let _ = e.artifact();
        }
        self.failures()
    }

    /// Re-scans the directory tree and reconciles the entry list against
    /// the filesystem: new artifact files are added, vanished ones removed,
    /// and entries whose [`FileFingerprint`] (length/mtime) changed get a
    /// fresh unparsed slot, so the next [`StoreEntry::artifact`] access
    /// re-reads the file. Unchanged entries keep their memoized parse.
    ///
    /// This is the store side of daemon hot-reload: a watcher thread calls
    /// `refresh` on a poll interval and re-serves whatever changed, while
    /// in-flight requests keep whatever `Arc`-cloned instances they already
    /// hold. Entries are parsed lazily after a refresh regardless of the
    /// original open mode — the caller decides what to touch.
    pub fn refresh(&mut self) -> StoreRefresh {
        let mut files = Vec::new();
        let mut scan_failures = Vec::new();
        scan_dir(&self.root, 0, &mut files, &mut scan_failures);
        files.sort();
        let mut outcome = StoreRefresh::default();
        let old: std::collections::BTreeMap<PathBuf, StoreEntry> =
            std::mem::take(&mut self.entries)
                .into_iter()
                .map(|e| (e.path.clone(), e))
                .collect();
        let mut kept: std::collections::BTreeMap<PathBuf, StoreEntry> = old;
        for path in &files {
            match kept.remove(path) {
                Some(entry) => {
                    let fresh = FileFingerprint::of(path).ok();
                    if fresh == entry.fingerprint && fresh.is_some() {
                        self.entries.push(entry);
                    } else {
                        outcome.changed.push(path.clone());
                        self.entries.push(StoreEntry::new(path.clone()));
                    }
                }
                None => {
                    outcome.added.push(path.clone());
                    self.entries.push(StoreEntry::new(path.clone()));
                }
            }
        }
        outcome.removed = kept.into_keys().collect();
        self.scan_failures = scan_failures;
        outcome
    }

    /// Every successfully loaded model, flattened across artifacts (a v2
    /// bundle contributes each of its members), with its source path.
    /// Forces lazy entries to load.
    pub fn models(&self) -> Vec<(&Path, &AnyModel)> {
        let mut out = Vec::new();
        for e in &self.entries {
            if let Ok(artifact) = e.artifact() {
                out.extend(artifact.models.iter().map(|m| (e.path(), m)));
            }
        }
        out
    }

    /// Looks a model up by [`Macromodel::name`] across every artifact,
    /// consulting each entry's cheap [`StoreEntry::index`] first and
    /// materializing only the artifact that actually holds the name. In a
    /// lazy binary store this touches model payloads in exactly one file;
    /// text entries still parse while being indexed (their format has no
    /// skippable framing), stopping at the first match.
    pub fn get(&self, name: &str) -> Option<&AnyModel> {
        self.entries.iter().find_map(|e| {
            if !e.index().is_ok_and(|i| i.contains(name)) {
                return None;
            }
            e.artifact()
                .ok()
                .and_then(|a| a.models.iter().find(|m| m.name() == name))
        })
    }

    /// The models of one kind, in scan order. Forces lazy entries to load.
    pub fn of_kind(&self, kind: ModelKind) -> Vec<&AnyModel> {
        self.models()
            .into_iter()
            .map(|(_, m)| m)
            .filter(|m| m.kind() == kind)
            .collect()
    }

    /// Flattens the store into a [`ModelRegistry`] (clones every model;
    /// registry semantics apply — a duplicated name keeps the later entry,
    /// i.e. the lexicographically later path).
    pub fn to_registry(&self) -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        for (_, m) in self.models() {
            reg.register(m.clone());
        }
        reg
    }
}

/// Outcome of one [`ModelStore::refresh`] reconciliation pass, in sorted
/// path order. Empty vectors all around mean the filesystem matched the
/// store exactly.
#[derive(Debug, Clone, Default)]
pub struct StoreRefresh {
    /// Files that appeared since the last scan.
    pub added: Vec<PathBuf>,
    /// Files that vanished.
    pub removed: Vec<PathBuf>,
    /// Files whose fingerprint (length/mtime) changed; their entries were
    /// reset to unparsed.
    pub changed: Vec<PathBuf>,
}

impl StoreRefresh {
    /// Whether anything on disk differed from the store.
    pub fn any(&self) -> bool {
        !(self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty())
    }
}

/// Recursive scan collecting `.mdlx` / `.mdlxb` paths. A vanished or unreadable
/// directory degrades to a [`StoreFailure`] so one bad mount never hides
/// sibling artifacts.
fn scan_dir(dir: &Path, depth: usize, out: &mut Vec<PathBuf>, failures: &mut Vec<StoreFailure>) {
    fn fail(dir: &Path, e: std::io::Error, failures: &mut Vec<StoreFailure>) {
        failures.push(StoreFailure {
            path: dir.to_path_buf(),
            error: ExchangeError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            }
            .into(),
        });
    }
    if depth >= MAX_SCAN_DEPTH {
        return;
    }
    let reader = match std::fs::read_dir(dir) {
        Ok(reader) => reader,
        Err(e) => return fail(dir, e, failures),
    };
    for entry in reader {
        let entry = match entry {
            Ok(entry) => entry,
            Err(e) => return fail(dir, e, failures),
        };
        let path = entry.path();
        // DirEntry::file_type comes straight from the directory read on
        // Unix — asking the path would re-stat every file, which at
        // thousands of entries is a measurable share of a lazy open.
        let is_dir = entry
            .file_type()
            .map(|t| t.is_dir())
            .unwrap_or_else(|_| path.is_dir());
        if is_dir {
            scan_dir(&path, depth + 1, out, failures);
        } else if path
            .extension()
            .is_some_and(|ext| ext == "mdlx" || ext == "mdlxb")
        {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{PwRbfDriverModel, WeightSequence};
    use crate::exchange::{save_artifact_to_path, save_model_to_path, Provenance};
    use crate::receiver::CrModel;
    use numkit::interp::Pwl;
    use sysid::narx::{NarxModel, NarxOrders};
    use sysid::rbf::RbfNetwork;

    fn dummy_driver(name: &str) -> AnyModel {
        let narx = || {
            NarxModel::from_network(
                NarxOrders::dynamic(1),
                RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.0]),
            )
            .unwrap()
        };
        AnyModel::PwRbfDriver(PwRbfDriverModel {
            name: name.into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: narx(),
            i_low: narx(),
            up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
        })
    }

    fn dummy_cr(name: &str) -> AnyModel {
        AnyModel::Cr(
            CrModel::new(
                name,
                1e-12,
                Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap(),
            )
            .unwrap(),
        )
    }

    /// Builds a store directory: two v1 files (one nested), a v2 bundle,
    /// one corrupt artifact, and one non-mdlx bystander.
    fn build_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdlx_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        save_model_to_path(&dummy_driver("drv_a"), dir.join("a.mdlx")).unwrap();
        save_model_to_path(&dummy_cr("cr_b"), dir.join("sub/b.mdlx")).unwrap();
        save_artifact_to_path(
            &Artifact::bundle(
                vec![dummy_driver("drv_c"), dummy_driver("drv_d")],
                Some(Provenance::new("feedc0de".to_string())),
            ),
            dir.join("c-bundle.mdlx"),
        )
        .unwrap();
        std::fs::write(dir.join("broken.mdlx"), "mdlx 1 pwrbf-driver\ngarbage\n").unwrap();
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        dir
    }

    #[test]
    fn eager_open_collects_models_and_failures() {
        let dir = build_store("eager");
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4, "four .mdlx files scanned");
        assert!(store.entries().all(StoreEntry::is_loaded));
        let failures = store.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].path.ends_with("broken.mdlx"));
        assert!(matches!(failures[0].error, Error::Exchange(_)));
        // Four models across three loadable artifacts, bundle flattened.
        let models = store.models();
        assert_eq!(models.len(), 4);
        assert!(store.get("drv_d").is_some());
        assert!(store.get("nope").is_none());
        assert_eq!(store.of_kind(ModelKind::PwRbfDriver).len(), 3);
        assert_eq!(store.of_kind(ModelKind::CrBaseline).len(), 1);
        assert_eq!(store.of_kind(ModelKind::Ibis).len(), 0);
        let reg = store.to_registry();
        assert_eq!(reg.len(), 4);
        assert!(reg.get("cr_b").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_open_defers_parsing() {
        let dir = build_store("lazy");
        let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        assert_eq!(store.len(), 4);
        assert!(store.entries().all(|e| !e.is_loaded()));
        assert!(store.failures().is_empty(), "nothing parsed yet");
        // First access parses and memoizes one entry only.
        let first = store.entries().next().unwrap();
        first.artifact().unwrap();
        assert!(first.is_loaded());
        assert_eq!(store.entries().filter(|e| e.is_loaded()).count(), 1);
        // load_all forces the rest and surfaces the broken file.
        let failures = store.load_all();
        assert_eq!(failures.len(), 1);
        assert!(store.entries().all(StoreEntry::is_loaded));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_get_stops_at_first_match() {
        let dir = build_store("lazyget");
        let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        // "a.mdlx" sorts first and holds drv_a: the lookup parses only it.
        assert!(store.get("drv_a").is_some());
        assert_eq!(store.entries().filter(|e| e.is_loaded()).count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entries_are_sorted_and_errors_replay() {
        let dir = build_store("sorted");
        let store = ModelStore::open(&dir).unwrap();
        let paths: Vec<_> = store.entries().map(|e| e.path().to_path_buf()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        let broken = store
            .entries()
            .find(|e| e.path().ends_with("broken.mdlx"))
            .unwrap();
        assert!(broken.artifact().is_err());
        assert!(broken.artifact().is_err(), "error is memoized, not retried");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_reconciles_added_changed_and_removed_files() {
        let dir = std::env::temp_dir().join(format!("mdlx_store_refresh_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        save_model_to_path(&dummy_driver("drv_a"), dir.join("a.mdlx")).unwrap();
        save_model_to_path(&dummy_cr("cr_b"), dir.join("b.mdlx")).unwrap();

        let mut store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        store.load_all();
        assert!(!store.refresh().any(), "no churn, no outcome");
        assert!(
            store.entries().all(StoreEntry::is_loaded),
            "a no-op refresh keeps memoized entries"
        );

        // One added, one rewritten (a longer model name changes the byte
        // length, so the fingerprint flips even within mtime granularity),
        // one removed.
        save_model_to_path(&dummy_driver("drv_c"), dir.join("c.mdlx")).unwrap();
        save_model_to_path(&dummy_driver("drv_a_regrown"), dir.join("a.mdlx")).unwrap();
        std::fs::remove_file(dir.join("b.mdlx")).unwrap();

        let outcome = store.refresh();
        assert!(outcome.any());
        assert_eq!(outcome.added, vec![dir.join("c.mdlx")]);
        assert_eq!(outcome.changed, vec![dir.join("a.mdlx")]);
        assert_eq!(outcome.removed, vec![dir.join("b.mdlx")]);
        assert_eq!(store.len(), 2);
        assert!(
            store.get("drv_a_regrown").is_some(),
            "changed file re-parses"
        );
        assert!(store.get("cr_b").is_none(), "removed file is gone");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a mixed tree: one text v1, one binary v1, one binary v2
    /// bundle (nested), and one corrupt binary file.
    fn build_mixed_store(tag: &str) -> PathBuf {
        use crate::exchange::binary::save_artifact_bin_to_path;
        let dir = std::env::temp_dir().join(format!("mdlxb_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        save_model_to_path(&dummy_driver("drv_text"), dir.join("a.mdlx")).unwrap();
        save_artifact_bin_to_path(&Artifact::single(dummy_cr("cr_bin")), dir.join("b.mdlxb"))
            .unwrap();
        save_artifact_bin_to_path(
            &Artifact::bundle(
                vec![dummy_driver("drv_bin_c"), dummy_driver("drv_bin_d")],
                Some(Provenance::new("feedc0de".to_string())),
            ),
            dir.join("sub/c.mdlxb"),
        )
        .unwrap();
        let mut corrupt =
            crate::exchange::binary::save_artifact_bin(&Artifact::single(dummy_cr("cr_bad")))
                .unwrap();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        std::fs::write(dir.join("broken.mdlxb"), corrupt).unwrap();
        dir
    }

    #[test]
    fn mixed_tree_serves_text_and_binary_together() {
        let dir = build_mixed_store("mixed");
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.models().len(), 4);
        assert!(store.get("drv_text").is_some());
        assert!(store.get("cr_bin").is_some());
        assert!(store.get("drv_bin_d").is_some());
        let failures = store.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].path.ends_with("broken.mdlxb"));
        assert!(matches!(
            failures[0].error,
            Error::Exchange(ExchangeError::DigestMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_binary_lookup_touches_only_the_matching_file() {
        let dir = build_mixed_store("lazybin");
        let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        // The bundle sorts last (sub/c.mdlxb); finding one of its models
        // must index the earlier binaries without materializing them, and
        // may only fully parse files whose index lists the name.
        assert!(store.get("drv_bin_d").is_some());
        let loaded: Vec<_> = store
            .entries()
            .filter(|e| e.is_loaded())
            .map(|e| e.path().file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(loaded.contains(&"c.mdlxb".to_string()));
        assert!(
            !loaded.contains(&"b.mdlxb".to_string()),
            "healthy binary entries index without materializing, got {loaded:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entry_index_reports_format_version_digest_and_models() {
        let dir = build_mixed_store("index");
        let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        let by_name = |name: &str| {
            store
                .entries()
                .find(|e| e.path().file_name().unwrap().to_string_lossy() == name)
                .unwrap()
        };
        let text = by_name("a.mdlx").index().unwrap();
        assert_eq!(text.format, ArtifactFormat::Text);
        assert_eq!(text.version, 1);
        assert_eq!(text.models.len(), 1);
        assert_eq!(text.models[0].1, "drv_text");
        assert_eq!(text.digest.len(), 16);
        assert!(text.bytes > 0);
        let bin = by_name("c.mdlxb").index().unwrap();
        assert_eq!(bin.format, ArtifactFormat::Binary);
        assert_eq!(bin.version, 2);
        assert_eq!(
            bin.models,
            vec![
                (ModelKind::PwRbfDriver, "drv_bin_c".to_string()),
                (ModelKind::PwRbfDriver, "drv_bin_d".to_string()),
            ]
        );
        // The binary digest is the embedded body digest, byte-for-byte.
        let raw = std::fs::read(dir.join("sub/c.mdlxb")).unwrap();
        assert_eq!(bin.digest, binary::embedded_digest(&raw).unwrap());
        assert_eq!(bin.bytes, raw.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_binary_surfaces_through_index_and_failures() {
        let dir = build_mixed_store("brokenbin");
        let store = ModelStore::open_with_mode(&dir, LoadMode::Lazy).unwrap();
        assert!(store.failures().is_empty(), "untouched store reports clean");
        let broken = store
            .entries()
            .find(|e| e.path().ends_with("broken.mdlxb"))
            .unwrap();
        assert_eq!(broken.format(), ArtifactFormat::Binary);
        // The flipped byte lives in a payload, so the cheap index still
        // succeeds — materialization is what checks digests.
        assert!(broken.index().is_ok());
        assert!(broken.artifact().is_err());
        assert_eq!(store.failures().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let missing = std::env::temp_dir().join("mdlx_store_definitely_missing");
        std::fs::remove_dir_all(&missing).ok();
        assert!(matches!(
            ModelStore::open(&missing),
            Err(Error::Exchange(ExchangeError::Io { .. }))
        ));
    }

    #[test]
    fn empty_directory_is_an_empty_store() {
        let dir = std::env::temp_dir().join(format!("mdlx_store_empty_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let store = ModelStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.models().is_empty());
        assert!(store.to_registry().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
