//! `macromodel` — behavioral macromodels of digital I/O ports.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Stievano, Chen, Becker, Canavero, Katopis, Maio, *"Macromodeling of
//! Digital I/O Ports for System EMC Assessment"*, DATE 2002):
//!
//! * [`driver`] — the **PW-RBF driver model** (paper eq. 1):
//!   `i(k) = w_H(k) i_H(k) + w_L(k) i_L(k)`, with RBF submodels for the
//!   High/Low logic states and switching weight sequences obtained by
//!   linear inversion on two identification loads;
//! * [`receiver`] — the **receiver parametric model** (paper eq. 2):
//!   `i(k) = i_lin(k) + i_up(k) + i_down(k)` (linear ARX + two RBF
//!   protection submodels), plus the simple **C–R̂ baseline**;
//! * [`device`] — implementations of [`circuit::Device`] that install the
//!   estimated discrete-time models into the circuit simulator (the paper's
//!   "SPICE implementation" step);
//! * [`evalrt`] — the compiled, allocation-free evaluation runtime: a
//!   one-time flattening pass per model plus batched multi-lane stepping
//!   (the hot path behind every device above);
//! * [`lint`] — the static diagnostic engine behind `mdl lint`: stable
//!   `M00x`/`C00x` codes covering model semantics (stability, center
//!   placement, I–V monotonicity, provenance) and circuit structure
//!   (structural rank, pattern consistency);
//! * [`pipeline`] — end-to-end estimation from transistor-level reference
//!   devices: identification-signal synthesis, waveform capture, submodel
//!   training, weight inversion;
//! * [`validate`] — reference-vs-model comparison harness and the Section-5
//!   accuracy metrics (threshold-crossing timing error).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root, or:
//!
//! ```no_run
//! use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let spec = refdev::md1();
//! let model = estimate_driver(&spec, DriverEstimationConfig::default())?;
//! println!("{} centers in the high submodel", model.i_high.network().n_centers());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod driver;
pub mod evalrt;
pub mod exchange;
pub mod lint;
pub mod macromodel;
pub mod modelstore;
pub mod pipeline;
pub mod receiver;
pub mod session;
pub mod validate;

pub use driver::PwRbfDriverModel;
pub use evalrt::{
    compile, CompiledCr, CompiledDriver, CompiledIbis, CompiledModel, CompiledReceiver,
    DriverLanes, EvalScratch, LaneStim, ReceiverLanes,
};
pub use exchange::binary::{
    load_artifact_bin, load_artifact_bin_from_path, save_artifact_bin, save_artifact_bin_to_path,
};
pub use exchange::{
    artifact_digest, content_digest, load_artifact, load_artifact_auto_from_path,
    load_artifact_bytes, load_artifact_from_path, load_model, load_model_from_path, save_artifact,
    save_artifact_to_path, save_model, save_model_to_path, AnyModel, Artifact, Provenance,
};
pub use lint::{lint_artifact, lint_model, lint_model_full, LintConfig, LintReport, Severity};
pub use macromodel::{Macromodel, ModelKind, ModelRegistry, PortStimulus, TestFixture};
pub use modelstore::{
    ArtifactFormat, EntryIndex, FileFingerprint, LoadMode, ModelStore, StoreEntry, StoreFailure,
    StoreRefresh,
};
pub use receiver::{CrModel, ReceiverModel};
pub use session::{EstimatedModel, ExtractionSession};

/// Errors produced by macromodel estimation and installation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Estimation failed in a sub-step.
    Estimation {
        /// Which stage of the pipeline failed.
        stage: String,
        /// Human-readable cause.
        message: String,
    },
    /// Model structure inconsistency (orders, lengths, sample times).
    InvalidModel {
        /// Description of the violated constraint.
        message: String,
    },
    /// Underlying circuit simulation failure.
    Circuit(circuit::Error),
    /// Underlying identification failure.
    Sysid(sysid::Error),
    /// Underlying reference-device failure.
    Refdev(refdev::Error),
    /// Underlying numeric failure.
    Numeric(numkit::Error),
    /// Model-exchange (save/load) failure.
    Exchange(exchange::ExchangeError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Estimation { stage, message } => {
                write!(f, "estimation failed during {stage}: {message}")
            }
            Error::InvalidModel { message } => write!(f, "invalid model: {message}"),
            Error::Circuit(e) => write!(f, "circuit simulation failed: {e}"),
            Error::Sysid(e) => write!(f, "identification failed: {e}"),
            Error::Refdev(e) => write!(f, "reference device failed: {e}"),
            Error::Numeric(e) => write!(f, "numeric error: {e}"),
            Error::Exchange(e) => write!(f, "model exchange failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Circuit(e) => Some(e),
            Error::Sysid(e) => Some(e),
            Error::Refdev(e) => Some(e),
            Error::Numeric(e) => Some(e),
            Error::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<circuit::Error> for Error {
    fn from(e: circuit::Error) -> Self {
        Error::Circuit(e)
    }
}

impl From<sysid::Error> for Error {
    fn from(e: sysid::Error) -> Self {
        Error::Sysid(e)
    }
}

impl From<refdev::Error> for Error {
    fn from(e: refdev::Error) -> Self {
        Error::Refdev(e)
    }
}

impl From<numkit::Error> for Error {
    fn from(e: numkit::Error) -> Self {
        Error::Numeric(e)
    }
}

impl From<exchange::ExchangeError> for Error {
    fn from(e: exchange::ExchangeError) -> Self {
        Error::Exchange(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        use std::error::Error as _;
        let e = Error::Estimation {
            stage: "weights".into(),
            message: "singular".into(),
        };
        assert!(e.to_string().contains("weights"));
        assert!(e.source().is_none());
        let e: Error = sysid::Error::InsufficientData { needed: 2, got: 1 }.into();
        assert!(e.source().is_some());
        let e: Error = refdev::Error::InvalidSpec {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("reference"));
        let e: Error = circuit::Error::InvalidAnalysis {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("circuit"));
        let e: Error = numkit::Error::EmptyInput.into();
        assert!(e.to_string().contains("numeric"));
        assert!(Error::InvalidModel {
            message: "m".into()
        }
        .to_string()
        .contains("m"));
    }
}
