//! Receiver parametric model (paper equation 2) and the C–R̂ baseline.
//!
//! ```text
//! i(k) = i_lin(k) + i_up(k) + i_down(k)
//! ```
//!
//! `i_lin` is a linear ARX submodel capturing the (mostly capacitive)
//! behaviour inside the supply rails; `i_up`/`i_down` are RBF submodels
//! capturing the up/down protection circuits. The simple baseline — a shunt
//! capacitor plus a shunt nonlinear static resistor (the paper's "C–R̂
//! model") — belongs to the same class with the crudest possible submodels
//! and is implemented here as [`CrModel`] for the Fig. 5/6 comparisons.

use crate::{Error, Result};
use numkit::interp::Pwl;
use serde::{Deserialize, Serialize};
use sysid::arx::ArxModel;
use sysid::narx::NarxModel;

/// A complete estimated receiver model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReceiverModel {
    /// Source device name.
    pub name: String,
    /// Sample time (s).
    pub ts: f64,
    /// Supply voltage (V); informational.
    pub vdd: f64,
    /// Linear ARX submodel: port voltage → port current.
    pub linear: ArxModel,
    /// Up-protection RBF submodel (dominates above VDD).
    pub up: NarxModel,
    /// Down-protection RBF submodel (dominates below ground).
    pub down: NarxModel,
}

impl ReceiverModel {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.ts <= 0.0 || !self.ts.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("sample time must be positive, got {}", self.ts),
            });
        }
        if !self.vdd.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("supply voltage must be finite, got {}", self.vdd),
            });
        }
        if !self.linear.is_stable() {
            return Err(Error::InvalidModel {
                message: "linear ARX submodel is unstable".into(),
            });
        }
        Ok(())
    }

    /// Largest dynamic order across the three submodels (determines how
    /// much history the circuit device must keep).
    pub fn max_order(&self) -> usize {
        let lin = self.linear.orders().na.max(self.linear.orders().nb);
        let up = self.up.orders().start();
        let down = self.down.orders().start();
        lin.max(up).max(down)
    }

    /// Free-run simulation of the full model on a sampled voltage record:
    /// each submodel is fed the voltage and its own past outputs.
    pub fn simulate(&self, v: &[f64]) -> Vec<f64> {
        let i_lin = self.linear.simulate(v);
        let i_up = self.up.simulate(v, &[]);
        let i_dn = self.down.simulate(v, &[]);
        i_lin
            .iter()
            .zip(&i_up)
            .zip(&i_dn)
            .map(|((a, b), c)| a + b + c)
            .collect()
    }

    /// One-line structural summary (orders and basis-function counts).
    pub fn summary(&self) -> String {
        format!(
            "Receiver '{}': Ts = {:.3e} s, ARX({},{}), up {} centers (r={}), down {} centers (r={})",
            self.name,
            self.ts,
            self.linear.orders().na,
            self.linear.orders().nb,
            self.up.network().n_centers(),
            self.up.orders().input_lags,
            self.down.network().n_centers(),
            self.down.orders().input_lags,
        )
    }
}

/// The paper's simple baseline: a shunt capacitor `C` in parallel with a
/// static nonlinear resistor `i = R̂(v)` tabulated from a DC sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrModel {
    /// Source device name.
    pub name: String,
    /// Shunt capacitance (F).
    pub c: f64,
    /// Static current–voltage characteristic of the nonlinear resistor:
    /// current *into* the port versus port voltage.
    pub static_iv: Pwl,
}

impl CrModel {
    /// Creates a C–R̂ model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] for non-positive capacitance.
    pub fn new(name: impl Into<String>, c: f64, static_iv: Pwl) -> Result<Self> {
        if c <= 0.0 || !c.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("capacitance must be positive, got {c}"),
            });
        }
        Ok(CrModel {
            name: name.into(),
            c,
            static_iv,
        })
    }

    /// Sampled-time simulation `i(k) = C (v(k) - v(k-1)) / ts + R̂(v(k))`.
    pub fn simulate(&self, v: &[f64], ts: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(v.len());
        for k in 0..v.len() {
            let dv = if k == 0 { 0.0 } else { v[k] - v[k - 1] };
            out.push(self.c * dv / ts + self.static_iv.eval(v[k]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysid::arx::ArxOrders;
    use sysid::narx::NarxOrders;
    use sysid::rbf::RbfNetwork;

    fn dummy_receiver() -> ReceiverModel {
        let linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 1 }, vec![0.5], vec![0.1, -0.1])
                .unwrap();
        let up = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.0, 0.0, 0.0]),
        )
        .unwrap();
        let down = up.clone();
        ReceiverModel {
            name: "rx".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear,
            up,
            down,
        }
    }

    #[test]
    fn receiver_validation() {
        let m = dummy_receiver();
        assert!(m.validate().is_ok());
        assert_eq!(m.max_order(), 1);
        assert!(m.summary().contains("ARX(1,1)"));
        let mut bad = dummy_receiver();
        bad.ts = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = dummy_receiver();
        bad.linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![1.5], vec![1.0]).unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn receiver_validate_rejects_non_finite_vdd() {
        let mut bad = dummy_receiver();
        bad.vdd = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = dummy_receiver();
        bad.vdd = f64::NEG_INFINITY;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn receiver_simulate_adds_submodels() {
        let m = dummy_receiver();
        let v: Vec<f64> = (0..50).map(|k| (k as f64 * 0.2).sin()).collect();
        let i = m.simulate(&v);
        // With zero up/down submodels, the output equals the ARX free run.
        let lin = m.linear.simulate(&v);
        for (a, b) in i.iter().zip(&lin) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn cr_model_simulation() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let m = CrModel::new("cr", 1e-12, iv).unwrap();
        let ts = 1e-10;
        // Ramp: constant dv/dt plus the static term.
        let v: Vec<f64> = (0..10).map(|k| 0.1 * k as f64).collect();
        let i = m.simulate(&v, ts);
        // k >= 1: i = C * 0.1/ts + 0.1 * 0.1 * k
        for (k, ik) in i.iter().enumerate().skip(1) {
            let expect = 1e-12 * 0.1 / ts + 0.01 * k as f64;
            assert!((ik - expect).abs() < 1e-12, "k={k}");
        }
        assert_eq!(i[0], 0.0);
    }

    #[test]
    fn cr_model_validation() {
        let iv = Pwl::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert!(CrModel::new("bad", 0.0, iv.clone()).is_err());
        assert!(CrModel::new("bad", f64::NAN, iv).is_err());
    }
}
