//! The binary `mdlx` container (`mdlx-bin 1`, conventional extension
//! `.mdlxb`): a length-framed, sectioned byte layout that round-trips the
//! exact information content of the text format while letting a reader
//! **skip or verify any section without parsing it**.
//!
//! Text artifacts are human-auditable but pay a full lexer pass per load;
//! a store of thousands of models pays that linearly even for entries it
//! never touches. The binary container moves every model behind a
//! fixed-width section header carrying the model's kind, name, byte
//! length and FNV-1a content digest — so an index of the whole file costs
//! a handful of small reads ([`index_path`]) and a single model
//! materializes by slicing and decoding one section ([`decode_model`]).
//!
//! # Layout
//!
//! All integers are **little-endian**; all floats are IEEE-754 binary64
//! written as their raw bit pattern (`f64::to_bits`), so text → binary →
//! text conversion is byte-identical (the text float syntax is the
//! shortest round-trip form of the same bits). The normative field tables
//! live in `docs/FORMAT.md`; in summary:
//!
//! ```text
//! file header (32 bytes)
//!   0..8    magic  "mdlxbin\0"
//!   8..12   u32    container version (1)
//!   12..16  u32    text format version the artifact round-trips to (1|2)
//!   16..20  u32    section count
//!   20..28  u64    body digest: FNV-1a over every byte from offset 32
//!   28..32  u32    reserved (0)
//! section (repeated; 24-byte header + name + payload)
//!   0..4    tag    "PROV" | "MODL"
//!   4..5    u8     model kind code (PROV: 0)
//!   5..6    u8     reserved (0)
//!   6..8    u16    name length n (PROV: 0)
//!   8..16   u64    payload length
//!   16..24  u64    section digest: FNV-1a over name bytes ++ payload
//!   24..    name bytes, then payload
//! ```
//!
//! A `PROV` section (at most one, first) carries the v2 provenance block;
//! each `MODL` section carries one model body in the same record order as
//! the text grammar, with `u32` length prefixes in place of decimal
//! counts. Loading is as strict as the text reader: bad magic, digest
//! mismatches, truncation, impossible counts, non-finite floats, unknown
//! kind codes and trailing bytes all fail with typed [`ExchangeError`]s,
//! and every assembled model passes its own validation.
//!
//! # Example
//!
//! ```no_run
//! use macromodel::exchange::binary::{load_artifact_bin_from_path, save_artifact_bin_to_path};
//! use macromodel::exchange::load_artifact_from_path;
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let artifact = load_artifact_from_path("md1.mdlx")?;         // text in
//! save_artifact_bin_to_path(&artifact, "md1.mdlxb")?;          // binary out
//! let back = load_artifact_bin_from_path("md1.mdlxb")?;        // binary in
//! assert_eq!(back.models.len(), artifact.models.len());
//! # Ok(())
//! # }
//! ```

use super::{
    fnv1a, AnyModel, Artifact, ExchangeError, Provenance, BUNDLE_FORMAT_VERSION, FORMAT_VERSION,
    MAX_DECLARED_COUNT,
};
use crate::driver::{PwRbfDriverModel, WeightSequence};
use crate::macromodel::{Macromodel, ModelKind};
use crate::receiver::{CrModel, ReceiverModel};
use crate::Result;
use numkit::interp::Pwl;
use refdev::IbisModel;
use std::io::Read;
use std::path::Path;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Leading magic of every binary container.
pub const MAGIC: [u8; 8] = *b"mdlxbin\0";

/// Container revision this module writes and reads.
pub const BIN_FORMAT_VERSION: u32 = 1;

/// Byte length of the file header.
pub const FILE_HEADER_LEN: usize = 32;

/// Byte length of a section header, name excluded.
pub const SECTION_HEADER_LEN: usize = 24;

/// Section tag of the provenance block.
const TAG_PROV: [u8; 4] = *b"PROV";

/// Section tag of a model body.
const TAG_MODL: [u8; 4] = *b"MODL";

/// Whether `bytes` begin with the binary-container magic.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// The body digest stored in a binary container's file header, hex — read
/// from the fixed header offset without hashing or parsing anything.
/// `None` when the bytes are not a binary container (or are shorter than
/// the header). The digest is *trusted* here; [`load_artifact_bin`]
/// verifies it.
pub fn embedded_digest(bytes: &[u8]) -> Option<String> {
    if !is_binary(bytes) || bytes.len() < FILE_HEADER_LEN {
        return None;
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[20..28]);
    Some(format!("{:016x}", u64::from_le_bytes(raw)))
}

/// Wire code of a model kind inside a `MODL` section header.
fn kind_code(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::PwRbfDriver => 1,
        ModelKind::Receiver => 2,
        ModelKind::CrBaseline => 3,
        ModelKind::Ibis => 4,
    }
}

/// Parses a wire kind code.
fn kind_from_code(code: u8) -> Option<ModelKind> {
    match code {
        1 => Some(ModelKind::PwRbfDriver),
        2 => Some(ModelKind::Receiver),
        3 => Some(ModelKind::CrBaseline),
        4 => Some(ModelKind::Ibis),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Little-endian record writer for one section payload.
#[derive(Default)]
struct BinWriter {
    out: Vec<u8>,
}

impl BinWriter {
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn count(&mut self, v: usize, what: &str) -> std::result::Result<(), ExchangeError> {
        if v > MAX_DECLARED_COUNT {
            return Err(ExchangeError::Invalid {
                message: format!("'{what}' count {v} exceeds the format bound"),
            });
        }
        self.u32(v as u32);
        Ok(())
    }

    fn f64(&mut self, v: f64, what: &str) -> std::result::Result<(), ExchangeError> {
        if !v.is_finite() {
            return Err(ExchangeError::Invalid {
                message: format!("'{what}' is not finite: {v}"),
            });
        }
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn vector(&mut self, vs: &[f64], what: &str) -> std::result::Result<(), ExchangeError> {
        self.count(vs.len(), what)?;
        for &v in vs {
            self.f64(v, what)?;
        }
        Ok(())
    }

    fn string(&mut self, s: &str, what: &str) -> std::result::Result<(), ExchangeError> {
        if s.contains('\n') || s.contains('\r') {
            return Err(ExchangeError::Invalid {
                message: format!("'{what}' must not contain line breaks"),
            });
        }
        self.count(s.len(), what)?;
        self.out.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn narx(&mut self, m: &NarxModel, label: &str) -> std::result::Result<(), ExchangeError> {
        let net = m.network();
        self.count(m.orders().input_lags, label)?;
        self.count(m.orders().output_lags, label)?;
        self.count(net.n_centers(), label)?;
        self.f64(net.bias(), label)?;
        self.vector(net.linear(), label)?;
        for c in net.centers() {
            // Center rows are dim-implied: n_centers × dim flat floats.
            for &v in c {
                self.f64(v, label)?;
            }
        }
        self.vector(net.widths(), label)?;
        self.vector(net.weights(), label)?;
        Ok(())
    }
}

/// Encodes one model body — everything the text grammar carries between
/// `name` and the terminator, name excluded (it lives in the section
/// header).
fn encode_model(model: &AnyModel) -> std::result::Result<Vec<u8>, ExchangeError> {
    let mut w = BinWriter::default();
    match model {
        AnyModel::PwRbfDriver(m) => {
            w.f64(m.ts, "ts")?;
            w.f64(m.vdd, "vdd")?;
            w.narx(&m.i_high, "i_high")?;
            w.narx(&m.i_low, "i_low")?;
            for seq in [&m.up, &m.down] {
                w.vector(seq.w_high(), "wh")?;
                w.vector(seq.w_low(), "wl")?;
            }
        }
        AnyModel::Receiver(m) => {
            w.f64(m.ts, "ts")?;
            w.f64(m.vdd, "vdd")?;
            w.count(m.linear.orders().na, "arx")?;
            w.count(m.linear.orders().nb, "arx")?;
            w.vector(m.linear.a(), "a")?;
            w.vector(m.linear.b(), "b")?;
            w.narx(&m.up, "up")?;
            w.narx(&m.down, "down")?;
        }
        AnyModel::Cr(m) => {
            w.f64(m.c, "c")?;
            w.vector(m.static_iv.x(), "iv_x")?;
            w.vector(m.static_iv.y(), "iv_y")?;
        }
        AnyModel::Ibis(m) => {
            w.f64(m.vdd, "vdd")?;
            w.f64(m.c_comp, "c_comp")?;
            w.f64(m.dt, "dt")?;
            w.vector(m.pullup.x(), "pullup_x")?;
            w.vector(m.pullup.y(), "pullup_y")?;
            w.vector(m.pulldown.x(), "pulldown_x")?;
            w.vector(m.pulldown.y(), "pulldown_y")?;
            w.vector(&m.ku_rise, "ku_rise")?;
            w.vector(&m.kd_rise, "kd_rise")?;
            w.vector(&m.ku_fall, "ku_fall")?;
            w.vector(&m.kd_fall, "kd_fall")?;
        }
    }
    Ok(w.out)
}

/// Encodes the provenance block as a `PROV` payload.
fn encode_provenance(p: &Provenance) -> std::result::Result<Vec<u8>, ExchangeError> {
    p.check_serializable()?;
    let mut w = BinWriter::default();
    w.string(&p.tool, "tool")?;
    w.string(&p.tool_version, "toolver")?;
    w.string(&p.config_digest, "digest")?;
    w.count(p.params.len(), "params")?;
    for (k, v) in &p.params {
        w.string(k, "param key")?;
        w.string(v, "param value")?;
    }
    Ok(w.out)
}

/// Appends one section (header + name + payload) to `body`.
fn push_section(body: &mut Vec<u8>, tag: [u8; 4], kind: u8, name: &str, payload: &[u8]) {
    let mut digest_input = Vec::with_capacity(name.len() + payload.len());
    digest_input.extend_from_slice(name.as_bytes());
    digest_input.extend_from_slice(payload);
    body.extend_from_slice(&tag);
    body.push(kind);
    body.push(0);
    body.extend_from_slice(&(name.len() as u16).to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(&fnv1a(&digest_input).to_le_bytes());
    body.extend_from_slice(name.as_bytes());
    body.extend_from_slice(payload);
}

/// Serializes an artifact into the binary container.
///
/// The same artifacts that [`super::save_artifact`] accepts are accepted
/// here — v1 is exactly one provenance-free model, v2 is one or more
/// models with optional provenance — and the text version is recorded in
/// the header, so converting back to text re-saves the original version.
///
/// # Errors
///
/// [`ExchangeError::Invalid`] for empty bundles, v1 shape violations,
/// non-finite values, over-long names, or models failing their own
/// validation.
pub fn save_artifact_bin(artifact: &Artifact) -> Result<Vec<u8>> {
    match artifact.version {
        FORMAT_VERSION => {
            if artifact.provenance.is_some() {
                return Err(ExchangeError::Invalid {
                    message: "format v1 cannot carry a provenance block".into(),
                }
                .into());
            }
            if artifact.models.len() != 1 {
                return Err(ExchangeError::Invalid {
                    message: format!(
                        "format v1 holds exactly one model, got {}",
                        artifact.models.len()
                    ),
                }
                .into());
            }
        }
        BUNDLE_FORMAT_VERSION => {
            if artifact.models.is_empty() {
                return Err(ExchangeError::Invalid {
                    message: "a bundle must hold at least one model".into(),
                }
                .into());
            }
        }
        other => {
            return Err(ExchangeError::Invalid {
                message: format!("cannot write unknown format version {other}"),
            }
            .into())
        }
    }
    let mut body = Vec::new();
    let mut sections = 0u32;
    if let Some(p) = &artifact.provenance {
        push_section(&mut body, TAG_PROV, 0, "", &encode_provenance(p)?);
        sections += 1;
    }
    for model in &artifact.models {
        model.validate()?;
        let name = model.name();
        if name.len() > u16::MAX as usize {
            return Err(ExchangeError::Invalid {
                message: format!("model name is {} bytes; the format caps 65535", name.len()),
            }
            .into());
        }
        if name.contains('\n') || name.contains('\r') {
            return Err(ExchangeError::Invalid {
                message: "model name must not contain line breaks".into(),
            }
            .into());
        }
        let payload = encode_model(model)?;
        push_section(&mut body, TAG_MODL, kind_code(model.kind()), name, &payload);
        sections += 1;
    }
    let mut out = Vec::with_capacity(FILE_HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&artifact.version.to_le_bytes());
    out.extend_from_slice(&sections.to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Saves an artifact as a binary container file (see
/// [`save_artifact_bin`]); the conventional extension is `.mdlxb`.
///
/// # Errors
///
/// [`save_artifact_bin`] failures plus [`ExchangeError::Io`].
pub fn save_artifact_bin_to_path(artifact: &Artifact, path: impl AsRef<Path>) -> Result<()> {
    let bytes = save_artifact_bin(artifact)?;
    std::fs::write(path.as_ref(), bytes).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

type ExResult<T> = std::result::Result<T, ExchangeError>;

/// Little-endian cursor over a byte slice, reporting absolute offsets in
/// its errors (`base` shifts them when the slice is a section cut out of
/// a larger file).
struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> BinReader<'a> {
    fn new(bytes: &'a [u8], base: usize) -> Self {
        BinReader {
            bytes,
            pos: 0,
            base,
        }
    }

    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> ExResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(ExchangeError::Truncated {
                expected: what.to_string(),
            });
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> ExResult<u32> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes taken")))
    }

    fn u64(&mut self, what: &str) -> ExResult<u64> {
        let raw = self.take(8, what)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes taken")))
    }

    fn count(&mut self, what: &str) -> ExResult<usize> {
        let offset = self.offset();
        let v = self.u32(what)? as usize;
        if v > MAX_DECLARED_COUNT {
            return Err(ExchangeError::Corrupt {
                offset,
                message: format!("'{what}' count {v} exceeds the format bound"),
            });
        }
        Ok(v)
    }

    fn f64(&mut self, what: &str) -> ExResult<f64> {
        let offset = self.offset();
        let v = f64::from_bits(self.u64(what)?);
        if !v.is_finite() {
            return Err(ExchangeError::NonFinite {
                line: offset,
                field: what.to_string(),
            });
        }
        Ok(v)
    }

    fn f64s(&mut self, n: usize, what: &str) -> ExResult<Vec<f64>> {
        // Bound the pre-allocation by the bytes actually present; a lying
        // count runs into Truncated, never a pathological allocation.
        let mut vs = Vec::with_capacity(n.min(self.bytes.len() / 8 + 1));
        for _ in 0..n {
            vs.push(self.f64(what)?);
        }
        Ok(vs)
    }

    fn vector(&mut self, what: &str) -> ExResult<Vec<f64>> {
        let n = self.count(what)?;
        self.f64s(n, what)
    }

    fn string(&mut self, what: &str) -> ExResult<String> {
        let offset = self.offset();
        let n = self.count(what)?;
        let raw = self.take(n, what)?;
        let s = std::str::from_utf8(raw).map_err(|_| ExchangeError::Corrupt {
            offset,
            message: format!("'{what}' is not valid UTF-8"),
        })?;
        if s.contains('\n') || s.contains('\r') {
            return Err(ExchangeError::Corrupt {
                offset,
                message: format!("'{what}' contains line breaks"),
            });
        }
        Ok(s.to_string())
    }

    fn narx(&mut self, label: &str) -> ExResult<NarxModel> {
        let orders = NarxOrders {
            input_lags: self.count(label)?,
            output_lags: self.count(label)?,
        };
        let dim = orders.dim();
        let n_centers = self.count(label)?;
        let offset = self.offset();
        if dim
            .checked_mul(n_centers)
            .is_none_or(|cells| cells > MAX_DECLARED_COUNT)
        {
            return Err(ExchangeError::Corrupt {
                offset,
                message: format!("'{label}' declares an impossible center block"),
            });
        }
        let bias = self.f64(label)?;
        let linear = self.vector(label)?;
        let mut centers = Vec::with_capacity(n_centers.min(1024));
        for _ in 0..n_centers {
            centers.push(self.f64s(dim, label)?);
        }
        let widths = self.vector(label)?;
        let weights = self.vector(label)?;
        let net = RbfNetwork::from_parts(dim, centers, widths, weights, bias, linear)
            .map_err(super::invalid)?;
        NarxModel::from_network(orders, net).map_err(super::invalid)
    }

    /// Fails unless every byte has been consumed.
    fn finish(&self, what: &str) -> ExResult<()> {
        if self.pos != self.bytes.len() {
            return Err(ExchangeError::Corrupt {
                offset: self.offset(),
                message: format!(
                    "{} trailing bytes after {what}",
                    self.bytes.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Decodes one `MODL` payload into a model (name from the section
/// header). The assembled model passes its structural constructors; its
/// own `validate()` runs in the callers.
fn decode_model_payload(
    kind: ModelKind,
    name: &str,
    payload: &[u8],
    base: usize,
) -> ExResult<AnyModel> {
    let mut r = BinReader::new(payload, base);
    let name = name.to_string();
    let model = match kind {
        ModelKind::PwRbfDriver => {
            let ts = r.f64("ts")?;
            let vdd = r.f64("vdd")?;
            let i_high = r.narx("i_high")?;
            let i_low = r.narx("i_low")?;
            let mut seqs = Vec::with_capacity(2);
            for label in ["up", "down"] {
                let wh = r.vector(label)?;
                let wl = r.vector(label)?;
                seqs.push(WeightSequence::new(wh, wl).map_err(super::invalid)?);
            }
            let down = seqs.pop().expect("two transitions decoded");
            let up = seqs.pop().expect("two transitions decoded");
            AnyModel::PwRbfDriver(PwRbfDriverModel {
                name,
                ts,
                vdd,
                i_high,
                i_low,
                up,
                down,
            })
        }
        ModelKind::Receiver => {
            let ts = r.f64("ts")?;
            let vdd = r.f64("vdd")?;
            let na = r.count("arx")?;
            let nb = r.count("arx")?;
            let a = r.vector("a")?;
            let b = r.vector("b")?;
            let linear =
                ArxModel::from_coefficients(ArxOrders { na, nb }, a, b).map_err(super::invalid)?;
            let up = r.narx("up")?;
            let down = r.narx("down")?;
            AnyModel::Receiver(ReceiverModel {
                name,
                ts,
                vdd,
                linear,
                up,
                down,
            })
        }
        ModelKind::CrBaseline => {
            let c = r.f64("c")?;
            let x = r.vector("iv_x")?;
            let y = r.vector("iv_y")?;
            let static_iv = Pwl::new(x, y).map_err(super::invalid)?;
            AnyModel::Cr(CrModel::new(name, c, static_iv).map_err(super::invalid)?)
        }
        ModelKind::Ibis => {
            let vdd = r.f64("vdd")?;
            let c_comp = r.f64("c_comp")?;
            let dt = r.f64("dt")?;
            let pullup =
                Pwl::new(r.vector("pullup_x")?, r.vector("pullup_y")?).map_err(super::invalid)?;
            let pulldown = Pwl::new(r.vector("pulldown_x")?, r.vector("pulldown_y")?)
                .map_err(super::invalid)?;
            let ku_rise = r.vector("ku_rise")?;
            let kd_rise = r.vector("kd_rise")?;
            let ku_fall = r.vector("ku_fall")?;
            let kd_fall = r.vector("kd_fall")?;
            AnyModel::Ibis(IbisModel {
                name,
                vdd,
                pullup,
                pulldown,
                c_comp,
                dt,
                ku_rise,
                kd_rise,
                ku_fall,
                kd_fall,
            })
        }
    };
    r.finish("the model body")?;
    Ok(model)
}

/// Decodes a `PROV` payload.
fn decode_provenance(payload: &[u8], base: usize) -> ExResult<Provenance> {
    let mut r = BinReader::new(payload, base);
    let tool = r.string("tool")?;
    let tool_version = r.string("toolver")?;
    let config_digest = r.string("digest")?;
    let n_params = r.count("params")?;
    let mut params = Vec::with_capacity(n_params.min(1024));
    for _ in 0..n_params {
        let offset = r.offset();
        let key = r.string("param key")?;
        if key.is_empty() || key.chars().any(|c| c.is_whitespace()) {
            return Err(ExchangeError::Corrupt {
                offset,
                message: format!("provenance param key '{key}' must be one non-empty token"),
            });
        }
        let value = r.string("param value")?;
        params.push((key, value));
    }
    r.finish("the provenance block")?;
    Ok(Provenance {
        tool,
        tool_version,
        config_digest,
        params,
    })
}

/// One section located inside a binary container: everything a reader
/// needs to skip it, verify it, or materialize it — without decoding its
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinSection {
    /// Model kind (`None` for the provenance section).
    pub kind: Option<ModelKind>,
    /// Model name (empty for the provenance section).
    pub name: String,
    /// Stored section digest (FNV-1a over name bytes ++ payload), hex.
    pub digest: String,
    /// Absolute byte offset of the payload within the file.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// The section directory of a binary container: the text version it
/// round-trips to, the embedded body digest, and one [`BinSection`] per
/// section — model names and kinds included, payloads untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinIndex {
    /// Text format version the artifact converts back to (1 or 2).
    pub text_version: u32,
    /// Embedded body digest, hex (trusted at index time; verified on
    /// full load).
    pub body_digest: String,
    /// Every section, in file order (`PROV` first when present).
    pub sections: Vec<BinSection>,
}

impl BinIndex {
    /// The model sections only, in file order.
    pub fn models(&self) -> impl Iterator<Item = &BinSection> {
        self.sections.iter().filter(|s| s.kind.is_some())
    }
}

/// Reads exactly `buf.len()` bytes at the reader's current position.
fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> ExResult<()> {
    r.read_exact(buf).map_err(|_| ExchangeError::Truncated {
        expected: what.to_string(),
    })
}

/// Parses the fixed file header from its 32 bytes.
fn parse_file_header(header: &[u8; FILE_HEADER_LEN]) -> ExResult<(u32, u64, u32)> {
    if header[..MAGIC.len()] != MAGIC {
        let found: String = header[..MAGIC.len()]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        return Err(ExchangeError::BadMagic { found });
    }
    let word = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().expect("4 bytes"));
    let container = word(8);
    if container != BIN_FORMAT_VERSION {
        return Err(ExchangeError::UnsupportedVersion {
            found: format!("mdlx-bin {container}"),
        });
    }
    let text_version = word(12);
    if text_version != FORMAT_VERSION && text_version != BUNDLE_FORMAT_VERSION {
        return Err(ExchangeError::UnsupportedVersion {
            found: format!("mdlx {text_version}"),
        });
    }
    let n_sections = word(16);
    if n_sections as usize > MAX_DECLARED_COUNT {
        return Err(ExchangeError::Corrupt {
            offset: 16,
            message: format!("section count {n_sections} exceeds the format bound"),
        });
    }
    if word(28) != 0 {
        return Err(ExchangeError::Corrupt {
            offset: 28,
            message: "reserved header word is not zero".into(),
        });
    }
    let digest = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
    Ok((text_version, digest, n_sections))
}

/// Parses one section header (+ name) and returns the section meta; the
/// caller positions past the payload itself.
fn parse_section_header(
    header: &[u8; SECTION_HEADER_LEN],
    name: &[u8],
    offset: usize,
    payload_offset: usize,
) -> ExResult<BinSection> {
    let tag: [u8; 4] = header[..4].try_into().expect("4 bytes");
    let kind = match tag {
        TAG_PROV => {
            if header[4] != 0 {
                return Err(ExchangeError::Corrupt {
                    offset,
                    message: "provenance section carries a model kind code".into(),
                });
            }
            None
        }
        TAG_MODL => Some(kind_from_code(header[4]).ok_or(ExchangeError::UnknownKind {
            tag: format!("#{}", header[4]),
        })?),
        other => {
            return Err(ExchangeError::UnknownField {
                line: offset,
                field: String::from_utf8_lossy(&other).into_owned(),
            })
        }
    };
    if header[5] != 0 {
        return Err(ExchangeError::Corrupt {
            offset,
            message: "reserved section byte is not zero".into(),
        });
    }
    let name = std::str::from_utf8(name).map_err(|_| ExchangeError::Corrupt {
        offset,
        message: "section name is not valid UTF-8".into(),
    })?;
    if kind.is_none() && !name.is_empty() {
        return Err(ExchangeError::Corrupt {
            offset,
            message: "provenance section carries a name".into(),
        });
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let digest = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    Ok(BinSection {
        kind,
        name: name.to_string(),
        digest: format!("{digest:016x}"),
        payload_offset,
        payload_len: payload_len as usize,
    })
}

/// Structural walk shared by [`index_bytes`] and [`load_artifact_bin`]:
/// validates the header and section framing against the byte length
/// without touching payloads.
fn index_from_bytes(bytes: &[u8]) -> ExResult<BinIndex> {
    if bytes.len() < FILE_HEADER_LEN {
        if !is_binary(bytes) && !bytes.is_empty() {
            let shown = &bytes[..bytes.len().min(MAGIC.len())];
            return Err(ExchangeError::BadMagic {
                found: shown.iter().map(|b| format!("{b:02x}")).collect(),
            });
        }
        return Err(ExchangeError::Truncated {
            expected: "the 32-byte file header".to_string(),
        });
    }
    let header: &[u8; FILE_HEADER_LEN] = bytes[..FILE_HEADER_LEN].try_into().expect("32 bytes");
    let (text_version, body_digest, n_sections) = parse_file_header(header)?;
    let mut sections = Vec::with_capacity((n_sections as usize).min(1024));
    let mut pos = FILE_HEADER_LEN;
    for i in 0..n_sections {
        let mut r = BinReader::new(bytes, 0);
        r.pos = pos;
        let header_bytes = r.take(SECTION_HEADER_LEN, "a section header")?;
        let header: &[u8; SECTION_HEADER_LEN] = header_bytes.try_into().expect("24 bytes");
        let name_len = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes")) as usize;
        let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        if payload_len as usize > bytes.len() {
            return Err(ExchangeError::Truncated {
                expected: format!("{payload_len} payload bytes of section {i}"),
            });
        }
        let name = r.take(name_len, "a section name")?;
        let section = parse_section_header(header, name, pos, r.pos)?;
        if section.kind.is_none() && (i != 0) {
            return Err(ExchangeError::Corrupt {
                offset: pos,
                message: "provenance must be the first section".into(),
            });
        }
        r.take(section.payload_len, "a section payload")?;
        pos = r.pos;
        sections.push(section);
    }
    if pos != bytes.len() {
        return Err(ExchangeError::Corrupt {
            offset: pos,
            message: format!(
                "{} trailing bytes after the last section",
                bytes.len() - pos
            ),
        });
    }
    let index = BinIndex {
        text_version,
        body_digest: format!("{body_digest:016x}"),
        sections,
    };
    check_shape(&index)?;
    Ok(index)
}

/// The v1/v2 shape rules, shared with the text reader's semantics.
fn check_shape(index: &BinIndex) -> ExResult<()> {
    let n_models = index.models().count();
    let has_prov = index.sections.iter().any(|s| s.kind.is_none());
    if index.sections.iter().filter(|s| s.kind.is_none()).count() > 1 {
        return Err(ExchangeError::Corrupt {
            offset: FILE_HEADER_LEN,
            message: "more than one provenance section".into(),
        });
    }
    if n_models == 0 {
        return Err(ExchangeError::Invalid {
            message: "a container must hold at least one model".into(),
        });
    }
    if index.text_version == FORMAT_VERSION && (has_prov || n_models != 1) {
        return Err(ExchangeError::Invalid {
            message: format!(
                "format v1 holds exactly one provenance-free model, got {n_models} model(s){}",
                if has_prov { " plus provenance" } else { "" }
            ),
        });
    }
    Ok(())
}

/// Builds the section directory of a binary container held in memory.
/// Validates framing (magic, versions, section bounds, v1/v2 shape) but
/// does **not** hash or decode payloads — that is the point: indexing a
/// file costs O(sections), not O(bytes parsed).
///
/// # Errors
///
/// [`ExchangeError::BadMagic`], [`ExchangeError::UnsupportedVersion`],
/// [`ExchangeError::Truncated`], [`ExchangeError::Corrupt`],
/// [`ExchangeError::UnknownKind`] / [`ExchangeError::UnknownField`] for
/// unknown codes and tags.
pub fn index_bytes(bytes: &[u8]) -> Result<BinIndex> {
    Ok(index_from_bytes(bytes)?)
}

/// Builds the section directory of a binary container file using seeks:
/// only the file header and each section header (+ name) are read, and
/// payloads are skipped over — a 1 000-model store indexes with a few KiB
/// of I/O per file regardless of model sizes.
///
/// # Errors
///
/// See [`index_bytes`], plus [`ExchangeError::Io`].
pub fn index_path(path: impl AsRef<Path>) -> Result<BinIndex> {
    index_path_with_len(path, None)
}

/// [`index_path`] with the file length supplied by a caller that already
/// statted the file (a store scan captures it in the fingerprint); saves
/// the `fstat` per file, which is a measurable share of a 1 000-entry
/// lazy open. The length is only a framing bound — a wrong value surfaces
/// as [`ExchangeError::Truncated`] / [`ExchangeError::Corrupt`], exactly
/// as if the file had changed size underneath a plain [`index_path`].
///
/// # Errors
///
/// See [`index_path`].
pub fn index_path_with_len(path: impl AsRef<Path>, known_len: Option<u64>) -> Result<BinIndex> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| ExchangeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    let file_len = match known_len {
        Some(len) => len,
        None => file.metadata().map_err(io_err)?.len(),
    };
    // One buffered reader sized so a typical single-model container's
    // whole header run (file header + section header + name) arrives in
    // one read without copying kilobytes of payload along with it;
    // `seek_relative` skips payloads without a syscall while the target
    // stays inside the buffer, so indexing a small file costs an open
    // and a single sub-KiB read.
    let mut file = std::io::BufReader::with_capacity(512, file);
    let mut header = [0u8; FILE_HEADER_LEN];
    read_exact_or_truncated(&mut file, &mut header, "the 32-byte file header")?;
    let (text_version, body_digest, n_sections) = parse_file_header(&header)?;
    let mut sections = Vec::with_capacity((n_sections as usize).min(1024));
    let mut pos = FILE_HEADER_LEN as u64;
    for i in 0..n_sections {
        let mut sh = [0u8; SECTION_HEADER_LEN];
        read_exact_or_truncated(&mut file, &mut sh, "a section header")?;
        let name_len = u16::from_le_bytes(sh[6..8].try_into().expect("2 bytes")) as usize;
        let payload_len = u64::from_le_bytes(sh[8..16].try_into().expect("8 bytes"));
        let mut name = vec![0u8; name_len];
        read_exact_or_truncated(&mut file, &mut name, "a section name")?;
        let payload_offset = pos + (SECTION_HEADER_LEN + name_len) as u64;
        let end = payload_offset.checked_add(payload_len);
        if end.is_none_or(|e| e > file_len) {
            return Err(ExchangeError::Truncated {
                expected: format!("{payload_len} payload bytes of section {i}"),
            }
            .into());
        }
        let section = parse_section_header(&sh, &name, pos as usize, payload_offset as usize)?;
        if section.kind.is_none() && i != 0 {
            return Err(ExchangeError::Corrupt {
                offset: pos as usize,
                message: "provenance must be the first section".into(),
            }
            .into());
        }
        pos = payload_offset + payload_len;
        if i + 1 < n_sections {
            // The last payload needs no skip: the trailing-bytes check
            // below compares the declared end against the file length.
            file.seek_relative(payload_len as i64).map_err(io_err)?;
        }
        sections.push(section);
    }
    if pos != file_len {
        return Err(ExchangeError::Corrupt {
            offset: pos as usize,
            message: format!("{} trailing bytes after the last section", file_len - pos),
        }
        .into());
    }
    let index = BinIndex {
        text_version,
        body_digest: format!("{body_digest:016x}"),
        sections,
    };
    check_shape(&index)?;
    Ok(index)
}

/// Verifies one section's digest against the file bytes, then decodes its
/// payload: a model for `MODL` sections, an error for `PROV` (use
/// [`decode_provenance_section`]). The decoded model passes its own
/// validation.
///
/// # Errors
///
/// [`ExchangeError::DigestMismatch`] on corruption, the decode failures
/// of the payload grammar, or the model's own validation failure.
pub fn decode_model(bytes: &[u8], section: &BinSection) -> Result<AnyModel> {
    let Some(kind) = section.kind else {
        return Err(ExchangeError::Invalid {
            message: "cannot decode the provenance section as a model".into(),
        }
        .into());
    };
    let payload = section_payload(bytes, section)?;
    verify_section_digest(section, payload)?;
    let model = decode_model_payload(kind, &section.name, payload, section.payload_offset)?;
    model.validate()?;
    Ok(model)
}

/// Verifies and decodes the provenance section.
///
/// # Errors
///
/// See [`decode_model`].
pub fn decode_provenance_section(bytes: &[u8], section: &BinSection) -> Result<Provenance> {
    if section.kind.is_some() {
        return Err(ExchangeError::Invalid {
            message: "cannot decode a model section as provenance".into(),
        }
        .into());
    }
    let payload = section_payload(bytes, section)?;
    verify_section_digest(section, payload)?;
    Ok(decode_provenance(payload, section.payload_offset)?)
}

fn section_payload<'a>(bytes: &'a [u8], section: &BinSection) -> Result<&'a [u8]> {
    let end = section
        .payload_offset
        .checked_add(section.payload_len)
        .filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(ExchangeError::Truncated {
            expected: format!("{} payload bytes", section.payload_len),
        }
        .into());
    };
    Ok(&bytes[section.payload_offset..end])
}

fn verify_section_digest(section: &BinSection, payload: &[u8]) -> Result<()> {
    let mut input = Vec::with_capacity(section.name.len() + payload.len());
    input.extend_from_slice(section.name.as_bytes());
    input.extend_from_slice(payload);
    let found = format!("{:016x}", fnv1a(&input));
    if found != section.digest {
        let what = if section.kind.is_some() {
            format!("model {}", section.name)
        } else {
            "provenance".to_string()
        };
        return Err(ExchangeError::DigestMismatch {
            section: what,
            expected: section.digest.clone(),
            found,
        }
        .into());
    }
    Ok(())
}

/// Deserializes a whole binary container, verifying the body digest and
/// every section digest, decoding every model, and running each model's
/// own validation — the strict mirror of [`super::load_artifact`].
///
/// # Errors
///
/// All of [`index_bytes`]'s framing errors, plus
/// [`ExchangeError::DigestMismatch`], the payload decode failures, and
/// model validation failures.
pub fn load_artifact_bin(bytes: &[u8]) -> Result<Artifact> {
    let index = index_from_bytes(bytes)?;
    let found = format!("{:016x}", fnv1a(&bytes[FILE_HEADER_LEN..]));
    if found != index.body_digest {
        return Err(ExchangeError::DigestMismatch {
            section: "body".into(),
            expected: index.body_digest,
            found,
        }
        .into());
    }
    let mut provenance = None;
    let mut models = Vec::with_capacity(index.models().count().min(1024));
    for section in &index.sections {
        if section.kind.is_some() {
            models.push(decode_model(bytes, section)?);
        } else {
            provenance = Some(decode_provenance_section(bytes, section)?);
        }
    }
    Ok(Artifact {
        version: index.text_version,
        provenance,
        models,
    })
}

/// Loads a binary container from a file (see [`load_artifact_bin`]).
///
/// # Errors
///
/// [`load_artifact_bin`] failures plus [`ExchangeError::Io`].
pub fn load_artifact_bin_from_path(path: impl AsRef<Path>) -> Result<Artifact> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| ExchangeError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    load_artifact_bin(&bytes)
}
