//! Static diagnostic engine for macromodel artifacts (`mdl lint`).
//!
//! This module is the analysis layer between `validate()` — which rejects
//! models that are structurally *broken* — and the simulator, which only
//! discovers problems at runtime. Lint rules look for models that are
//! well-formed but *suspicious*: marginally stable feedback polynomials,
//! degenerate RBF center placements, non-monotone or implausibly steep I–V
//! tables, switching weights far outside their physical range, and missing
//! provenance. A second rule pack instantiates each model into a reference
//! test fixture and audits the resulting MNA structure (structural rank,
//! floating nodes, `register()`-vs-`stamp()` pattern consistency).
//!
//! Every finding carries a stable code (`M00x` for model-semantic rules,
//! `C00x` for circuit-structural rules) so severities can be tuned per code
//! via [`LintConfig`] without parsing messages.
//!
//! # Example
//!
//! ```
//! use macromodel::lint::{lint_artifact, LintConfig};
//! use macromodel::exchange::{AnyModel, Artifact};
//! use macromodel::receiver::CrModel;
//! use numkit::interp::Pwl;
//!
//! let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
//! let model = CrModel::new("rx", 1e-12, iv).unwrap();
//! let report = lint_artifact(&Artifact::single(AnyModel::Cr(model)));
//! assert!(report.is_clean(&LintConfig::default()));
//! ```

use crate::exchange::{AnyModel, Artifact};
use crate::macromodel::{PortStimulus, TestFixture};
use circuit::Circuit;
use numkit::interp::Pwl;
use std::collections::BTreeSet;
use sysid::jury::feedback_stability;
use sysid::narx::NarxModel;
use sysid::rbf::RbfNetwork;

/// How severe a diagnostic is. Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not necessarily wrong.
    Warn,
    /// Almost certainly a defect; fails `mdl lint` by default.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`M001`…, `C001`…).
    pub code: &'static str,
    /// Default severity of the code (before [`LintConfig`] overrides).
    pub severity: Severity,
    /// What the finding is about (model or artifact identifier).
    pub subject: String,
    /// Human-readable description with the offending values.
    pub message: String,
}

/// Registry entry describing one diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CodeSpec {
    /// Stable code.
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary of what the rule detects.
    pub summary: &'static str,
    /// How to fix or further investigate a finding.
    pub hint: &'static str,
}

/// Every diagnostic code the engine can emit, in code order.
pub const CODES: &[CodeSpec] = &[
    CodeSpec {
        code: "M001",
        severity: Severity::Error,
        summary: "receiver linear ARX submodel fails the Jury stability test",
        hint: "re-run estimation with more data or a lower order; an unstable \
               linear core diverges in free-run simulation",
    },
    CodeSpec {
        code: "M002",
        severity: Severity::Warn,
        summary: "NARX linear output-feedback tail is unstable",
        hint: "the Gaussian units may stabilize the loop in-range, but \
               extrapolation outside the training region can diverge",
    },
    CodeSpec {
        code: "M003",
        severity: Severity::Warn,
        summary: "RBF network has near-duplicate centers at matching widths",
        hint: "coincident same-width centers make the basis ill-conditioned; \
               re-cluster or prune the smaller-weight duplicate",
    },
    CodeSpec {
        code: "M004",
        severity: Severity::Warn,
        summary: "driver RBF centers cover a small fraction of the supply range",
        hint: "the model extrapolates outside its center span; extend the \
               identification signal toward the rails",
    },
    CodeSpec {
        code: "M005",
        severity: Severity::Error,
        summary: "static I-V table is not monotonic",
        hint: "a non-monotone characteristic creates spurious equilibria and \
               breaks Newton convergence; re-sweep the DC characteristic",
    },
    CodeSpec {
        code: "M006",
        severity: Severity::Warn,
        summary: "static I-V table has an implausibly steep segment",
        hint: "a segment steeper than 1 kS usually indicates a sweep artifact \
               or unit error; check the table near the reported voltage",
    },
    CodeSpec {
        code: "M007",
        severity: Severity::Warn,
        summary: "switching weights stray far outside [0, 1]",
        hint: "weights are physical blending factors; values outside \
               [-0.5, 1.5] suggest the two identification loads were nearly \
               collinear at those samples",
    },
    CodeSpec {
        code: "M008",
        severity: Severity::Warn,
        summary: "bundle provenance is missing or carries a malformed digest",
        hint: "re-save the artifact with `Provenance::new(content_digest(..))` \
               so extraction runs stay reproducible",
    },
    CodeSpec {
        code: "C001",
        severity: Severity::Error,
        summary: "MNA pattern is structurally singular",
        hint: "some equation row or unknown column is not covered by any \
               stamp; the matrix is singular for every parameter value",
    },
    CodeSpec {
        code: "C002",
        severity: Severity::Warn,
        summary: "node is only grounded through gmin",
        hint: "a floating node solves only via the gmin regularizer; check \
               for a missing device connection",
    },
    CodeSpec {
        code: "C003",
        severity: Severity::Warn,
        summary: "device stamps positions it never registered",
        hint: "writes at unregistered positions fall into the slow overflow \
               path and can reorder fill-in; add the positions in register()",
    },
    CodeSpec {
        code: "C004",
        severity: Severity::Info,
        summary: "device registers positions it never stamps",
        hint: "harmless but wastes pattern slots; drop the unused positions \
               from register()",
    },
];

/// Looks up the [`CodeSpec`] for a code.
pub fn code_spec(code: &str) -> Option<&'static CodeSpec> {
    CODES.iter().find(|spec| spec.code == code)
}

/// Per-code severity overrides applied when reporting.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    allowed: BTreeSet<String>,
    denied: BTreeSet<String>,
}

impl LintConfig {
    /// Suppresses a code entirely.
    pub fn allow(&mut self, code: impl Into<String>) {
        let code = code.into();
        self.denied.remove(&code);
        self.allowed.insert(code);
    }

    /// Promotes a code to [`Severity::Error`].
    pub fn deny(&mut self, code: impl Into<String>) {
        let code = code.into();
        self.allowed.remove(&code);
        self.denied.insert(code);
    }

    /// The severity a diagnostic reports at under this configuration, or
    /// `None` when the code is allowed (suppressed).
    pub fn effective(&self, diag: &Diagnostic) -> Option<Severity> {
        if self.allowed.contains(diag.code) {
            return None;
        }
        if self.denied.contains(diag.code) {
            return Some(Severity::Error);
        }
        Some(diag.severity)
    }
}

/// The collected findings of one lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in rule order per subject.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Counts of `(errors, warnings, infos)` under `cfg`; suppressed
    /// diagnostics count toward none.
    pub fn counts(&self, cfg: &LintConfig) -> (usize, usize, usize) {
        let mut n = (0, 0, 0);
        for diag in &self.diagnostics {
            match cfg.effective(diag) {
                Some(Severity::Error) => n.0 += 1,
                Some(Severity::Warn) => n.1 += 1,
                Some(Severity::Info) => n.2 += 1,
                None => {}
            }
        }
        n
    }

    /// Number of findings that are errors under `cfg` (what fails the CLI).
    pub fn deny_count(&self, cfg: &LintConfig) -> usize {
        self.counts(cfg).0
    }

    /// Whether no finding survives suppression.
    pub fn is_clean(&self, cfg: &LintConfig) -> bool {
        let (e, w, i) = self.counts(cfg);
        e + w + i == 0
    }

    /// Renders the report as one line per finding plus a fix hint, ending
    /// with a summary line.
    pub fn render_human(&self, cfg: &LintConfig) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            let Some(sev) = cfg.effective(diag) else {
                continue;
            };
            out.push_str(&format!(
                "{sev}[{}] {}: {}\n",
                diag.code, diag.subject, diag.message
            ));
            if let Some(spec) = code_spec(diag.code) {
                out.push_str(&format!("  hint: {}\n", spec.hint));
            }
        }
        let (e, w, i) = self.counts(cfg);
        out.push_str(&format!(
            "lint: {e} error(s), {w} warning(s), {i} info(s)\n"
        ));
        out
    }

    /// Renders the report as a JSON object (no external dependencies).
    pub fn to_json(&self, cfg: &LintConfig) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        let mut first = true;
        for diag in &self.diagnostics {
            let Some(sev) = cfg.effective(diag) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{sev}\",\"subject\":\"{}\",\"message\":\"{}\"}}",
                diag.code,
                json_escape(&diag.subject),
                json_escape(&diag.message)
            ));
        }
        let (e, w, i) = self.counts(cfg);
        out.push_str(&format!(
            "],\"errors\":{e},\"warnings\":{w},\"infos\":{i}}}"
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn diag(code: &'static str, subject: &str, message: String) -> Diagnostic {
    let spec = code_spec(code).expect("diagnostic emitted with unregistered code");
    Diagnostic {
        code,
        severity: spec.severity,
        subject: subject.to_string(),
        message,
    }
}

fn model_subject(model: &AnyModel) -> String {
    let dynm = model.as_dyn();
    format!("{} '{}'", dynm.kind().tag(), dynm.name())
}

// ---------------------------------------------------------------------------
// Model-semantic rules (M-codes)
// ---------------------------------------------------------------------------

/// M002: the linear output-feedback tail of a NARX model — the `y(k-j)`
/// coefficients of its affine part — forms a linear recursion that must be
/// stable for the model to be safe under extrapolation.
fn check_narx_tail(net: &NarxModel, subject: &str, label: &str, out: &mut Vec<Diagnostic>) {
    let orders = net.orders();
    let linear = net.network().linear();
    if orders.output_lags == 0 || linear.len() != orders.dim() {
        return;
    }
    let tail = &linear[orders.input_lags + 1..];
    if tail.iter().all(|c| c.abs() == 0.0) {
        return;
    }
    let result = feedback_stability(tail);
    if !result.stable {
        out.push(diag(
            "M002",
            subject,
            format!(
                "{label} linear output-feedback tail {tail:?} is unstable \
                 (Jury margin {:.3})",
                result.margin
            ),
        ));
    }
}

/// M003: near-duplicate RBF centers at (nearly) the same width — minimum
/// pairwise distance below `1e-3 ×` the mean width among width-matched
/// pairs.
fn check_center_spacing(net: &RbfNetwork, subject: &str, label: &str, out: &mut Vec<Diagnostic>) {
    let centers = net.centers();
    if centers.len() < 2 {
        return;
    }
    let mean_width = net.widths().iter().sum::<f64>() / net.widths().len() as f64;
    if !(mean_width > 0.0 && mean_width.is_finite()) {
        return;
    }
    // Two basis functions are redundant only when both their centers AND
    // their widths (nearly) coincide: the multi-scale trainer deliberately
    // reuses one center at several widths, and those are independent
    // regressors. Flag the closest truly-duplicate pair.
    let widths = net.widths();
    let mut min_dist = f64::INFINITY;
    let mut pair = (0, 0);
    for i in 0..centers.len() {
        for j in (i + 1)..centers.len() {
            let dw = (widths[i] - widths[j]).abs();
            if dw > 1e-3 * widths[i].abs().max(widths[j].abs()) {
                continue;
            }
            let d = centers[i]
                .iter()
                .zip(&centers[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if d < min_dist {
                min_dist = d;
                pair = (i, j);
            }
        }
    }
    if min_dist < 1e-3 * mean_width {
        out.push(diag(
            "M003",
            subject,
            format!(
                "{label} centers {} and {} are {min_dist:.3e} apart \
                 with matching widths (mean width {mean_width:.3e})",
                pair.0, pair.1
            ),
        ));
    }
}

/// M004: a driver submodel whose centers span a small fraction of the
/// supply range in the present-voltage coordinate extrapolates over most of
/// the operating region.
fn check_center_coverage(
    net: &RbfNetwork,
    vdd: f64,
    subject: &str,
    label: &str,
    out: &mut Vec<Diagnostic>,
) {
    let centers = net.centers();
    if centers.len() < 2 || !vdd.is_finite() || vdd <= 0.0 {
        return;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in centers {
        if let Some(&v) = c.first() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = hi - lo;
    if span.is_finite() && span < 0.35 * vdd {
        out.push(diag(
            "M004",
            subject,
            format!(
                "{label} centers span only {span:.3} V of the {vdd:.3} V \
                 supply range (coverage {:.0}%)",
                100.0 * span / vdd
            ),
        ));
    }
}

/// M005/M006: direction-agnostic monotonicity and slope sanity of a static
/// I-V table.
fn check_iv_table(pwl: &Pwl, subject: &str, label: &str, out: &mut Vec<Diagnostic>) {
    let y = pwl.y();
    let x = pwl.x();
    let mut rises = false;
    let mut falls = false;
    for w in y.windows(2) {
        if w[1] > w[0] {
            rises = true;
        }
        if w[1] < w[0] {
            falls = true;
        }
    }
    if rises && falls {
        out.push(diag(
            "M005",
            subject,
            format!(
                "{label} current is not monotonic in voltage ({} points)",
                y.len()
            ),
        ));
    }
    const MAX_SLOPE: f64 = 1e3; // siemens
    for (k, (wx, wy)) in x.windows(2).zip(y.windows(2)).enumerate() {
        let slope = (wy[1] - wy[0]) / (wx[1] - wx[0]);
        if slope.abs() > MAX_SLOPE {
            out.push(diag(
                "M006",
                subject,
                format!(
                    "{label} segment {k} near {:.3} V has slope {slope:.3e} S \
                     (limit {MAX_SLOPE:.0e} S)",
                    wx[0]
                ),
            ));
            break; // one finding per table is enough
        }
    }
}

/// M007: switching weights or IBIS k-coefficients far outside the physical
/// blending range `[0, 1]`.
fn check_weight_range(values: &[f64], subject: &str, label: &str, out: &mut Vec<Diagnostic>) {
    const LO: f64 = -0.5;
    const HI: f64 = 1.5;
    if let Some((k, &w)) = values
        .iter()
        .enumerate()
        .find(|(_, w)| !(LO..=HI).contains(*w))
    {
        out.push(diag(
            "M007",
            subject,
            format!("{label} sample {k} is {w:.3}, outside [{LO}, {HI}]"),
        ));
    }
}

/// Runs the model-semantic rule pack on one model.
pub fn lint_model(model: &AnyModel) -> Vec<Diagnostic> {
    let subject = model_subject(model);
    let mut out = Vec::new();
    match model {
        AnyModel::PwRbfDriver(m) => {
            check_narx_tail(&m.i_high, &subject, "i_high", &mut out);
            check_narx_tail(&m.i_low, &subject, "i_low", &mut out);
            check_center_spacing(m.i_high.network(), &subject, "i_high", &mut out);
            check_center_spacing(m.i_low.network(), &subject, "i_low", &mut out);
            check_center_coverage(m.i_high.network(), m.vdd, &subject, "i_high", &mut out);
            check_center_coverage(m.i_low.network(), m.vdd, &subject, "i_low", &mut out);
            check_weight_range(m.up.w_high(), &subject, "up w_high", &mut out);
            check_weight_range(m.up.w_low(), &subject, "up w_low", &mut out);
            check_weight_range(m.down.w_high(), &subject, "down w_high", &mut out);
            check_weight_range(m.down.w_low(), &subject, "down w_low", &mut out);
        }
        AnyModel::Receiver(m) => {
            let result = feedback_stability(m.linear.a());
            if !result.stable {
                out.push(diag(
                    "M001",
                    &subject,
                    format!(
                        "linear ARX submodel a = {:?} fails the Jury test \
                         (margin {:.3}, spectral radius {:.4})",
                        m.linear.a(),
                        result.margin,
                        m.linear.spectral_radius()
                    ),
                ));
            }
            check_narx_tail(&m.up, &subject, "up", &mut out);
            check_narx_tail(&m.down, &subject, "down", &mut out);
            check_center_spacing(m.up.network(), &subject, "up", &mut out);
            check_center_spacing(m.down.network(), &subject, "down", &mut out);
        }
        AnyModel::Cr(m) => {
            check_iv_table(&m.static_iv, &subject, "static I-V", &mut out);
        }
        AnyModel::Ibis(m) => {
            check_iv_table(&m.pullup, &subject, "pullup", &mut out);
            check_iv_table(&m.pulldown, &subject, "pulldown", &mut out);
            check_weight_range(&m.ku_rise, &subject, "ku_rise", &mut out);
            check_weight_range(&m.kd_rise, &subject, "kd_rise", &mut out);
            check_weight_range(&m.ku_fall, &subject, "ku_fall", &mut out);
            check_weight_range(&m.kd_fall, &subject, "kd_fall", &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Circuit-structural rules (C-codes)
// ---------------------------------------------------------------------------

/// Instantiates the model into a reference fixture (50 Ω resistive load,
/// `01` pattern for drivers) and audits the MNA structure, mapping
/// [`circuit::lint::StructuralIssue`]s onto the shared diagnostic codes.
fn structural_audit(model: &AnyModel, out: &mut Vec<Diagnostic>) {
    let subject = model_subject(model);
    let dynm = model.as_dyn();
    let mut ckt = Circuit::new();
    let pad = ckt.node("pad");
    TestFixture::resistive(50.0).install(&mut ckt, pad);
    // Sampled devices assert the transient step equals their sample clock.
    let dt = dynm.sample_time().filter(|ts| *ts > 0.0).unwrap_or(1e-9);
    let stim = PortStimulus::new("01", 64.0 * dt);
    let stim = dynm.kind().is_driver().then_some(&stim);
    if dynm.instantiate(&mut ckt, pad, stim).is_err() {
        // Instantiation failures are validate()-level problems the loader
        // reports on its own; nothing structural to audit.
        return;
    }
    for issue in circuit::lint::audit_circuit_with_dt(&mut ckt, dt) {
        let spec = code_spec(issue.code).expect("audit issued unknown code");
        out.push(Diagnostic {
            code: spec.code,
            severity: spec.severity,
            subject: format!("{subject} [{}]", issue.subject),
            message: issue.message,
        });
    }
}

/// Runs the model-semantic rules plus the circuit-structural audit.
pub fn lint_model_full(model: &AnyModel) -> Vec<Diagnostic> {
    let mut out = lint_model(model);
    structural_audit(model, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Artifact-level rules
// ---------------------------------------------------------------------------

fn digest_is_well_formed(digest: &str) -> bool {
    digest == "-"
        || (digest.len() == 16
            && digest
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()))
}

/// Lints a whole artifact: provenance checks plus the full per-model rule
/// packs.
pub fn lint_artifact(artifact: &Artifact) -> LintReport {
    let mut report = LintReport::default();
    if artifact.version >= 2 {
        match &artifact.provenance {
            None => report.diagnostics.push(diag(
                "M008",
                "<artifact>",
                "v2 bundle has no provenance block".to_string(),
            )),
            Some(p) if !digest_is_well_formed(&p.config_digest) => report.diagnostics.push(diag(
                "M008",
                "<artifact>",
                format!(
                    "config digest {:?} is neither '-' nor 16 lowercase hex digits",
                    p.config_digest
                ),
            )),
            Some(_) => {}
        }
    }
    for model in &artifact.models {
        report.diagnostics.extend(lint_model_full(model));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{PwRbfDriverModel, WeightSequence};
    use crate::exchange::Provenance;
    use crate::receiver::{CrModel, ReceiverModel};
    use sysid::arx::{ArxModel, ArxOrders};
    use sysid::narx::NarxOrders;

    fn stable_narx() -> NarxModel {
        NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.2]),
        )
        .unwrap()
    }

    fn healthy_driver() -> PwRbfDriverModel {
        PwRbfDriverModel {
            name: "drv".into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: stable_narx(),
            i_low: stable_narx(),
            up: WeightSequence::new(vec![0.0, 0.5, 1.0], vec![1.0, 0.5, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.5, 0.0], vec![0.0, 0.5, 1.0]).unwrap(),
        }
    }

    fn healthy_receiver() -> ReceiverModel {
        let linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 1 }, vec![0.5], vec![0.1, -0.1])
                .unwrap();
        ReceiverModel {
            name: "rx".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear,
            up: stable_narx(),
            down: stable_narx(),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn code_registry_is_consistent() {
        let mut seen = BTreeSet::new();
        for spec in CODES {
            assert!(seen.insert(spec.code), "duplicate code {}", spec.code);
            assert!(!spec.summary.is_empty() && !spec.hint.is_empty());
            assert!(spec.code.starts_with('M') || spec.code.starts_with('C'));
        }
        assert_eq!(code_spec("M001").unwrap().severity, Severity::Error);
        assert_eq!(code_spec("C004").unwrap().severity, Severity::Info);
        assert!(code_spec("Z999").is_none());
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.to_string(), "warning");
    }

    #[test]
    fn healthy_models_lint_clean_including_structure() {
        for model in [
            AnyModel::PwRbfDriver(healthy_driver()),
            AnyModel::Receiver(healthy_receiver()),
        ] {
            let diags = lint_model_full(&model);
            assert!(diags.is_empty(), "unexpected findings: {diags:?}");
        }
    }

    #[test]
    fn m001_unstable_receiver_linear_core() {
        let mut m = healthy_receiver();
        m.linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![1.5], vec![1.0]).unwrap();
        let diags = lint_model(&AnyModel::Receiver(m));
        assert_eq!(codes(&diags), vec!["M001"]);
        // Marginally stable (rho exactly 1) passes validate() but trips lint:
        // the Jury margin is zero.
        let mut m = healthy_receiver();
        m.linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![1.0], vec![1.0]).unwrap();
        assert!(m.validate().is_ok());
        let diags = lint_model(&AnyModel::Receiver(m));
        assert_eq!(codes(&diags), vec!["M001"]);
    }

    #[test]
    fn m002_unstable_narx_tail() {
        let bad = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.01, 0.0, 1.2]),
        )
        .unwrap();
        let mut m = healthy_driver();
        m.i_high = bad;
        let diags = lint_model(&AnyModel::PwRbfDriver(m));
        assert_eq!(codes(&diags), vec!["M002"]);
        assert!(diags[0].message.contains("i_high"));
    }

    #[test]
    fn m003_duplicate_centers() {
        let net = RbfNetwork::from_parts(
            3,
            vec![vec![0.9, 0.0, 0.0], vec![0.9, 0.0, 1e-9]],
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            0.0,
            vec![0.01, 0.0, 0.0],
        )
        .unwrap();
        let mut m = healthy_driver();
        m.i_low = NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap();
        let diags = lint_model(&AnyModel::PwRbfDriver(m));
        // The two centers sit at v ~ 0.9 of a 1.8 V supply: spacing trips,
        // and their dim-0 span (~0) also trips coverage.
        assert!(codes(&diags).contains(&"M003"));

        // Same center positions at clearly different widths are the
        // multi-scale trainer's deliberate output, not duplicates.
        let multiscale = RbfNetwork::from_parts(
            3,
            vec![vec![0.9, 0.0, 0.0], vec![0.9, 0.0, 1e-9]],
            vec![0.5, 1.0],
            vec![1.0, -1.0],
            0.0,
            vec![0.01, 0.0, 0.0],
        )
        .unwrap();
        let mut m = healthy_driver();
        m.i_low = NarxModel::from_network(NarxOrders::dynamic(1), multiscale).unwrap();
        let diags = lint_model(&AnyModel::PwRbfDriver(m));
        assert!(!codes(&diags).contains(&"M003"), "got {diags:?}");
    }

    #[test]
    fn m004_poor_center_coverage() {
        let net = RbfNetwork::from_parts(
            3,
            vec![vec![0.8, 0.0, 0.0], vec![1.0, 0.5, 0.0]],
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            0.0,
            vec![0.01, 0.0, 0.0],
        )
        .unwrap();
        let mut m = healthy_driver();
        m.i_high = NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap();
        let diags = lint_model(&AnyModel::PwRbfDriver(m));
        // Span 0.2 V < 0.35 * 1.8 V.
        assert_eq!(codes(&diags), vec!["M004"]);
        // Wide-span centers are fine.
        let net = RbfNetwork::from_parts(
            3,
            vec![vec![0.0, 0.0, 0.0], vec![1.8, 0.5, 0.0]],
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            0.0,
            vec![0.01, 0.0, 0.0],
        )
        .unwrap();
        let mut m = healthy_driver();
        m.i_high = NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap();
        assert!(lint_model(&AnyModel::PwRbfDriver(m)).is_empty());
    }

    #[test]
    fn m005_non_monotone_iv_table() {
        let iv = Pwl::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.5]).unwrap();
        let m = CrModel::new("cr", 1e-12, iv).unwrap();
        let diags = lint_model(&AnyModel::Cr(m));
        assert_eq!(codes(&diags), vec!["M005"]);
        // Decreasing tables are legitimate (current into vs. out of the pad).
        let iv = Pwl::new(vec![0.0, 1.0, 2.0], vec![0.5, 0.0, -0.5]).unwrap();
        let m = CrModel::new("cr", 1e-12, iv).unwrap();
        assert!(lint_model(&AnyModel::Cr(m)).is_empty());
    }

    #[test]
    fn m006_steep_iv_segment() {
        let iv = Pwl::new(vec![0.0, 1e-6, 1.0], vec![0.0, 0.1, 0.2]).unwrap();
        let m = CrModel::new("cr", 1e-12, iv).unwrap();
        let diags = lint_model(&AnyModel::Cr(m));
        assert_eq!(codes(&diags), vec!["M006"]);
        assert!(diags[0].message.contains("slope"));
    }

    #[test]
    fn m007_out_of_range_weights() {
        let mut m = healthy_driver();
        m.up = WeightSequence::new(vec![0.0, 3.0, 1.0], vec![1.0, 0.5, 0.0]).unwrap();
        let diags = lint_model(&AnyModel::PwRbfDriver(m));
        assert_eq!(codes(&diags), vec!["M007"]);
        assert!(diags[0].message.contains("3.000"));
    }

    #[test]
    fn m008_provenance_checks() {
        let model = AnyModel::Cr(
            CrModel::new(
                "cr",
                1e-12,
                Pwl::new(vec![-1.0, 1.0], vec![-0.1, 0.1]).unwrap(),
            )
            .unwrap(),
        );
        // v1 single-model artifacts never carry provenance: no finding.
        let report = lint_artifact(&Artifact::single(model.clone()));
        assert!(report.is_clean(&LintConfig::default()));
        // v2 without provenance: M008.
        let report = lint_artifact(&Artifact::bundle(vec![model.clone()], None));
        assert_eq!(codes(&report.diagnostics), vec!["M008"]);
        // Malformed digest: M008.
        let report = lint_artifact(&Artifact::bundle(
            vec![model.clone()],
            Some(Provenance::new("NOT-A-DIGEST")),
        ));
        assert_eq!(codes(&report.diagnostics), vec!["M008"]);
        // Placeholder and proper digests are fine.
        for digest in ["-", "0123456789abcdef"] {
            let report = lint_artifact(&Artifact::bundle(
                vec![model.clone()],
                Some(Provenance::new(digest)),
            ));
            assert!(report.is_clean(&LintConfig::default()), "digest {digest}");
        }
    }

    #[test]
    fn config_allow_and_deny_override_severity() {
        let iv = Pwl::new(vec![0.0, 1e-6, 1.0], vec![0.0, 0.1, 0.2]).unwrap();
        let m = CrModel::new("cr", 1e-12, iv).unwrap();
        let report = lint_artifact(&Artifact::single(AnyModel::Cr(m)));
        let mut cfg = LintConfig::default();
        assert_eq!(report.counts(&cfg), (0, 1, 0));
        assert_eq!(report.deny_count(&cfg), 0);
        cfg.deny("M006");
        assert_eq!(report.deny_count(&cfg), 1);
        cfg.allow("M006");
        assert!(report.is_clean(&cfg));
        // allow() after deny() wins and vice versa.
        cfg.deny("M006");
        assert_eq!(report.deny_count(&cfg), 1);
    }

    #[test]
    fn renderers_include_codes_and_hints() {
        let iv = Pwl::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.5]).unwrap();
        let m = CrModel::new("cr\"quoted\"", 1e-12, iv).unwrap();
        let report = lint_artifact(&Artifact::single(AnyModel::Cr(m)));
        let cfg = LintConfig::default();
        let human = report.render_human(&cfg);
        assert!(human.contains("error[M005]"));
        assert!(human.contains("hint:"));
        assert!(human.contains("1 error(s)"));
        let json = report.to_json(&cfg);
        assert!(json.contains("\"code\":\"M005\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"errors\":1"));
        // Suppressed findings disappear from both renderings.
        let mut cfg = LintConfig::default();
        cfg.allow("M005");
        assert!(!report.render_human(&cfg).contains("M005"));
        assert!(!report.to_json(&cfg).contains("M005"));
    }

    #[test]
    fn structural_audit_runs_on_all_model_kinds() {
        // The fixture-instantiation path must at minimum not report a
        // structurally singular system for any healthy model kind.
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let cr = CrModel::new("cr", 1e-12, iv).unwrap();
        for model in [
            AnyModel::PwRbfDriver(healthy_driver()),
            AnyModel::Receiver(healthy_receiver()),
            AnyModel::Cr(cr),
        ] {
            let diags = lint_model_full(&model);
            assert!(
                diags.iter().all(|d| d.code != "C001"),
                "{}: {diags:?}",
                model_subject(&model)
            );
        }
    }
}
