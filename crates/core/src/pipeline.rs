//! End-to-end estimation pipelines: reference device → macromodel.
//!
//! The modeling process follows the paper:
//!
//! **Drivers** (Section 2):
//! 1. hold the port in each logic state and excite the pad with a
//!    multilevel voltage waveform spanning the output range
//!    (identification signals);
//! 2. estimate the RBF submodels `i_H`, `i_L` from the recorded port
//!    voltage/current (OLS center selection, affine augmentation);
//! 3. record complete Up and Down state switchings on **two identification
//!    loads** and obtain the weight sequences `w_H(k)`, `w_L(k)` by linear
//!    inversion of equation (1).
//!
//! **Receivers** (Section 3):
//! 1. estimate the linear ARX submodel from a step waveform spanning the
//!    supply range inside the rails;
//! 2. estimate the up/down RBF submodels from multilevel waveforms reaching
//!    into the protection regions, on the residual after the linear part;
//! 3. the C–R̂ baseline takes `C` from the linear fit and `R̂(v)` from a DC
//!    sweep.

use crate::driver::{estimate_switching_weights, PwRbfDriverModel};
use crate::receiver::{CrModel, ReceiverModel};
use crate::{Error, Result};
use circuit::devices::{Resistor, SourceWaveform, VoltageSource};
use circuit::{Waveform, GROUND};
use numkit::interp::Pwl;
use refdev::extraction::{capture_driver, capture_receiver, receiver_input_iv};
use refdev::{CmosDriverSpec, ReceiverSpec};
use std::thread;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders, RbfTrainConfig};
use sysid::signals;

/// Configuration of the driver estimation pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DriverEstimationConfig {
    /// Model sample time (s). The paper reports Ts in the 25–50 ps range.
    pub ts: f64,
    /// Dynamic order `r` of the submodels.
    pub order: usize,
    /// RBF training configuration (centers, width, OLS stop).
    pub rbf: RbfTrainConfig,
    /// Excitation margin beyond the rails (V).
    pub v_margin: f64,
    /// Number of levels in the multilevel identification signal.
    pub n_levels: usize,
    /// Samples per level.
    pub dwell: usize,
    /// Edge samples of the identification signal.
    pub edge_samples: usize,
    /// First identification load: resistance to ground (Ω).
    pub r_load_a: f64,
    /// Second identification load: resistance to VDD (Ω).
    pub r_load_b: f64,
    /// Pre-edge settling time in the switching captures (s).
    pub t_pre: f64,
    /// Transition window captured after the edge (s).
    pub t_window: f64,
    /// Seed of the multilevel signal generator.
    pub seed: u64,
}

impl Default for DriverEstimationConfig {
    fn default() -> Self {
        DriverEstimationConfig {
            ts: 25e-12,
            order: 2,
            rbf: RbfTrainConfig {
                max_centers: 15,
                candidate_pool: 160,
                width_scale: 1.0,
                ols_tolerance: 1e-7,
            },
            v_margin: 0.3,
            n_levels: 60,
            dwell: 24,
            edge_samples: 6,
            r_load_a: 50.0,
            r_load_b: 50.0,
            t_pre: 2e-9,
            t_window: 4e-9,
            seed: 0x5eed,
        }
    }
}

/// Unwraps a scoped worker, re-raising panics on the calling thread.
fn join_worker<T>(handle: thread::ScopedJoinHandle<'_, T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Identification record of one state submodel (kept for diagnostics).
#[derive(Debug, Clone)]
pub struct StateIdRecord {
    /// Port voltage identification signal.
    pub voltage: Waveform,
    /// Recorded port current.
    pub current: Waveform,
    /// Free-run NMSE of the fitted submodel on its own identification data.
    pub nmse: f64,
}

/// The subset of [`DriverEstimationConfig`] that determines the
/// transistor-level captures. Two configs with equal keys record identical
/// waveforms, so an [`crate::ExtractionSession`] can reuse the captures and
/// only re-run the (cheap) fitting stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DriverCaptureKey {
    ts: f64,
    v_margin: f64,
    n_levels: usize,
    dwell: usize,
    edge_samples: usize,
    r_load_a: f64,
    r_load_b: f64,
    t_pre: f64,
    t_window: f64,
    seed: u64,
}

impl DriverCaptureKey {
    pub(crate) fn of(cfg: &DriverEstimationConfig) -> Self {
        DriverCaptureKey {
            ts: cfg.ts,
            v_margin: cfg.v_margin,
            n_levels: cfg.n_levels,
            dwell: cfg.dwell,
            edge_samples: cfg.edge_samples,
            r_load_a: cfg.r_load_a,
            r_load_b: cfg.r_load_b,
            t_pre: cfg.t_pre,
            t_window: cfg.t_window,
            seed: cfg.seed,
        }
    }
}

/// One identification capture: the recorded port voltage and current.
#[derive(Debug, Clone)]
pub(crate) struct StateCapture {
    pub(crate) voltage: Waveform,
    pub(crate) current: Waveform,
}

/// Every transistor-level waveform the driver estimation needs: the two
/// state identifications plus the four switching captures (two patterns ×
/// two identification loads).
#[derive(Debug, Clone)]
pub(crate) struct DriverCaptures {
    pub(crate) high: StateCapture,
    pub(crate) low: StateCapture,
    /// `(voltage, current)` per switching capture, aligned with the capture
    /// grid: `01` on load A / load B, then `10` on load A / load B.
    pub(crate) c01a: (Vec<f64>, Vec<f64>),
    pub(crate) c01b: (Vec<f64>, Vec<f64>),
    pub(crate) c10a: (Vec<f64>, Vec<f64>),
    pub(crate) c10b: (Vec<f64>, Vec<f64>),
}

/// Runs the six independent transistor-level captures of the driver
/// estimation on scoped workers (the expensive half of the pipeline).
pub(crate) fn run_driver_captures(
    spec: &CmosDriverSpec,
    cfg: &DriverEstimationConfig,
) -> Result<DriverCaptures> {
    let sw = |pattern: &'static str, to_vdd: bool, r: f64| -> Result<(Vec<f64>, Vec<f64>)> {
        let t_stop = cfg.t_pre + cfg.t_window;
        let c = capture_driver(
            spec,
            spec.pattern(pattern, cfg.t_pre),
            |ckt, pad| {
                if to_vdd {
                    let nv = ckt.node("idl_vdd");
                    ckt.add(VoltageSource::new(
                        "idl_vsrc",
                        nv,
                        GROUND,
                        SourceWaveform::dc(spec.vdd),
                    ));
                    ckt.add(Resistor::new("idl_r", pad, nv, r));
                } else {
                    ckt.add(Resistor::new("idl_r", pad, GROUND, r));
                }
                Ok(())
            },
            cfg.ts,
            t_stop,
        )?;
        Ok((c.voltage.values().to_vec(), c.current.values().to_vec()))
    };
    let sw = &sw;
    let (high, low, c01a, c01b, c10a, c10b) = thread::scope(|s| {
        let high = s.spawn(|| capture_state(spec, true, cfg));
        let low = s.spawn(|| capture_state(spec, false, cfg));
        let c01a = s.spawn(move || sw("01", false, cfg.r_load_a));
        let c01b = s.spawn(move || sw("01", true, cfg.r_load_b));
        let c10a = s.spawn(move || sw("10", false, cfg.r_load_a));
        let c10b = sw("10", true, cfg.r_load_b);
        (
            join_worker(high),
            join_worker(low),
            join_worker(c01a),
            join_worker(c01b),
            join_worker(c10a),
            c10b,
        )
    });
    Ok(DriverCaptures {
        high: high?,
        low: low?,
        c01a: c01a?,
        c01b: c01b?,
        c10a: c10a?,
        c10b: c10b?,
    })
}

/// Fits the PW-RBF model from recorded captures (the cheap half: RBF
/// training and weight inversion, no circuit simulation).
pub(crate) fn fit_driver_from_captures(
    spec: &CmosDriverSpec,
    cfg: &DriverEstimationConfig,
    caps: &DriverCaptures,
) -> Result<(PwRbfDriverModel, StateIdRecord, StateIdRecord)> {
    // --- 1. state submodels (independent fits, one on a scoped worker) ---
    let (high, low) = thread::scope(|s| {
        let high = s.spawn(|| fit_state_submodel(&caps.high, cfg));
        let low = fit_state_submodel(&caps.low, cfg);
        (join_worker(high), low)
    });
    let (i_high, rec_high) = high?;
    let (i_low, rec_low) = low?;

    // --- 2. switching-weight inversion on the two identification loads ---
    let k_edge = (cfg.t_pre / cfg.ts).round() as usize;
    let mut weights = Vec::with_capacity(2);
    for (captures, anchors) in [
        ((&caps.c01a, &caps.c01b), ((0.0, 1.0), (1.0, 0.0))),
        ((&caps.c10a, &caps.c10b), ((1.0, 0.0), (0.0, 1.0))),
    ] {
        let ((v_a, i_a), (v_b, i_b)) = captures;
        // Submodel free runs on the recorded voltages, from settled initial
        // conditions at the first sample.
        let run = |m: &NarxModel, v: &[f64]| -> Vec<f64> {
            let y0 = crate::evalrt::settle_narx(m, v[0]);
            let init = vec![y0; m.orders().start().max(1)];
            m.simulate(v, &init)
        };
        let slice = |s: &[f64]| s[k_edge..].to_vec();
        let ih_a = slice(&run(&i_high, v_a));
        let il_a = slice(&run(&i_low, v_a));
        let ih_b = slice(&run(&i_high, v_b));
        let il_b = slice(&run(&i_low, v_b));
        let meas_a = slice(i_a);
        let meas_b = slice(i_b);
        let w = estimate_switching_weights(&ih_a, &il_a, &meas_a, &ih_b, &il_b, &meas_b, anchors)?;
        weights.push(w);
    }
    let down = weights.pop().expect("two transitions captured");
    let up = weights.pop().expect("two transitions captured");

    let model = PwRbfDriverModel {
        name: spec.name.to_string(),
        ts: cfg.ts,
        vdd: spec.vdd,
        i_high,
        i_low,
        up,
        down,
    };
    model.validate()?;
    Ok((model, rec_high, rec_low))
}

/// Validates the non-capture configuration fields of a driver estimation.
pub(crate) fn check_driver_config(cfg: &DriverEstimationConfig) -> Result<()> {
    if cfg.ts <= 0.0 || cfg.order == 0 {
        return Err(Error::InvalidModel {
            message: "ts must be positive and order at least 1".into(),
        });
    }
    Ok(())
}

/// Estimates a PW-RBF driver model from a transistor-level reference.
///
/// Thin wrapper over [`crate::ExtractionSession::for_driver`]; prefer the
/// session builder, which can also reuse captures between runs, validate,
/// and save the result.
///
/// # Errors
///
/// Returns [`Error::Estimation`] with the failing stage, or propagates
/// simulation/identification errors.
pub fn estimate_driver(
    spec: &CmosDriverSpec,
    cfg: DriverEstimationConfig,
) -> Result<PwRbfDriverModel> {
    let (model, _, _) = estimate_driver_with_records(spec, cfg)?;
    Ok(model)
}

/// Like [`estimate_driver`], additionally returning the identification
/// records of the High and Low submodels.
///
/// Thin wrapper over [`crate::ExtractionSession::for_driver`].
///
/// # Errors
///
/// See [`estimate_driver`].
pub fn estimate_driver_with_records(
    spec: &CmosDriverSpec,
    cfg: DriverEstimationConfig,
) -> Result<(PwRbfDriverModel, StateIdRecord, StateIdRecord)> {
    crate::session::ExtractionSession::for_driver(spec.clone())
        .config(cfg)
        .run()?
        .into_driver_parts()
}

/// Captures one state identification (driver held High or Low, pad excited
/// by a multilevel source).
fn capture_state(
    spec: &CmosDriverSpec,
    high: bool,
    cfg: &DriverEstimationConfig,
) -> Result<StateCapture> {
    let lo = -cfg.v_margin;
    let hi = spec.vdd + cfg.v_margin;
    let sig = signals::multilevel(
        lo,
        hi,
        cfg.n_levels,
        cfg.dwell,
        cfg.edge_samples,
        cfg.seed ^ (high as u64),
    );
    let times: Vec<f64> = (0..sig.len()).map(|k| k as f64 * cfg.ts).collect();
    let pwl = Pwl::new(times.clone(), sig).map_err(|e| Error::Estimation {
        stage: "identification signal".into(),
        message: e.to_string(),
    })?;
    let t_stop = *times.last().expect("non-empty signal");
    let input_level = if high { spec.vdd } else { 0.0 };
    let capture = capture_driver(
        spec,
        SourceWaveform::dc(input_level),
        move |ckt, pad| {
            ckt.add(VoltageSource::new(
                "id_src",
                pad,
                GROUND,
                SourceWaveform::Pwl(pwl),
            ));
            Ok(())
        },
        cfg.ts,
        t_stop,
    )?;
    Ok(StateCapture {
        voltage: capture.voltage,
        current: capture.current,
    })
}

/// Fits one state submodel from its recorded capture.
fn fit_state_submodel(
    capture: &StateCapture,
    cfg: &DriverEstimationConfig,
) -> Result<(NarxModel, StateIdRecord)> {
    let v = capture.voltage.values();
    let i = capture.current.values();
    let narx = NarxModel::fit(v, i, NarxOrders::dynamic(cfg.order), cfg.rbf)?;
    // Self-consistency metric on the identification data.
    let sim = narx.simulate(v, &i[..cfg.order.max(1)]);
    let nmse = numkit::stats::nmse(&sim, i);
    Ok((
        narx,
        StateIdRecord {
            voltage: capture.voltage.clone(),
            current: capture.current.clone(),
            nmse,
        },
    ))
}

/// Configuration of the receiver estimation pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverEstimationConfig {
    /// Model sample time (s).
    pub ts: f64,
    /// ARX order of the linear submodel (`na = nb = r_lin`).
    pub r_lin: usize,
    /// Dynamic order of the up-protection submodel.
    pub r_up: usize,
    /// Dynamic order of the down-protection submodel.
    pub r_down: usize,
    /// RBF training configuration.
    pub rbf: RbfTrainConfig,
    /// Overdrive beyond the rails for the protection signals (V).
    pub v_over: f64,
    /// Number of levels in protection identification signals.
    pub n_levels: usize,
    /// Samples per level.
    pub dwell: usize,
    /// Edge samples.
    pub edge_samples: usize,
    /// Seed of the multilevel generator.
    pub seed: u64,
}

impl Default for ReceiverEstimationConfig {
    fn default() -> Self {
        ReceiverEstimationConfig {
            ts: 25e-12,
            r_lin: 2,
            r_up: 2,
            r_down: 3,
            rbf: RbfTrainConfig {
                max_centers: 18,
                candidate_pool: 220,
                width_scale: 1.0,
                ols_tolerance: 1e-8,
            },
            v_over: 0.9,
            n_levels: 50,
            dwell: 24,
            edge_samples: 6,
            seed: 0xace,
        }
    }
}

/// Fits an ARX model and guards against spurious marginal poles: smooth
/// identification steps under-determine the AR part of nearly capacitive
/// ports, so least squares occasionally parks a pole on the unit circle.
/// The AR order is reduced until the spectral radius is safely inside.
fn fit_stable_arx(v: &[f64], i: &[f64], r_lin: usize) -> Result<ArxModel> {
    let mut last_err: Option<Error> = None;
    for na in (0..=r_lin).rev() {
        match ArxModel::fit(v, i, ArxOrders { na, nb: r_lin }) {
            Ok(m) if m.spectral_radius() < 0.99 => return Ok(m),
            Ok(_) => continue,
            Err(e) => last_err = Some(e.into()),
        }
    }
    Err(last_err.unwrap_or(Error::Estimation {
        stage: "linear receiver submodel".into(),
        message: "no stable ARX structure found".into(),
    }))
}

/// Captures a receiver excited directly by a sampled voltage waveform.
fn capture_rx(spec: &ReceiverSpec, sig: Vec<f64>, ts: f64) -> Result<(Vec<f64>, Vec<f64>)> {
    let times: Vec<f64> = (0..sig.len()).map(|k| k as f64 * ts).collect();
    let t_stop = *times.last().expect("non-empty signal");
    let pwl = Pwl::new(times, sig).map_err(|e| Error::Estimation {
        stage: "receiver identification signal".into(),
        message: e.to_string(),
    })?;
    let cap = capture_receiver(
        spec,
        move |ckt, pad| {
            ckt.add(VoltageSource::new(
                "id_src",
                pad,
                GROUND,
                SourceWaveform::Pwl(pwl),
            ));
            Ok(())
        },
        ts,
        t_stop,
    )?;
    Ok((cap.voltage.values().to_vec(), cap.current.values().to_vec()))
}

/// The subset of [`ReceiverEstimationConfig`] that determines the
/// transistor-level captures (see [`DriverCaptureKey`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ReceiverCaptureKey {
    ts: f64,
    v_over: f64,
    n_levels: usize,
    dwell: usize,
    edge_samples: usize,
    seed: u64,
}

impl ReceiverCaptureKey {
    pub(crate) fn of(cfg: &ReceiverEstimationConfig) -> Self {
        ReceiverCaptureKey {
            ts: cfg.ts,
            v_over: cfg.v_over,
            n_levels: cfg.n_levels,
            dwell: cfg.dwell,
            edge_samples: cfg.edge_samples,
            seed: cfg.seed,
        }
    }
}

/// The three transistor-level identification captures of the receiver
/// estimation: linear steps, up-protection and down-protection multilevel
/// excursions.
#[derive(Debug, Clone)]
pub(crate) struct ReceiverCaptures {
    pub(crate) lin: (Vec<f64>, Vec<f64>),
    pub(crate) up: (Vec<f64>, Vec<f64>),
    pub(crate) dn: (Vec<f64>, Vec<f64>),
}

/// Share of protection-excitation levels stratified *inside* the
/// protection-conducting region (beyond the rail the submodel covers). A
/// plain full-range staircase would leave the region only
/// `v_over / (vdd + 2 v_over)` of the levels in expectation (≈ 18 % at the
/// defaults) — too sparse exactly where the protection current is largest.
const PROTECTION_FOCUS_SHARE: f64 = 0.35;

/// Builds the up/down protection identification signals: multilevel
/// staircases over the full excursion range with a guaranteed stratified
/// share of levels inside the respective protection-conducting region
/// (above VDD for `up`, below ground for `down`) — stratified sampling per
/// region, so neither the rails interior nor the diode knees are left with
/// coverage gaps.
pub(crate) fn protection_signals(vdd: f64, cfg: &ReceiverEstimationConfig) -> (Vec<f64>, Vec<f64>) {
    let lo = -cfg.v_over;
    let hi = vdd + cfg.v_over;
    let sig_up = signals::multilevel_focus(
        lo,
        hi,
        signals::Focus::new(vdd, hi, PROTECTION_FOCUS_SHARE),
        cfg.n_levels,
        cfg.dwell,
        cfg.edge_samples,
        cfg.seed,
    );
    let sig_dn = signals::multilevel_focus(
        lo,
        hi,
        signals::Focus::new(lo, 0.0, PROTECTION_FOCUS_SHARE),
        cfg.n_levels,
        cfg.dwell,
        cfg.edge_samples,
        cfg.seed ^ 0xffff,
    );
    (sig_up, sig_dn)
}

/// Runs the three independent receiver captures on scoped workers.
pub(crate) fn run_receiver_captures(
    spec: &ReceiverSpec,
    cfg: &ReceiverEstimationConfig,
) -> Result<ReceiverCaptures> {
    let lin_sig = signals::step_train(
        0.1 * spec.vdd,
        0.9 * spec.vdd,
        6,
        cfg.dwell * 2,
        cfg.edge_samples,
    );
    let (sig_up, sig_dn) = protection_signals(spec.vdd, cfg);
    let (lin, up, dn) = thread::scope(|s| {
        let cap_lin = s.spawn(|| capture_rx(spec, lin_sig, cfg.ts));
        let cap_up = s.spawn(|| capture_rx(spec, sig_up, cfg.ts));
        let cap_dn = capture_rx(spec, sig_dn, cfg.ts);
        (join_worker(cap_lin), join_worker(cap_up), cap_dn)
    });
    Ok(ReceiverCaptures {
        lin: lin?,
        up: up?,
        dn: dn?,
    })
}

/// Validates the non-capture configuration fields of a receiver estimation.
pub(crate) fn check_receiver_config(cfg: &ReceiverEstimationConfig) -> Result<()> {
    if cfg.ts <= 0.0 {
        return Err(Error::InvalidModel {
            message: "ts must be positive".into(),
        });
    }
    Ok(())
}

/// Estimates the full receiver parametric model (equation 2).
///
/// Thin wrapper over [`crate::ExtractionSession::for_receiver`]; prefer the
/// session builder, which can also reuse captures between runs, validate,
/// and save the result.
///
/// # Errors
///
/// Returns [`Error::Estimation`] / identification errors from the stages.
pub fn estimate_receiver(
    spec: &ReceiverSpec,
    cfg: ReceiverEstimationConfig,
) -> Result<ReceiverModel> {
    match crate::session::ExtractionSession::for_receiver(spec.clone())
        .config(cfg)
        .run()?
        .into_model()
    {
        crate::AnyModel::Receiver(m) => Ok(m),
        _ => unreachable!("receiver session produces a receiver model"),
    }
}

/// Fits the receiver model from recorded captures. The fits stay
/// sequential — each protection submodel trains on the residual of the
/// previous stages.
pub(crate) fn fit_receiver_from_captures(
    spec: &ReceiverSpec,
    cfg: &ReceiverEstimationConfig,
    caps: &ReceiverCaptures,
) -> Result<ReceiverModel> {
    // --- 1. linear submodel: steps inside the rails ---
    let (v_lin, i_lin) = &caps.lin;
    let linear = fit_stable_arx(v_lin, i_lin, cfg.r_lin)?;

    // --- 2. protection submodels on the residual ---
    // Protection submodels are estimated without output feedback (NFIR
    // structure: present + past voltages only). The protection network is a
    // voltage-driven one-port, so its current is determined by the voltage
    // history; removing the output lags eliminates the free-run instability
    // that teacher-forced training can otherwise bake into the feedback
    // path when the residual is near zero over most of the record.
    //
    // Both submodels are trained over the *full* excursion range so that
    // their (small) affine tails are constrained everywhere; the split into
    // `up` and `down` is realized by sequential residual fitting: `up`
    // absorbs the residual after the linear part, `down` what remains.
    // Inside the rails both are taught to be (near) zero by construction.
    let (v_up, i_up) = &caps.up;
    let lin_up = linear.simulate(v_up);
    let resid_up: Vec<f64> = i_up.iter().zip(&lin_up).map(|(a, b)| a - b).collect();
    let up = NarxModel::fit(
        v_up,
        &resid_up,
        NarxOrders {
            input_lags: cfg.r_up,
            output_lags: 0,
        },
        cfg.rbf,
    )?;

    let (v_dn, i_dn) = &caps.dn;
    let lin_dn = linear.simulate(v_dn);
    let up_dn = up.simulate(v_dn, &[]);
    let resid_dn: Vec<f64> = i_dn
        .iter()
        .zip(&lin_dn)
        .zip(&up_dn)
        .map(|((a, b), c)| a - b - c)
        .collect();
    let down = NarxModel::fit(
        v_dn,
        &resid_dn,
        NarxOrders {
            input_lags: cfg.r_down,
            output_lags: 0,
        },
        cfg.rbf,
    )?;

    let model = ReceiverModel {
        name: spec.name.to_string(),
        ts: cfg.ts,
        vdd: spec.vdd,
        linear,
        up,
        down,
    };
    model.validate()?;
    Ok(model)
}

/// The step capture and DC sweep behind the C–R̂ baseline.
#[derive(Debug, Clone)]
pub(crate) struct CrCaptures {
    pub(crate) step: (Vec<f64>, Vec<f64>),
    pub(crate) sweep: (Vec<f64>, Vec<f64>),
}

/// Runs the two independent C–R̂ captures.
pub(crate) fn run_cr_captures(spec: &ReceiverSpec, ts: f64) -> Result<CrCaptures> {
    // The step capture (for C) and the DC sweep (for R̂) are independent.
    let sig = signals::step_train(0.1 * spec.vdd, 0.9 * spec.vdd, 6, 40, 6);
    let (cap, sweep) = thread::scope(|s| {
        let cap = s.spawn(|| capture_rx(spec, sig, ts));
        let sweep = receiver_input_iv(spec, (-1.2, spec.vdd + 1.2), 49);
        (join_worker(cap), sweep)
    });
    let sweep = sweep?;
    Ok(CrCaptures {
        step: cap?,
        sweep: (sweep.voltages, sweep.currents),
    })
}

/// Fits the C–R̂ baseline from its captures.
pub(crate) fn fit_cr_from_captures(
    spec: &ReceiverSpec,
    ts: f64,
    caps: &CrCaptures,
) -> Result<CrModel> {
    // C from an ARX(0,1) fit: i = (C/ts) v(k) - (C/ts) v(k-1).
    let (v, i) = &caps.step;
    let fit = ArxModel::fit(v, i, ArxOrders { na: 0, nb: 1 })?;
    let c = (fit.b()[0] - fit.b()[1]) * 0.5 * ts;
    let c = c.max(1e-15);
    // Static resistor from the DC sweep.
    let static_iv =
        Pwl::new(caps.sweep.0.clone(), caps.sweep.1.clone()).map_err(|e| Error::Estimation {
            stage: "C-R baseline DC sweep".into(),
            message: e.to_string(),
        })?;
    CrModel::new(format!("{}_cr", spec.name), c, static_iv)
}

/// Builds the paper's C–R̂ baseline for a receiver: `C` from a low-order
/// linear fit inside the rails, `R̂(v)` from a DC sweep.
///
/// Thin wrapper over [`crate::ExtractionSession::for_cr_baseline`].
///
/// # Errors
///
/// Propagates capture and fit failures.
pub fn estimate_cr_baseline(spec: &ReceiverSpec, ts: f64) -> Result<CrModel> {
    match crate::session::ExtractionSession::for_cr_baseline(spec.clone())
        .sample_time(ts)
        .run()?
        .into_model()
    {
        crate::AnyModel::Cr(m) => Ok(m),
        _ => unreachable!("C-R session produces a C-R model"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdev::{md1, md4};

    fn fast_driver_cfg() -> DriverEstimationConfig {
        DriverEstimationConfig {
            n_levels: 24,
            dwell: 16,
            rbf: RbfTrainConfig {
                max_centers: 8,
                candidate_pool: 60,
                width_scale: 1.0,
                ols_tolerance: 1e-6,
            },
            t_pre: 1.5e-9,
            t_window: 3e-9,
            ..Default::default()
        }
    }

    #[test]
    fn driver_estimation_end_to_end() {
        let spec = md1();
        let (model, rec_h, rec_l) = estimate_driver_with_records(&spec, fast_driver_cfg()).unwrap();
        assert!(model.validate().is_ok());
        // Submodels fit their own identification data well.
        assert!(rec_h.nmse < 0.05, "high NMSE {}", rec_h.nmse);
        assert!(rec_l.nmse < 0.05, "low NMSE {}", rec_l.nmse);
        // Weight windows are anchored at the steady states.
        assert_eq!(model.up.at(0), (0.0, 1.0));
        assert_eq!(model.up.at(model.up.len() - 1), (1.0, 0.0));
        assert_eq!(model.down.at(0), (1.0, 0.0));
        assert!(model.total_basis_functions() > 0);
    }

    #[test]
    fn driver_estimation_rejects_bad_config() {
        let cfg = DriverEstimationConfig {
            ts: 0.0,
            ..Default::default()
        };
        assert!(estimate_driver(&md1(), cfg).is_err());
        let cfg = DriverEstimationConfig {
            order: 0,
            ..Default::default()
        };
        assert!(estimate_driver(&md1(), cfg).is_err());
    }

    #[test]
    fn receiver_estimation_end_to_end() {
        let spec = md4();
        let cfg = ReceiverEstimationConfig {
            n_levels: 24,
            dwell: 16,
            ..Default::default()
        };
        let model = estimate_receiver(&spec, cfg).unwrap();
        assert!(model.validate().is_ok());
        // Static behaviour: inside the rails the total current at steady
        // state is (near) zero; above VDD the up model dominates.
        let n = 400;
        let v_hold = vec![0.5 * spec.vdd; n];
        let i = model.simulate(&v_hold);
        assert!(i[n - 1].abs() < 2e-3, "mid-rail leakage {}", i[n - 1]);
        let v_over = vec![spec.vdd + 0.8; n];
        let i = model.simulate(&v_over);
        assert!(i[n - 1] > 5e-3, "clamp current {}", i[n - 1]);
    }

    #[test]
    fn protection_signals_cover_the_conducting_regions() {
        let cfg = ReceiverEstimationConfig::default();
        let vdd = 3.3;
        let (sig_up, sig_dn) = protection_signals(vdd, &cfg);
        // The focused share guarantees a solid fraction of *dwell* samples
        // inside each protection-conducting region — far more than the
        // v_over/(vdd + 2 v_over) ≈ 18 % a plain full-range staircase
        // leaves there in expectation.
        let above = sig_up.iter().filter(|&&v| v > vdd).count() as f64 / sig_up.len() as f64;
        let below = sig_dn.iter().filter(|&&v| v < 0.0).count() as f64 / sig_dn.len() as f64;
        assert!(above > 0.28, "only {above:.2} of up-signal beyond VDD");
        assert!(below > 0.28, "only {below:.2} of down-signal below ground");
        // Stratified coverage inside the regions: every third of each
        // region sees samples (no clustering gap).
        let hi = vdd + cfg.v_over;
        for k in 0..3 {
            let (a, b) = (
                vdd + cfg.v_over * k as f64 / 3.0,
                vdd + cfg.v_over * (k + 1) as f64 / 3.0,
            );
            assert!(
                sig_up.iter().any(|&v| v >= a && v <= b),
                "up region slice [{a:.2},{b:.2}] V unexcited"
            );
            let (a, b) = (
                -cfg.v_over * (k + 1) as f64 / 3.0,
                -cfg.v_over * k as f64 / 3.0,
            );
            assert!(
                sig_dn.iter().any(|&v| v >= a && v <= b),
                "down region slice [{a:.2},{b:.2}] V unexcited"
            );
        }
        // Full range still spanned (rails interior keeps its coverage).
        assert!(sig_up.iter().cloned().fold(f64::INFINITY, f64::min) < -0.8 * cfg.v_over);
        assert!(sig_up.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > hi - 1e-9);
    }

    #[test]
    fn cr_baseline_extraction() {
        let spec = md4();
        let cr = estimate_cr_baseline(&spec, 25e-12).unwrap();
        // The estimated C is within a factor of two of the physical total
        // (the gate RC hides part of it at this sample rate).
        let c_phys = spec.total_capacitance();
        assert!(
            cr.c > 0.3 * c_phys && cr.c < 2.0 * c_phys,
            "C {} vs physical {}",
            cr.c,
            c_phys
        );
        // Static curve: conducting above the rail.
        assert!(cr.static_iv.eval(spec.vdd + 1.0) > 1e-3);
        assert!(cr.static_iv.eval(0.5 * spec.vdd).abs() < 1e-4);
    }
}
