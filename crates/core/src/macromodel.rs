//! The unified macromodel API: one object-safe trait in front of every
//! estimated-model backend.
//!
//! The point of the reproduced paper is that an estimated behavioral model
//! is a *portable artifact*: extracted once, then shipped to downstream
//! simulations in place of the transistor-level device. Portability needs a
//! single surface — [`Macromodel`] — implemented by
//!
//! * the PW-RBF driver model ([`crate::PwRbfDriverModel`]),
//! * the receiver parametric model ([`crate::ReceiverModel`]),
//! * the C–R̂ baseline ([`crate::CrModel`]),
//! * the IBIS comparison baseline ([`refdev::IbisModel`]).
//!
//! Consumers (the validation harness, the figure/bench generators, the
//! `mdl` CLI) hold `&dyn Macromodel` and never special-case a backend.
//! [`ModelRegistry`] collects heterogeneous models under their names so
//! sweeps over backends become iteration. [`TestFixture`] describes the
//! standard one-port validation networks as data, which keeps
//! [`Macromodel::simulate_on_load`] object-safe.
//!
//! # Example
//!
//! ```no_run
//! use macromodel::macromodel::{Macromodel, PortStimulus, TestFixture};
//! use macromodel::pipeline::{estimate_driver, DriverEstimationConfig};
//!
//! # fn main() -> Result<(), macromodel::Error> {
//! let model = estimate_driver(&refdev::md1(), DriverEstimationConfig::default())?;
//! // Any backend behind the same calls:
//! let m: &dyn Macromodel = &model;
//! println!("{} [{}]", m.summary(), m.kind());
//! let wave = m.simulate_on_load(
//!     &TestFixture::resistive(50.0),
//!     Some(&PortStimulus::new("010", 4e-9)),
//!     m.sample_time().unwrap(),
//!     12e-9,
//! )?;
//! println!("{} samples", wave.values().len());
//! # Ok(())
//! # }
//! ```

use crate::device::{PwRbfDriver, PwRbfDriverBank, ReceiverModelDevice};
use crate::driver::PwRbfDriverModel;
use crate::evalrt::{CompiledDriver, LaneStim};
use crate::receiver::{CrModel, ReceiverModel};
use crate::{Error, Result};
use circuit::devices::{Capacitor, IdealLine, Resistor, SourceWaveform, VoltageSource};
use circuit::{Circuit, Node, TranParams, Waveform, GROUND};
use refdev::IbisModel;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The model families the workspace can estimate and exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// PW-RBF driver model (paper equation 1).
    PwRbfDriver,
    /// Receiver parametric model (paper equation 2).
    Receiver,
    /// C–R̂ baseline receiver.
    CrBaseline,
    /// IBIS 2.1-style driver baseline.
    Ibis,
}

impl ModelKind {
    /// Every kind, in exchange-format tag order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::PwRbfDriver,
        ModelKind::Receiver,
        ModelKind::CrBaseline,
        ModelKind::Ibis,
    ];

    /// The stable identifier used in the on-disk exchange format.
    pub fn tag(self) -> &'static str {
        match self {
            ModelKind::PwRbfDriver => "pwrbf-driver",
            ModelKind::Receiver => "receiver",
            ModelKind::CrBaseline => "cr-baseline",
            ModelKind::Ibis => "ibis",
        }
    }

    /// Parses an exchange-format tag.
    pub fn from_tag(tag: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Whether this kind models an output port (needs a bit-pattern
    /// stimulus to be instantiated).
    pub fn is_driver(self) -> bool {
        matches!(self, ModelKind::PwRbfDriver | ModelKind::Ibis)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Logic stimulus for driver-kind models: the bit pattern the output port
/// produces and its bit time.
#[derive(Debug, Clone, PartialEq)]
pub struct PortStimulus {
    /// Bit pattern, e.g. `"010"`.
    pub pattern: String,
    /// Bit time (s).
    pub bit_time: f64,
}

impl PortStimulus {
    /// Creates a stimulus.
    pub fn new(pattern: impl Into<String>, bit_time: f64) -> Self {
        PortStimulus {
            pattern: pattern.into(),
            bit_time,
        }
    }
}

/// A standard one-port validation network, described as data so backends
/// and harnesses can exchange it without closures.
#[derive(Debug, Clone, PartialEq)]
pub enum TestFixture {
    /// Resistor from the pad to ground.
    Resistive {
        /// Load resistance (Ω).
        r: f64,
    },
    /// Ideal transmission line from the pad, far end loaded by a capacitor
    /// (the paper's Fig. 1 fixture).
    LineCap {
        /// Line impedance (Ω).
        z0: f64,
        /// Line delay (s).
        td: f64,
        /// Far-end capacitance (F).
        c_load: f64,
    },
    /// Trapezoidal pulse source driving the pad through a series resistor
    /// (the receiver validation drive).
    SeriesPulse {
        /// Source resistance (Ω).
        r: f64,
        /// Pulse low level (V).
        low: f64,
        /// Pulse high level (V).
        high: f64,
        /// Pulse delay (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Pulse width (s).
        width: f64,
        /// Fall time (s).
        fall: f64,
    },
}

impl TestFixture {
    /// Resistive load to ground.
    pub fn resistive(r: f64) -> Self {
        TestFixture::Resistive { r }
    }

    /// Ideal line plus far-end capacitor.
    pub fn line_cap(z0: f64, td: f64, c_load: f64) -> Self {
        TestFixture::LineCap { z0, td, c_load }
    }

    /// Pulse source through a series resistor.
    pub fn series_pulse(
        r: f64,
        low: f64,
        high: f64,
        delay: f64,
        rise: f64,
        width: f64,
        fall: f64,
    ) -> Self {
        TestFixture::SeriesPulse {
            r,
            low,
            high,
            delay,
            rise,
            width,
            fall,
        }
    }

    /// Installs the fixture network around an existing `pad` node.
    pub fn install(&self, ckt: &mut Circuit, pad: Node) {
        match *self {
            TestFixture::Resistive { r } => {
                ckt.add(Resistor::new("fix_rload", pad, GROUND, r));
            }
            TestFixture::LineCap { z0, td, c_load } => {
                let far = ckt.node("fix_far");
                ckt.add(IdealLine::new("fix_line", pad, GROUND, far, GROUND, z0, td));
                ckt.add(Capacitor::new("fix_cload", far, GROUND, c_load));
            }
            TestFixture::SeriesPulse {
                r,
                low,
                high,
                delay,
                rise,
                width,
                fall,
            } => {
                let src = ckt.node("fix_src");
                ckt.add(VoltageSource::new(
                    "fix_vs",
                    src,
                    GROUND,
                    SourceWaveform::Pulse {
                        low,
                        high,
                        delay,
                        rise,
                        width,
                        fall,
                    },
                ));
                ckt.add(Resistor::new("fix_rs", src, pad, r));
            }
        }
    }
}

fn missing_stimulus(name: &str) -> Error {
    Error::InvalidModel {
        message: format!("driver model '{name}' needs a PortStimulus to be instantiated"),
    }
}

/// The unified, object-safe interface every estimated macromodel backend
/// implements.
///
/// Consumers hold `&dyn Macromodel`; the trait is deliberately narrow so the
/// validation harness, the figure generators and the `mdl` CLI work with any
/// backend. See the [module docs](self) for an example.
pub trait Macromodel: Send + Sync {
    /// Which model family this is.
    fn kind(&self) -> ModelKind;

    /// Source device name (e.g. `"md1"`).
    fn name(&self) -> &str;

    /// Discrete-time sample clock of the model, if it has one. A hosting
    /// transient analysis must run at this step; `None` for continuous
    /// models (the C–R̂ baseline).
    fn sample_time(&self) -> Option<f64>;

    /// One-line structural summary.
    fn summary(&self) -> String;

    /// Structured key → value description (sizes, orders, clocks) for
    /// inventories and the `mdl info` subcommand.
    fn metadata(&self) -> BTreeMap<String, String>;

    /// Checks the model's internal invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    fn validate(&self) -> Result<()>;

    /// Installs the model as a one-port device at `pad`. Driver kinds
    /// ([`ModelKind::is_driver`]) require a stimulus; load kinds ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] for an invalid model or a missing
    /// driver stimulus.
    fn instantiate(&self, ckt: &mut Circuit, pad: Node, stim: Option<&PortStimulus>) -> Result<()>;

    /// Installs the model at several pads of one circuit. Backends with a
    /// batched runtime (the PW-RBF driver) compile the model once and add a
    /// single multi-lane device stepping every pad together; the default
    /// falls back to one [`Macromodel::instantiate`] call per pad.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] for an invalid model or a missing
    /// driver stimulus.
    fn instantiate_lanes(
        &self,
        ckt: &mut Circuit,
        lanes: &[(Node, Option<&PortStimulus>)],
    ) -> Result<()> {
        for &(pad, stim) in lanes {
            self.instantiate(ckt, pad, stim)?;
        }
        Ok(())
    }

    /// Runs the model against a standard fixture and returns the pad
    /// voltage: a fresh circuit with the fixture installed around the pad,
    /// the model instantiated at it, and a transient of `t_stop` seconds at
    /// step `dt` (which must match [`Macromodel::sample_time`] for sampled
    /// models).
    ///
    /// # Errors
    ///
    /// Propagates instantiation and simulation failures.
    fn simulate_on_load(
        &self,
        fixture: &TestFixture,
        stim: Option<&PortStimulus>,
        dt: f64,
        t_stop: f64,
    ) -> Result<Waveform> {
        let mut ckt = Circuit::new();
        let pad = ckt.node(format!("{}_pad", self.name()));
        fixture.install(&mut ckt, pad);
        self.instantiate(&mut ckt, pad, stim)?;
        let res = ckt.transient(TranParams::new(dt, t_stop))?;
        Ok(res.voltage(pad))
    }
}

impl Macromodel for PwRbfDriverModel {
    fn kind(&self) -> ModelKind {
        ModelKind::PwRbfDriver
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn sample_time(&self) -> Option<f64> {
        Some(self.ts)
    }

    fn summary(&self) -> String {
        PwRbfDriverModel::summary(self)
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("ts".into(), format!("{:e}", self.ts)),
            ("vdd".into(), format!("{}", self.vdd)),
            (
                "order".into(),
                format!("{}", self.i_high.orders().output_lags),
            ),
            (
                "basis_functions".into(),
                format!("{}", self.total_basis_functions()),
            ),
            ("up_window".into(), format!("{}", self.up.len())),
            ("down_window".into(), format!("{}", self.down.len())),
        ])
    }

    fn validate(&self) -> Result<()> {
        PwRbfDriverModel::validate(self)
    }

    fn instantiate(&self, ckt: &mut Circuit, pad: Node, stim: Option<&PortStimulus>) -> Result<()> {
        PwRbfDriverModel::validate(self)?;
        let stim = stim.ok_or_else(|| missing_stimulus(&self.name))?;
        ckt.add(PwRbfDriver::new(
            self.clone(),
            pad,
            &stim.pattern,
            stim.bit_time,
        ));
        Ok(())
    }

    fn instantiate_lanes(
        &self,
        ckt: &mut Circuit,
        lanes: &[(Node, Option<&PortStimulus>)],
    ) -> Result<()> {
        if lanes.is_empty() {
            return Ok(());
        }
        PwRbfDriverModel::validate(self)?;
        let mut bank_lanes = Vec::with_capacity(lanes.len());
        for &(pad, stim) in lanes {
            let stim = stim.ok_or_else(|| missing_stimulus(&self.name))?;
            bank_lanes.push((pad, LaneStim::from_pattern(&stim.pattern, stim.bit_time)));
        }
        let compiled = Arc::new(CompiledDriver::compile(self));
        ckt.add(PwRbfDriverBank::from_compiled(compiled, bank_lanes));
        Ok(())
    }
}

impl Macromodel for ReceiverModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Receiver
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn sample_time(&self) -> Option<f64> {
        Some(self.ts)
    }

    fn summary(&self) -> String {
        ReceiverModel::summary(self)
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("ts".into(), format!("{:e}", self.ts)),
            ("vdd".into(), format!("{}", self.vdd)),
            (
                "arx_orders".into(),
                format!("{},{}", self.linear.orders().na, self.linear.orders().nb),
            ),
            (
                "up_centers".into(),
                format!("{}", self.up.network().n_centers()),
            ),
            (
                "down_centers".into(),
                format!("{}", self.down.network().n_centers()),
            ),
        ])
    }

    fn validate(&self) -> Result<()> {
        ReceiverModel::validate(self)
    }

    fn instantiate(
        &self,
        ckt: &mut Circuit,
        pad: Node,
        _stim: Option<&PortStimulus>,
    ) -> Result<()> {
        ReceiverModel::validate(self)?;
        ckt.add(ReceiverModelDevice::new(self.clone(), pad));
        Ok(())
    }
}

impl Macromodel for CrModel {
    fn kind(&self) -> ModelKind {
        ModelKind::CrBaseline
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn sample_time(&self) -> Option<f64> {
        None
    }

    fn summary(&self) -> String {
        format!(
            "C-R '{}': C = {:.3e} F, {} I-V points",
            self.name,
            self.c,
            self.static_iv.x().len()
        )
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("c".into(), format!("{:e}", self.c)),
            ("iv_points".into(), format!("{}", self.static_iv.x().len())),
        ])
    }

    fn validate(&self) -> Result<()> {
        if self.c <= 0.0 || !self.c.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("capacitance must be positive, got {}", self.c),
            });
        }
        Ok(())
    }

    fn instantiate(
        &self,
        ckt: &mut Circuit,
        pad: Node,
        _stim: Option<&PortStimulus>,
    ) -> Result<()> {
        Macromodel::validate(self)?;
        CrModel::instantiate(self, ckt, pad);
        Ok(())
    }
}

impl Macromodel for IbisModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Ibis
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn sample_time(&self) -> Option<f64> {
        // The IBIS tables interpolate in time, so the model runs at any
        // transient step; `dt` is the table resolution, not a clock.
        None
    }

    fn summary(&self) -> String {
        IbisModel::summary(self)
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("vdd".into(), format!("{}", self.vdd)),
            ("c_comp".into(), format!("{:e}", self.c_comp)),
            ("table_dt".into(), format!("{:e}", self.dt)),
            ("table_samples".into(), format!("{}", self.ku_rise.len())),
            ("iv_points".into(), format!("{}", self.pullup.x().len())),
        ])
    }

    fn validate(&self) -> Result<()> {
        IbisModel::validate(self)?;
        Ok(())
    }

    fn instantiate(&self, ckt: &mut Circuit, pad: Node, stim: Option<&PortStimulus>) -> Result<()> {
        IbisModel::validate(self)?;
        let stim = stim.ok_or_else(|| missing_stimulus(&self.name))?;
        self.instantiate_at(ckt, pad, &stim.pattern, stim.bit_time);
        Ok(())
    }
}

/// A named collection of heterogeneous macromodels.
///
/// Backends register under their model name; harnesses iterate without
/// knowing the concrete types. Registering a name twice replaces the
/// earlier entry (latest estimation wins).
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<Box<dyn Macromodel>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a model under [`Macromodel::name`], replacing any earlier
    /// entry with the same name.
    pub fn register(&mut self, model: impl Macromodel + 'static) {
        self.register_boxed(Box::new(model));
    }

    /// Registers an already boxed model.
    pub fn register_boxed(&mut self, model: Box<dyn Macromodel>) {
        self.models.retain(|m| m.name() != model.name());
        self.models.push(model);
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Macromodel> {
        self.models
            .iter()
            .find(|m| m.name() == name)
            .map(|m| m.as_ref())
    }

    /// Iterates over every registered model in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Macromodel> {
        self.models.iter().map(|m| m.as_ref())
    }

    /// Iterates over the models of one kind.
    pub fn of_kind(&self, kind: ModelKind) -> impl Iterator<Item = &dyn Macromodel> {
        self.iter().filter(move |m| m.kind() == kind)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::WeightSequence;
    use numkit::interp::Pwl;
    use sysid::narx::{NarxModel, NarxOrders};
    use sysid::rbf::RbfNetwork;

    fn dummy_driver(name: &str) -> PwRbfDriverModel {
        let narx = || {
            NarxModel::from_network(
                NarxOrders::dynamic(1),
                RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.0]),
            )
            .unwrap()
        };
        PwRbfDriverModel {
            name: name.into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: narx(),
            i_low: narx(),
            up: WeightSequence::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap(),
            down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
        }
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in ModelKind::ALL {
            assert_eq!(ModelKind::from_tag(k.tag()), Some(k));
            assert_eq!(k.to_string(), k.tag());
        }
        assert_eq!(ModelKind::from_tag("nope"), None);
        assert!(ModelKind::PwRbfDriver.is_driver());
        assert!(ModelKind::Ibis.is_driver());
        assert!(!ModelKind::Receiver.is_driver());
        assert!(!ModelKind::CrBaseline.is_driver());
    }

    #[test]
    fn trait_surface_on_driver() {
        let model = dummy_driver("t1");
        let m: &dyn Macromodel = &model;
        assert_eq!(m.kind(), ModelKind::PwRbfDriver);
        assert_eq!(m.name(), "t1");
        assert_eq!(m.sample_time(), Some(25e-12));
        assert!(m.summary().contains("PW-RBF"));
        assert!(m.metadata().contains_key("ts"));
        assert!(m.validate().is_ok());
        // Instantiation without a stimulus is a typed error.
        let mut ckt = Circuit::new();
        let pad = ckt.node("pad");
        assert!(matches!(
            m.instantiate(&mut ckt, pad, None),
            Err(Error::InvalidModel { .. })
        ));
    }

    #[test]
    fn simulate_on_load_drives_fixture() {
        let model = dummy_driver("t2");
        let m: &dyn Macromodel = &model;
        let wave = m
            .simulate_on_load(
                &TestFixture::resistive(100.0),
                Some(&PortStimulus::new("01", 1e-9)),
                25e-12,
                2e-9,
            )
            .unwrap();
        assert!(!wave.values().is_empty());
    }

    #[test]
    fn cr_model_through_trait() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let cr = CrModel::new("crx", 1e-12, iv).unwrap();
        let m: &dyn Macromodel = &cr;
        assert_eq!(m.kind(), ModelKind::CrBaseline);
        assert_eq!(m.sample_time(), None);
        assert!(m.validate().is_ok());
        let wave = m
            .simulate_on_load(
                &TestFixture::series_pulse(50.0, 0.0, 0.5, 0.2e-9, 0.1e-9, 1e-9, 0.1e-9),
                None,
                10e-12,
                2e-9,
            )
            .unwrap();
        // Divider against the 0.1 A/V static resistor: v = 0.5/6 at the top.
        let v_end = wave.sample_at(1.3e-9);
        assert!((v_end - 0.5 / 6.0).abs() < 5e-3, "v_end {v_end}");
    }

    #[test]
    fn registry_named_lookup_and_replacement() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register(dummy_driver("a"));
        reg.register(dummy_driver("b"));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_none());
        assert_eq!(reg.of_kind(ModelKind::PwRbfDriver).count(), 2);
        assert_eq!(reg.of_kind(ModelKind::Receiver).count(), 0);
        // Same name replaces.
        let mut newer = dummy_driver("a");
        newer.vdd = 3.3;
        reg.register(newer);
        assert_eq!(reg.len(), 2);
        let got = reg.get("a").unwrap();
        assert_eq!(got.metadata()["vdd"], "3.3");
    }
}
