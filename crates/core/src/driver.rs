//! The PW-RBF driver model (paper equation 1).
//!
//! ```text
//! i(k) = w_H(k) · i_H(k) + w_L(k) · i_L(k)
//! ```
//!
//! `i_H`/`i_L` are NARX-RBF submodels describing the port current while the
//! driver sits in the High/Low logic state; `w_H`/`w_L` are time-indexed
//! switching weights that blend the submodels during Up (low→high) and Down
//! (high→low) transitions. The weights are *not* assumed complementary —
//! they are estimated independently by inverting equation (1) on waveforms
//! recorded on two different identification loads (see
//! [`estimate_switching_weights`]).

use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use sysid::narx::NarxModel;

/// A time-indexed switching weight pair sampled at the model's `ts`.
///
/// The samples are private: a `WeightSequence` can only be built through
/// [`WeightSequence::new`], so every instance in the program satisfies the
/// invariants the model-exchange loader and the circuit devices rely on —
/// matching lengths, at least one sample, finite values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSequence {
    /// `w_H(k)` samples, starting at the logic edge.
    w_high: Vec<f64>,
    /// `w_L(k)` samples.
    w_low: Vec<f64>,
}

impl WeightSequence {
    /// Builds a weight sequence, enforcing the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when the sequences differ in length,
    /// are empty, or contain non-finite samples.
    pub fn new(w_high: Vec<f64>, w_low: Vec<f64>) -> Result<Self> {
        if w_high.len() != w_low.len() {
            return Err(Error::InvalidModel {
                message: format!(
                    "weight sequences differ in length: {} vs {}",
                    w_high.len(),
                    w_low.len()
                ),
            });
        }
        if w_high.is_empty() {
            return Err(Error::InvalidModel {
                message: "weight sequences must not be empty".into(),
            });
        }
        if w_high.iter().chain(&w_low).any(|w| !w.is_finite()) {
            return Err(Error::InvalidModel {
                message: "weight sequences must be finite".into(),
            });
        }
        Ok(WeightSequence { w_high, w_low })
    }

    /// `w_H(k)` samples, starting at the logic edge.
    pub fn w_high(&self) -> &[f64] {
        &self.w_high
    }

    /// `w_L(k)` samples.
    pub fn w_low(&self) -> &[f64] {
        &self.w_low
    }

    /// Number of samples in the transition window.
    pub fn len(&self) -> usize {
        self.w_high.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.w_high.is_empty()
    }

    /// Weight pair at sample offset `k` past the edge; clamps to the final
    /// value after the window.
    pub fn at(&self, k: usize) -> (f64, f64) {
        if self.w_high.is_empty() {
            return (0.0, 0.0);
        }
        let i = k.min(self.w_high.len() - 1);
        (self.w_high[i], self.w_low[i])
    }

    fn validate(&self) -> Result<()> {
        // The constructor enforces these; re-checked here because model
        // structs are still assembled field-by-field (and may arrive via
        // deserialization once a real serde backend exists).
        if self.w_high.len() != self.w_low.len() {
            return Err(Error::InvalidModel {
                message: format!(
                    "weight sequences differ in length: {} vs {}",
                    self.w_high.len(),
                    self.w_low.len()
                ),
            });
        }
        if self.w_high.is_empty() {
            return Err(Error::InvalidModel {
                message: "weight sequences must not be empty".into(),
            });
        }
        if self
            .w_high
            .iter()
            .chain(&self.w_low)
            .any(|w| !w.is_finite())
        {
            return Err(Error::InvalidModel {
                message: "weight sequences must be finite".into(),
            });
        }
        Ok(())
    }
}

/// A complete estimated PW-RBF driver model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PwRbfDriverModel {
    /// Source device name.
    pub name: String,
    /// Sample time of the discrete-time model (s).
    pub ts: f64,
    /// Supply voltage of the modeled device (V); informational.
    pub vdd: f64,
    /// High-state submodel `i_H` (input: port voltage, output: delivered
    /// current).
    pub i_high: NarxModel,
    /// Low-state submodel `i_L`.
    pub i_low: NarxModel,
    /// Up-transition (low → high) switching weights.
    pub up: WeightSequence,
    /// Down-transition weights.
    pub down: WeightSequence,
}

impl PwRbfDriverModel {
    /// Validates internal consistency (lengths, sample time, orders).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.ts <= 0.0 || !self.ts.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("sample time must be positive, got {}", self.ts),
            });
        }
        if !self.vdd.is_finite() {
            return Err(Error::InvalidModel {
                message: format!("supply voltage must be finite, got {}", self.vdd),
            });
        }
        self.up.validate()?;
        self.down.validate()?;
        Ok(())
    }

    /// Duration of the longer transition window (s).
    pub fn window_duration(&self) -> f64 {
        self.ts * self.up.len().max(self.down.len()) as f64
    }

    /// Total number of Gaussian units across both submodels (model size
    /// metric reported in the paper's examples).
    pub fn total_basis_functions(&self) -> usize {
        self.i_high.network().n_centers() + self.i_low.network().n_centers()
    }

    /// Serializes the model to a JSON-like debug string (for archival); the
    /// canonical serialization is via `serde` (any format).
    pub fn summary(&self) -> String {
        format!(
            "PW-RBF '{}': Ts = {:.3e} s, r = {}, {} + {} basis functions, \
             up window {} samples, down window {} samples",
            self.name,
            self.ts,
            self.i_high.orders().output_lags,
            self.i_high.network().n_centers(),
            self.i_low.network().n_centers(),
            self.up.len(),
            self.down.len()
        )
    }
}

/// Solves the two-load linear inversion of equation (1) for the switching
/// weights.
///
/// Inputs are, per load `a`/`b`, the submodel free-run current sequences
/// `i_h`, `i_l` (obtained by feeding the recorded port voltage into each
/// submodel) and the recorded port current `i_meas`, all aligned to the
/// logic edge and sampled at `ts`. `(start, end)` are the known steady
/// weight pairs before and after the transition, used to anchor endpoints
/// and to regularize samples where the two loads provide (nearly) collinear
/// information.
///
/// # Errors
///
/// Returns [`Error::InvalidModel`] on inconsistent sequence lengths.
pub fn estimate_switching_weights(
    i_h_a: &[f64],
    i_l_a: &[f64],
    i_meas_a: &[f64],
    i_h_b: &[f64],
    i_l_b: &[f64],
    i_meas_b: &[f64],
    (start, end): ((f64, f64), (f64, f64)),
) -> Result<WeightSequence> {
    let n = i_h_a.len();
    if [
        i_l_a.len(),
        i_meas_a.len(),
        i_h_b.len(),
        i_l_b.len(),
        i_meas_b.len(),
    ]
    .iter()
    .any(|&l| l != n)
    {
        return Err(Error::InvalidModel {
            message: "weight-inversion sequences differ in length".into(),
        });
    }
    if n == 0 {
        return Err(Error::InvalidModel {
            message: "weight-inversion sequences are empty".into(),
        });
    }
    let mut w_high = Vec::with_capacity(n);
    let mut w_low = Vec::with_capacity(n);
    let mut prev = start;
    for k in 0..n {
        let (a11, a12, b1) = (i_h_a[k], i_l_a[k], i_meas_a[k]);
        let (a21, a22, b2) = (i_h_b[k], i_l_b[k], i_meas_b[k]);
        let det = a11 * a22 - a12 * a21;
        let scale = a11.abs().max(a12.abs()).max(a21.abs()).max(a22.abs());
        let (wh, wl) = if scale > 0.0 && det.abs() > 1e-4 * scale * scale {
            let wh = (b1 * a22 - a12 * b2) / det;
            let wl = (a11 * b2 - b1 * a21) / det;
            // The physical weights live in [0, 1]; allow modest excursions
            // that the estimation data genuinely asks for.
            (wh.clamp(-0.25, 1.25), wl.clamp(-0.25, 1.25))
        } else {
            prev
        };
        prev = (wh, wl);
        w_high.push(wh);
        w_low.push(wl);
    }
    // Anchor the endpoints at the exact steady logic-state values.
    w_high[0] = start.0;
    w_low[0] = start.1;
    let last = n - 1;
    w_high[last] = end.0;
    w_low[last] = end.1;
    WeightSequence::new(w_high, w_low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysid::narx::NarxOrders;
    use sysid::rbf::RbfNetwork;

    fn dummy_narx() -> NarxModel {
        NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.0]),
        )
        .unwrap()
    }

    fn dummy_model() -> PwRbfDriverModel {
        PwRbfDriverModel {
            name: "test".into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: dummy_narx(),
            i_low: dummy_narx(),
            up: WeightSequence {
                w_high: vec![0.0, 0.5, 1.0],
                w_low: vec![1.0, 0.5, 0.0],
            },
            down: WeightSequence {
                w_high: vec![1.0, 0.5, 0.0],
                w_low: vec![0.0, 0.5, 1.0],
            },
        }
    }

    #[test]
    fn model_validation_and_accessors() {
        let m = dummy_model();
        assert!(m.validate().is_ok());
        assert!((m.window_duration() - 75e-12).abs() < 1e-18);
        assert_eq!(m.total_basis_functions(), 0);
        assert!(m.summary().contains("PW-RBF 'test'"));
        let mut bad = dummy_model();
        bad.ts = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = dummy_model();
        bad.up.w_low.pop();
        assert!(bad.validate().is_err());
        let mut bad = dummy_model();
        bad.down.w_high.clear();
        bad.down.w_low.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_finite_fields() {
        // Regression for the `!(x > 0.0)` class of gap: NaN/Inf sneaking
        // through checks written as range comparisons.
        let mut bad = dummy_model();
        bad.vdd = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = dummy_model();
        bad.vdd = f64::INFINITY;
        assert!(bad.validate().is_err());
        // Field-assembled weight sequences with non-finite samples must be
        // caught by validate even though the constructor also rejects them.
        let mut bad = dummy_model();
        bad.up.w_high[0] = f64::NAN;
        assert!(bad.validate().is_err());
        assert!(WeightSequence::new(vec![f64::INFINITY], vec![0.0]).is_err());
    }

    #[test]
    fn weight_sequence_lookup() {
        let w = WeightSequence {
            w_high: vec![0.0, 0.4, 1.0],
            w_low: vec![1.0, 0.6, 0.0],
        };
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.at(0), (0.0, 1.0));
        assert_eq!(w.at(1), (0.4, 0.6));
        // Past the window: clamps to the final entry.
        assert_eq!(w.at(99), (1.0, 0.0));
    }

    /// Exact recovery: synthesize currents from known weights and invert.
    #[test]
    fn weight_inversion_exact_recovery() {
        let n = 40;
        // Known smooth weight trajectories.
        let wh_true: Vec<f64> = (0..n)
            .map(|k| (k as f64 / (n - 1) as f64).powi(2))
            .collect();
        let wl_true: Vec<f64> = wh_true.iter().map(|w| 1.0 - w).collect();
        // Two independent submodel current patterns per load.
        let i_h_a: Vec<f64> = (0..n)
            .map(|k| 0.02 + 0.01 * (k as f64 * 0.3).sin())
            .collect();
        let i_l_a: Vec<f64> = (0..n)
            .map(|k| -0.015 + 0.004 * (k as f64 * 0.21).cos())
            .collect();
        let i_h_b: Vec<f64> = (0..n)
            .map(|k| 0.03 - 0.008 * (k as f64 * 0.17).cos())
            .collect();
        let i_l_b: Vec<f64> = (0..n)
            .map(|k| -0.02 - 0.006 * (k as f64 * 0.4).sin())
            .collect();
        let meas_a: Vec<f64> = (0..n)
            .map(|k| wh_true[k] * i_h_a[k] + wl_true[k] * i_l_a[k])
            .collect();
        let meas_b: Vec<f64> = (0..n)
            .map(|k| wh_true[k] * i_h_b[k] + wl_true[k] * i_l_b[k])
            .collect();
        let w = estimate_switching_weights(
            &i_h_a,
            &i_l_a,
            &meas_a,
            &i_h_b,
            &i_l_b,
            &meas_b,
            ((0.0, 1.0), (1.0, 0.0)),
        )
        .unwrap();
        for k in 1..n - 1 {
            assert!(
                (w.w_high[k] - wh_true[k]).abs() < 1e-9,
                "k={k}: {} vs {}",
                w.w_high[k],
                wh_true[k]
            );
            assert!((w.w_low[k] - wl_true[k]).abs() < 1e-9);
        }
        // Anchors.
        assert_eq!(w.at(0), (0.0, 1.0));
        assert_eq!(w.at(n - 1), (1.0, 0.0));
    }

    /// Near-singular samples fall back to the previous estimate instead of
    /// blowing up.
    #[test]
    fn weight_inversion_handles_collinear_loads() {
        let n = 10;
        // Both loads see identical submodel currents: the 2x2 system is
        // singular everywhere.
        let i_h = vec![0.01; n];
        let i_l = vec![-0.01; n];
        let meas = vec![0.0; n];
        let w = estimate_switching_weights(
            &i_h,
            &i_l,
            &meas,
            &i_h,
            &i_l,
            &meas,
            ((0.0, 1.0), (1.0, 0.0)),
        )
        .unwrap();
        // Interior samples carry the start values; endpoints anchored.
        assert_eq!(w.at(1), (0.0, 1.0));
        assert_eq!(w.at(n - 1), (1.0, 0.0));
    }

    #[test]
    fn weight_inversion_validations() {
        let e = estimate_switching_weights(
            &[1.0],
            &[1.0, 2.0],
            &[0.0],
            &[1.0],
            &[1.0],
            &[0.0],
            ((0.0, 1.0), (1.0, 0.0)),
        );
        assert!(e.is_err());
        let e = estimate_switching_weights(&[], &[], &[], &[], &[], &[], ((0.0, 1.0), (1.0, 0.0)));
        assert!(e.is_err());
    }
}
