//! `evalrt` — the compiled, allocation-free evaluation runtime.
//!
//! Per-timestep model evaluation is the innermost loop of every transient
//! cell (fixtures, bus ladders, the `mdl serve` simulate path). The
//! estimation-side model structs are built for construction and validation,
//! not stepping: RBF centers live in `Vec<Vec<f64>>`, regressors and
//! gradients allocate per call, and histories are shuffled with
//! `rotate_right`. This module adds a one-time **compile step** per model
//! that flattens everything into contiguous, fixed-capacity structures
//! (see [`sysid::flat`]) plus per-instance lane state, so that `step()` and
//! `commit()` perform **zero allocations** — asserted by a
//! counting-allocator test in `crates/core/tests/zero_alloc_step.rs`.
//!
//! # Layers
//!
//! * [`CompiledDriver`] / [`CompiledReceiver`] / [`CompiledCr`] /
//!   [`CompiledIbis`] — immutable flattened parameters, shareable across
//!   instances (compile once per model, step many lanes);
//! * [`DriverLanes`] / [`ReceiverLanes`] — the mutable lane state: `N`
//!   instances of one compiled model advancing together over the flat
//!   parameter slab. State is **lane-major** (`[history slot][lane]`), so
//!   the batched inner loops run over contiguous memory and
//!   auto-vectorize. A single device is simply `N = 1`;
//! * [`EvalScratch`] — reusable per-instance staging buffers (lane-major
//!   regressor, squared-distance accumulator, per-lane value/gradient
//!   rows), allocated once at construction;
//! * [`compile`] / [`CompiledModel`] — entry point over [`AnyModel`].
//!
//! # Numerical contract
//!
//! Compiled stepping reproduces the estimation-side scalar paths
//! ([`NarxModel::one_step`](sysid::narx::NarxModel::one_step),
//! [`ArxModel::one_step`](sysid::arx::ArxModel::one_step), PWL table
//! lookups) bit-for-bit — every accumulation visits the same terms in the
//! same order, and the Gaussian exponent is formed from the same
//! precomputed reciprocal. `tests/proptest_evalrt.rs` asserts ≤ 1e-15
//! agreement across random models of all four kinds and random lane
//! counts; in practice the agreement is exact.

use std::sync::Arc;

use crate::driver::PwRbfDriverModel;
use crate::exchange::AnyModel;
use crate::macromodel::ModelKind;
use crate::receiver::{CrModel, ReceiverModel};
use numkit::interp::Pwl;
use refdev::IbisModel;
use sysid::flat::{FlatArx, FlatNarx, LaneRing};
use sysid::narx::NarxModel;

/// A scheduled logic edge.
#[derive(Debug, Clone, Copy)]
struct Edge {
    t: f64,
    rising: bool,
}

/// Per-lane logic stimulus: the edge schedule derived from a bit pattern.
///
/// Each lane of a [`DriverLanes`] bank carries its own `LaneStim`, so lanes
/// of one compiled model can drive different patterns (e.g. the rotated
/// patterns of a bus ladder).
#[derive(Debug, Clone)]
pub struct LaneStim {
    edges: Vec<Edge>,
    initial_high: bool,
}

impl LaneStim {
    /// Builds the edge schedule for `pattern` (a `0`/`1` string) with the
    /// given bit time.
    ///
    /// # Panics
    ///
    /// Panics on an empty pattern or a non-`0`/`1` character (experiment
    /// definition error).
    pub fn from_pattern(pattern: &str, bit_time: f64) -> Self {
        let bits: Vec<bool> = pattern
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character '{other}' in pattern"),
            })
            .collect();
        assert!(!bits.is_empty(), "pattern must not be empty");
        let mut edges = Vec::new();
        for k in 1..bits.len() {
            if bits[k] != bits[k - 1] {
                edges.push(Edge {
                    t: k as f64 * bit_time,
                    rising: bits[k],
                });
            }
        }
        LaneStim {
            edges,
            initial_high: bits[0],
        }
    }
}

/// Reusable staging buffers for batched stepping: one lane-major regressor
/// block plus per-lane accumulator rows. Allocated once per lane bank; the
/// hot path only ever writes into it.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    /// Lane-major regressor staging, `dim_max * n_lanes`.
    x: Vec<f64>,
    /// Squared-distance accumulator row, `n_lanes`.
    d2: Vec<f64>,
    /// Per-lane staging rows (submodel values, gradients, weights).
    v0: Vec<f64>,
    g0: Vec<f64>,
    v1: Vec<f64>,
    g1: Vec<f64>,
    w0: Vec<f64>,
    w1: Vec<f64>,
}

impl EvalScratch {
    /// Scratch for `n_lanes` lanes of a model whose largest regressor has
    /// `dim_max` components.
    pub fn new(dim_max: usize, n_lanes: usize) -> Self {
        EvalScratch {
            x: vec![0.0; dim_max.max(1) * n_lanes],
            d2: vec![0.0; n_lanes],
            v0: vec![0.0; n_lanes],
            g0: vec![0.0; n_lanes],
            v1: vec![0.0; n_lanes],
            g1: vec![0.0; n_lanes],
            w0: vec![0.0; n_lanes],
            w1: vec![0.0; n_lanes],
        }
    }
}

/// Settles a NARX submodel's output by fixed-point iteration at a constant
/// input (used to initialize histories from a DC operating point). This is
/// the scalar reference form; [`DriverLanes::init_dc`] uses the equivalent
/// flat iteration.
pub fn settle_narx(model: &NarxModel, v: f64) -> f64 {
    let o = model.orders();
    let u_hist = vec![v; o.input_lags + 1];
    let mut y = 0.0;
    for _ in 0..64 {
        let y_hist = vec![y; o.output_lags.max(1)];
        let y_new = model.one_step(&u_hist, &y_hist);
        if (y_new - y).abs() < 1e-12 {
            return y_new;
        }
        y = y_new;
    }
    y
}

/// Flat fixed-point settle, bit-identical to [`settle_narx`] but writing
/// the regressor into caller scratch (`x.len() >= narx.dim()`).
fn settle_flat(narx: &FlatNarx, v: f64, x: &mut [f64]) -> f64 {
    let dim = narx.dim();
    let x = &mut x[..dim];
    x[..narx.input_lags() + 1].fill(v);
    let mut y = 0.0;
    for _ in 0..64 {
        x[narx.input_lags() + 1..].fill(y);
        let y_new = narx.rbf().eval(x);
        if (y_new - y).abs() < 1e-12 {
            return y_new;
        }
        y = y_new;
    }
    y
}

/// A [`PwRbfDriverModel`] compiled for flat, batched stepping: both NARX
/// submodels as [`FlatNarx`] slabs plus the switching-weight tables.
///
/// Compile once, then open any number of [`DriverLanes`] banks over it.
///
/// ```
/// use std::sync::Arc;
/// use macromodel::driver::{PwRbfDriverModel, WeightSequence};
/// use macromodel::evalrt::{CompiledDriver, DriverLanes, LaneStim};
/// use sysid::narx::{NarxModel, NarxOrders};
/// use sysid::rbf::RbfNetwork;
///
/// // A synthetic driver: i_H = g (vdd - v), i_L = -g v, 4-sample windows.
/// let g = 0.05;
/// let high = NarxModel::from_network(
///     NarxOrders::dynamic(1),
///     RbfNetwork::affine(g * 1.8, vec![-g, 0.0, 0.0]),
/// )
/// .unwrap();
/// let low = NarxModel::from_network(
///     NarxOrders::dynamic(1),
///     RbfNetwork::affine(0.0, vec![-g, 0.0, 0.0]),
/// )
/// .unwrap();
/// let ramp: Vec<f64> = (0..4).map(|k| k as f64 / 3.0).collect();
/// let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
/// let model = PwRbfDriverModel {
///     name: "synth".into(),
///     ts: 25e-12,
///     vdd: 1.8,
///     i_high: high,
///     i_low: low,
///     up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
///     down: WeightSequence::new(inv, ramp).unwrap(),
/// };
///
/// // Compile once, step two lanes together with zero allocation.
/// let compiled = Arc::new(CompiledDriver::compile(&model));
/// let stims = vec![
///     LaneStim::from_pattern("01", 1e-9),
///     LaneStim::from_pattern("10", 1e-9),
/// ];
/// let mut lanes = DriverLanes::new(Arc::clone(&compiled), stims);
/// lanes.init_dc(&[0.0, 1.8]);
/// let (mut i, mut g_out) = ([0.0; 2], [0.0; 2]);
/// lanes.step(0.0, &[0.0, 1.8], &mut i, &mut g_out);
/// lanes.commit(&[0.0, 1.8]);
/// assert!(i.iter().all(|x| x.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledDriver {
    name: String,
    ts: f64,
    vdd: f64,
    high: FlatNarx,
    low: FlatNarx,
    up: WeightTable,
    down: WeightTable,
}

/// A switching-weight window flattened to two parallel rows.
#[derive(Debug, Clone)]
struct WeightTable {
    w_high: Vec<f64>,
    w_low: Vec<f64>,
}

impl WeightTable {
    #[inline]
    fn at(&self, k: usize) -> (f64, f64) {
        let i = k.min(self.w_high.len() - 1);
        (self.w_high[i], self.w_low[i])
    }
}

impl CompiledDriver {
    /// Flattens a validated driver model. One-time cost; the result is
    /// immutable and shared by every lane bank via `Arc`.
    pub fn compile(m: &PwRbfDriverModel) -> Self {
        CompiledDriver {
            name: m.name.clone(),
            ts: m.ts,
            vdd: m.vdd,
            high: FlatNarx::compile(&m.i_high),
            low: FlatNarx::compile(&m.i_low),
            up: WeightTable {
                w_high: m.up.w_high().to_vec(),
                w_low: m.up.w_low().to_vec(),
            },
            down: WeightTable {
                w_high: m.down.w_high().to_vec(),
                w_low: m.down.w_low().to_vec(),
            },
        }
    }

    /// Source model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Model sample time (s).
    pub fn ts(&self) -> f64 {
        self.ts
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Largest submodel regressor dimension.
    fn dim_max(&self) -> usize {
        self.high.dim().max(self.low.dim())
    }

    /// Switching weights of one stimulus at absolute time `t`.
    pub fn weights_at(&self, stim: &LaneStim, t: f64) -> (f64, f64) {
        let mut state_high = stim.initial_high;
        let mut active: Option<(f64, bool)> = None;
        for e in &stim.edges {
            if e.t <= t + 1e-18 {
                state_high = e.rising;
                active = Some((e.t, e.rising));
            } else {
                break;
            }
        }
        if let Some((t0, rising)) = active {
            let k = ((t - t0) / self.ts).round() as usize;
            let seq = if rising { &self.up } else { &self.down };
            if k < seq.w_high.len() {
                return seq.at(k);
            }
        }
        if state_high {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    }
}

/// `N` lanes of one [`CompiledDriver`] advancing together: lane-major
/// voltage/current history rings plus reusable scratch. `step` computes the
/// delivered current and its voltage derivative for every lane in one pass
/// over the flat parameter slab; `commit` advances the histories with the
/// converged voltages. Both are zero-allocation.
#[derive(Debug, Clone)]
pub struct DriverLanes {
    model: Arc<CompiledDriver>,
    stims: Vec<LaneStim>,
    n_lanes: usize,
    v_past: LaneRing,
    ih_past: LaneRing,
    il_past: LaneRing,
    scratch: EvalScratch,
    /// Voltages of the most recent [`DriverLanes::step`], while the
    /// submodel values it computed are still valid in scratch. Newton
    /// accepts the voltages of its own final evaluation, so commit almost
    /// always reuses them instead of re-evaluating both submodels.
    last_v: Vec<f64>,
    last_valid: bool,
}

impl DriverLanes {
    /// Opens a lane bank with one stimulus per lane.
    ///
    /// # Panics
    ///
    /// Panics if `stims` is empty.
    pub fn new(model: Arc<CompiledDriver>, stims: Vec<LaneStim>) -> Self {
        assert!(!stims.is_empty(), "at least one lane required");
        let n = stims.len();
        let lags_v = model.high.input_lags().max(model.low.input_lags());
        DriverLanes {
            n_lanes: n,
            v_past: LaneRing::new(lags_v, n),
            ih_past: LaneRing::new(model.high.output_lags(), n),
            il_past: LaneRing::new(model.low.output_lags(), n),
            scratch: EvalScratch::new(model.dim_max(), n),
            last_v: vec![0.0; n],
            last_valid: false,
            model,
            stims,
        }
    }

    /// Lane count.
    pub fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    /// The shared compiled model.
    pub fn model(&self) -> &Arc<CompiledDriver> {
        &self.model
    }

    /// Switching weights of lane `lane` at absolute time `t`.
    pub fn weights_at(&self, lane: usize, t: f64) -> (f64, f64) {
        self.model.weights_at(&self.stims[lane], t)
    }

    /// Batched Newton evaluation at time `t` and trial voltages `v` (one
    /// per lane): writes the delivered current into `i_out` and its
    /// derivative w.r.t. the lane voltage into `g_out`. Histories are not
    /// modified — call repeatedly within one Newton loop, then
    /// [`DriverLanes::commit`] once converged.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `i_out` or `g_out` are not `n_lanes` long.
    pub fn step(&mut self, t: f64, v: &[f64], i_out: &mut [f64], g_out: &mut [f64]) {
        let DriverLanes {
            model,
            stims,
            n_lanes,
            v_past,
            ih_past,
            il_past,
            scratch: s,
            last_v,
            last_valid,
        } = self;
        let n = *n_lanes;
        assert_eq!(v.len(), n, "voltage lane count mismatch");
        assert_eq!(i_out.len(), n, "current lane count mismatch");
        assert_eq!(g_out.len(), n, "gradient lane count mismatch");
        for (l, stim) in stims.iter().enumerate() {
            let (wh, wl) = model.weights_at(stim, t);
            s.w0[l] = wh;
            s.w1[l] = wl;
        }
        model.high.gather_lanes(v, v_past, ih_past, &mut s.x);
        model
            .high
            .step_lanes(&s.x, n, &mut s.d2, &mut s.v0, &mut s.g0);
        model.low.gather_lanes(v, v_past, il_past, &mut s.x);
        model
            .low
            .step_lanes(&s.x, n, &mut s.d2, &mut s.v1, &mut s.g1);
        for l in 0..n {
            i_out[l] = s.w0[l] * s.v0[l] + s.w1[l] * s.v1[l];
            g_out[l] = s.w0[l] * s.g0[l] + s.w1[l] * s.g1[l];
        }
        last_v.copy_from_slice(v);
        *last_valid = true;
    }

    /// Advances every lane's history with the converged voltages.
    ///
    /// When `v` is exactly the voltages of the preceding
    /// [`DriverLanes::step`] — the common case: Newton's final evaluation
    /// is at the solution it accepts — the submodel values that step
    /// already computed are pushed directly (the fused value equals the
    /// value-only evaluation bit for bit), skipping both re-evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n_lanes`.
    pub fn commit(&mut self, v: &[f64]) {
        let DriverLanes {
            model,
            n_lanes,
            v_past,
            ih_past,
            il_past,
            scratch: s,
            last_v,
            last_valid,
            ..
        } = self;
        let n = *n_lanes;
        assert_eq!(v.len(), n, "voltage lane count mismatch");
        let reuse = *last_valid
            && v.iter()
                .zip(last_v.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !reuse {
            model.high.gather_lanes(v, v_past, ih_past, &mut s.x);
            model.high.rbf().eval_lanes(&s.x, n, &mut s.d2, &mut s.v0);
            model.low.gather_lanes(v, v_past, il_past, &mut s.x);
            model.low.rbf().eval_lanes(&s.x, n, &mut s.d2, &mut s.v1);
        }
        v_past.push_row(v);
        ih_past.push_row(&s.v0);
        il_past.push_row(&s.v1);
        *last_valid = false;
    }

    /// Resets every lane's history to the DC operating point `v0` (one
    /// voltage per lane), settling each submodel to its fixed point.
    ///
    /// # Panics
    ///
    /// Panics if `v0.len() != n_lanes`.
    pub fn init_dc(&mut self, v0: &[f64]) {
        assert_eq!(v0.len(), self.n_lanes, "voltage lane count mismatch");
        self.last_valid = false;
        for (l, &v) in v0.iter().enumerate() {
            self.v_past.fill_lane(l, v);
            let ih = settle_flat(&self.model.high, v, &mut self.scratch.x);
            self.ih_past.fill_lane(l, ih);
            let il = settle_flat(&self.model.low, v, &mut self.scratch.x);
            self.il_past.fill_lane(l, il);
        }
    }
}

/// A [`ReceiverModel`] compiled for flat, batched stepping: the linear ARX
/// part as [`FlatArx`] taps and both protection submodels as [`FlatNarx`]
/// slabs.
///
/// ```
/// use std::sync::Arc;
/// use macromodel::evalrt::{CompiledReceiver, ReceiverLanes};
/// use macromodel::receiver::ReceiverModel;
/// use sysid::arx::{ArxModel, ArxOrders};
/// use sysid::narx::{NarxModel, NarxOrders};
/// use sysid::rbf::RbfNetwork;
///
/// // A capacitor-like receiver: i = C/Ts (v(k) - v(k-1)).
/// let linear = ArxModel::from_coefficients(
///     ArxOrders { na: 0, nb: 1 },
///     vec![],
///     vec![80.0, -80.0],
/// )
/// .unwrap();
/// let zero = NarxModel::from_network(
///     NarxOrders::dynamic(1),
///     RbfNetwork::affine(0.0, vec![0.0, 0.0, 0.0]),
/// )
/// .unwrap();
/// let model = ReceiverModel {
///     name: "rx".into(),
///     ts: 25e-12,
///     vdd: 1.8,
///     linear,
///     up: zero.clone(),
///     down: zero,
/// };
///
/// let compiled = Arc::new(CompiledReceiver::compile(&model));
/// let mut lanes = ReceiverLanes::new(compiled, 3);
/// lanes.init_dc(&[0.0, 0.9, 1.8]);
/// let (mut i, mut g) = ([0.0; 3], [0.0; 3]);
/// lanes.step(&[0.1, 0.9, 1.7], &mut i, &mut g);
/// lanes.commit(&[0.1, 0.9, 1.7]);
/// assert!(i[0] > 0.0 && i[2] < 0.0); // capacitive charge/discharge
/// ```
#[derive(Debug, Clone)]
pub struct CompiledReceiver {
    name: String,
    ts: f64,
    vdd: f64,
    linear: FlatArx,
    up: FlatNarx,
    down: FlatNarx,
    /// `Σ a_i` and `Σ b_j` of the linear part (DC-gain settle).
    lin_a_sum: f64,
    lin_b_sum: f64,
}

impl CompiledReceiver {
    /// Flattens a validated receiver model. One-time cost.
    pub fn compile(m: &ReceiverModel) -> Self {
        CompiledReceiver {
            name: m.name.clone(),
            ts: m.ts,
            vdd: m.vdd,
            linear: FlatArx::compile(&m.linear),
            up: FlatNarx::compile(&m.up),
            down: FlatNarx::compile(&m.down),
            lin_a_sum: m.linear.a().iter().sum(),
            lin_b_sum: m.linear.b().iter().sum(),
        }
    }

    /// Source model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Model sample time (s).
    pub fn ts(&self) -> f64 {
        self.ts
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    fn dim_max(&self) -> usize {
        self.up.dim().max(self.down.dim())
    }
}

/// `N` lanes of one [`CompiledReceiver`]; see [`DriverLanes`] for the
/// step/commit protocol.
#[derive(Debug, Clone)]
pub struct ReceiverLanes {
    model: Arc<CompiledReceiver>,
    n_lanes: usize,
    v_past: LaneRing,
    ilin_past: LaneRing,
    iup_past: LaneRing,
    idn_past: LaneRing,
    scratch: EvalScratch,
    /// See [`DriverLanes`]: step voltages whose submodel values are still
    /// staged in scratch, reusable by a matching commit.
    last_v: Vec<f64>,
    last_valid: bool,
}

impl ReceiverLanes {
    /// Opens a lane bank of `n_lanes` instances.
    ///
    /// # Panics
    ///
    /// Panics if `n_lanes == 0`.
    pub fn new(model: Arc<CompiledReceiver>, n_lanes: usize) -> Self {
        assert!(n_lanes > 0, "at least one lane required");
        let lags_v = model
            .linear
            .nb()
            .max(model.up.input_lags())
            .max(model.down.input_lags());
        ReceiverLanes {
            n_lanes,
            v_past: LaneRing::new(lags_v, n_lanes),
            ilin_past: LaneRing::new(model.linear.na(), n_lanes),
            iup_past: LaneRing::new(model.up.output_lags(), n_lanes),
            idn_past: LaneRing::new(model.down.output_lags(), n_lanes),
            scratch: EvalScratch::new(model.dim_max(), n_lanes),
            last_v: vec![0.0; n_lanes],
            last_valid: false,
            model,
        }
    }

    /// Lane count.
    pub fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    /// The shared compiled model.
    pub fn model(&self) -> &Arc<CompiledReceiver> {
        &self.model
    }

    /// Batched Newton evaluation at trial voltages `v`: total port current
    /// (`i_lin + i_up + i_down`) into `i_out`, its voltage derivative into
    /// `g_out`. Histories are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `i_out` or `g_out` are not `n_lanes` long.
    pub fn step(&mut self, v: &[f64], i_out: &mut [f64], g_out: &mut [f64]) {
        let ReceiverLanes {
            model,
            n_lanes,
            v_past,
            ilin_past,
            iup_past,
            idn_past,
            scratch: s,
            last_v,
            last_valid,
        } = self;
        let n = *n_lanes;
        assert_eq!(v.len(), n, "voltage lane count mismatch");
        assert_eq!(i_out.len(), n, "current lane count mismatch");
        assert_eq!(g_out.len(), n, "gradient lane count mismatch");
        model.linear.step_lanes(v, v_past, ilin_past, &mut s.v0);
        let g_lin = model.linear.feedthrough();
        model.up.gather_lanes(v, v_past, iup_past, &mut s.x);
        model
            .up
            .step_lanes(&s.x, n, &mut s.d2, &mut s.v1, &mut s.g1);
        model.down.gather_lanes(v, v_past, idn_past, &mut s.x);
        model
            .down
            .step_lanes(&s.x, n, &mut s.d2, &mut s.w0, &mut s.w1);
        for l in 0..n {
            i_out[l] = s.v0[l] + s.v1[l] + s.w0[l];
            g_out[l] = g_lin + s.g1[l] + s.w1[l];
        }
        last_v.copy_from_slice(v);
        *last_valid = true;
    }

    /// Advances every lane's history with the converged voltages. As with
    /// [`DriverLanes::commit`], a commit at exactly the voltages of the
    /// preceding [`ReceiverLanes::step`] reuses that step's staged
    /// submodel values instead of re-evaluating.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n_lanes`.
    pub fn commit(&mut self, v: &[f64]) {
        let ReceiverLanes {
            model,
            n_lanes,
            v_past,
            ilin_past,
            iup_past,
            idn_past,
            scratch: s,
            last_v,
            last_valid,
        } = self;
        let n = *n_lanes;
        assert_eq!(v.len(), n, "voltage lane count mismatch");
        let reuse = *last_valid
            && v.iter()
                .zip(last_v.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !reuse {
            model.linear.step_lanes(v, v_past, ilin_past, &mut s.v0);
            model.up.gather_lanes(v, v_past, iup_past, &mut s.x);
            model.up.rbf().eval_lanes(&s.x, n, &mut s.d2, &mut s.v1);
            model.down.gather_lanes(v, v_past, idn_past, &mut s.x);
            model.down.rbf().eval_lanes(&s.x, n, &mut s.d2, &mut s.w0);
        }
        v_past.push_row(v);
        ilin_past.push_row(&s.v0);
        iup_past.push_row(&s.v1);
        idn_past.push_row(&s.w0);
        *last_valid = false;
    }

    /// Resets every lane's history to the DC operating point `v0`: the
    /// linear part settles to its static gain, the protection submodels to
    /// their fixed points.
    ///
    /// # Panics
    ///
    /// Panics if `v0.len() != n_lanes`.
    pub fn init_dc(&mut self, v0: &[f64]) {
        assert_eq!(v0.len(), self.n_lanes, "voltage lane count mismatch");
        self.last_valid = false;
        for (l, &v) in v0.iter().enumerate() {
            self.v_past.fill_lane(l, v);
            let dc_gain = if (1.0 - self.model.lin_a_sum).abs() > 1e-9 {
                self.model.lin_b_sum / (1.0 - self.model.lin_a_sum) * v
            } else {
                0.0
            };
            self.ilin_past.fill_lane(l, dc_gain);
            let up0 = settle_flat(&self.model.up, v, &mut self.scratch.x);
            self.iup_past.fill_lane(l, up0);
            let dn0 = settle_flat(&self.model.down, v, &mut self.scratch.x);
            self.idn_past.fill_lane(l, dn0);
        }
    }
}

/// A [`CrModel`] compiled for batched evaluation. The PWL table is already
/// a flat sorted array ([`numkit::interp::Pwl`]); the capacitor part stamps
/// as a linear element and needs no runtime. Stateless: `step_lanes` is the
/// whole protocol.
#[derive(Debug, Clone)]
pub struct CompiledCr {
    name: String,
    c: f64,
    iv: Pwl,
}

impl CompiledCr {
    /// Flattens the C–R̂ baseline. One-time cost.
    pub fn compile(m: &CrModel) -> Self {
        CompiledCr {
            name: m.name.clone(),
            c: m.c,
            iv: m.static_iv.clone(),
        }
    }

    /// Source model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die capacitance (F).
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Static resistor current and clamped slope for every lane (matches
    /// the `PwlResistor` device stamp).
    ///
    /// # Panics
    ///
    /// Panics on lane-count mismatches.
    pub fn step_lanes(&self, v: &[f64], i_out: &mut [f64], g_out: &mut [f64]) {
        assert_eq!(v.len(), i_out.len(), "current lane count mismatch");
        assert_eq!(v.len(), g_out.len(), "gradient lane count mismatch");
        for (l, &vl) in v.iter().enumerate() {
            i_out[l] = self.iv.eval(vl);
            g_out[l] = self.iv.slope(vl).max(0.0);
        }
    }
}

/// An [`IbisModel`] output stage compiled for batched evaluation: static
/// pullup/pulldown tables (already flat PWL arrays) blended by the
/// switching coefficients. Stateless like [`CompiledCr`].
#[derive(Debug, Clone)]
pub struct CompiledIbis {
    name: String,
    vdd: f64,
    pullup: Pwl,
    pulldown: Pwl,
}

impl CompiledIbis {
    /// Flattens the IBIS baseline's output stage. One-time cost.
    pub fn compile(m: &IbisModel) -> Self {
        CompiledIbis {
            name: m.name.clone(),
            vdd: m.vdd,
            pullup: m.pullup.clone(),
            pulldown: m.pulldown.clone(),
        }
    }

    /// Source model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Delivered current and slope at port voltage `v` with switching
    /// coefficients `(ku, kd)` — the `IbisDriver` stamp expression.
    #[inline]
    pub fn output(&self, v: f64, ku: f64, kd: f64) -> (f64, f64) {
        let i = ku * self.pullup.eval(v) + kd * self.pulldown.eval(v);
        let g = ku * self.pullup.slope(v) + kd * self.pulldown.slope(v);
        (i, g)
    }

    /// Batched [`CompiledIbis::output`] over parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics on lane-count mismatches.
    pub fn step_lanes(
        &self,
        v: &[f64],
        ku: &[f64],
        kd: &[f64],
        i_out: &mut [f64],
        g_out: &mut [f64],
    ) {
        assert!(
            v.len() == ku.len() && v.len() == kd.len(),
            "coefficient lane count mismatch"
        );
        assert!(
            v.len() == i_out.len() && v.len() == g_out.len(),
            "output lane count mismatch"
        );
        for l in 0..v.len() {
            let (i, g) = self.output(v[l], ku[l], kd[l]);
            i_out[l] = i;
            g_out[l] = g;
        }
    }
}

/// A compiled model of any kind; produced by [`compile`].
#[derive(Debug, Clone)]
pub enum CompiledModel {
    /// Compiled PW-RBF driver.
    PwRbfDriver(CompiledDriver),
    /// Compiled receiver parametric model.
    Receiver(CompiledReceiver),
    /// Compiled C–R̂ baseline.
    Cr(CompiledCr),
    /// Compiled IBIS output stage.
    Ibis(CompiledIbis),
}

impl CompiledModel {
    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        match self {
            CompiledModel::PwRbfDriver(_) => ModelKind::PwRbfDriver,
            CompiledModel::Receiver(_) => ModelKind::Receiver,
            CompiledModel::Cr(_) => ModelKind::CrBaseline,
            CompiledModel::Ibis(_) => ModelKind::Ibis,
        }
    }

    /// Source model name.
    pub fn name(&self) -> &str {
        match self {
            CompiledModel::PwRbfDriver(m) => m.name(),
            CompiledModel::Receiver(m) => m.name(),
            CompiledModel::Cr(m) => m.name(),
            CompiledModel::Ibis(m) => m.name(),
        }
    }
}

/// Compiles any exchangeable model into its flat runtime form.
///
/// ```
/// use macromodel::evalrt::{compile, CompiledModel};
/// use macromodel::exchange::AnyModel;
/// use macromodel::receiver::CrModel;
/// use numkit::interp::Pwl;
///
/// let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
/// let model = AnyModel::Cr(CrModel::new("cr", 1e-12, iv).unwrap());
/// let compiled = compile(&model);
/// assert!(matches!(compiled, CompiledModel::Cr(_)));
/// assert_eq!(compiled.name(), "cr");
/// ```
pub fn compile(model: &AnyModel) -> CompiledModel {
    match model {
        AnyModel::PwRbfDriver(m) => CompiledModel::PwRbfDriver(CompiledDriver::compile(m)),
        AnyModel::Receiver(m) => CompiledModel::Receiver(CompiledReceiver::compile(m)),
        AnyModel::Cr(m) => CompiledModel::Cr(CompiledCr::compile(m)),
        AnyModel::Ibis(m) => CompiledModel::Ibis(CompiledIbis::compile(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::WeightSequence;
    use sysid::arx::{ArxModel, ArxOrders};
    use sysid::narx::NarxOrders;
    use sysid::rbf::RbfNetwork;

    fn nonlinear_narx(seed: f64) -> NarxModel {
        let net = RbfNetwork::from_parts(
            3,
            vec![
                vec![0.2 + seed, -0.1, 0.5],
                vec![-0.6, 0.9, 0.1 - seed],
                vec![1.1, 0.4, -0.3],
            ],
            vec![0.8, 1.1, 0.6],
            vec![0.02, -0.015, 0.01],
            0.001 * seed,
            vec![-0.04, 0.005, 0.3],
        )
        .unwrap();
        NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap()
    }

    fn test_driver() -> PwRbfDriverModel {
        let ramp: Vec<f64> = (0..8).map(|k| k as f64 / 7.0).collect();
        let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
        PwRbfDriverModel {
            name: "d".into(),
            ts: 25e-12,
            vdd: 1.8,
            i_high: nonlinear_narx(0.1),
            i_low: nonlinear_narx(-0.2),
            up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
            down: WeightSequence::new(inv, ramp).unwrap(),
        }
    }

    /// Reference single-lane driver stepper built directly on the scalar
    /// model paths (mirrors the pre-compile device implementation).
    struct ScalarDriverRef {
        model: PwRbfDriverModel,
        v_past: Vec<f64>,
        ih_past: Vec<f64>,
        il_past: Vec<f64>,
    }

    impl ScalarDriverRef {
        fn new(model: PwRbfDriverModel, v0: f64) -> Self {
            let lags_v = model
                .i_high
                .orders()
                .input_lags
                .max(model.i_low.orders().input_lags);
            let ih0 = settle_narx(&model.i_high, v0);
            let il0 = settle_narx(&model.i_low, v0);
            ScalarDriverRef {
                v_past: vec![v0; lags_v],
                ih_past: vec![ih0; model.i_high.orders().output_lags.max(1)],
                il_past: vec![il0; model.i_low.orders().output_lags.max(1)],
                model,
            }
        }

        fn u_hist(&self, v_now: f64, lags: usize) -> Vec<f64> {
            let mut u = Vec::with_capacity(lags + 1);
            u.push(v_now);
            u.extend_from_slice(&self.v_past[..lags]);
            u
        }

        fn step(&self, wh: f64, wl: f64, v: f64) -> (f64, f64) {
            let (ih, gh) = self.model.i_high.one_step_with_gradient(
                &self.u_hist(v, self.model.i_high.orders().input_lags),
                &self.ih_past,
            );
            let (il, gl) = self.model.i_low.one_step_with_gradient(
                &self.u_hist(v, self.model.i_low.orders().input_lags),
                &self.il_past,
            );
            (wh * ih + wl * il, wh * gh + wl * gl)
        }

        fn commit(&mut self, v: f64) {
            let ih = self.model.i_high.one_step(
                &self.u_hist(v, self.model.i_high.orders().input_lags),
                &self.ih_past,
            );
            let il = self.model.i_low.one_step(
                &self.u_hist(v, self.model.i_low.orders().input_lags),
                &self.il_past,
            );
            self.v_past.rotate_right(1);
            if !self.v_past.is_empty() {
                self.v_past[0] = v;
            }
            self.ih_past.rotate_right(1);
            self.ih_past[0] = ih;
            self.il_past.rotate_right(1);
            self.il_past[0] = il;
        }
    }

    #[test]
    fn driver_lanes_match_scalar_reference_bitwise() {
        let model = test_driver();
        let compiled = Arc::new(CompiledDriver::compile(&model));
        let stims = vec![
            LaneStim::from_pattern("0110", 1e-9),
            LaneStim::from_pattern("1010", 1e-9),
            LaneStim::from_pattern("0011", 1e-9),
        ];
        let v0 = [0.0, 1.8, 0.4];
        let mut lanes = DriverLanes::new(Arc::clone(&compiled), stims.clone());
        lanes.init_dc(&v0);
        let mut refs: Vec<ScalarDriverRef> = v0
            .iter()
            .map(|&v| ScalarDriverRef::new(model.clone(), v))
            .collect();
        let ts = model.ts;
        let mut v = v0;
        let (mut i, mut g) = ([0.0; 3], [0.0; 3]);
        for k in 0..200 {
            let t = k as f64 * ts;
            // A deterministic pseudo-waveform per lane.
            for (l, vl) in v.iter_mut().enumerate() {
                *vl = 0.9 + 0.9 * ((0.13 * k as f64) + l as f64).sin();
            }
            lanes.step(t, &v, &mut i, &mut g);
            for (l, r) in refs.iter().enumerate() {
                let (wh, wl) = compiled.weights_at(&stims[l], t);
                let (ri, rg) = r.step(wh, wl, v[l]);
                assert_eq!(i[l].to_bits(), ri.to_bits(), "i lane {l} step {k}");
                assert_eq!(g[l].to_bits(), rg.to_bits(), "g lane {l} step {k}");
            }
            lanes.commit(&v);
            for (l, r) in refs.iter_mut().enumerate() {
                r.commit(v[l]);
            }
        }
    }

    /// Reference single-lane receiver stepper built directly on the scalar
    /// model paths (mirrors the pre-compile device implementation).
    struct ScalarReceiverRef {
        model: ReceiverModel,
        v_past: Vec<f64>,
        ilin_past: Vec<f64>,
        iup_past: Vec<f64>,
        idn_past: Vec<f64>,
    }

    impl ScalarReceiverRef {
        fn new(model: ReceiverModel, v0: f64) -> Self {
            let lags_v = model
                .linear
                .orders()
                .nb
                .max(model.up.orders().input_lags)
                .max(model.down.orders().input_lags);
            let sa: f64 = model.linear.a().iter().sum();
            let sb: f64 = model.linear.b().iter().sum();
            let dc_gain = if (1.0 - sa).abs() > 1e-9 {
                sb / (1.0 - sa) * v0
            } else {
                0.0
            };
            let up0 = settle_narx(&model.up, v0);
            let dn0 = settle_narx(&model.down, v0);
            ScalarReceiverRef {
                v_past: vec![v0; lags_v.max(1)],
                ilin_past: vec![dc_gain; model.linear.orders().na.max(1)],
                iup_past: vec![up0; model.up.orders().output_lags.max(1)],
                idn_past: vec![dn0; model.down.orders().output_lags.max(1)],
                model,
            }
        }

        fn parts(&self, v: f64) -> (f64, f64, f64, f64, f64, f64) {
            let mut u_lin = vec![v];
            u_lin.extend_from_slice(&self.v_past[..self.model.linear.orders().nb]);
            let i_lin = self.model.linear.one_step(&u_lin, &self.ilin_past);
            let g_lin = self.model.linear.feedthrough();
            let mut u_up = vec![v];
            u_up.extend_from_slice(&self.v_past[..self.model.up.orders().input_lags]);
            let (i_up, g_up) = self.model.up.one_step_with_gradient(&u_up, &self.iup_past);
            let mut u_dn = vec![v];
            u_dn.extend_from_slice(&self.v_past[..self.model.down.orders().input_lags]);
            let (i_dn, g_dn) = self
                .model
                .down
                .one_step_with_gradient(&u_dn, &self.idn_past);
            (i_lin, g_lin, i_up, g_up, i_dn, g_dn)
        }

        fn step(&self, v: f64) -> (f64, f64) {
            let (i_lin, g_lin, i_up, g_up, i_dn, g_dn) = self.parts(v);
            (i_lin + i_up + i_dn, g_lin + g_up + g_dn)
        }

        fn commit(&mut self, v: f64) {
            let (i_lin, _, i_up, _, i_dn, _) = self.parts(v);
            self.v_past.rotate_right(1);
            self.v_past[0] = v;
            self.ilin_past.rotate_right(1);
            self.ilin_past[0] = i_lin;
            self.iup_past.rotate_right(1);
            self.iup_past[0] = i_up;
            self.idn_past.rotate_right(1);
            self.idn_past[0] = i_dn;
        }
    }

    #[test]
    fn receiver_lanes_match_scalar_reference_bitwise() {
        let linear =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 1 }, vec![0.35], vec![0.08, -0.06])
                .unwrap();
        let model = ReceiverModel {
            name: "rx".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear,
            up: nonlinear_narx(0.05),
            down: nonlinear_narx(-0.15),
        };
        let compiled = Arc::new(CompiledReceiver::compile(&model));
        let v0 = [0.0, 1.2];
        let mut lanes = ReceiverLanes::new(compiled, 2);
        lanes.init_dc(&v0);
        let mut refs: Vec<ScalarReceiverRef> = v0
            .iter()
            .map(|&v| ScalarReceiverRef::new(model.clone(), v))
            .collect();
        let (mut i, mut g) = ([0.0; 2], [0.0; 2]);
        for k in 0..150 {
            let v = [
                0.9 + 0.9 * (0.21 * k as f64).sin(),
                0.9 - 0.9 * (0.17 * k as f64).cos(),
            ];
            lanes.step(&v, &mut i, &mut g);
            for (l, r) in refs.iter().enumerate() {
                let (ri, rg) = r.step(v[l]);
                assert_eq!(i[l].to_bits(), ri.to_bits(), "i lane {l} step {k}");
                assert_eq!(g[l].to_bits(), rg.to_bits(), "g lane {l} step {k}");
            }
            lanes.commit(&v);
            for (l, r) in refs.iter_mut().enumerate() {
                r.commit(v[l]);
            }
        }
    }

    #[test]
    fn weights_at_matches_schedule() {
        let model = test_driver();
        let compiled = CompiledDriver::compile(&model);
        let stim = LaneStim::from_pattern("010", 1e-9);
        assert_eq!(compiled.weights_at(&stim, 0.5e-9), (0.0, 1.0));
        let (wh, wl) = compiled.weights_at(&stim, 1e-9 + 3.0 * model.ts);
        assert!(wh > 0.0 && wh < 1.0 && wl > 0.0 && wl < 1.0);
        assert_eq!(compiled.weights_at(&stim, 1.9e-9), (1.0, 0.0));
        assert_eq!(compiled.weights_at(&stim, 5e-9), (0.0, 1.0));
    }

    #[test]
    fn compile_dispatches_all_kinds() {
        let drv = AnyModel::PwRbfDriver(test_driver());
        assert_eq!(compile(&drv).kind(), ModelKind::PwRbfDriver);
        assert_eq!(compile(&drv).name(), "d");
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let cr = AnyModel::Cr(CrModel::new("cr", 1e-12, iv).unwrap());
        let compiled = compile(&cr);
        assert_eq!(compiled.kind(), ModelKind::CrBaseline);
        if let CompiledModel::Cr(c) = &compiled {
            assert_eq!(c.c(), 1e-12);
            let (mut i, mut g) = ([0.0; 2], [0.0; 2]);
            c.step_lanes(&[0.5, -0.5], &mut i, &mut g);
            assert!((i[0] - 0.05).abs() < 1e-15);
            assert!((i[1] + 0.05).abs() < 1e-15);
            assert!(g.iter().all(|&x| x >= 0.0));
        } else {
            panic!("expected CR");
        }
    }
}
