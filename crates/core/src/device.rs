//! Circuit-simulator devices wrapping the estimated macromodels.
//!
//! This is the paper's "implementation in a circuit simulation environment"
//! step. The discrete-time models advance on their own sample clock `Ts`;
//! the hosting transient analysis must run with `dt = Ts` (the paper's
//! models are estimated and exercised at the same fixed sampling time).
//! Within each step the present port voltage participates in the Newton
//! iteration through the analytic RBF input gradient.

use crate::driver::PwRbfDriverModel;
use crate::receiver::{CrModel, ReceiverModel};
use circuit::devices::Capacitor;
use circuit::mna::{register_conductance, stamp_linearized_current, EvalCtx, Mode};
use circuit::{Circuit, Device, Node, PatternBuilder, StampWorkspace, GROUND};
use numkit::interp::Pwl;
use sysid::narx::NarxModel;

/// Relative tolerance on `dt == Ts`.
const TS_TOL: f64 = 1e-6;

fn check_sample_clock(label: &str, ts: f64, mode: Mode) {
    if let Mode::Tran { dt, .. } = mode {
        assert!(
            ((dt - ts) / ts).abs() < TS_TOL,
            "device '{label}': transient dt = {dt:.3e} must equal the model sample time Ts = {ts:.3e}"
        );
    }
}

/// Settles a NARX submodel's output by fixed-point iteration at a constant
/// input (used to initialize histories from a DC operating point).
fn settle_narx(model: &NarxModel, v: f64) -> f64 {
    let o = model.orders();
    let u_hist = vec![v; o.input_lags + 1];
    let mut y = 0.0;
    for _ in 0..64 {
        let y_hist = vec![y; o.output_lags.max(1)];
        let y_new = model.one_step(&u_hist, &y_hist);
        if (y_new - y).abs() < 1e-12 {
            return y_new;
        }
        y = y_new;
    }
    y
}

/// Crate-internal alias used by the estimation pipeline to initialize
/// submodel free runs from a settled state.
pub(crate) fn settle_for_pipeline(model: &NarxModel, v: f64) -> f64 {
    settle_narx(model, v)
}

/// A scheduled logic edge.
#[derive(Debug, Clone, Copy)]
struct Edge {
    t: f64,
    rising: bool,
}

fn schedule_from_pattern(pattern: &str, bit_time: f64) -> (Vec<Edge>, bool) {
    let bits: Vec<bool> = pattern
        .chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid bit character '{other}' in pattern"),
        })
        .collect();
    assert!(!bits.is_empty(), "pattern must not be empty");
    let mut edges = Vec::new();
    for k in 1..bits.len() {
        if bits[k] != bits[k - 1] {
            edges.push(Edge {
                t: k as f64 * bit_time,
                rising: bits[k],
            });
        }
    }
    (edges, bits[0])
}

/// The PW-RBF driver installed as a one-port behavioral element.
///
/// The device delivers `i(k) = w_H(k) i_H(k) + w_L(k) i_L(k)` into `out`,
/// where both submodels free-run on the (shared) port-voltage history and
/// their own current histories.
///
/// # Panics
///
/// `stamp` panics if the transient step differs from the model sample time
/// (see the module documentation).
#[derive(Debug, Clone)]
pub struct PwRbfDriver {
    label: String,
    model: PwRbfDriverModel,
    out: Node,
    edges: Vec<Edge>,
    initial_high: bool,
    /// Past port voltages, newest first (`v(k-1), v(k-2), ...`).
    v_past: Vec<f64>,
    /// Past high-submodel currents, newest first.
    ih_past: Vec<f64>,
    /// Past low-submodel currents, newest first.
    il_past: Vec<f64>,
}

impl PwRbfDriver {
    /// Creates a driver producing `pattern` with the given bit time.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-`0`/`1` pattern (experiment definition
    /// error) or an invalid model.
    pub fn new(model: PwRbfDriverModel, out: Node, pattern: &str, bit_time: f64) -> Self {
        model.validate().expect("invalid PW-RBF model");
        let (edges, initial_high) = schedule_from_pattern(pattern, bit_time);
        let lags_v = model
            .i_high
            .orders()
            .input_lags
            .max(model.i_low.orders().input_lags);
        let lags_ih = model.i_high.orders().output_lags.max(1);
        let lags_il = model.i_low.orders().output_lags.max(1);
        PwRbfDriver {
            label: format!("{}_pwrbf", model.name),
            model,
            out,
            edges,
            initial_high,
            v_past: vec![0.0; lags_v],
            ih_past: vec![0.0; lags_ih],
            il_past: vec![0.0; lags_il],
        }
    }

    /// Switching weights at absolute time `t`.
    fn weights_at(&self, t: f64) -> (f64, f64) {
        let mut state_high = self.initial_high;
        let mut active: Option<(f64, bool)> = None;
        for e in &self.edges {
            if e.t <= t + 1e-18 {
                state_high = e.rising;
                active = Some((e.t, e.rising));
            } else {
                break;
            }
        }
        if let Some((t0, rising)) = active {
            let k = ((t - t0) / self.model.ts).round() as usize;
            let seq = if rising {
                &self.model.up
            } else {
                &self.model.down
            };
            if k < seq.len() {
                return seq.at(k);
            }
        }
        if state_high {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    }

    fn u_hist(&self, v_now: f64, lags: usize) -> Vec<f64> {
        let mut u = Vec::with_capacity(lags + 1);
        u.push(v_now);
        u.extend_from_slice(&self.v_past[..lags]);
        u
    }
}

impl Device for PwRbfDriver {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.out, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        check_sample_clock(&self.label, self.model.ts, ctx.mode);
        let v = ctx.v(self.out);
        let (wh, wl) = self.weights_at(ctx.mode.time());
        let (ih, gh) = self.model.i_high.one_step_with_gradient(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let (il, gl) = self.model.i_low.one_step_with_gradient(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        let i_del = wh * ih + wl * il;
        let g_del = wh * gh + wl * gl;
        // The device injects i_del into the node.
        stamp_linearized_current(ws, self.out, GROUND, -i_del, -g_del, v);
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let v0 = ctx.v(self.out);
        for v in &mut self.v_past {
            *v = v0;
        }
        let ih0 = settle_narx(&self.model.i_high, v0);
        for i in &mut self.ih_past {
            *i = ih0;
        }
        let il0 = settle_narx(&self.model.i_low, v0);
        for i in &mut self.il_past {
            *i = il0;
        }
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if !ctx.mode.is_tran() {
            return;
        }
        let v = ctx.v(self.out);
        let ih = self.model.i_high.one_step(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let il = self.model.i_low.one_step(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        self.v_past.rotate_right(1);
        if !self.v_past.is_empty() {
            self.v_past[0] = v;
        }
        self.ih_past.rotate_right(1);
        self.ih_past[0] = ih;
        self.il_past.rotate_right(1);
        self.il_past[0] = il;
    }
}

/// The receiver parametric model installed as a one-port load.
///
/// # Panics
///
/// `stamp` panics if the transient step differs from the model sample time.
#[derive(Debug, Clone)]
pub struct ReceiverModelDevice {
    label: String,
    model: ReceiverModel,
    pad: Node,
    v_past: Vec<f64>,
    ilin_past: Vec<f64>,
    iup_past: Vec<f64>,
    idn_past: Vec<f64>,
}

impl ReceiverModelDevice {
    /// Creates the device at `pad`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid model.
    pub fn new(model: ReceiverModel, pad: Node) -> Self {
        model.validate().expect("invalid receiver model");
        let lags_v = model
            .linear
            .orders()
            .nb
            .max(model.up.orders().input_lags)
            .max(model.down.orders().input_lags);
        ReceiverModelDevice {
            label: format!("{}_rxmodel", model.name),
            pad,
            v_past: vec![0.0; lags_v.max(1)],
            ilin_past: vec![0.0; model.linear.orders().na.max(1)],
            iup_past: vec![0.0; model.up.orders().output_lags.max(1)],
            idn_past: vec![0.0; model.down.orders().output_lags.max(1)],
            model,
        }
    }

    fn parts(&self, v: f64) -> (f64, f64) {
        // Linear ARX part: direct feed-through is its derivative w.r.t. v(k).
        let mut u_lin = Vec::with_capacity(self.model.linear.orders().nb + 1);
        u_lin.push(v);
        u_lin.extend_from_slice(&self.v_past[..self.model.linear.orders().nb]);
        let i_lin = self.model.linear.one_step(&u_lin, &self.ilin_past);
        let g_lin = self.model.linear.feedthrough();

        let mut u_up = Vec::with_capacity(self.model.up.orders().input_lags + 1);
        u_up.push(v);
        u_up.extend_from_slice(&self.v_past[..self.model.up.orders().input_lags]);
        let (i_up, g_up) = self.model.up.one_step_with_gradient(&u_up, &self.iup_past);

        let mut u_dn = Vec::with_capacity(self.model.down.orders().input_lags + 1);
        u_dn.push(v);
        u_dn.extend_from_slice(&self.v_past[..self.model.down.orders().input_lags]);
        let (i_dn, g_dn) = self
            .model
            .down
            .one_step_with_gradient(&u_dn, &self.idn_past);

        (i_lin + i_up + i_dn, g_lin + g_up + g_dn)
    }
}

impl Device for ReceiverModelDevice {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.pad, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        check_sample_clock(&self.label, self.model.ts, ctx.mode);
        let v = ctx.v(self.pad);
        let (i_in, g) = self.parts(v);
        // i_in flows from the pad into the device (to ground).
        stamp_linearized_current(ws, self.pad, GROUND, i_in, g, v);
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let v0 = ctx.v(self.pad);
        for v in &mut self.v_past {
            *v = v0;
        }
        // The linear part settles to its static gain; protection submodels
        // to their fixed points.
        let dc_gain = {
            // i = sum(a) i + sum(b) v at steady state.
            let sa: f64 = self.model.linear.a().iter().sum();
            let sb: f64 = self.model.linear.b().iter().sum();
            if (1.0 - sa).abs() > 1e-9 {
                sb / (1.0 - sa) * v0
            } else {
                0.0
            }
        };
        for i in &mut self.ilin_past {
            *i = dc_gain;
        }
        let up0 = settle_narx(&self.model.up, v0);
        for i in &mut self.iup_past {
            *i = up0;
        }
        let dn0 = settle_narx(&self.model.down, v0);
        for i in &mut self.idn_past {
            *i = dn0;
        }
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if !ctx.mode.is_tran() {
            return;
        }
        let v = ctx.v(self.pad);
        // Advance each submodel with the converged voltage.
        let mut u_lin = Vec::with_capacity(self.model.linear.orders().nb + 1);
        u_lin.push(v);
        u_lin.extend_from_slice(&self.v_past[..self.model.linear.orders().nb]);
        let i_lin = self.model.linear.one_step(&u_lin, &self.ilin_past);

        let mut u_up = Vec::with_capacity(self.model.up.orders().input_lags + 1);
        u_up.push(v);
        u_up.extend_from_slice(&self.v_past[..self.model.up.orders().input_lags]);
        let i_up = self.model.up.one_step(&u_up, &self.iup_past);

        let mut u_dn = Vec::with_capacity(self.model.down.orders().input_lags + 1);
        u_dn.push(v);
        u_dn.extend_from_slice(&self.v_past[..self.model.down.orders().input_lags]);
        let i_dn = self.model.down.one_step(&u_dn, &self.idn_past);

        self.v_past.rotate_right(1);
        self.v_past[0] = v;
        self.ilin_past.rotate_right(1);
        self.ilin_past[0] = i_lin;
        self.iup_past.rotate_right(1);
        self.iup_past[0] = i_up;
        self.idn_past.rotate_right(1);
        self.idn_past[0] = i_dn;
    }
}

/// A static nonlinear resistor defined by a PWL I–V table (current into the
/// device versus port voltage). Together with a [`Capacitor`] this realizes
/// the paper's C–R̂ baseline receiver.
#[derive(Debug, Clone)]
pub struct PwlResistor {
    label: String,
    a: Node,
    iv: Pwl,
}

impl PwlResistor {
    /// Creates the resistor between `a` and ground.
    pub fn new(label: impl Into<String>, a: Node, iv: Pwl) -> Self {
        PwlResistor {
            label: label.into(),
            a,
            iv,
        }
    }
}

impl Device for PwlResistor {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.a, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let v = ctx.v(self.a);
        let i = self.iv.eval(v);
        let g = self.iv.slope(v).max(0.0);
        stamp_linearized_current(ws, self.a, GROUND, i, g, v);
    }
}

impl CrModel {
    /// Installs the C–R̂ model at `pad`: a shunt capacitor plus the static
    /// PWL resistor.
    pub fn instantiate(&self, ckt: &mut Circuit, pad: Node) {
        ckt.add(Capacitor::new(
            format!("{}_c", self.name),
            pad,
            GROUND,
            self.c,
        ));
        ckt.add(PwlResistor::new(
            format!("{}_rhat", self.name),
            pad,
            self.static_iv.clone(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::WeightSequence;
    use circuit::devices::{Resistor, SourceWaveform, VoltageSource};
    use circuit::TranParams;
    use sysid::arx::{ArxModel, ArxOrders};
    use sysid::narx::NarxOrders;
    use sysid::rbf::RbfNetwork;

    /// A synthetic PW-RBF model with affine submodels mimicking ideal
    /// switched conductances:
    ///   i_H(v) = g (vdd - v)   (sources current when below vdd)
    ///   i_L(v) = -g v          (sinks current when above 0)
    fn synthetic_model(g: f64, vdd: f64, n_win: usize) -> PwRbfDriverModel {
        // dim = input_lags + 1 + output_lags = 3 for r = 1.
        let high = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(g * vdd, vec![-g, 0.0, 0.0]),
        )
        .unwrap();
        let low = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![-g, 0.0, 0.0]),
        )
        .unwrap();
        let ramp: Vec<f64> = (0..n_win).map(|k| k as f64 / (n_win - 1) as f64).collect();
        let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
        PwRbfDriverModel {
            name: "synth".into(),
            ts: 25e-12,
            vdd,
            i_high: high,
            i_low: low,
            up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
            down: WeightSequence::new(inv, ramp).unwrap(),
        }
    }

    #[test]
    fn synthetic_driver_drives_resistive_load() {
        let vdd = 1.8;
        let g = 0.05; // 20 Ω output impedance
        let model = synthetic_model(g, vdd, 20);
        let ts = model.ts;
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add(PwRbfDriver::new(model, out, "01", 2e-9));
        ckt.add(Resistor::new("rl", out, GROUND, 100.0));
        let res = ckt.transient(TranParams::new(ts, 6e-9)).unwrap();
        let v = res.voltage(out);
        // Low state: 0 V; high state: divider vdd * R/(R + 1/g).
        assert!(v.sample_at(1.5e-9).abs() < 1e-3);
        let expect = vdd * 100.0 / (100.0 + 1.0 / g);
        let v_end = v.sample_at(5.9e-9);
        assert!(
            (v_end - expect).abs() < 0.02,
            "v_end {v_end} vs divider {expect}"
        );
        // The transition is spread over the 20-sample weight window.
        let t10 = v.threshold_crossings(0.1 * expect);
        let t90 = v.threshold_crossings(0.9 * expect);
        assert!(!t10.is_empty() && !t90.is_empty());
        let rise = t90[0].time - t10[0].time;
        assert!(rise > 3.0 * ts && rise < 25.0 * ts, "rise {rise:.3e}");
    }

    #[test]
    fn driver_weights_schedule() {
        let model = synthetic_model(0.05, 1.8, 10);
        let ts = model.ts;
        let d = PwRbfDriver::new(model, Node::from_raw(1), "010", 1e-9);
        assert_eq!(d.weights_at(0.5e-9), (0.0, 1.0));
        // During the up window at 1 ns.
        let (wh, wl) = d.weights_at(1e-9 + 5.0 * ts);
        assert!(wh > 0.0 && wh < 1.0 && wl > 0.0 && wl < 1.0);
        // Steady high after the window but before the down edge.
        assert_eq!(d.weights_at(1.9e-9), (1.0, 0.0));
        // Steady low long after the down edge.
        assert_eq!(d.weights_at(5e-9), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "must equal the model sample time")]
    fn driver_rejects_wrong_dt() {
        let model = synthetic_model(0.05, 1.8, 10);
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add(PwRbfDriver::new(model, out, "01", 1e-9));
        ckt.add(Resistor::new("rl", out, GROUND, 100.0));
        // dt != ts: must panic inside stamp.
        let _ = ckt.transient(TranParams::new(10e-12, 2e-9));
    }

    fn synthetic_receiver(c_over_ts: f64) -> ReceiverModel {
        // i_lin = C/ts (v(k) - v(k-1)): ARX with na = 0, nb = 1.
        let linear = ArxModel::from_coefficients(
            ArxOrders { na: 0, nb: 1 },
            vec![],
            vec![c_over_ts, -c_over_ts],
        )
        .unwrap();
        let zero = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.0, 0.0, 0.0]),
        )
        .unwrap();
        ReceiverModel {
            name: "rx_synth".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear,
            up: zero.clone(),
            down: zero,
        }
    }

    #[test]
    fn receiver_device_behaves_capacitively() {
        let ts = 25e-12;
        let c = 2e-12;
        let model = synthetic_receiver(c / ts);
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let pad = ckt.node("pad");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 0.5e-9),
        ));
        ckt.add(Resistor::new("rs", src, pad, 50.0));
        ckt.add(ReceiverModelDevice::new(model, pad));
        let res = ckt.transient(TranParams::new(ts, 3e-9)).unwrap();
        let v = res.voltage(pad);
        // The pad follows the source with an RC lag; final value ~1 V.
        let v_end = v.sample_at(2.9e-9);
        assert!((v_end - 1.0).abs() < 0.02, "v_end {v_end}");
        // During the ramp the pad lags the source (capacitive loading).
        let v_mid = v.sample_at(0.25e-9);
        assert!(v_mid < 0.5, "pad should lag, got {v_mid}");
    }

    #[test]
    fn pwl_resistor_clamps() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0, 2.0], vec![-0.1, 0.0, 0.0, 0.2]).unwrap();
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        let src = ckt.node("src");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::dc(3.0),
        ));
        ckt.add(Resistor::new("rs", src, n, 10.0));
        ckt.add(PwlResistor::new("rhat", n, iv));
        let x = ckt.dc_operating_point().unwrap();
        let v = x[n.index() - 1];
        // Solves (3 - v)/10 = iv(v): in the top segment i = 0.2 (v - 1).
        // (3 - v)/10 = 0.2 v - 0.2 -> 3 - v = 2 v - 2 -> v = 5/3.
        assert!((v - 5.0 / 3.0).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn cr_model_instantiate() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let model = CrModel::new("cr", 1e-12, iv).unwrap();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let pad = ckt.node("pad");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::step(0.0, 0.5, 0.2e-9),
        ));
        ckt.add(Resistor::new("rs", src, pad, 50.0));
        model.instantiate(&mut ckt, pad);
        let res = ckt.transient(TranParams::new(10e-12, 2e-9)).unwrap();
        let v_end = res.voltage(pad).sample_at(1.9e-9);
        // Static resistor draws 0.1 A/V * v; divider with the 50 Ω source:
        // (0.5 - v)/50 = 0.1 v -> 0.5 - v = 5 v -> v = 0.5/6.
        assert!((v_end - 0.5 / 6.0).abs() < 5e-3, "v_end {v_end}");
    }
}
