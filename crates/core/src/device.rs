//! Circuit-simulator devices wrapping the estimated macromodels.
//!
//! This is the paper's "implementation in a circuit simulation environment"
//! step. The discrete-time models advance on their own sample clock `Ts`;
//! the hosting transient analysis must run with `dt = Ts` (the paper's
//! models are estimated and exercised at the same fixed sampling time).
//! Within each step the present port voltage participates in the Newton
//! iteration through the analytic RBF input gradient.
//!
//! All sampled devices step through the compiled runtime in [`crate::evalrt`]:
//! the model is flattened once at construction and the per-iteration
//! `stamp`/`accept_step` path performs **zero allocations**. The
//! [`PwRbfDriverBank`] variant advances several pads of one compiled model
//! as parallel lanes of a single batched evaluation.

use std::cell::RefCell;
use std::sync::Arc;

use crate::driver::PwRbfDriverModel;
use crate::evalrt::{CompiledDriver, CompiledReceiver, DriverLanes, LaneStim, ReceiverLanes};
use crate::receiver::{CrModel, ReceiverModel};
use circuit::devices::Capacitor;
use circuit::mna::{register_conductance, stamp_linearized_current, EvalCtx, Mode};
use circuit::{Circuit, Device, Node, PatternBuilder, StampWorkspace, GROUND};
use numkit::interp::Pwl;

/// Relative tolerance on `dt == Ts`.
const TS_TOL: f64 = 1e-6;

fn check_sample_clock(label: &str, ts: f64, mode: Mode) {
    if let Mode::Tran { dt, .. } = mode {
        assert!(
            ((dt - ts) / ts).abs() < TS_TOL,
            "device '{label}': transient dt = {dt:.3e} must equal the model sample time Ts = {ts:.3e}"
        );
    }
}

/// The PW-RBF driver installed as a one-port behavioral element.
///
/// The device delivers `i(k) = w_H(k) i_H(k) + w_L(k) i_L(k)` into `out`,
/// where both submodels free-run on the (shared) port-voltage history and
/// their own current histories. Internally this is a single-lane
/// [`DriverLanes`] over the compiled model.
///
/// # Panics
///
/// `stamp` panics if the transient step differs from the model sample time
/// (see the module documentation).
#[derive(Debug, Clone)]
pub struct PwRbfDriver {
    label: String,
    ts: f64,
    out: Node,
    lanes: RefCell<DriverLanes>,
}

impl PwRbfDriver {
    /// Creates a driver producing `pattern` with the given bit time.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-`0`/`1` pattern (experiment definition
    /// error) or an invalid model.
    pub fn new(model: PwRbfDriverModel, out: Node, pattern: &str, bit_time: f64) -> Self {
        model.validate().expect("invalid PW-RBF model");
        let compiled = Arc::new(CompiledDriver::compile(&model));
        Self::from_compiled(compiled, out, LaneStim::from_pattern(pattern, bit_time))
    }

    /// Creates a driver over an already-compiled model (shared via `Arc`
    /// when many instances of one model populate a circuit).
    pub fn from_compiled(compiled: Arc<CompiledDriver>, out: Node, stim: LaneStim) -> Self {
        PwRbfDriver {
            label: format!("{}_pwrbf", compiled.name()),
            ts: compiled.ts(),
            out,
            lanes: RefCell::new(DriverLanes::new(compiled, vec![stim])),
        }
    }

    /// Switching weights at absolute time `t`.
    pub fn weights_at(&self, t: f64) -> (f64, f64) {
        self.lanes.borrow().weights_at(0, t)
    }
}

impl Device for PwRbfDriver {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.out, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        check_sample_clock(&self.label, self.ts, ctx.mode);
        let v = [ctx.v(self.out)];
        let (mut i, mut g) = ([0.0], [0.0]);
        self.lanes
            .borrow_mut()
            .step(ctx.mode.time(), &v, &mut i, &mut g);
        // The device injects i into the node.
        stamp_linearized_current(ws, self.out, GROUND, -i[0], -g[0], v[0]);
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let v0 = [ctx.v(self.out)];
        self.lanes.get_mut().init_dc(&v0);
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if !ctx.mode.is_tran() {
            return;
        }
        let v = [ctx.v(self.out)];
        self.lanes.get_mut().commit(&v);
    }
}

/// Mutable bank state: the lane bank plus the per-stamp staging rows, all
/// behind one `RefCell` so `stamp(&self)` can step without allocating.
#[derive(Debug, Clone)]
struct BankState {
    lanes: DriverLanes,
    v: Vec<f64>,
    i: Vec<f64>,
    g: Vec<f64>,
}

/// Several PW-RBF drivers of **one** model advancing as parallel lanes of a
/// single batched evaluation (see [`DriverLanes`]).
///
/// Electrically identical to adding one [`PwRbfDriver`] per pad; the lanes
/// share the compiled parameter slab and step together, so the inner loops
/// stay in cache and auto-vectorize across pads. Used by bus-ladder and
/// scenario-matrix sweeps where every line carries the same driver model
/// with a different bit pattern.
///
/// # Panics
///
/// `stamp` panics if the transient step differs from the model sample time.
#[derive(Debug, Clone)]
pub struct PwRbfDriverBank {
    label: String,
    ts: f64,
    pads: Vec<Node>,
    state: RefCell<BankState>,
}

impl PwRbfDriverBank {
    /// Creates a bank driving each `(pad, stimulus)` lane.
    ///
    /// # Panics
    ///
    /// Panics on an invalid model or an empty lane list.
    pub fn new(model: &PwRbfDriverModel, lanes: Vec<(Node, LaneStim)>) -> Self {
        model.validate().expect("invalid PW-RBF model");
        Self::from_compiled(Arc::new(CompiledDriver::compile(model)), lanes)
    }

    /// Creates a bank over an already-compiled model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    pub fn from_compiled(compiled: Arc<CompiledDriver>, lanes: Vec<(Node, LaneStim)>) -> Self {
        assert!(!lanes.is_empty(), "driver bank requires at least one lane");
        let n = lanes.len();
        let (pads, stims): (Vec<Node>, Vec<LaneStim>) = lanes.into_iter().unzip();
        PwRbfDriverBank {
            label: format!("{}_pwrbf_bank", compiled.name()),
            ts: compiled.ts(),
            pads,
            state: RefCell::new(BankState {
                lanes: DriverLanes::new(compiled, stims),
                v: vec![0.0; n],
                i: vec![0.0; n],
                g: vec![0.0; n],
            }),
        }
    }

    /// Number of pads (lanes).
    pub fn n_lanes(&self) -> usize {
        self.pads.len()
    }
}

impl Device for PwRbfDriverBank {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        for &pad in &self.pads {
            register_conductance(pb, pad, GROUND);
        }
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        check_sample_clock(&self.label, self.ts, ctx.mode);
        let st = &mut *self.state.borrow_mut();
        for (l, &pad) in self.pads.iter().enumerate() {
            st.v[l] = ctx.v(pad);
        }
        st.lanes.step(ctx.mode.time(), &st.v, &mut st.i, &mut st.g);
        for (l, &pad) in self.pads.iter().enumerate() {
            stamp_linearized_current(ws, pad, GROUND, -st.i[l], -st.g[l], st.v[l]);
        }
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let st = self.state.get_mut();
        for (l, &pad) in self.pads.iter().enumerate() {
            st.v[l] = ctx.v(pad);
        }
        st.lanes.init_dc(&st.v);
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if !ctx.mode.is_tran() {
            return;
        }
        let st = self.state.get_mut();
        for (l, &pad) in self.pads.iter().enumerate() {
            st.v[l] = ctx.v(pad);
        }
        st.lanes.commit(&st.v);
    }
}

/// The receiver parametric model installed as a one-port load. Internally a
/// single-lane [`ReceiverLanes`] over the compiled model.
///
/// # Panics
///
/// `stamp` panics if the transient step differs from the model sample time.
#[derive(Debug, Clone)]
pub struct ReceiverModelDevice {
    label: String,
    ts: f64,
    pad: Node,
    lanes: RefCell<ReceiverLanes>,
}

impl ReceiverModelDevice {
    /// Creates the device at `pad`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid model.
    pub fn new(model: ReceiverModel, pad: Node) -> Self {
        model.validate().expect("invalid receiver model");
        Self::from_compiled(Arc::new(CompiledReceiver::compile(&model)), pad)
    }

    /// Creates the device over an already-compiled model.
    pub fn from_compiled(compiled: Arc<CompiledReceiver>, pad: Node) -> Self {
        ReceiverModelDevice {
            label: format!("{}_rxmodel", compiled.name()),
            ts: compiled.ts(),
            pad,
            lanes: RefCell::new(ReceiverLanes::new(compiled, 1)),
        }
    }
}

impl Device for ReceiverModelDevice {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.pad, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        check_sample_clock(&self.label, self.ts, ctx.mode);
        let v = [ctx.v(self.pad)];
        let (mut i, mut g) = ([0.0], [0.0]);
        self.lanes.borrow_mut().step(&v, &mut i, &mut g);
        // i flows from the pad into the device (to ground).
        stamp_linearized_current(ws, self.pad, GROUND, i[0], g[0], v[0]);
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let v0 = [ctx.v(self.pad)];
        self.lanes.get_mut().init_dc(&v0);
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if !ctx.mode.is_tran() {
            return;
        }
        let v = [ctx.v(self.pad)];
        self.lanes.get_mut().commit(&v);
    }
}

/// A static nonlinear resistor defined by a PWL I–V table (current into the
/// device versus port voltage). Together with a [`Capacitor`] this realizes
/// the paper's C–R̂ baseline receiver.
#[derive(Debug, Clone)]
pub struct PwlResistor {
    label: String,
    a: Node,
    iv: Pwl,
}

impl PwlResistor {
    /// Creates the resistor between `a` and ground.
    pub fn new(label: impl Into<String>, a: Node, iv: Pwl) -> Self {
        PwlResistor {
            label: label.into(),
            a,
            iv,
        }
    }
}

impl Device for PwlResistor {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.a, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let v = ctx.v(self.a);
        let i = self.iv.eval(v);
        let g = self.iv.slope(v).max(0.0);
        stamp_linearized_current(ws, self.a, GROUND, i, g, v);
    }
}

impl CrModel {
    /// Installs the C–R̂ model at `pad`: a shunt capacitor plus the static
    /// PWL resistor.
    pub fn instantiate(&self, ckt: &mut Circuit, pad: Node) {
        ckt.add(Capacitor::new(
            format!("{}_c", self.name),
            pad,
            GROUND,
            self.c,
        ));
        ckt.add(PwlResistor::new(
            format!("{}_rhat", self.name),
            pad,
            self.static_iv.clone(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::WeightSequence;
    use circuit::devices::{Resistor, SourceWaveform, VoltageSource};
    use circuit::TranParams;
    use sysid::arx::{ArxModel, ArxOrders};
    use sysid::narx::{NarxModel, NarxOrders};
    use sysid::rbf::RbfNetwork;

    /// A synthetic PW-RBF model with affine submodels mimicking ideal
    /// switched conductances:
    ///   i_H(v) = g (vdd - v)   (sources current when below vdd)
    ///   i_L(v) = -g v          (sinks current when above 0)
    fn synthetic_model(g: f64, vdd: f64, n_win: usize) -> PwRbfDriverModel {
        // dim = input_lags + 1 + output_lags = 3 for r = 1.
        let high = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(g * vdd, vec![-g, 0.0, 0.0]),
        )
        .unwrap();
        let low = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![-g, 0.0, 0.0]),
        )
        .unwrap();
        let ramp: Vec<f64> = (0..n_win).map(|k| k as f64 / (n_win - 1) as f64).collect();
        let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
        PwRbfDriverModel {
            name: "synth".into(),
            ts: 25e-12,
            vdd,
            i_high: high,
            i_low: low,
            up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
            down: WeightSequence::new(inv, ramp).unwrap(),
        }
    }

    #[test]
    fn synthetic_driver_drives_resistive_load() {
        let vdd = 1.8;
        let g = 0.05; // 20 Ω output impedance
        let model = synthetic_model(g, vdd, 20);
        let ts = model.ts;
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add(PwRbfDriver::new(model, out, "01", 2e-9));
        ckt.add(Resistor::new("rl", out, GROUND, 100.0));
        let res = ckt.transient(TranParams::new(ts, 6e-9)).unwrap();
        let v = res.voltage(out);
        // Low state: 0 V; high state: divider vdd * R/(R + 1/g).
        assert!(v.sample_at(1.5e-9).abs() < 1e-3);
        let expect = vdd * 100.0 / (100.0 + 1.0 / g);
        let v_end = v.sample_at(5.9e-9);
        assert!(
            (v_end - expect).abs() < 0.02,
            "v_end {v_end} vs divider {expect}"
        );
        // The transition is spread over the 20-sample weight window.
        let t10 = v.threshold_crossings(0.1 * expect);
        let t90 = v.threshold_crossings(0.9 * expect);
        assert!(!t10.is_empty() && !t90.is_empty());
        let rise = t90[0].time - t10[0].time;
        assert!(rise > 3.0 * ts && rise < 25.0 * ts, "rise {rise:.3e}");
    }

    #[test]
    fn driver_weights_schedule() {
        let model = synthetic_model(0.05, 1.8, 10);
        let ts = model.ts;
        let d = PwRbfDriver::new(model, Node::from_raw(1), "010", 1e-9);
        assert_eq!(d.weights_at(0.5e-9), (0.0, 1.0));
        // During the up window at 1 ns.
        let (wh, wl) = d.weights_at(1e-9 + 5.0 * ts);
        assert!(wh > 0.0 && wh < 1.0 && wl > 0.0 && wl < 1.0);
        // Steady high after the window but before the down edge.
        assert_eq!(d.weights_at(1.9e-9), (1.0, 0.0));
        // Steady low long after the down edge.
        assert_eq!(d.weights_at(5e-9), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "must equal the model sample time")]
    fn driver_rejects_wrong_dt() {
        let model = synthetic_model(0.05, 1.8, 10);
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add(PwRbfDriver::new(model, out, "01", 1e-9));
        ckt.add(Resistor::new("rl", out, GROUND, 100.0));
        // dt != ts: must panic inside stamp.
        let _ = ckt.transient(TranParams::new(10e-12, 2e-9));
    }

    #[test]
    fn driver_bank_matches_individual_devices() {
        let model = synthetic_model(0.05, 1.8, 12);
        let ts = model.ts;
        let patterns = ["0110", "1001", "0011"];
        let bit_time = 1e-9;
        let t_stop = 4e-9;

        // Reference: one PwRbfDriver per line.
        let mut ref_ckt = Circuit::new();
        let mut ref_pads = Vec::new();
        for (k, pat) in patterns.iter().enumerate() {
            let pad = ref_ckt.node(format!("p{k}"));
            ref_ckt.add(PwRbfDriver::new(model.clone(), pad, pat, bit_time));
            ref_ckt.add(Resistor::new(format!("r{k}"), pad, GROUND, 75.0));
            ref_pads.push(pad);
        }
        let ref_res = ref_ckt.transient(TranParams::new(ts, t_stop)).unwrap();

        // Bank: same three lines as lanes of one device.
        let mut ckt = Circuit::new();
        let mut lanes = Vec::new();
        for (k, pat) in patterns.iter().enumerate() {
            let pad = ckt.node(format!("p{k}"));
            lanes.push((pad, LaneStim::from_pattern(pat, bit_time)));
            ckt.add(Resistor::new(format!("r{k}"), pad, GROUND, 75.0));
        }
        let pads: Vec<Node> = lanes.iter().map(|(p, _)| *p).collect();
        let bank = PwRbfDriverBank::new(&model, lanes);
        assert_eq!(bank.n_lanes(), 3);
        ckt.add(bank);
        let res = ckt.transient(TranParams::new(ts, t_stop)).unwrap();

        for (k, (&pad, &ref_pad)) in pads.iter().zip(&ref_pads).enumerate() {
            let v = res.voltage(pad);
            let vr = ref_res.voltage(ref_pad);
            for i in 0..((t_stop / ts) as usize) {
                let t = i as f64 * ts;
                let d = (v.sample_at(t) - vr.sample_at(t)).abs();
                assert!(d < 1e-12, "lane {k} diverges at t={t:.3e}: {d:.3e}");
            }
        }
    }

    fn synthetic_receiver(c_over_ts: f64) -> ReceiverModel {
        // i_lin = C/ts (v(k) - v(k-1)): ARX with na = 0, nb = 1.
        let linear = ArxModel::from_coefficients(
            ArxOrders { na: 0, nb: 1 },
            vec![],
            vec![c_over_ts, -c_over_ts],
        )
        .unwrap();
        let zero = NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::affine(0.0, vec![0.0, 0.0, 0.0]),
        )
        .unwrap();
        ReceiverModel {
            name: "rx_synth".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear,
            up: zero.clone(),
            down: zero,
        }
    }

    #[test]
    fn receiver_device_behaves_capacitively() {
        let ts = 25e-12;
        let c = 2e-12;
        let model = synthetic_receiver(c / ts);
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let pad = ckt.node("pad");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 0.5e-9),
        ));
        ckt.add(Resistor::new("rs", src, pad, 50.0));
        ckt.add(ReceiverModelDevice::new(model, pad));
        let res = ckt.transient(TranParams::new(ts, 3e-9)).unwrap();
        let v = res.voltage(pad);
        // The pad follows the source with an RC lag; final value ~1 V.
        let v_end = v.sample_at(2.9e-9);
        assert!((v_end - 1.0).abs() < 0.02, "v_end {v_end}");
        // During the ramp the pad lags the source (capacitive loading).
        let v_mid = v.sample_at(0.25e-9);
        assert!(v_mid < 0.5, "pad should lag, got {v_mid}");
    }

    #[test]
    fn pwl_resistor_clamps() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0, 2.0], vec![-0.1, 0.0, 0.0, 0.2]).unwrap();
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        let src = ckt.node("src");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::dc(3.0),
        ));
        ckt.add(Resistor::new("rs", src, n, 10.0));
        ckt.add(PwlResistor::new("rhat", n, iv));
        let x = ckt.dc_operating_point().unwrap();
        let v = x[n.index() - 1];
        // Solves (3 - v)/10 = iv(v): in the top segment i = 0.2 (v - 1).
        // (3 - v)/10 = 0.2 v - 0.2 -> 3 - v = 2 v - 2 -> v = 5/3.
        assert!((v - 5.0 / 3.0).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn cr_model_instantiate() {
        let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
        let model = CrModel::new("cr", 1e-12, iv).unwrap();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let pad = ckt.node("pad");
        ckt.add(VoltageSource::new(
            "v",
            src,
            GROUND,
            SourceWaveform::step(0.0, 0.5, 0.2e-9),
        ));
        ckt.add(Resistor::new("rs", src, pad, 50.0));
        model.instantiate(&mut ckt, pad);
        let res = ckt.transient(TranParams::new(10e-12, 2e-9)).unwrap();
        let v_end = res.voltage(pad).sample_at(1.9e-9);
        // Static resistor draws 0.1 A/V * v; divider with the 50 Ω source:
        // (0.5 - v)/50 = 0.1 v -> 0.5 - v = 5 v -> v = 0.5/6.
        assert!((v_end - 0.5 / 6.0).abs() < 5e-3, "v_end {v_end}");
    }
}
