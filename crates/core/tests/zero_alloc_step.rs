//! Proof that the compiled evaluation runtime's hot path is
//! allocation-free: a counting global allocator wraps the system
//! allocator, and the step/commit loops of every compiled model kind run
//! with the counter pinned.
//!
//! Everything lives in ONE `#[test]` because the counter is process-global
//! and the libtest harness runs `#[test]` functions on parallel threads —
//! a second test allocating concurrently would false-positive the check.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::evalrt::{
    CompiledCr, CompiledDriver, CompiledIbis, CompiledReceiver, DriverLanes, LaneStim,
    ReceiverLanes,
};
use macromodel::receiver::{CrModel, ReceiverModel};
use numkit::interp::Pwl;
use refdev::IbisModel;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn narx(seed: f64) -> NarxModel {
    let net = RbfNetwork::from_parts(
        3,
        vec![
            vec![0.2 + seed, -0.1, 0.5],
            vec![-0.6, 0.9, 0.1 - seed],
            vec![1.1, 0.4, -0.3],
        ],
        vec![0.8, 1.1, 0.6],
        vec![0.02, -0.015, 0.01],
        0.001 * seed,
        vec![-0.04, 0.005, 0.3],
    )
    .unwrap();
    NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap()
}

fn driver_model() -> PwRbfDriverModel {
    let ramp: Vec<f64> = (0..8).map(|k| k as f64 / 7.0).collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    PwRbfDriverModel {
        name: "drv".into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx(0.1),
        i_low: narx(-0.2),
        up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
        down: WeightSequence::new(inv, ramp).unwrap(),
    }
}

fn receiver_model() -> ReceiverModel {
    let linear =
        ArxModel::from_coefficients(ArxOrders { na: 1, nb: 1 }, vec![0.35], vec![0.08, -0.06])
            .unwrap();
    ReceiverModel {
        name: "rx".into(),
        ts: 25e-12,
        vdd: 1.8,
        linear,
        up: narx(0.05),
        down: narx(-0.15),
    }
}

fn ibis_model() -> IbisModel {
    let pullup = Pwl::new(vec![-1.0, 0.9, 2.8], vec![0.08, 0.04, 0.0]).unwrap();
    let pulldown = Pwl::new(vec![-1.0, 0.9, 2.8], vec![0.0, -0.04, -0.08]).unwrap();
    IbisModel {
        name: "ibis".into(),
        vdd: 1.8,
        pullup,
        pulldown,
        c_comp: 1e-12,
        dt: 25e-12,
        ku_rise: vec![0.0, 0.5, 1.0],
        kd_rise: vec![1.0, 0.5, 0.0],
        ku_fall: vec![1.0, 0.5, 0.0],
        kd_fall: vec![0.0, 0.5, 1.0],
    }
}

/// Runs `f` and returns how many allocations it performed.
fn allocations_during<F: FnMut()>(mut f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn compiled_stepping_never_allocates() {
    // --- PW-RBF driver, single lane and a 3-lane bank ---
    for n_lanes in [1usize, 3] {
        let model = driver_model();
        let compiled = Arc::new(CompiledDriver::compile(&model));
        let stims: Vec<LaneStim> = (0..n_lanes)
            .map(|l| LaneStim::from_pattern(if l % 2 == 0 { "0110" } else { "1001" }, 1e-9))
            .collect();
        let mut lanes = DriverLanes::new(Arc::clone(&compiled), stims);
        let v0 = vec![0.0; n_lanes];
        lanes.init_dc(&v0);
        let mut v = v0;
        let mut i = vec![0.0; n_lanes];
        let mut g = vec![0.0; n_lanes];
        let count = allocations_during(|| {
            for k in 0..500 {
                let t = k as f64 * model.ts;
                for (l, vl) in v.iter_mut().enumerate() {
                    *vl = 0.9 + 0.9 * ((0.13 * k as f64) + l as f64).sin();
                }
                // Two Newton evaluations per timestep, then the commit —
                // the shape of the real device loop, including a commit at
                // a voltage differing from the last step (cache miss).
                lanes.step(t, &v, &mut i, &mut g);
                lanes.step(t, &v, &mut i, &mut g);
                lanes.commit(&v);
                if k % 7 == 0 {
                    v[0] += 1e-6;
                    lanes.commit(&v);
                }
            }
        });
        assert_eq!(count, 0, "driver lanes={n_lanes} allocated {count} times");
    }

    // --- Receiver, 2 lanes ---
    let model = receiver_model();
    let compiled = Arc::new(CompiledReceiver::compile(&model));
    let mut lanes = ReceiverLanes::new(compiled, 2);
    lanes.init_dc(&[0.0, 1.2]);
    let (mut i, mut g) = ([0.0; 2], [0.0; 2]);
    let count = allocations_during(|| {
        for k in 0..500 {
            let v = [
                0.9 + 0.9 * (0.21 * k as f64).sin(),
                0.9 - 0.9 * (0.17 * k as f64).cos(),
            ];
            lanes.step(&v, &mut i, &mut g);
            lanes.commit(&v);
        }
    });
    assert_eq!(count, 0, "receiver lanes allocated {count} times");

    // --- CR baseline (stateless PWL) ---
    let iv = Pwl::new(vec![-1.0, 0.0, 1.0], vec![-0.1, 0.0, 0.1]).unwrap();
    let cr = CompiledCr::compile(&CrModel::new("cr", 1e-12, iv).unwrap());
    let (mut i, mut g) = ([0.0; 4], [0.0; 4]);
    let count = allocations_during(|| {
        for k in 0..500 {
            let s = (0.1 * k as f64).sin();
            cr.step_lanes(&[s, -s, 0.5 * s, 1.0 - s], &mut i, &mut g);
        }
    });
    assert_eq!(count, 0, "CR stepping allocated {count} times");

    // --- IBIS output stage ---
    let ibis = CompiledIbis::compile(&ibis_model());
    let (mut i, mut g) = ([0.0; 2], [0.0; 2]);
    let count = allocations_during(|| {
        for k in 0..500 {
            let s = 0.9 + 0.9 * (0.13 * k as f64).sin();
            let ku = (k % 64) as f64 / 63.0;
            ibis.step_lanes(
                &[s, 1.8 - s],
                &[ku, 1.0 - ku],
                &[1.0 - ku, ku],
                &mut i,
                &mut g,
            );
        }
    });
    assert_eq!(count, 0, "IBIS stepping allocated {count} times");
}
