//! Property-based coverage of the exchange layer's encoding guarantees:
//! for random valid artifacts of every kind and both text versions,
//! text → binary → text must reproduce the original text **byte for
//! byte** (and binary → binary likewise), because text floats use
//! shortest round-trip notation and binary floats are the raw IEEE-754
//! bits — nothing in either direction is allowed to re-quantize.
//!
//! The second half corrupts containers: random single-byte payload flips
//! must surface as [`ExchangeError::DigestMismatch`], random truncations
//! as [`ExchangeError::Truncated`], and the deterministic fixtures at the
//! bottom pin the exact typed error for each documented corruption class
//! (bad magic, flipped digest byte, truncated section).

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::binary::{index_bytes, load_artifact_bin, save_artifact_bin, MAGIC};
use macromodel::exchange::{
    load_artifact, load_artifact_bytes, save_artifact, AnyModel, Artifact, ExchangeError,
    Provenance,
};
use macromodel::receiver::{CrModel, ReceiverModel};
use macromodel::Error;
use numkit::interp::Pwl;
use proptest::prelude::*;
use refdev::IbisModel;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Deterministic splitmix stream expanding one proptest seed into model
/// parameters (same construction as `proptest_lint.rs`).
struct Stream(u64);

impl Stream {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n
    }
}

fn narx(s: &mut Stream, r: usize, n_centers: usize) -> NarxModel {
    let orders = NarxOrders::dynamic(r);
    let dim = orders.dim();
    let mut centers = Vec::with_capacity(n_centers);
    for _ in 0..n_centers {
        centers.push((0..dim).map(|_| s.range(-3.0, 3.0)).collect());
    }
    let widths = (0..n_centers).map(|_| s.range(0.2, 2.0)).collect();
    let weights = (0..n_centers).map(|_| s.range(-0.1, 0.1)).collect();
    let linear = (0..dim).map(|_| s.range(-0.2, 0.2)).collect();
    let net = RbfNetwork::from_parts(dim, centers, widths, weights, s.range(-0.01, 0.01), linear)
        .unwrap();
    NarxModel::from_network(orders, net).unwrap()
}

fn weight_ramp(s: &mut Stream, n: usize) -> WeightSequence {
    let mut w_high = Vec::with_capacity(n);
    let mut w_low = Vec::with_capacity(n);
    for k in 0..n {
        let frac = k as f64 / (n - 1).max(1) as f64;
        let jitter = s.range(-0.05, 0.05);
        w_high.push((frac + jitter).clamp(0.0, 1.0));
        w_low.push((1.0 - frac + jitter).clamp(0.0, 1.0));
    }
    WeightSequence::new(w_high, w_low).unwrap()
}

fn driver(s: &mut Stream, name: &str) -> AnyModel {
    let (rh, ch) = (1 + s.index(2), 2 + s.index(4));
    let (rl, cl) = (1 + s.index(2), 2 + s.index(4));
    let (nu, nd) = (2 + s.index(12), 2 + s.index(12));
    AnyModel::PwRbfDriver(PwRbfDriverModel {
        name: name.into(),
        ts: s.range(1e-11, 1e-10),
        vdd: s.range(1.0, 5.0),
        i_high: narx(s, rh, ch),
        i_low: narx(s, rl, cl),
        up: weight_ramp(s, nu),
        down: weight_ramp(s, nd),
    })
}

fn receiver(s: &mut Stream, name: &str) -> AnyModel {
    let na = 1 + s.index(3);
    let a: Vec<f64> = (0..na).map(|_| s.range(-0.3, 0.3) / na as f64).collect();
    let orders = ArxOrders { na, nb: 1 };
    let linear = ArxModel::from_coefficients(orders, a, vec![s.range(-0.1, 0.1); 2]).unwrap();
    let (cu, cd) = (2 + s.index(3), 2 + s.index(3));
    AnyModel::Receiver(ReceiverModel {
        name: name.into(),
        ts: s.range(1e-11, 1e-10),
        vdd: s.range(1.0, 5.0),
        linear,
        up: narx(s, 1, cu),
        down: narx(s, 1, cd),
    })
}

/// Strictly increasing breakpoints with monotonic values — a plausible
/// static I–V table.
fn pwl(s: &mut Stream, n: usize) -> Pwl {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut xv = s.range(-2.0, -1.0);
    let mut yv = s.range(-0.05, 0.0);
    for _ in 0..n {
        x.push(xv);
        y.push(yv);
        xv += s.range(0.1, 1.0);
        yv += s.range(0.0, 0.02);
    }
    Pwl::new(x, y).unwrap()
}

fn cr(s: &mut Stream, name: &str) -> AnyModel {
    let n = 3 + s.index(5);
    let c = s.range(1e-13, 1e-11);
    AnyModel::Cr(CrModel::new(name, c, pwl(s, n)).unwrap())
}

fn ibis(s: &mut Stream, name: &str) -> AnyModel {
    let n = 2 + s.index(8);
    let (np, nd) = (3 + s.index(4), 3 + s.index(4));
    let table = |s: &mut Stream| (0..n).map(|_| s.range(0.0, 1.0)).collect::<Vec<f64>>();
    AnyModel::Ibis(IbisModel {
        name: name.into(),
        vdd: s.range(1.0, 5.0),
        pullup: pwl(s, np),
        pulldown: pwl(s, nd),
        c_comp: s.range(1e-13, 1e-12),
        dt: s.range(1e-11, 1e-10),
        ku_rise: table(s),
        kd_rise: table(s),
        ku_fall: table(s),
        kd_fall: table(s),
    })
}

fn any_model(s: &mut Stream, name: &str) -> AnyModel {
    match s.index(4) {
        0 => driver(s, name),
        1 => receiver(s, name),
        2 => cr(s, name),
        _ => ibis(s, name),
    }
}

/// text → binary → text and binary → binary, both byte-exact.
fn assert_byte_exact_roundtrip(artifact: &Artifact) {
    let text = save_artifact(artifact).unwrap();
    let reparsed = load_artifact(&text).unwrap();
    let bin = save_artifact_bin(&reparsed).unwrap();
    let back = load_artifact_bin(&bin).unwrap();
    assert_eq!(
        save_artifact(&back).unwrap(),
        text,
        "text->bin->text drifted"
    );
    assert_eq!(
        save_artifact_bin(&back).unwrap(),
        bin,
        "bin re-save drifted"
    );
    // The magic-dispatching loader agrees with both dedicated loaders.
    let auto = load_artifact_bytes(&bin).unwrap();
    assert_eq!(save_artifact(&auto).unwrap(), text);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random v1 single-model artifacts of every kind survive
    /// text → binary → text byte-identically.
    #[test]
    fn v1_text_binary_text_byte_identity(seed in any::<u64>()) {
        let mut s = Stream(seed);
        let artifact = Artifact::single(any_model(&mut s, "m_v1"));
        assert_byte_exact_roundtrip(&artifact);
    }

    /// Random v2 bundles — 1..4 models of mixed kinds, with and without
    /// provenance — survive text → binary → text byte-identically.
    #[test]
    fn v2_text_binary_text_byte_identity(
        seed in any::<u64>(),
        n_models in 1usize..4,
        prov_sel in any::<u32>(),
    ) {
        let with_prov = prov_sel.is_multiple_of(2);
        let mut s = Stream(seed);
        let models: Vec<AnyModel> = (0..n_models)
            .map(|i| any_model(&mut s, &format!("m_{i}")))
            .collect();
        let provenance = with_prov.then(|| Provenance {
            tool: "proptest".into(),
            tool_version: "0.0.0".into(),
            config_digest: format!("{:016x}", seed),
            params: vec![("seed".into(), format!("{seed}"))],
        });
        let artifact = Artifact::bundle(models, provenance);
        assert_byte_exact_roundtrip(&artifact);
    }

    /// Flipping any single byte of a section payload is caught by the
    /// digest check — never a silent wrong model, never a panic.
    #[test]
    fn payload_flip_is_digest_mismatch(
        seed in any::<u64>(),
        flip_pos in any::<usize>(),
        flip_bit in any::<u32>(),
    ) {
        let mut s = Stream(seed);
        let artifact = Artifact::single(any_model(&mut s, "victim"));
        let bin = save_artifact_bin(&load_artifact(&save_artifact(&artifact).unwrap()).unwrap())
            .unwrap();
        // Pick a byte strictly inside a section payload, so framing stays
        // intact and the digest check is the only guard left. XOR with a
        // nonzero mask always changes the byte.
        let sections = index_bytes(&bin).unwrap().sections;
        let sec = &sections[flip_pos % sections.len()];
        let offset = sec.payload_offset + flip_pos % sec.payload_len.max(1);
        let mut corrupt = bin.clone();
        corrupt[offset] ^= 1u8 << (flip_bit % 8);
        match load_artifact_bin(&corrupt) {
            Err(Error::Exchange(ExchangeError::DigestMismatch { .. })) => {}
            other => prop_assert!(false, "expected DigestMismatch, got {other:?}"),
        }
    }

    /// Any truncation of a valid container that leaves the magic intact —
    /// mid-header, mid-name, mid-payload — reports `Truncated` through the
    /// magic-dispatching loader, never a partial artifact.
    #[test]
    fn truncation_is_typed(seed in any::<u64>(), cut in any::<usize>()) {
        let mut s = Stream(seed);
        let artifact = Artifact::single(any_model(&mut s, "victim"));
        let bin = save_artifact_bin(&load_artifact(&save_artifact(&artifact).unwrap()).unwrap())
            .unwrap();
        let len = MAGIC.len() + cut % (bin.len() - MAGIC.len() - 1);
        match load_artifact_bytes(&bin[..len]) {
            Err(Error::Exchange(ExchangeError::Truncated { .. })) => {}
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}

/// A small deterministic binary container shared by the corruption
/// fixtures below.
fn fixture_bytes() -> Vec<u8> {
    let mut s = Stream(7);
    let artifact = Artifact::bundle(
        vec![cr(&mut s, "fix_a"), ibis(&mut s, "fix_b")],
        Some(Provenance {
            tool: "fixture".into(),
            tool_version: "1".into(),
            config_digest: "0123456789abcdef".into(),
            params: vec![],
        }),
    );
    save_artifact_bin(&artifact).unwrap()
}

#[test]
fn fixture_bad_magic_is_typed() {
    let mut bytes = fixture_bytes();
    bytes[0] = b'X';
    // The dedicated binary loader names the defect precisely.
    match load_artifact_bin(&bytes) {
        Err(Error::Exchange(ExchangeError::BadMagic { found })) => {
            assert!(
                found.starts_with("58"),
                "hex dump starts with the flipped byte: {found}"
            );
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // The magic-dispatching loader falls back to the text path, where the
    // (non-UTF-8) payload bytes are diagnosed as corrupt — also typed.
    match load_artifact_bytes(&bytes) {
        Err(Error::Exchange(ExchangeError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt from the dispatcher, got {other:?}"),
    }
}

#[test]
fn fixture_flipped_digest_byte_is_typed() {
    let bytes = fixture_bytes();
    let sections = index_bytes(&bytes).unwrap().sections;
    // Corrupt the *stored digest* of the second model section rather than
    // its payload: the recomputed digest is then the honest one and the
    // stored one is the liar, but the mismatch must be reported all the
    // same (the body digest covers section headers too).
    let model_section = sections.iter().find(|s| s.name == "fix_b").unwrap();
    // The 24-byte section header precedes the name, then the payload; its
    // digest field occupies the last 8 header bytes (see docs/FORMAT.md).
    let digest_field = model_section.payload_offset - model_section.name.len() - 8;
    let mut corrupt = bytes.clone();
    corrupt[digest_field] ^= 0xff;
    match load_artifact_bin(&corrupt) {
        Err(Error::Exchange(ExchangeError::DigestMismatch {
            section,
            expected,
            found,
        })) => {
            assert_ne!(expected, found);
            assert!(!section.is_empty());
        }
        other => panic!("expected DigestMismatch, got {other:?}"),
    }
}

#[test]
fn fixture_truncated_section_is_typed() {
    let bytes = fixture_bytes();
    let sections = index_bytes(&bytes).unwrap().sections;
    let last = sections.last().unwrap();
    // Cut inside the last payload: framing up to there is intact, so the
    // reader must notice the missing payload bytes, not mis-decode.
    let cut = last.payload_offset + last.payload_len / 2;
    match load_artifact_bytes(&bytes[..cut]) {
        Err(Error::Exchange(ExchangeError::Truncated { expected })) => {
            assert!(!expected.is_empty());
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}
