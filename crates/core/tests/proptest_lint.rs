//! Property-based coverage of the static diagnostic engine
//! ([`macromodel::lint`]): randomly generated *healthy* models — stable
//! feedback polynomials built from roots inside the unit disc, well-spread
//! RBF centers, in-range switching weights — must lint clean, and seeding a
//! single defect (a pole outside the unit circle) must trip exactly the
//! documented code.

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::AnyModel;
use macromodel::lint::{lint_model, lint_model_full};
use macromodel::receiver::ReceiverModel;
use proptest::prelude::*;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Deterministic splitmix stream expanding one proptest seed into model
/// parameters.
struct Stream(u64);

impl Stream {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Monic polynomial with the given real roots, as the coefficient list
/// `[1, c1, ..., cn]` of `z^n + c1 z^(n-1) + ... + cn`.
fn poly_from_roots(roots: &[f64]) -> Vec<f64> {
    let mut coeffs = vec![1.0];
    for &r in roots {
        coeffs.push(0.0);
        for i in (1..coeffs.len()).rev() {
            coeffs[i] -= r * coeffs[i - 1];
        }
    }
    coeffs
}

/// ARX model whose characteristic polynomial has exactly these roots:
/// `y(k) = sum a_i y(k-i) + b_0 u(k)` with `a_i = -c_i`.
fn arx_with_roots(roots: &[f64]) -> ArxModel {
    let coeffs = poly_from_roots(roots);
    let a: Vec<f64> = coeffs[1..].iter().map(|c| -c).collect();
    let orders = ArxOrders { na: a.len(), nb: 1 };
    ArxModel::from_coefficients(orders, a, vec![0.1, -0.05]).unwrap()
}

fn stable_narx(s: &mut Stream, r: usize) -> NarxModel {
    let orders = NarxOrders::dynamic(r);
    // Input-side weights free, output-feedback tail well inside stability:
    // a single small coefficient per lag keeps the Jury margin comfortable.
    let mut linear = Vec::with_capacity(orders.dim());
    for _ in 0..orders.input_lags + 1 {
        linear.push(s.range(-0.05, 0.05));
    }
    for _ in 0..orders.output_lags {
        linear.push(s.range(-0.3, 0.3) / orders.output_lags as f64);
    }
    NarxModel::from_network(orders, RbfNetwork::affine(s.range(-0.01, 0.01), linear)).unwrap()
}

/// Driver submodel with centers spread across the full supply range, so
/// coverage and spacing rules stay quiet.
fn covered_narx(s: &mut Stream, r: usize, vdd: f64, n_centers: usize) -> NarxModel {
    let orders = NarxOrders::dynamic(r);
    let dim = orders.dim();
    let mut centers = Vec::with_capacity(n_centers);
    for i in 0..n_centers {
        let mut c = vec![vdd * i as f64 / (n_centers - 1) as f64];
        for _ in 1..dim {
            c.push(s.range(-0.5, 0.5));
        }
        centers.push(c);
    }
    let widths = (0..n_centers).map(|_| s.range(0.3, 1.0)).collect();
    let weights = (0..n_centers).map(|_| s.range(-0.01, 0.01)).collect();
    let mut linear = vec![0.0; dim];
    linear[0] = s.range(0.005, 0.02);
    let net = RbfNetwork::from_parts(dim, centers, widths, weights, 0.0, linear).unwrap();
    NarxModel::from_network(orders, net).unwrap()
}

fn weight_ramp(s: &mut Stream, n: usize, rising: bool) -> WeightSequence {
    let mut w_high = Vec::with_capacity(n);
    let mut w_low = Vec::with_capacity(n);
    for k in 0..n {
        let frac = k as f64 / (n - 1) as f64;
        let w = if rising { frac } else { 1.0 - frac };
        // Modest in-range jitter keeps the sequences physical.
        let jitter = s.range(-0.05, 0.05);
        w_high.push((w + jitter).clamp(0.0, 1.0));
        w_low.push((1.0 - w + jitter).clamp(0.0, 1.0));
    }
    WeightSequence::new(w_high, w_low).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Receivers whose linear core has all poles strictly inside the unit
    /// disc, with gently-fed-back protection submodels, produce zero
    /// findings — semantic and structural rules both.
    #[test]
    fn healthy_receivers_lint_clean(
        seed in any::<u64>(),
        na in 1usize..5,
        r in 1usize..3,
    ) {
        let mut s = Stream(seed);
        let roots: Vec<f64> = (0..na).map(|_| s.range(-0.85, 0.85)).collect();
        let model = ReceiverModel {
            name: "rx".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear: arx_with_roots(&roots),
            up: stable_narx(&mut s, r),
            down: stable_narx(&mut s, r),
        };
        prop_assert!(model.validate().is_ok());
        let diags = lint_model_full(&AnyModel::Receiver(model));
        prop_assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    /// One pole pushed outside the unit circle trips M001 — and nothing
    /// else, for any placement of the remaining (stable) poles.
    #[test]
    fn unstable_pole_trips_m001(
        seed in any::<u64>(),
        na in 1usize..4,
        bad_mag in 0usize..2,
    ) {
        let mut s = Stream(seed);
        let mut roots: Vec<f64> = (0..na).map(|_| s.range(-0.8, 0.8)).collect();
        let bad = s.range(1.05, 1.5) * if bad_mag == 0 { 1.0 } else { -1.0 };
        roots.push(bad);
        let model = ReceiverModel {
            name: "rx".into(),
            ts: 25e-12,
            vdd: 1.8,
            linear: arx_with_roots(&roots),
            up: stable_narx(&mut s, 1),
            down: stable_narx(&mut s, 1),
        };
        let diags = lint_model(&AnyModel::Receiver(model));
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        prop_assert_eq!(codes, vec!["M001"]);
    }

    /// Random healthy drivers — full-range center coverage, distinct
    /// centers, in-range ramped weights, stable tails — lint clean through
    /// the full rule pack including the fixture structural audit.
    #[test]
    fn healthy_drivers_lint_clean(
        seed in any::<u64>(),
        r in 1usize..3,
        n_centers in 2usize..6,
        window in 2usize..8,
    ) {
        let mut s = Stream(seed);
        let vdd = if s.next_f64() < 0.5 { 1.8 } else { 3.3 };
        let model = PwRbfDriverModel {
            name: "drv".into(),
            ts: 25e-12,
            vdd,
            i_high: covered_narx(&mut s, r, vdd, n_centers),
            i_low: covered_narx(&mut s, r, vdd, n_centers),
            up: weight_ramp(&mut s, window, true),
            down: weight_ramp(&mut s, window, false),
        };
        prop_assert!(model.validate().is_ok());
        let diags = lint_model_full(&AnyModel::PwRbfDriver(model));
        prop_assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }
}
