//! Property-based equivalence of the compiled evaluation runtime
//! ([`macromodel::evalrt`]) against the estimation-side scalar paths:
//! random models of all four kinds, random lane counts (including counts
//! that do not divide any SIMD batch width), agreement ≤ 1e-15 at every
//! step. In practice the agreement is bit-exact; the tolerance guards the
//! contract without over-pinning it.

use std::sync::Arc;

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::evalrt::{
    settle_narx, CompiledCr, CompiledDriver, CompiledIbis, CompiledReceiver, DriverLanes, LaneStim,
    ReceiverLanes,
};
use macromodel::receiver::{CrModel, ReceiverModel};
use numkit::interp::Pwl;
use proptest::prelude::*;
use refdev::IbisModel;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Deterministic splitmix stream: proptest supplies one seed, the stream
/// expands it into arbitrarily many model parameters.
struct Stream(u64);

impl Stream {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

fn rand_narx(s: &mut Stream, r: usize, n_centers: usize) -> NarxModel {
    let orders = NarxOrders::dynamic(r);
    let dim = orders.dim();
    let centers: Vec<Vec<f64>> = (0..n_centers)
        .map(|_| (0..dim).map(|_| s.range(-1.0, 2.5)).collect())
        .collect();
    let widths: Vec<f64> = (0..n_centers).map(|_| s.range(0.3, 1.8)).collect();
    let weights: Vec<f64> = (0..n_centers).map(|_| s.range(-0.05, 0.05)).collect();
    let linear: Vec<f64> = (0..dim).map(|_| s.range(-0.3, 0.3)).collect();
    let net = RbfNetwork::from_parts(dim, centers, widths, weights, s.range(-0.01, 0.01), linear)
        .unwrap();
    NarxModel::from_network(orders, net).unwrap()
}

fn rand_driver(s: &mut Stream, r: usize, n_centers: usize) -> PwRbfDriverModel {
    let len = 2 + (s.range(0.0, 6.0) as usize);
    let ramp: Vec<f64> = (0..len).map(|k| k as f64 / (len - 1) as f64).collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    PwRbfDriverModel {
        name: "prop-drv".into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: rand_narx(s, r, n_centers),
        i_low: rand_narx(s, r, n_centers),
        up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
        down: WeightSequence::new(inv, ramp).unwrap(),
    }
}

fn rand_receiver(
    s: &mut Stream,
    na: usize,
    nb: usize,
    r: usize,
    n_centers: usize,
) -> ReceiverModel {
    // Keep the autoregressive part comfortably stable so free-running
    // histories stay finite over the comparison window.
    let a: Vec<f64> = (0..na).map(|_| s.range(-0.4, 0.4)).collect();
    let b: Vec<f64> = (0..=nb).map(|_| s.range(-0.1, 0.1)).collect();
    let linear = ArxModel::from_coefficients(ArxOrders { na, nb }, a, b).unwrap();
    ReceiverModel {
        name: "prop-rx".into(),
        ts: 25e-12,
        vdd: 1.8,
        linear,
        up: rand_narx(s, r, n_centers),
        down: rand_narx(s, r, n_centers),
    }
}

/// Strictly increasing breakpoints with random values.
fn rand_pwl(s: &mut Stream, points: usize) -> Pwl {
    let mut x = -1.5;
    let mut xs = Vec::with_capacity(points);
    let mut ys = Vec::with_capacity(points);
    for _ in 0..points {
        x += s.range(0.1, 1.0);
        xs.push(x);
        ys.push(s.range(-0.1, 0.1));
    }
    Pwl::new(xs, ys).unwrap()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-15 * b.abs().max(1.0)
}

/// Scalar single-lane driver stepper on the estimation-side paths
/// (regressor `Vec`s, `one_step`, `rotate_right`) — the pre-compile
/// reference.
struct ScalarDriver {
    model: PwRbfDriverModel,
    v_past: Vec<f64>,
    ih_past: Vec<f64>,
    il_past: Vec<f64>,
}

impl ScalarDriver {
    fn new(model: PwRbfDriverModel, v0: f64) -> Self {
        let lags_v = model
            .i_high
            .orders()
            .input_lags
            .max(model.i_low.orders().input_lags);
        let ih0 = settle_narx(&model.i_high, v0);
        let il0 = settle_narx(&model.i_low, v0);
        ScalarDriver {
            v_past: vec![v0; lags_v],
            ih_past: vec![ih0; model.i_high.orders().output_lags.max(1)],
            il_past: vec![il0; model.i_low.orders().output_lags.max(1)],
            model,
        }
    }

    fn u_hist(&self, v_now: f64, lags: usize) -> Vec<f64> {
        let mut u = Vec::with_capacity(lags + 1);
        u.push(v_now);
        u.extend_from_slice(&self.v_past[..lags]);
        u
    }

    fn step(&self, wh: f64, wl: f64, v: f64) -> (f64, f64) {
        let (ih, gh) = self.model.i_high.one_step_with_gradient(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let (il, gl) = self.model.i_low.one_step_with_gradient(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        (wh * ih + wl * il, wh * gh + wl * gl)
    }

    fn commit(&mut self, v: f64) {
        let ih = self.model.i_high.one_step(
            &self.u_hist(v, self.model.i_high.orders().input_lags),
            &self.ih_past,
        );
        let il = self.model.i_low.one_step(
            &self.u_hist(v, self.model.i_low.orders().input_lags),
            &self.il_past,
        );
        self.v_past.rotate_right(1);
        if !self.v_past.is_empty() {
            self.v_past[0] = v;
        }
        self.ih_past.rotate_right(1);
        self.ih_past[0] = ih;
        self.il_past.rotate_right(1);
        self.il_past[0] = il;
    }
}

/// Scalar single-lane receiver stepper on the estimation-side paths.
struct ScalarReceiver {
    model: ReceiverModel,
    v_past: Vec<f64>,
    ilin_past: Vec<f64>,
    iup_past: Vec<f64>,
    idn_past: Vec<f64>,
}

impl ScalarReceiver {
    fn new(model: ReceiverModel, v0: f64) -> Self {
        let lags_v = model
            .linear
            .orders()
            .nb
            .max(model.up.orders().input_lags)
            .max(model.down.orders().input_lags);
        let sa: f64 = model.linear.a().iter().sum();
        let sb: f64 = model.linear.b().iter().sum();
        let dc_gain = if (1.0 - sa).abs() > 1e-9 {
            sb / (1.0 - sa) * v0
        } else {
            0.0
        };
        let up0 = settle_narx(&model.up, v0);
        let dn0 = settle_narx(&model.down, v0);
        ScalarReceiver {
            v_past: vec![v0; lags_v.max(1)],
            ilin_past: vec![dc_gain; model.linear.orders().na.max(1)],
            iup_past: vec![up0; model.up.orders().output_lags.max(1)],
            idn_past: vec![dn0; model.down.orders().output_lags.max(1)],
            model,
        }
    }

    fn parts(&self, v: f64) -> (f64, f64, f64, f64, f64, f64) {
        let mut u_lin = vec![v];
        u_lin.extend_from_slice(&self.v_past[..self.model.linear.orders().nb]);
        let i_lin = self.model.linear.one_step(&u_lin, &self.ilin_past);
        let g_lin = self.model.linear.feedthrough();
        let mut u_up = vec![v];
        u_up.extend_from_slice(&self.v_past[..self.model.up.orders().input_lags]);
        let (i_up, g_up) = self.model.up.one_step_with_gradient(&u_up, &self.iup_past);
        let mut u_dn = vec![v];
        u_dn.extend_from_slice(&self.v_past[..self.model.down.orders().input_lags]);
        let (i_dn, g_dn) = self
            .model
            .down
            .one_step_with_gradient(&u_dn, &self.idn_past);
        (i_lin, g_lin, i_up, g_up, i_dn, g_dn)
    }

    fn step(&self, v: f64) -> (f64, f64) {
        let (i_lin, g_lin, i_up, g_up, i_dn, g_dn) = self.parts(v);
        (i_lin + i_up + i_dn, g_lin + g_up + g_dn)
    }

    fn commit(&mut self, v: f64) {
        let (i_lin, _, i_up, _, i_dn, _) = self.parts(v);
        self.v_past.rotate_right(1);
        self.v_past[0] = v;
        self.ilin_past.rotate_right(1);
        self.ilin_past[0] = i_lin;
        self.iup_past.rotate_right(1);
        self.iup_past[0] = i_up;
        self.idn_past.rotate_right(1);
        self.idn_past[0] = i_dn;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched PW-RBF driver lanes track the scalar reference for random
    /// models and lane counts (1..=9 covers counts that do not divide the
    /// 2/4/8-wide SIMD batch widths).
    #[test]
    fn driver_lanes_match_scalar_paths(
        seed in any::<u64>(),
        r in 1usize..3,
        n_centers in 1usize..6,
        n_lanes in 1usize..10,
    ) {
        let mut s = Stream(seed);
        let model = rand_driver(&mut s, r, n_centers);
        let compiled = Arc::new(CompiledDriver::compile(&model));
        let stims: Vec<LaneStim> = (0..n_lanes)
            .map(|l| LaneStim::from_pattern(if l % 2 == 0 { "0110" } else { "1010" }, 1e-9))
            .collect();
        let v0: Vec<f64> = (0..n_lanes).map(|_| s.range(0.0, 1.8)).collect();
        let mut lanes = DriverLanes::new(Arc::clone(&compiled), stims.clone());
        lanes.init_dc(&v0);
        let mut refs: Vec<ScalarDriver> = v0
            .iter()
            .map(|&v| ScalarDriver::new(model.clone(), v))
            .collect();
        let mut v = v0;
        let mut i = vec![0.0; n_lanes];
        let mut g = vec![0.0; n_lanes];
        for k in 0..40 {
            let t = k as f64 * model.ts;
            for vl in v.iter_mut() {
                *vl = s.range(-0.2, 2.0);
            }
            lanes.step(t, &v, &mut i, &mut g);
            for (l, r) in refs.iter().enumerate() {
                let (wh, wl) = compiled.weights_at(&stims[l], t);
                let (ri, rg) = r.step(wh, wl, v[l]);
                prop_assert!(close(i[l], ri), "i lane {l} step {k}: {} vs {}", i[l], ri);
                prop_assert!(close(g[l], rg), "g lane {l} step {k}: {} vs {}", g[l], rg);
            }
            lanes.commit(&v);
            for (l, r) in refs.iter_mut().enumerate() {
                r.commit(v[l]);
            }
        }
    }

    /// Batched receiver lanes track the scalar reference for random
    /// models and lane counts.
    #[test]
    fn receiver_lanes_match_scalar_paths(
        seed in any::<u64>(),
        na in 0usize..3,
        nb in 0usize..3,
        r in 1usize..3,
        n_centers in 1usize..5,
        n_lanes in 1usize..8,
    ) {
        let mut s = Stream(seed);
        let model = rand_receiver(&mut s, na, nb, r, n_centers);
        let compiled = Arc::new(CompiledReceiver::compile(&model));
        let v0: Vec<f64> = (0..n_lanes).map(|_| s.range(0.0, 1.8)).collect();
        let mut lanes = ReceiverLanes::new(compiled, n_lanes);
        lanes.init_dc(&v0);
        let mut refs: Vec<ScalarReceiver> = v0
            .iter()
            .map(|&v| ScalarReceiver::new(model.clone(), v))
            .collect();
        let mut v = v0;
        let mut i = vec![0.0; n_lanes];
        let mut g = vec![0.0; n_lanes];
        for k in 0..40 {
            for vl in v.iter_mut() {
                *vl = s.range(-0.2, 2.0);
            }
            lanes.step(&v, &mut i, &mut g);
            for (l, r) in refs.iter().enumerate() {
                let (ri, rg) = r.step(v[l]);
                prop_assert!(close(i[l], ri), "i lane {l} step {k}: {} vs {}", i[l], ri);
                prop_assert!(close(g[l], rg), "g lane {l} step {k}: {} vs {}", g[l], rg);
            }
            lanes.commit(&v);
            for (l, r) in refs.iter_mut().enumerate() {
                r.commit(v[l]);
            }
        }
    }

    /// CR baseline batched stepping equals the scalar PWL lookups.
    #[test]
    fn cr_lanes_match_pwl(seed in any::<u64>(), n_lanes in 1usize..10) {
        let mut s = Stream(seed);
        let iv = rand_pwl(&mut s, 5);
        let model = CrModel::new("prop-cr", 1e-12, iv.clone()).unwrap();
        let compiled = CompiledCr::compile(&model);
        let v: Vec<f64> = (0..n_lanes).map(|_| s.range(-2.0, 3.0)).collect();
        let mut i = vec![0.0; n_lanes];
        let mut g = vec![0.0; n_lanes];
        compiled.step_lanes(&v, &mut i, &mut g);
        for l in 0..n_lanes {
            prop_assert!(close(i[l], iv.eval(v[l])), "i lane {l}");
            prop_assert!(close(g[l], iv.slope(v[l]).max(0.0)), "g lane {l}");
        }
    }

    /// IBIS batched stepping equals the scalar two-table output stage.
    #[test]
    fn ibis_lanes_match_output(seed in any::<u64>(), n_lanes in 1usize..10) {
        let mut s = Stream(seed);
        let pullup = rand_pwl(&mut s, 4);
        let pulldown = rand_pwl(&mut s, 4);
        let model = IbisModel {
            name: "prop-ibis".into(),
            vdd: 1.8,
            pullup: pullup.clone(),
            pulldown: pulldown.clone(),
            c_comp: 1e-12,
            dt: 25e-12,
            ku_rise: vec![0.0, 1.0],
            kd_rise: vec![1.0, 0.0],
            ku_fall: vec![1.0, 0.0],
            kd_fall: vec![0.0, 1.0],
        };
        let compiled = CompiledIbis::compile(&model);
        let v: Vec<f64> = (0..n_lanes).map(|_| s.range(-1.0, 3.0)).collect();
        let ku: Vec<f64> = (0..n_lanes).map(|_| s.range(0.0, 1.0)).collect();
        let kd: Vec<f64> = ku.iter().map(|k| 1.0 - k).collect();
        let mut i = vec![0.0; n_lanes];
        let mut g = vec![0.0; n_lanes];
        compiled.step_lanes(&v, &ku, &kd, &mut i, &mut g);
        for l in 0..n_lanes {
            let ri = ku[l] * pullup.eval(v[l]) + kd[l] * pulldown.eval(v[l]);
            let rg = ku[l] * pullup.slope(v[l]) + kd[l] * pulldown.slope(v[l]);
            prop_assert!(close(i[l], ri), "i lane {l}");
            prop_assert!(close(g[l], rg), "g lane {l}");
        }
    }
}
