//! Flat, allocation-free evaluation kernels.
//!
//! The estimation-side structures ([`RbfNetwork`],
//! [`ArxModel`], [`NarxModel`])
//! are optimized for construction and validation: centers live in
//! `Vec<Vec<f64>>`, histories are rebuilt per call, gradients allocate. This
//! module holds their *compiled* counterparts for the per-timestep hot path:
//!
//! * [`FlatRbf`] — centers in one row-major `[f64]` slab with the Gaussian
//!   exponent scale `-1/(2σ²)` (and `1/σ²` for gradients) precomputed per
//!   center;
//! * [`FlatArx`] — ARX taps over in-place ring-buffer histories;
//! * [`FlatNarx`] — a [`FlatRbf`] over a lagged regressor gathered from ring
//!   buffers;
//! * [`LaneRing`] — a lane-major ring buffer: `n_lanes` independent
//!   histories advanced together so batched stepping reads contiguous rows.
//!
//! Every kernel writes into caller-provided scratch and allocates nothing.
//! All lane-major layouts are `[slot][lane]`: lane is the fastest-varying
//! index, so the inner loops run over contiguous memory and auto-vectorize.
//!
//! # Numerical contract
//!
//! Compiled kernels reproduce the estimation-side scalar paths **bit for
//! bit**, not merely to a tolerance: the scalar [`RbfNetwork`] forms the
//! Gaussian exponent by multiplying with the same reciprocal this module
//! precomputes, and every accumulation (bias → linear tail → centers in
//! index order; `a` taps before `b` taps) visits terms in the same order.
//! The equivalence proptests in `tests/proptest_evalrt.rs` assert a ≤1e-15
//! agreement that in practice is exact.

use crate::arx::ArxModel;
use crate::narx::NarxModel;
use crate::rbf::RbfNetwork;

/// A [`RbfNetwork`] compiled into contiguous slabs.
///
/// ```
/// use sysid::flat::FlatRbf;
/// use sysid::rbf::RbfNetwork;
///
/// let net = RbfNetwork::from_parts(
///     1,
///     vec![vec![0.0], vec![1.0]],
///     vec![0.7, 0.4],
///     vec![2.0, -1.0],
///     0.1,
///     vec![0.3],
/// )
/// .unwrap();
/// let flat = FlatRbf::compile(&net);
/// let x = [0.25];
/// assert_eq!(flat.eval(&x), net.eval(&x)); // bit-identical, not just close
/// ```
#[derive(Debug, Clone)]
pub struct FlatRbf {
    dim: usize,
    n_centers: usize,
    /// Row-major center slab, `n_centers x dim`.
    centers: Vec<f64>,
    /// Per-center Gaussian exponent scale `-1/(2σ²)`.
    kscale: Vec<f64>,
    /// Per-center `1/σ²` (gradient factor).
    inv_s2: Vec<f64>,
    weights: Vec<f64>,
    bias: f64,
    linear: Vec<f64>,
}

impl FlatRbf {
    /// Compiles a trained network into flat form. One-time cost; the
    /// resulting object is immutable and shareable across lanes.
    pub fn compile(net: &RbfNetwork) -> Self {
        let dim = net.dim();
        let n = net.n_centers();
        let mut centers = Vec::with_capacity(n * dim);
        for c in net.centers() {
            centers.extend_from_slice(c);
        }
        let kscale: Vec<f64> = net.widths().iter().map(|w| -1.0 / (2.0 * w * w)).collect();
        let inv_s2: Vec<f64> = net.widths().iter().map(|w| 1.0 / (w * w)).collect();
        FlatRbf {
            dim,
            n_centers: n,
            centers,
            kscale,
            inv_s2,
            weights: net.weights().to_vec(),
            bias: net.bias(),
            linear: net.linear().to_vec(),
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of Gaussian units.
    pub fn n_centers(&self) -> usize {
        self.n_centers
    }

    /// Row of the center slab for unit `i`.
    #[inline]
    fn center(&self, i: usize) -> &[f64] {
        &self.centers[i * self.dim..(i + 1) * self.dim]
    }

    /// Evaluates the network at `x` (single lane, zero allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = self.bias;
        for (wj, xj) in self.linear.iter().zip(x) {
            acc += wj * xj;
        }
        for i in 0..self.n_centers {
            let mut d2 = 0.0;
            for (xj, cj) in x.iter().zip(self.center(i)) {
                let d = xj - cj;
                d2 += d * d;
            }
            acc += self.weights[i] * (d2 * self.kscale[i]).exp();
        }
        acc
    }

    /// Fused value + derivative with respect to `x[0]` in a single pass over
    /// the center slab (the pair every Newton stamp needs; the legacy path
    /// walked the centers twice, recomputing every exponential).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn eval_grad0(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = self.bias;
        for (wj, xj) in self.linear.iter().zip(x) {
            acc += wj * xj;
        }
        let mut g = self.linear[0];
        let x0 = x[0];
        for i in 0..self.n_centers {
            let c = self.center(i);
            let mut d2 = 0.0;
            for (xj, cj) in x.iter().zip(c) {
                let d = xj - cj;
                d2 += d * d;
            }
            let wphi = self.weights[i] * (d2 * self.kscale[i]).exp();
            acc += wphi;
            g += wphi * ((c[0] - x0) * self.inv_s2[i]);
        }
        (acc, g)
    }

    /// Full gradient into `out`, one pass over the center slab.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim` or `out.len() != dim`.
    pub fn grad_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.dim, "output dimension mismatch");
        out.copy_from_slice(&self.linear);
        for i in 0..self.n_centers {
            let c = self.center(i);
            let mut d2 = 0.0;
            for (xj, cj) in x.iter().zip(c) {
                let d = xj - cj;
                d2 += d * d;
            }
            let wphi = self.weights[i] * (d2 * self.kscale[i]).exp();
            let inv = self.inv_s2[i];
            for (oj, (cj, xj)) in out.iter_mut().zip(c.iter().zip(x)) {
                *oj += wphi * ((cj - xj) * inv);
            }
        }
    }

    /// Batched fused value + `∂/∂x[0]` over `n_lanes` lanes.
    ///
    /// `x` is lane-major, `dim` rows of `n_lanes` values (`x[j*n_lanes + l]`
    /// is component `j` of lane `l`); `d2` is scratch of length `n_lanes`;
    /// `out_val`/`out_g0` receive per-lane value and derivative. Each lane's
    /// result is bit-identical to [`FlatRbf::eval_grad0`] on that lane's
    /// regressor: the inner loops run over lanes, but per-lane accumulation
    /// order is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than required.
    pub fn eval_grad0_lanes(
        &self,
        x: &[f64],
        n_lanes: usize,
        d2: &mut [f64],
        out_val: &mut [f64],
        out_g0: &mut [f64],
    ) {
        assert!(x.len() >= self.dim * n_lanes, "lane regressor too short");
        assert!(
            d2.len() >= n_lanes && out_val.len() >= n_lanes && out_g0.len() >= n_lanes,
            "lane output buffers too short"
        );
        // A single lane's lane-major regressor IS a contiguous scalar
        // regressor; the scalar kernel keeps its accumulators in registers
        // instead of round-tripping per-center sums through the staging
        // rows, which is several times faster at this width (and
        // bit-identical — same terms, same order).
        if n_lanes == 1 {
            let (v, g) = self.eval_grad0(&x[..self.dim]);
            out_val[0] = v;
            out_g0[0] = g;
            return;
        }
        let d2 = &mut d2[..n_lanes];
        let out_val = &mut out_val[..n_lanes];
        let out_g0 = &mut out_g0[..n_lanes];
        out_val.fill(self.bias);
        for (j, wj) in self.linear.iter().enumerate() {
            let row = &x[j * n_lanes..(j + 1) * n_lanes];
            for (o, xl) in out_val.iter_mut().zip(row) {
                *o += wj * xl;
            }
        }
        out_g0.fill(self.linear[0]);
        let x0 = &x[..n_lanes];
        for i in 0..self.n_centers {
            let c = self.center(i);
            d2.fill(0.0);
            for (j, cj) in c.iter().enumerate() {
                let row = &x[j * n_lanes..(j + 1) * n_lanes];
                for (dl, xl) in d2.iter_mut().zip(row) {
                    let d = xl - cj;
                    *dl += d * d;
                }
            }
            let (wi, ki, inv, c0) = (self.weights[i], self.kscale[i], self.inv_s2[i], c[0]);
            for l in 0..n_lanes {
                let wphi = wi * (d2[l] * ki).exp();
                out_val[l] += wphi;
                out_g0[l] += wphi * ((c0 - x0[l]) * inv);
            }
        }
    }

    /// Batched value-only evaluation over `n_lanes` lanes (layout as in
    /// [`FlatRbf::eval_grad0_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than required.
    pub fn eval_lanes(&self, x: &[f64], n_lanes: usize, d2: &mut [f64], out_val: &mut [f64]) {
        assert!(x.len() >= self.dim * n_lanes, "lane regressor too short");
        assert!(
            d2.len() >= n_lanes && out_val.len() >= n_lanes,
            "lane output buffers too short"
        );
        // Single lane: the scalar kernel (see eval_grad0_lanes).
        if n_lanes == 1 {
            out_val[0] = self.eval(&x[..self.dim]);
            return;
        }
        let d2 = &mut d2[..n_lanes];
        let out_val = &mut out_val[..n_lanes];
        out_val.fill(self.bias);
        for (j, wj) in self.linear.iter().enumerate() {
            let row = &x[j * n_lanes..(j + 1) * n_lanes];
            for (o, xl) in out_val.iter_mut().zip(row) {
                *o += wj * xl;
            }
        }
        for i in 0..self.n_centers {
            let c = self.center(i);
            d2.fill(0.0);
            for (j, cj) in c.iter().enumerate() {
                let row = &x[j * n_lanes..(j + 1) * n_lanes];
                for (dl, xl) in d2.iter_mut().zip(row) {
                    let d = xl - cj;
                    *dl += d * d;
                }
            }
            let (wi, ki) = (self.weights[i], self.kscale[i]);
            for (o, dl) in out_val.iter_mut().zip(d2.iter()) {
                *o += wi * (dl * ki).exp();
            }
        }
    }
}

/// Lane-major ring buffer: `lags` history slots × `n_lanes` lanes, newest
/// slot first. `push_row` rotates the head instead of shuffling data, so
/// advancing history is O(`n_lanes`) writes regardless of depth, and
/// [`LaneRing::row`] hands back a contiguous per-slot row for batched
/// gathering.
#[derive(Debug, Clone)]
pub struct LaneRing {
    lags: usize,
    n_lanes: usize,
    /// Index of the newest slot.
    head: usize,
    /// Slot-major storage, `lags x n_lanes`.
    buf: Vec<f64>,
}

impl LaneRing {
    /// A ring of `lags` slots over `n_lanes` lanes, zero-filled.
    pub fn new(lags: usize, n_lanes: usize) -> Self {
        LaneRing {
            lags,
            n_lanes,
            head: 0,
            buf: vec![0.0; lags * n_lanes],
        }
    }

    /// Number of history slots.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// Lane count.
    pub fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    /// Contiguous row of all lanes at history depth `lag` (0 = newest).
    ///
    /// # Panics
    ///
    /// Panics if `lag >= lags`.
    #[inline]
    pub fn row(&self, lag: usize) -> &[f64] {
        assert!(lag < self.lags, "lag out of range");
        let slot = (self.head + lag) % self.lags;
        &self.buf[slot * self.n_lanes..(slot + 1) * self.n_lanes]
    }

    /// Value at history depth `lag` for one lane.
    #[inline]
    pub fn get(&self, lag: usize, lane: usize) -> f64 {
        self.row(lag)[lane]
    }

    /// Pushes one new row (all lanes) as the newest slot, dropping the
    /// oldest. No-op for a zero-lag ring.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_lanes`.
    pub fn push_row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.n_lanes, "lane count mismatch");
        if self.lags == 0 {
            return;
        }
        self.head = (self.head + self.lags - 1) % self.lags;
        let slot = self.head;
        self.buf[slot * self.n_lanes..(slot + 1) * self.n_lanes].copy_from_slice(values);
    }

    /// Overwrites every slot of one lane with `value` (history reset, e.g.
    /// after a DC settle).
    pub fn fill_lane(&mut self, lane: usize, value: f64) {
        for slot in 0..self.lags {
            self.buf[slot * self.n_lanes + lane] = value;
        }
    }

    /// Overwrites all slots of all lanes.
    pub fn fill(&mut self, value: f64) {
        self.buf.fill(value);
    }
}

/// An [`ArxModel`] compiled for ring-buffer stepping.
///
/// ```
/// use sysid::arx::{ArxModel, ArxOrders};
/// use sysid::flat::{FlatArx, LaneRing};
///
/// let m = ArxModel::from_coefficients(
///     ArxOrders { na: 1, nb: 1 },
///     vec![0.9],
///     vec![1.0, -0.4],
/// )
/// .unwrap();
/// let flat = FlatArx::compile(&m);
/// let mut u_past = LaneRing::new(1, 1);
/// let mut y_past = LaneRing::new(1, 1);
/// let mut out = [0.0];
/// flat.step_lanes(&[2.0], &u_past, &y_past, &mut out);
/// assert_eq!(out[0], m.one_step(&[2.0, 0.0], &[0.0]));
/// u_past.push_row(&[2.0]);
/// y_past.push_row(&out);
/// ```
#[derive(Debug, Clone)]
pub struct FlatArx {
    na: usize,
    nb: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl FlatArx {
    /// Compiles an estimated ARX model. One-time cost.
    pub fn compile(m: &ArxModel) -> Self {
        FlatArx {
            na: m.orders().na,
            nb: m.orders().nb,
            a: m.a().to_vec(),
            b: m.b().to_vec(),
        }
    }

    /// Output-lag count `na`.
    pub fn na(&self) -> usize {
        self.na
    }

    /// Extra input-lag count `nb`.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Direct feed-through coefficient `b_0`.
    pub fn feedthrough(&self) -> f64 {
        self.b[0]
    }

    /// One batched step: `out[l] = Σ a_i y(k-1-i) + b_0 u_now[l] + Σ b_j
    /// u(k-j)` with histories read from lane rings (`u_past` newest-first
    /// past inputs, `y_past` newest-first past outputs). Histories are not
    /// advanced — call [`LaneRing::push_row`] after the step is accepted.
    ///
    /// Per-lane results are bit-identical to
    /// [`ArxModel::one_step`](crate::arx::ArxModel::one_step) with the
    /// equivalent history slices.
    ///
    /// # Panics
    ///
    /// Panics on lane-count mismatch or rings shallower than the orders.
    pub fn step_lanes(&self, u_now: &[f64], u_past: &LaneRing, y_past: &LaneRing, out: &mut [f64]) {
        let n_lanes = u_now.len();
        assert_eq!(out.len(), n_lanes, "output lane count mismatch");
        assert!(
            self.na == 0 || y_past.lags() >= self.na,
            "y ring too shallow"
        );
        assert!(
            self.nb == 0 || u_past.lags() >= self.nb,
            "u ring too shallow"
        );
        out.fill(0.0);
        for (i, ai) in self.a.iter().enumerate() {
            let row = y_past.row(i);
            for (o, yl) in out.iter_mut().zip(row) {
                *o += ai * yl;
            }
        }
        let b0 = self.b[0];
        for (o, ul) in out.iter_mut().zip(u_now) {
            *o += b0 * ul;
        }
        for (j, bj) in self.b.iter().enumerate().skip(1) {
            let row = u_past.row(j - 1);
            for (o, ul) in out.iter_mut().zip(row) {
                *o += bj * ul;
            }
        }
    }
}

/// A [`NarxModel`] compiled for lane-major stepping:
/// a [`FlatRbf`] plus the regressor gather from ring-buffer histories.
#[derive(Debug, Clone)]
pub struct FlatNarx {
    input_lags: usize,
    output_lags: usize,
    rbf: FlatRbf,
}

impl FlatNarx {
    /// Compiles a trained NARX model. One-time cost.
    pub fn compile(m: &NarxModel) -> Self {
        FlatNarx {
            input_lags: m.orders().input_lags,
            output_lags: m.orders().output_lags,
            rbf: FlatRbf::compile(m.network()),
        }
    }

    /// Past-input lag count.
    pub fn input_lags(&self) -> usize {
        self.input_lags
    }

    /// Past-output lag count.
    pub fn output_lags(&self) -> usize {
        self.output_lags
    }

    /// Regressor dimension `input_lags + 1 + output_lags`.
    pub fn dim(&self) -> usize {
        self.input_lags + 1 + self.output_lags
    }

    /// The compiled network.
    pub fn rbf(&self) -> &FlatRbf {
        &self.rbf
    }

    /// Gathers the lane-major regressor `[u(k); u(k-1)..; y(k-1)..]` into
    /// `x` (length ≥ `dim * n_lanes`): row 0 is `u_now`, then past-input
    /// ring rows, then past-output ring rows — each a contiguous copy.
    ///
    /// # Panics
    ///
    /// Panics on lane-count mismatches or rings shallower than the orders.
    pub fn gather_lanes(&self, u_now: &[f64], u_past: &LaneRing, y_past: &LaneRing, x: &mut [f64]) {
        let n_lanes = u_now.len();
        assert!(
            x.len() >= self.dim() * n_lanes,
            "regressor buffer too short"
        );
        assert!(
            self.input_lags == 0 || u_past.lags() >= self.input_lags,
            "u ring too shallow"
        );
        assert!(
            self.output_lags == 0 || y_past.lags() >= self.output_lags,
            "y ring too shallow"
        );
        x[..n_lanes].copy_from_slice(u_now);
        for j in 0..self.input_lags {
            x[(1 + j) * n_lanes..(2 + j) * n_lanes].copy_from_slice(u_past.row(j));
        }
        let base = self.input_lags + 1;
        for j in 0..self.output_lags {
            x[(base + j) * n_lanes..(base + j + 1) * n_lanes].copy_from_slice(y_past.row(j));
        }
    }

    /// Batched one-step value + `∂/∂u(k)` over a pre-gathered lane-major
    /// regressor (see [`FlatNarx::gather_lanes`]); delegates to
    /// [`FlatRbf::eval_grad0_lanes`].
    pub fn step_lanes(
        &self,
        x: &[f64],
        n_lanes: usize,
        d2: &mut [f64],
        out_val: &mut [f64],
        out_g0: &mut [f64],
    ) {
        self.rbf.eval_grad0_lanes(x, n_lanes, d2, out_val, out_g0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arx::ArxOrders;
    use crate::narx::NarxOrders;

    fn net_2d() -> RbfNetwork {
        RbfNetwork::from_parts(
            2,
            vec![vec![0.1, -0.4], vec![1.2, 0.8], vec![-0.7, 0.3]],
            vec![0.5, 0.9, 1.3],
            vec![2.0, -1.0, 0.4],
            0.1,
            vec![0.3, -0.2],
        )
        .unwrap()
    }

    #[test]
    fn flat_rbf_matches_scalar_bitwise() {
        let net = net_2d();
        let flat = FlatRbf::compile(&net);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.n_centers(), 3);
        for x in [[0.0, 0.0], [0.3, -0.9], [2.0, 1.5], [-4.0, 0.2]] {
            assert_eq!(flat.eval(&x).to_bits(), net.eval(&x).to_bits());
            let (v, g0) = flat.eval_grad0(&x);
            assert_eq!(v.to_bits(), net.eval(&x).to_bits());
            assert_eq!(g0.to_bits(), net.grad_component(&x, 0).to_bits());
            let mut gf = [0.0; 2];
            flat.grad_into(&x, &mut gf);
            let gs = net.grad(&x);
            assert_eq!(gf[0].to_bits(), gs[0].to_bits());
            assert_eq!(gf[1].to_bits(), gs[1].to_bits());
        }
    }

    #[test]
    fn lanes_match_single_lane_bitwise() {
        let net = net_2d();
        let flat = FlatRbf::compile(&net);
        // 5 lanes (deliberately not a power of two), lane-major regressor.
        let lanes = 5usize;
        let xs = [
            [0.0, 0.0],
            [0.3, -0.9],
            [2.0, 1.5],
            [-4.0, 0.2],
            [0.77, 0.13],
        ];
        let mut x = vec![0.0; 2 * lanes];
        for (l, xi) in xs.iter().enumerate() {
            x[l] = xi[0];
            x[lanes + l] = xi[1];
        }
        let mut d2 = vec![0.0; lanes];
        let mut val = vec![0.0; lanes];
        let mut g0 = vec![0.0; lanes];
        flat.eval_grad0_lanes(&x, lanes, &mut d2, &mut val, &mut g0);
        for (l, xi) in xs.iter().enumerate() {
            let (v, g) = flat.eval_grad0(xi);
            assert_eq!(val[l].to_bits(), v.to_bits(), "lane {l}");
            assert_eq!(g0[l].to_bits(), g.to_bits(), "lane {l}");
        }
        flat.eval_lanes(&x, lanes, &mut d2, &mut val);
        for (l, xi) in xs.iter().enumerate() {
            assert_eq!(val[l].to_bits(), flat.eval(xi).to_bits(), "lane {l}");
        }
    }

    #[test]
    fn lane_ring_rotation() {
        let mut ring = LaneRing::new(3, 2);
        assert_eq!(ring.lags(), 3);
        assert_eq!(ring.n_lanes(), 2);
        ring.push_row(&[1.0, 10.0]);
        ring.push_row(&[2.0, 20.0]);
        ring.push_row(&[3.0, 30.0]);
        ring.push_row(&[4.0, 40.0]); // drops [1, 10]
        assert_eq!(ring.row(0), &[4.0, 40.0]);
        assert_eq!(ring.row(1), &[3.0, 30.0]);
        assert_eq!(ring.row(2), &[2.0, 20.0]);
        assert_eq!(ring.get(1, 1), 30.0);
        ring.fill_lane(0, 9.0);
        assert_eq!(ring.row(2), &[9.0, 20.0]);
        ring.fill(0.0);
        assert_eq!(ring.row(0), &[0.0, 0.0]);
        // Zero-lag ring: push is a no-op.
        let mut empty = LaneRing::new(0, 2);
        empty.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn flat_arx_matches_one_step() {
        let m = ArxModel::from_coefficients(
            ArxOrders { na: 2, nb: 1 },
            vec![1.1, -0.4],
            vec![0.7, 0.2],
        )
        .unwrap();
        let flat = FlatArx::compile(&m);
        assert_eq!(flat.na(), 2);
        assert_eq!(flat.nb(), 1);
        assert_eq!(flat.feedthrough(), 0.7);
        let mut u_past = LaneRing::new(1, 2);
        let mut y_past = LaneRing::new(2, 2);
        u_past.push_row(&[0.5, -0.1]);
        y_past.push_row(&[0.2, 0.0]);
        y_past.push_row(&[0.3, 0.9]); // newest
        let mut out = [0.0; 2];
        flat.step_lanes(&[1.0, 2.0], &u_past, &y_past, &mut out);
        let lane0 = m.one_step(&[1.0, 0.5], &[0.3, 0.2]);
        let lane1 = m.one_step(&[2.0, -0.1], &[0.9, 0.0]);
        assert_eq!(out[0].to_bits(), lane0.to_bits());
        assert_eq!(out[1].to_bits(), lane1.to_bits());
    }

    #[test]
    fn flat_narx_gather_and_step() {
        let net = RbfNetwork::from_parts(
            3,
            vec![vec![0.2, -0.1, 0.5]],
            vec![0.8],
            vec![1.5],
            0.05,
            vec![1.0, -0.5, 0.25],
        )
        .unwrap();
        let m = NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap();
        let flat = FlatNarx::compile(&m);
        assert_eq!(flat.dim(), 3);
        assert_eq!(flat.input_lags(), 1);
        assert_eq!(flat.output_lags(), 1);
        let mut u_past = LaneRing::new(1, 2);
        let mut y_past = LaneRing::new(1, 2);
        u_past.push_row(&[0.4, -0.6]);
        y_past.push_row(&[0.1, 0.7]);
        let mut x = vec![0.0; 3 * 2];
        flat.gather_lanes(&[1.0, 2.0], &u_past, &y_past, &mut x);
        assert_eq!(x, vec![1.0, 2.0, 0.4, -0.6, 0.1, 0.7]);
        let (mut d2, mut v, mut g) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        flat.step_lanes(&x, 2, &mut d2, &mut v, &mut g);
        let (v0, g0) = m.one_step_with_gradient(&[1.0, 0.4], &[0.1]);
        let (v1, g1) = m.one_step_with_gradient(&[2.0, -0.6], &[0.7]);
        assert_eq!(v[0].to_bits(), v0.to_bits());
        assert_eq!(g[0].to_bits(), g0.to_bits());
        assert_eq!(v[1].to_bits(), v1.to_bits());
        assert_eq!(g[1].to_bits(), g1.to_bits());
    }
}
