//! Linear ARX (AutoRegressive with eXtra input) models.
//!
//! The model structure is
//!
//! ```text
//! y(k) = sum_{i=1..na} a_i y(k-i) + sum_{j=0..nb} b_j u(k-j)
//! ```
//!
//! which is the receiver paper's linear submodel: the present output depends
//! on the present input sample `u(k)` (direct feed-through, essential for a
//! capacitive port current) plus `na` output lags and `nb` extra input lags.

use crate::{Error, Result};
use numkit::{lstsq, Matrix};
use serde::{Deserialize, Serialize};

/// ARX structural orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArxOrders {
    /// Number of output lags (`na >= 0`).
    pub na: usize,
    /// Number of *extra* input lags beyond the direct `u(k)` term
    /// (`nb >= 0`; the model always includes `b_0 u(k)`).
    pub nb: usize,
}

impl ArxOrders {
    /// The common symmetric choice used by the paper: `r` lags on both the
    /// input and the output.
    pub fn symmetric(r: usize) -> Self {
        ArxOrders { na: r, nb: r }
    }

    /// First sample index with a complete regressor.
    pub fn start(&self) -> usize {
        self.na.max(self.nb)
    }

    /// Number of model parameters.
    pub fn n_params(&self) -> usize {
        self.na + self.nb + 1
    }
}

/// Numerical diagnostics of an identification fit. Kept out of the
/// serialized model: they describe the estimation run, not the system.
#[derive(Debug, Clone, Copy)]
pub struct FitDiagnostics {
    /// Reciprocal condition estimate of the regression matrix (from the
    /// R diagonal of its QR factorization).
    pub r_cond: f64,
    /// Whether the condition-derived ridge fallback produced the estimate.
    /// Healthy excitation must leave this `false`; tests assert on it.
    pub ridge_fallback: bool,
    /// Root-mean-square one-step residual of the fit.
    pub rms: f64,
}

/// An estimated ARX model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArxModel {
    orders: ArxOrders,
    /// Output-lag coefficients `a_1..a_na`.
    a: Vec<f64>,
    /// Input coefficients `b_0..b_nb` (`b_0` multiplies `u(k)`).
    b: Vec<f64>,
}

impl ArxModel {
    /// Builds a model directly from coefficients (for tests and synthesis).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStructure`] if the coefficient counts do not
    /// match the orders.
    pub fn from_coefficients(orders: ArxOrders, a: Vec<f64>, b: Vec<f64>) -> Result<Self> {
        if a.len() != orders.na || b.len() != orders.nb + 1 {
            return Err(Error::InvalidStructure {
                message: format!(
                    "expected {} a-coefficients and {} b-coefficients, got {} and {}",
                    orders.na,
                    orders.nb + 1,
                    a.len(),
                    b.len()
                ),
            });
        }
        Ok(ArxModel { orders, a, b })
    }

    /// Estimates an ARX model from input/output data by least squares.
    ///
    /// # Errors
    ///
    /// * [`Error::LengthMismatch`] if `u` and `y` differ in length.
    /// * [`Error::InsufficientData`] if there are fewer usable rows than
    ///   parameters.
    pub fn fit(u: &[f64], y: &[f64], orders: ArxOrders) -> Result<Self> {
        Ok(Self::fit_with_diagnostics(u, y, orders)?.0)
    }

    /// [`ArxModel::fit`] returning the numerical diagnostics of the
    /// least-squares solve alongside the model, so identification harnesses
    /// can assert the ridge fallback never fires on healthy captures.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ArxModel::fit`].
    pub fn fit_with_diagnostics(
        u: &[f64],
        y: &[f64],
        orders: ArxOrders,
    ) -> Result<(Self, FitDiagnostics)> {
        if u.len() != y.len() {
            return Err(Error::LengthMismatch {
                message: format!("u has {} samples, y has {}", u.len(), y.len()),
            });
        }
        let start = orders.start();
        let n_rows = y.len().saturating_sub(start);
        let n_cols = orders.n_params();
        if n_rows < n_cols {
            return Err(Error::InsufficientData {
                needed: start + n_cols,
                got: y.len(),
            });
        }
        let mut phi = Matrix::zeros(n_rows, n_cols);
        let mut rhs = Vec::with_capacity(n_rows);
        for (row, k) in (start..y.len()).enumerate() {
            let mut c = 0;
            for i in 1..=orders.na {
                phi.set(row, c, y[k - i]);
                c += 1;
            }
            for j in 0..=orders.nb {
                phi.set(row, c, u[k - j]);
                c += 1;
            }
            rhs.push(y[k]);
        }
        let fit = lstsq::robust_ls(&phi, &rhs)?;
        let a = fit.coeffs[..orders.na].to_vec();
        let b = fit.coeffs[orders.na..].to_vec();
        let diag = FitDiagnostics {
            r_cond: fit.r_cond,
            ridge_fallback: fit.ridge_fallback,
            rms: fit.rms(),
        };
        Ok((ArxModel { orders, a, b }, diag))
    }

    /// Structural orders.
    pub fn orders(&self) -> ArxOrders {
        self.orders
    }

    /// Output-lag coefficients `a_1..a_na`.
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// Input coefficients `b_0..b_nb`.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Direct feed-through coefficient `b_0 = ∂y(k)/∂u(k)`.
    pub fn feedthrough(&self) -> f64 {
        self.b[0]
    }

    /// One-step output given lag buffers ordered newest-first:
    /// `y_hist[0] = y(k-1)`, `u_hist[0] = u(k)`.
    ///
    /// # Panics
    ///
    /// Panics if the histories are shorter than the model orders.
    pub fn one_step(&self, u_hist: &[f64], y_hist: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, ai) in self.a.iter().enumerate() {
            acc += ai * y_hist[i];
        }
        for (j, bj) in self.b.iter().enumerate() {
            acc += bj * u_hist[j];
        }
        acc
    }

    /// Free-run simulation from zero initial conditions: feeds the model its
    /// own outputs. Returns a vector the same length as `u`.
    pub fn simulate(&self, u: &[f64]) -> Vec<f64> {
        let n = u.len();
        let mut y = vec![0.0; n];
        for k in 0..n {
            let mut acc = 0.0;
            for (i, ai) in self.a.iter().enumerate() {
                if k > i {
                    acc += ai * y[k - 1 - i];
                }
            }
            for (j, bj) in self.b.iter().enumerate() {
                if k >= j {
                    acc += bj * u[k - j];
                }
            }
            y[k] = acc;
        }
        y
    }

    /// Spectral radius of the autoregressive companion matrix (the largest
    /// pole magnitude), estimated by power iteration. Zero for `na == 0`.
    pub fn spectral_radius(&self) -> f64 {
        let na = self.orders.na;
        if na == 0 {
            return 0.0;
        }
        // Power iteration on the companion matrix of
        // z^na - a1 z^(na-1) - ... - a_na. For complex pole pairs the norm
        // ratio oscillates, so we track a smoothed estimate over the final
        // iterations.
        let mut v = vec![1.0 / (na as f64).sqrt(); na];
        let mut radius = 0.0;
        let mut acc = 0.0;
        let mut acc_n = 0;
        for it in 0..256 {
            let mut w = vec![0.0; na];
            // First row: a coefficients.
            w[0] = self.a.iter().zip(&v).map(|(ai, vi)| ai * vi).sum();
            w[1..na].copy_from_slice(&v[..na - 1]);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                return 0.0;
            }
            radius = norm;
            if it >= 192 {
                acc += norm;
                acc_n += 1;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / norm;
            }
        }
        if acc_n > 0 {
            acc / acc_n as f64
        } else {
            radius
        }
    }

    /// Whether the autoregressive part is (strictly) stable.
    pub fn is_stable(&self) -> bool {
        self.spectral_radius() < 1.0 + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a: &[f64], b: &[f64], u: &[f64]) -> Vec<f64> {
        let model = ArxModel::from_coefficients(
            ArxOrders {
                na: a.len(),
                nb: b.len() - 1,
            },
            a.to_vec(),
            b.to_vec(),
        )
        .unwrap();
        model.simulate(u)
    }

    fn test_input(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| (0.3 * k as f64).sin() + 0.5 * (0.11 * k as f64).cos())
            .collect()
    }

    #[test]
    fn orders_helpers() {
        let o = ArxOrders::symmetric(2);
        assert_eq!(o, ArxOrders { na: 2, nb: 2 });
        assert_eq!(o.start(), 2);
        assert_eq!(o.n_params(), 5);
    }

    #[test]
    fn fit_recovers_second_order_system() {
        let a = [1.2, -0.5];
        let b = [0.3, 0.2, 0.1];
        let u = test_input(400);
        let y = synth(&a, &b, &u);
        let m = ArxModel::fit(&u, &y, ArxOrders { na: 2, nb: 2 }).unwrap();
        for (est, truth) in m.a().iter().zip(&a) {
            assert!((est - truth).abs() < 1e-8, "{est} vs {truth}");
        }
        for (est, truth) in m.b().iter().zip(&b) {
            assert!((est - truth).abs() < 1e-8);
        }
        assert!((m.feedthrough() - 0.3).abs() < 1e-8);
        assert_eq!(m.orders().na, 2);
    }

    #[test]
    fn healthy_identification_never_takes_ridge_fallback() {
        // A persistently exciting input gives a well-conditioned regression;
        // the robust-LS ridge fallback must stay untouched and the reported
        // conditioning must be sane.
        let a = [1.2, -0.5];
        let b = [0.3, 0.2, 0.1];
        let u = test_input(400);
        let y = synth(&a, &b, &u);
        let (m, diag) = ArxModel::fit_with_diagnostics(&u, &y, ArxOrders { na: 2, nb: 2 }).unwrap();
        assert!(!diag.ridge_fallback, "healthy data hit the ridge fallback");
        assert!(diag.r_cond > 1e-8, "r_cond {} too small", diag.r_cond);
        assert!(diag.rms < 1e-10, "exact synthetic data must fit exactly");
        assert!((m.a()[0] - 1.2).abs() < 1e-8);
    }

    #[test]
    fn duplicated_regressor_surfaces_ridge_fallback() {
        // u(k) == y(k) duplication makes the regression rank deficient; the
        // fit must survive (ridge) and report that it did so.
        let u = test_input(200);
        let y = u.clone();
        let (_, diag) = ArxModel::fit_with_diagnostics(&u, &y, ArxOrders { na: 1, nb: 1 }).unwrap();
        assert!(diag.ridge_fallback, "rank-deficient fit must be flagged");
    }

    #[test]
    fn simulate_matches_one_step_on_true_system() {
        let a = vec![0.9];
        let b = vec![1.0, -0.4];
        let m = ArxModel::from_coefficients(ArxOrders { na: 1, nb: 1 }, a, b).unwrap();
        let u = test_input(50);
        let y = m.simulate(&u);
        // one_step with exact histories reproduces the simulation.
        for k in 2..u.len() {
            let pred = m.one_step(&[u[k], u[k - 1]], &[y[k - 1]]);
            assert!((pred - y[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_validations() {
        let u = vec![0.0; 10];
        let y = vec![0.0; 9];
        assert!(matches!(
            ArxModel::fit(&u, &y, ArxOrders::symmetric(1)),
            Err(Error::LengthMismatch { .. })
        ));
        let u = vec![0.0; 3];
        let y = vec![0.0; 3];
        assert!(matches!(
            ArxModel::fit(&u, &y, ArxOrders::symmetric(2)),
            Err(Error::InsufficientData { .. })
        ));
    }

    #[test]
    fn from_coefficients_validates() {
        assert!(
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![], vec![1.0]).is_err()
        );
        assert!(ArxModel::from_coefficients(ArxOrders { na: 0, nb: 0 }, vec![], vec![1.0]).is_ok());
    }

    #[test]
    fn stability_check() {
        let stable =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![0.9], vec![1.0]).unwrap();
        assert!(stable.is_stable());
        let unstable =
            ArxModel::from_coefficients(ArxOrders { na: 1, nb: 0 }, vec![1.1], vec![1.0]).unwrap();
        assert!(!unstable.is_stable());
        let second = ArxModel::from_coefficients(
            ArxOrders { na: 2, nb: 0 },
            vec![1.2, -0.5], // poles inside the unit circle
            vec![1.0],
        )
        .unwrap();
        assert!(second.is_stable());
        let static_model =
            ArxModel::from_coefficients(ArxOrders { na: 0, nb: 0 }, vec![], vec![2.0]).unwrap();
        assert!(static_model.is_stable());
    }

    #[test]
    fn capacitor_like_behavior() {
        // Discrete derivative i = C (v(k) - v(k-1)) / Ts is an ARX model
        // with na = 0, nb = 1: the fit must recover the derivative weights.
        let c_over_ts = 3.0;
        let v = test_input(300);
        let i: Vec<f64> = v
            .iter()
            .enumerate()
            .map(|(k, &vk)| {
                if k == 0 {
                    0.0
                } else {
                    c_over_ts * (vk - v[k - 1])
                }
            })
            .collect();
        let m = ArxModel::fit(&v, &i[..], ArxOrders { na: 0, nb: 1 }).unwrap();
        assert!((m.b()[0] - c_over_ts).abs() < 1e-6);
        assert!((m.b()[1] + c_over_ts).abs() < 1e-6);
    }
}
