//! Orthogonal-least-squares forward selection of regressors.
//!
//! Implementation of the center-selection algorithm of Chen, Cowan & Grant
//! (*Orthogonal Least Squares Learning Algorithm for Radial Basis Function
//! Networks*, IEEE Trans. Neural Networks, 1991): candidate regressor
//! columns are orthogonalized incrementally (modified Gram–Schmidt) and at
//! each step the candidate with the largest *error reduction ratio*
//!
//! ```text
//! err_i = (w_i^T y)^2 / (w_i^T w_i · y^T y)
//! ```
//!
//! is selected, until either a maximum count is reached or the unexplained
//! energy drops below a tolerance.

use crate::{Error, Result};
use numkit::Matrix;

/// Outcome of a forward-selection run.
#[derive(Debug, Clone)]
pub struct OlsSelection {
    /// Indices of the selected candidate columns, in selection order.
    pub selected: Vec<usize>,
    /// Error reduction ratio of each selected column.
    pub err: Vec<f64>,
    /// Unexplained energy fraction `1 - sum(err)` after selection.
    pub residual_ratio: f64,
}

/// Stopping rule for [`select`].
#[derive(Debug, Clone, Copy)]
pub struct OlsStop {
    /// Maximum number of columns to select.
    pub max_terms: usize,
    /// Stop once `1 - sum(err) < tolerance`.
    pub tolerance: f64,
}

impl Default for OlsStop {
    fn default() -> Self {
        OlsStop {
            max_terms: 30,
            tolerance: 1e-6,
        }
    }
}

/// Selects candidate columns of `p` (N×M) that best explain `y` (length N).
///
/// The error-reduction ratios are maintained *incrementally*: after each
/// Gram–Schmidt step the cached `wᵀy` / `wᵀw` of every candidate receive a
/// rank-1 update instead of being recomputed from a deflated copy. Because
/// the selected basis vectors are mutually orthogonal, the projection of a
/// candidate's orthogonalized remainder onto the newest basis vector equals
/// the projection of its *original* column — so candidate columns are never
/// copied or deflated at all. This turns the per-step cost from four O(N)
/// passes per candidate (deflation write + re-read + two dot products) into
/// a single read-only dot product.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] if `y.len() != p.rows()`.
/// * [`Error::InvalidStructure`] if `max_terms == 0`.
/// * [`Error::InsufficientData`] for an empty target.
pub fn select(p: &Matrix, y: &[f64], stop: OlsStop) -> Result<OlsSelection> {
    if y.len() != p.rows() {
        return Err(Error::LengthMismatch {
            message: format!("target length {} != candidate rows {}", y.len(), p.rows()),
        });
    }
    if stop.max_terms == 0 {
        return Err(Error::InvalidStructure {
            message: "max_terms must be positive".into(),
        });
    }
    let n = p.rows();
    let m = p.cols();
    if n == 0 {
        return Err(Error::InsufficientData { needed: 1, got: 0 });
    }
    let yty: f64 = y.iter().map(|v| v * v).sum();
    if yty == 0.0 {
        // Nothing to explain.
        return Ok(OlsSelection {
            selected: Vec::new(),
            err: Vec::new(),
            residual_ratio: 0.0,
        });
    }

    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

    // Original candidate columns, extracted once (read-only from here on).
    let cols: Vec<Vec<f64>> = (0..m).map(|c| p.col_vec(c)).collect();
    // Cached statistics of each candidate's *orthogonalized* remainder
    // w_i = p_i - proj_basis(p_i), updated rank-1 after every selection.
    let mut wty: Vec<f64> = cols.iter().map(|c| dot(c, y)).collect();
    let mut wtw: Vec<f64> = cols.iter().map(|c| dot(c, c)).collect();
    let mut available: Vec<bool> = vec![true; m];
    // Materialized orthogonal basis (selected candidates only, ≤ max_terms).
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut basis_wtw: Vec<f64> = Vec::new();

    let mut selected = Vec::new();
    let mut errs = Vec::new();
    let mut explained = 0.0;

    let max_terms = stop.max_terms.min(m).min(n);
    while selected.len() < max_terms {
        // Pick the available candidate with the largest error reduction
        // ratio, straight from the cached statistics.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if !available[i] || wtw[i] < 1e-20 {
                continue;
            }
            let err = wty[i] * wty[i] / (wtw[i] * yty);
            if best.is_none_or(|(_, e)| err > e) {
                best = Some((i, err));
            }
        }
        let Some((idx, _)) = best else {
            break; // all remaining candidates are dependent
        };
        available[idx] = false;
        // Materialize the selected orthogonal vector by deflating the
        // original column against the (orthogonal) basis.
        let mut w_sel = cols[idx].clone();
        for (wj, &wjw) in basis.iter().zip(&basis_wtw) {
            let proj = dot(wj, &w_sel) / wjw;
            for (wv, bj) in w_sel.iter_mut().zip(wj) {
                *wv -= proj * bj;
            }
        }
        let wtw_sel = dot(&w_sel, &w_sel);
        if wtw_sel < 1e-20 {
            // Fully dependent on the basis despite the cached estimate
            // (numerical drift near dependence): drop and rescan.
            wtw[idx] = 0.0;
            continue;
        }
        let wty_sel = dot(&w_sel, y);
        let err = wty_sel * wty_sel / (wtw_sel * yty);
        explained += err;
        selected.push(idx);
        errs.push(err);

        if 1.0 - explained < stop.tolerance {
            break;
        }
        // Rank-1 update of the cached statistics. Orthogonality of the
        // basis makes ⟨w_sel, w_i⟩ = ⟨w_sel, p_i⟩, so one dot product with
        // the original column suffices.
        for i in 0..m {
            if !available[i] || wtw[i] < 1e-20 {
                continue;
            }
            let proj = dot(&w_sel, &cols[i]) / wtw_sel;
            wty[i] -= proj * wty_sel;
            wtw[i] = (wtw[i] - proj * proj * wtw_sel).max(0.0);
        }
        basis.push(w_sel);
        basis_wtw.push(wtw_sel);
    }

    Ok(OlsSelection {
        selected,
        err: errs,
        residual_ratio: (1.0 - explained).max(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y is exactly column 2 of the candidates: selection must find it first
    /// and explain everything with one term.
    #[test]
    fn picks_exact_match_first() {
        let n = 50;
        let mut p = Matrix::zeros(n, 3);
        let mut y = vec![0.0; n];
        for r in 0..n {
            let t = r as f64 * 0.1;
            p.set(r, 0, t.sin());
            p.set(r, 1, (2.0 * t).cos());
            p.set(r, 2, (0.5 * t).sin() * t);
            y[r] = p.get(r, 2);
        }
        let sel = select(&p, &y, OlsStop::default()).unwrap();
        assert_eq!(sel.selected[0], 2);
        assert!(sel.residual_ratio < 1e-9);
        assert!(sel.err[0] > 1.0 - 1e-9);
    }

    /// y is a combination of two columns: both are selected and the residual
    /// vanishes even with a distractor column present.
    #[test]
    fn selects_combination() {
        let n = 80;
        let mut p = Matrix::zeros(n, 3);
        let mut y = vec![0.0; n];
        for r in 0..n {
            let t = r as f64 * 0.05;
            p.set(r, 0, t.sin());
            p.set(r, 1, (3.0 * t + 0.4).cos());
            p.set(r, 2, (7.0 * t).sin()); // distractor
            y[r] = 2.0 * t.sin() - 0.7 * (3.0 * t + 0.4).cos();
        }
        let sel = select(
            &p,
            &y,
            OlsStop {
                max_terms: 2,
                tolerance: 1e-12,
            },
        )
        .unwrap();
        let mut s = sel.selected.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
        assert!(sel.residual_ratio < 1e-9, "residual {}", sel.residual_ratio);
    }

    #[test]
    fn tolerance_stops_early() {
        let n = 40;
        let mut p = Matrix::zeros(n, 4);
        let mut y = vec![0.0; n];
        for r in 0..n {
            let t = r as f64 * 0.1;
            p.set(r, 0, t.sin());
            p.set(r, 1, t.cos());
            p.set(r, 2, (2.0 * t).sin());
            p.set(r, 3, (3.0 * t).cos());
            y[r] = t.sin() + 1e-6 * (3.0 * t).cos();
        }
        let sel = select(
            &p,
            &y,
            OlsStop {
                max_terms: 4,
                tolerance: 1e-6,
            },
        )
        .unwrap();
        assert!(sel.selected.len() <= 2, "selected {:?}", sel.selected);
        assert_eq!(sel.selected[0], 0);
    }

    #[test]
    fn dependent_columns_skipped() {
        // Two identical columns: only one can be selected.
        let n = 30;
        let mut p = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for r in 0..n {
            let t = r as f64;
            p.set(r, 0, t);
            p.set(r, 1, t);
            y[r] = 3.0 * t + ((r % 3) as f64 - 1.0); // not exactly in span
        }
        let sel = select(
            &p,
            &y,
            OlsStop {
                max_terms: 2,
                tolerance: 0.0,
            },
        )
        .unwrap();
        assert_eq!(sel.selected.len(), 1);
    }

    #[test]
    fn zero_target_short_circuits() {
        let p = Matrix::zeros(5, 2);
        let sel = select(&p, &[0.0; 5], OlsStop::default()).unwrap();
        assert!(sel.selected.is_empty());
        assert_eq!(sel.residual_ratio, 0.0);
    }

    #[test]
    fn validation_errors() {
        let p = Matrix::zeros(5, 2);
        assert!(select(&p, &[0.0; 4], OlsStop::default()).is_err());
        assert!(select(
            &p,
            &[0.0; 5],
            OlsStop {
                max_terms: 0,
                tolerance: 0.0
            }
        )
        .is_err());
    }
}
