//! Identification signal generators.
//!
//! The estimation quality of black-box port models depends strongly on the
//! excitation. Following the paper:
//!
//! * receivers' *linear* submodel: a waveform "composed of few steps and
//!   spanning the range of the power supply" → [`step_train`];
//! * receivers' *nonlinear* (protection) submodels: "a multilevel voltage
//!   waveform within the port voltage range where the protection circuit
//!   cannot be neglected" → [`multilevel`];
//! * drivers' state submodels: the port is held in a logic state while the
//!   load side is excited across the output voltage range → [`multilevel`]
//!   again, with dwell times comparable to the device transition time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic multilevel staircase with smooth (raised-cosine) level
/// transitions, spanning `[lo, hi]`.
///
/// * `n_levels` random levels are drawn by stratified sampling: one uniform
///   draw inside each of `n_levels` equal sub-intervals of the range, then
///   shuffled — unlike plain uniform draws this cannot cluster and leave
///   coverage gaps, so the downstream RBF fit always sees the full range;
/// * each level lasts `dwell` samples;
/// * transitions take `edge` samples (`edge < dwell`);
/// * `seed` makes the signal reproducible.
///
/// Returns a signal of `n_levels * dwell` samples.
///
/// # Panics
///
/// Panics if `dwell == 0`, `edge >= dwell`, or `hi <= lo` — generator
/// misconfiguration is a programming error in the experiment definition.
pub fn multilevel(
    lo: f64,
    hi: f64,
    n_levels: usize,
    dwell: usize,
    edge: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(dwell > 0, "dwell must be positive");
    assert!(edge < dwell, "edge must be shorter than dwell");
    assert!(hi > lo, "range must be non-degenerate");
    let mut rng = StdRng::seed_from_u64(seed);
    // Stratified levels: one draw per equal-width stratum, then a
    // Fisher-Yates shuffle so consecutive levels still jump randomly.
    let width = (hi - lo) / n_levels as f64;
    let mut levels: Vec<f64> = (0..n_levels)
        .map(|i| lo + (i as f64 + rng.gen_range(0.0..1.0)) * width)
        .collect();
    for i in (1..n_levels).rev() {
        let j = rng.gen_range(0..=i);
        levels.swap(i, j);
    }
    // Make sure the extremes are visited so the fit covers the full range:
    // move the lowest and highest draws (the stratum-0 and stratum-(n-1)
    // representatives) to the front and snap them to the endpoints, so no
    // interior stratum loses its representative.
    if n_levels >= 2 {
        let i_min = levels
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("n_levels >= 2")
            .0;
        levels.swap(0, i_min);
        let i_max = levels
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("n_levels >= 2")
            .0;
        levels.swap(1, i_max);
        levels[0] = lo;
        levels[1] = hi;
    }
    let mut out = Vec::with_capacity(n_levels * dwell);
    let mut prev = levels[0];
    for &level in &levels {
        for k in 0..dwell {
            if k < edge && edge > 0 {
                // Raised-cosine edge from prev to level.
                let f = 0.5 * (1.0 - (std::f64::consts::PI * k as f64 / edge as f64).cos());
                out.push(prev + (level - prev) * f);
            } else {
                out.push(level);
            }
        }
        prev = level;
    }
    out
}

/// A staircase of `n_steps` equal steps from `lo` to `hi` and back down,
/// each level lasting `dwell` samples with raised-cosine edges of `edge`
/// samples. Used to excite the nearly linear region of receivers.
///
/// # Panics
///
/// Panics under the same conditions as [`multilevel`].
pub fn step_train(lo: f64, hi: f64, n_steps: usize, dwell: usize, edge: usize) -> Vec<f64> {
    assert!(n_steps > 0, "n_steps must be positive");
    assert!(dwell > 0, "dwell must be positive");
    assert!(edge < dwell, "edge must be shorter than dwell");
    let mut levels = Vec::with_capacity(2 * n_steps + 1);
    for k in 0..=n_steps {
        levels.push(lo + (hi - lo) * k as f64 / n_steps as f64);
    }
    for k in (0..n_steps).rev() {
        levels.push(lo + (hi - lo) * k as f64 / n_steps as f64);
    }
    let mut out = Vec::with_capacity(levels.len() * dwell);
    let mut prev = levels[0];
    for &level in &levels {
        for k in 0..dwell {
            if k < edge && edge > 0 {
                let f = 0.5 * (1.0 - (std::f64::consts::PI * k as f64 / edge as f64).cos());
                out.push(prev + (level - prev) * f);
            } else {
                out.push(level);
            }
        }
        prev = level;
    }
    out
}

/// A single sampled trapezoidal pulse: `low` baseline, rising to `high`
/// after `delay` samples with `rise` samples of edge, holding for `width`
/// samples, falling over `fall` samples, then `tail` samples of baseline.
pub fn trapezoid(
    low: f64,
    high: f64,
    delay: usize,
    rise: usize,
    width: usize,
    fall: usize,
    tail: usize,
) -> Vec<f64> {
    let n = delay + rise + width + fall + tail;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let v = if k < delay {
            low
        } else if k < delay + rise {
            low + (high - low) * (k - delay) as f64 / rise.max(1) as f64
        } else if k < delay + rise + width {
            high
        } else if k < delay + rise + width + fall {
            high - (high - low) * (k - delay - rise - width) as f64 / fall.max(1) as f64
        } else {
            low
        };
        out.push(v);
    }
    out
}

/// A random bit string of `n` bits (reproducible via `seed`), formatted as
/// a `'0'`/`'1'` string for [`circuit`] bit-pattern sources.
pub fn random_bits(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| if rng.gen::<bool>() { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilevel_spans_range_and_is_reproducible() {
        let s1 = multilevel(-1.0, 2.0, 20, 50, 10, 42);
        let s2 = multilevel(-1.0, 2.0, 20, 50, 10, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 1000);
        let lo = s1.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s1.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo + 1.0).abs() < 1e-9, "min {lo}");
        assert!((hi - 2.0).abs() < 1e-9, "max {hi}");
        // Different seed, different signal.
        let s3 = multilevel(-1.0, 2.0, 20, 50, 10, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn multilevel_edges_are_smooth() {
        let s = multilevel(0.0, 1.0, 6, 40, 8, 7);
        // Maximum per-sample jump bounded by the raised-cosine slope.
        let max_step = s
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0_f64, f64::max);
        // Full swing over 8 samples, peak slope pi/2/edge.
        assert!(max_step < 1.0 * std::f64::consts::PI / 16.0 + 1e-9);
    }

    #[test]
    fn step_train_shape() {
        let s = step_train(0.0, 3.0, 3, 20, 4);
        assert_eq!(s.len(), 7 * 20);
        // Peak equals hi.
        assert!(s.iter().any(|&v| (v - 3.0).abs() < 1e-12));
        // Ends at lo.
        assert!((s.last().unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_shape() {
        let s = trapezoid(0.0, 2.0, 5, 4, 10, 4, 5);
        assert_eq!(s.len(), 28);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[9], 2.0); // top
        assert_eq!(s[27], 0.0);
        assert!((s[5 + 2] - 1.0).abs() < 1e-12); // mid-rise
    }

    #[test]
    fn random_bits_reproducible() {
        let a = random_bits(64, 9);
        let b = random_bits(64, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.chars().all(|c| c == '0' || c == '1'));
        assert_ne!(a, random_bits(64, 10));
    }

    #[test]
    #[should_panic(expected = "edge must be shorter")]
    fn multilevel_validates_edge() {
        multilevel(0.0, 1.0, 4, 10, 10, 0);
    }
}
