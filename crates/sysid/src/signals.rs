//! Identification signal generators.
//!
//! The estimation quality of black-box port models depends strongly on the
//! excitation. Following the paper:
//!
//! * receivers' *linear* submodel: a waveform "composed of few steps and
//!   spanning the range of the power supply" → [`step_train`];
//! * receivers' *nonlinear* (protection) submodels: "a multilevel voltage
//!   waveform within the port voltage range where the protection circuit
//!   cannot be neglected" → [`multilevel`];
//! * drivers' state submodels: the port is held in a logic state while the
//!   load side is excited across the output voltage range → [`multilevel`]
//!   again, with dwell times comparable to the device transition time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic multilevel staircase with smooth (raised-cosine) level
/// transitions, spanning `[lo, hi]`.
///
/// * `n_levels` random levels are drawn by stratified sampling: one uniform
///   draw inside each of `n_levels` equal sub-intervals of the range, then
///   shuffled — unlike plain uniform draws this cannot cluster and leave
///   coverage gaps, so the downstream RBF fit always sees the full range;
/// * each level lasts `dwell` samples;
/// * transitions take `edge` samples (`edge < dwell`);
/// * `seed` makes the signal reproducible.
///
/// Returns a signal of `n_levels * dwell` samples.
///
/// # Panics
///
/// Panics if `dwell == 0`, `edge >= dwell`, or `hi <= lo` — generator
/// misconfiguration is a programming error in the experiment definition.
pub fn multilevel(
    lo: f64,
    hi: f64,
    n_levels: usize,
    dwell: usize,
    edge: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(dwell > 0, "dwell must be positive");
    assert!(edge < dwell, "edge must be shorter than dwell");
    assert!(hi > lo, "range must be non-degenerate");
    let mut rng = StdRng::seed_from_u64(seed);
    // Stratified levels: one draw per equal-width stratum, then a
    // Fisher-Yates shuffle so consecutive levels still jump randomly.
    let mut levels = stratified_levels(lo, hi, n_levels, &mut rng);
    shuffle(&mut levels, &mut rng);
    pin_extremes(&mut levels, lo, hi);
    staircase(&levels, dwell, edge)
}

/// A focus sub-range of a [`multilevel_focus`] excitation: the slice of the
/// port range that must receive a guaranteed `share` of the levels.
#[derive(Debug, Clone, Copy)]
pub struct Focus {
    /// Lower edge of the focus region.
    pub lo: f64,
    /// Upper edge of the focus region.
    pub hi: f64,
    /// Fraction of the levels stratified inside the region, in `(0, 1)`.
    pub share: f64,
}

impl Focus {
    /// A focus region `[lo, hi]` receiving `share` of the levels.
    pub fn new(lo: f64, hi: f64, share: f64) -> Self {
        Focus { lo, hi, share }
    }
}

/// Like [`multilevel`], but with a guaranteed stratified share of levels
/// inside a [`Focus`] sub-range of `[lo, hi]` — the excitation for
/// submodels whose nonlinearity lives in a small slice of the port range,
/// like the receiver protection circuits that only conduct beyond the
/// rails.
///
/// A plain staircase over the full range gives the focus region only
/// `n_levels · (focus width) / (hi − lo)` levels in expectation; when the
/// region is narrow, the downstream RBF fit sees too few samples exactly
/// where the current is largest. Here `ceil(focus.share · n_levels)` levels
/// are stratified *inside* the focus region (one per equal-width stratum —
/// no clustering, no gaps), the rest are stratified over the full range,
/// and the combined set is shuffled so consecutive levels still jump
/// randomly. The global extremes stay pinned to `lo` / `hi` like
/// [`multilevel`].
///
/// Returns a signal of `n_levels * dwell` samples.
///
/// # Panics
///
/// Panics under the same conditions as [`multilevel`], or when the focus
/// region is degenerate, reaches outside `[lo, hi]`, or its share is not
/// within `(0, 1)`.
pub fn multilevel_focus(
    lo: f64,
    hi: f64,
    focus: Focus,
    n_levels: usize,
    dwell: usize,
    edge: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(dwell > 0, "dwell must be positive");
    assert!(edge < dwell, "edge must be shorter than dwell");
    assert!(hi > lo, "range must be non-degenerate");
    assert!(focus.hi > focus.lo, "focus range must be non-degenerate");
    assert!(
        focus.lo >= lo && focus.hi <= hi,
        "focus must lie within the range"
    );
    assert!(
        focus.share > 0.0 && focus.share < 1.0,
        "focus share must be in (0, 1)"
    );
    let n_focus = ((focus.share * n_levels as f64).ceil() as usize)
        .clamp(1, n_levels.saturating_sub(1).max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut levels = stratified_levels(lo, hi, n_levels - n_focus, &mut rng);
    levels.extend(stratified_levels(focus.lo, focus.hi, n_focus, &mut rng));
    shuffle(&mut levels, &mut rng);
    pin_extremes(&mut levels, lo, hi);
    staircase(&levels, dwell, edge)
}

/// `n` shuffled stratified draws over `[lo, hi]`: one uniform sample inside
/// each of `n` equal-width strata, then a Fisher–Yates shuffle — the same
/// coverage discipline [`multilevel`] uses for excitation levels, exposed
/// for Monte-Carlo parameter sweeps (per-dimension stratified columns give
/// a Latin-hypercube plan when each dimension uses an independent seed).
///
/// Unlike plain uniform draws, every stratum is guaranteed a
/// representative, so `n` trials cannot cluster and leave a corner of the
/// parameter range untested. Reproducible for a given `seed`.
///
/// # Panics
///
/// Panics if `hi <= lo` or `n == 0` — a degenerate sweep range is a
/// programming error in the experiment definition.
pub fn stratified_samples(lo: f64, hi: f64, n: usize, seed: u64) -> Vec<f64> {
    assert!(hi > lo, "range must be non-degenerate");
    assert!(n > 0, "sample count must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = stratified_levels(lo, hi, n, &mut rng);
    shuffle(&mut samples, &mut rng);
    samples
}

/// One uniform draw inside each of `n` equal-width strata of `[lo, hi]` —
/// stratified sampling cannot cluster and leave coverage gaps the way
/// plain uniform draws can.
fn stratified_levels(lo: f64, hi: f64, n: usize, rng: &mut StdRng) -> Vec<f64> {
    let width = (hi - lo) / n as f64;
    (0..n)
        .map(|i| lo + (i as f64 + rng.gen_range(0.0..1.0)) * width)
        .collect()
}

/// In-place Fisher–Yates shuffle.
fn shuffle(levels: &mut [f64], rng: &mut StdRng) {
    for i in (1..levels.len()).rev() {
        let j = rng.gen_range(0..=i);
        levels.swap(i, j);
    }
}

/// Makes sure the extremes are visited so the fit covers the full range:
/// moves the lowest and highest draws (the stratum-0 and stratum-(n-1)
/// representatives) to the front and snaps them to the endpoints, so no
/// interior stratum loses its representative.
fn pin_extremes(levels: &mut [f64], lo: f64, hi: f64) {
    let n_levels = levels.len();
    if n_levels >= 2 {
        let i_min = levels
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("n_levels >= 2")
            .0;
        levels.swap(0, i_min);
        let i_max = levels
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("n_levels >= 2")
            .0;
        levels.swap(1, i_max);
        levels[0] = lo;
        levels[1] = hi;
    }
}

/// Synthesizes the staircase waveform: each level held `dwell` samples,
/// with raised-cosine transitions of `edge` samples.
fn staircase(levels: &[f64], dwell: usize, edge: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(levels.len() * dwell);
    let mut prev = levels[0];
    for &level in levels {
        for k in 0..dwell {
            if k < edge && edge > 0 {
                // Raised-cosine edge from prev to level.
                let f = 0.5 * (1.0 - (std::f64::consts::PI * k as f64 / edge as f64).cos());
                out.push(prev + (level - prev) * f);
            } else {
                out.push(level);
            }
        }
        prev = level;
    }
    out
}

/// A staircase of `n_steps` equal steps from `lo` to `hi` and back down,
/// each level lasting `dwell` samples with raised-cosine edges of `edge`
/// samples. Used to excite the nearly linear region of receivers.
///
/// # Panics
///
/// Panics under the same conditions as [`multilevel`].
pub fn step_train(lo: f64, hi: f64, n_steps: usize, dwell: usize, edge: usize) -> Vec<f64> {
    assert!(n_steps > 0, "n_steps must be positive");
    assert!(dwell > 0, "dwell must be positive");
    assert!(edge < dwell, "edge must be shorter than dwell");
    let mut levels = Vec::with_capacity(2 * n_steps + 1);
    for k in 0..=n_steps {
        levels.push(lo + (hi - lo) * k as f64 / n_steps as f64);
    }
    for k in (0..n_steps).rev() {
        levels.push(lo + (hi - lo) * k as f64 / n_steps as f64);
    }
    let mut out = Vec::with_capacity(levels.len() * dwell);
    let mut prev = levels[0];
    for &level in &levels {
        for k in 0..dwell {
            if k < edge && edge > 0 {
                let f = 0.5 * (1.0 - (std::f64::consts::PI * k as f64 / edge as f64).cos());
                out.push(prev + (level - prev) * f);
            } else {
                out.push(level);
            }
        }
        prev = level;
    }
    out
}

/// A single sampled trapezoidal pulse: `low` baseline, rising to `high`
/// after `delay` samples with `rise` samples of edge, holding for `width`
/// samples, falling over `fall` samples, then `tail` samples of baseline.
pub fn trapezoid(
    low: f64,
    high: f64,
    delay: usize,
    rise: usize,
    width: usize,
    fall: usize,
    tail: usize,
) -> Vec<f64> {
    let n = delay + rise + width + fall + tail;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let v = if k < delay {
            low
        } else if k < delay + rise {
            low + (high - low) * (k - delay) as f64 / rise.max(1) as f64
        } else if k < delay + rise + width {
            high
        } else if k < delay + rise + width + fall {
            high - (high - low) * (k - delay - rise - width) as f64 / fall.max(1) as f64
        } else {
            low
        };
        out.push(v);
    }
    out
}

/// A random bit string of `n` bits (reproducible via `seed`), formatted as
/// a `'0'`/`'1'` string for `circuit` bit-pattern sources.
pub fn random_bits(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| if rng.gen::<bool>() { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilevel_spans_range_and_is_reproducible() {
        let s1 = multilevel(-1.0, 2.0, 20, 50, 10, 42);
        let s2 = multilevel(-1.0, 2.0, 20, 50, 10, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 1000);
        let lo = s1.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s1.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo + 1.0).abs() < 1e-9, "min {lo}");
        assert!((hi - 2.0).abs() < 1e-9, "max {hi}");
        // Different seed, different signal.
        let s3 = multilevel(-1.0, 2.0, 20, 50, 10, 43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn multilevel_edges_are_smooth() {
        let s = multilevel(0.0, 1.0, 6, 40, 8, 7);
        // Maximum per-sample jump bounded by the raised-cosine slope.
        let max_step = s
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0_f64, f64::max);
        // Full swing over 8 samples, peak slope pi/2/edge.
        assert!(max_step < 1.0 * std::f64::consts::PI / 16.0 + 1e-9);
    }

    #[test]
    fn multilevel_focus_covers_every_focus_stratum() {
        let (lo, hi) = (-0.9, 4.2);
        let (share, n_levels, dwell) = (0.35, 50, 4);
        let focus = Focus::new(3.3, 4.2, share);
        let s = multilevel_focus(lo, hi, focus, n_levels, dwell, 1, 0xace);
        assert_eq!(s.len(), n_levels * dwell);
        // Recover the dwelt levels (the settled tail of each dwell block).
        let levels: Vec<f64> = s.chunks(dwell).map(|c| c[dwell - 1]).collect();
        // Every equal-width stratum of the focus region holds a level —
        // the coverage guarantee plain uniform draws cannot give.
        let n_focus = (share * n_levels as f64).ceil() as usize;
        let width = (focus.hi - focus.lo) / n_focus as f64;
        for k in 0..n_focus {
            let (a, b) = (
                focus.lo + k as f64 * width,
                focus.lo + (k + 1) as f64 * width,
            );
            assert!(
                levels.iter().any(|&v| v >= a - 1e-12 && v <= b + 1e-12),
                "focus stratum {k} [{a:.3},{b:.3}] has no level"
            );
        }
        // The full range is still spanned exactly.
        let min = levels.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((min - lo).abs() < 1e-9, "min {min}");
        assert!((max - hi).abs() < 1e-9, "max {max}");
        // Reproducible; different seed, different signal.
        assert_eq!(
            s,
            multilevel_focus(lo, hi, focus, n_levels, dwell, 1, 0xace)
        );
        assert_ne!(
            s,
            multilevel_focus(lo, hi, focus, n_levels, dwell, 1, 0xacf)
        );
    }

    #[test]
    #[should_panic(expected = "focus must lie within")]
    fn multilevel_focus_validates_focus_range() {
        multilevel_focus(0.0, 1.0, Focus::new(0.5, 1.5, 0.3), 10, 8, 2, 0);
    }

    #[test]
    fn step_train_shape() {
        let s = step_train(0.0, 3.0, 3, 20, 4);
        assert_eq!(s.len(), 7 * 20);
        // Peak equals hi.
        assert!(s.iter().any(|&v| (v - 3.0).abs() < 1e-12));
        // Ends at lo.
        assert!((s.last().unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_shape() {
        let s = trapezoid(0.0, 2.0, 5, 4, 10, 4, 5);
        assert_eq!(s.len(), 28);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[9], 2.0); // top
        assert_eq!(s[27], 0.0);
        assert!((s[5 + 2] - 1.0).abs() < 1e-12); // mid-rise
    }

    #[test]
    fn stratified_samples_cover_every_stratum() {
        let (lo, hi, n) = (-2.0, 3.0, 16);
        let s = stratified_samples(lo, hi, n, 0xbeef);
        assert_eq!(s.len(), n);
        let width = (hi - lo) / n as f64;
        for k in 0..n {
            let (a, b) = (lo + k as f64 * width, lo + (k + 1) as f64 * width);
            assert!(
                s.iter().any(|&v| v >= a && v <= b),
                "stratum {k} [{a:.3},{b:.3}] empty"
            );
        }
        // Reproducible; different seed, different draw.
        assert_eq!(s, stratified_samples(lo, hi, n, 0xbeef));
        assert_ne!(s, stratified_samples(lo, hi, n, 0xbef0));
    }

    #[test]
    fn random_bits_reproducible() {
        let a = random_bits(64, 9);
        let b = random_bits(64, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.chars().all(|c| c == '0' || c == '1'));
        assert_ne!(a, random_bits(64, 10));
    }

    #[test]
    #[should_panic(expected = "edge must be shorter")]
    fn multilevel_validates_edge() {
        multilevel(0.0, 1.0, 4, 10, 10, 0);
    }
}
