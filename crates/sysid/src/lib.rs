//! `sysid` — system-identification toolkit for port macromodeling.
//!
//! Implements the estimation machinery referenced by Stievano et al.
//! (DATE 2002):
//!
//! * [`arx`] — linear AutoRegressive models with eXtra input, estimated by
//!   least squares (Ljung, *System Identification*, 1987);
//! * [`rbf`] — Gaussian radial-basis-function networks with analytic input
//!   gradients (Sjöberg et al., *Automatica* 1995);
//! * [`ols`] — orthogonal-least-squares forward center selection
//!   (Chen, Cowan & Grant, IEEE TNN 1991);
//! * [`narx`] — nonlinear ARX models: an RBF network over lagged inputs and
//!   outputs, with one-step and free-run simulation;
//! * [`jury`] — the Jury (Schur–Cohn) stability criterion: exact unit-circle
//!   root containment by pure arithmetic, used by the static lint rules;
//! * [`flat`] — compiled, allocation-free evaluation kernels (row-major
//!   center slabs, ring-buffer histories, lane-major batched stepping) that
//!   reproduce the scalar paths bit-for-bit;
//! * [`signals`] — identification signal generators (multilevel staircases,
//!   step trains, trapezoids);
//! * [`metrics`] — fit metrics used to select model orders.
//!
//! # Example: identify a linear system with ARX
//!
//! ```
//! use sysid::arx::{ArxModel, ArxOrders};
//!
//! # fn main() -> Result<(), sysid::Error> {
//! // y(k) = 0.5 y(k-1) + u(k)
//! let u: Vec<f64> = (0..200).map(|k| ((k as f64) * 0.7).sin()).collect();
//! let mut y = vec![0.0];
//! for k in 1..u.len() {
//!     y.push(0.5 * y[k - 1] + u[k]);
//! }
//! let model = ArxModel::fit(&u, &y, ArxOrders { na: 1, nb: 0 })?;
//! assert!((model.a()[0] - 0.5).abs() < 1e-8);
//! assert!((model.b()[0] - 1.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod arx;
pub mod flat;
pub mod jury;
pub mod metrics;
pub mod narx;
pub mod ols;
pub mod rbf;
pub mod signals;

/// Errors produced by identification routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Not enough samples for the requested model structure.
    InsufficientData {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// Inconsistent input/output lengths.
    LengthMismatch {
        /// Description of the offending pair.
        message: String,
    },
    /// Invalid structural parameter (orders, center counts, widths...).
    InvalidStructure {
        /// Description of the violated constraint.
        message: String,
    },
    /// The underlying numerical routine failed.
    Numeric(numkit::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need at least {needed} samples, got {got}"
                )
            }
            Error::LengthMismatch { message } => write!(f, "length mismatch: {message}"),
            Error::InvalidStructure { message } => write!(f, "invalid structure: {message}"),
            Error::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<numkit::Error> for Error {
    fn from(e: numkit::Error) -> Self {
        Error::Numeric(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(Error::InsufficientData { needed: 10, got: 2 }
            .to_string()
            .contains("10"));
        assert!(Error::LengthMismatch {
            message: "u vs y".into()
        }
        .to_string()
        .contains("u vs y"));
        assert!(Error::InvalidStructure {
            message: "bad".into()
        }
        .to_string()
        .contains("bad"));
        let e: Error = numkit::Error::EmptyInput.into();
        assert!(e.to_string().contains("numeric"));
    }
}
