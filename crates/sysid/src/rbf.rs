//! Gaussian radial-basis-function networks.
//!
//! The network is *augmented* with an affine tail and supports per-center
//! widths (multi-scale RBF):
//!
//! ```text
//! f(x) = w0 + w_lin · x + sum_i w_i exp(-||x - c_i||^2 / (2 sigma_i^2))
//! ```
//!
//! The affine part captures the dominant linear behaviour of port currents
//! (resistive/capacitive) so the Gaussian units only need to model the
//! residual nonlinearity; this follows common practice in nonlinear
//! black-box identification (Sjöberg et al., 1995) and keeps extrapolation
//! outside the training hull benign (the Gaussians vanish, leaving the
//! affine trend).

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// A trained Gaussian RBF network with affine augmentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfNetwork {
    dim: usize,
    /// Gaussian centers, each of length `dim`.
    centers: Vec<Vec<f64>>,
    /// Per-center isotropic widths sigma_i.
    widths: Vec<f64>,
    /// Gaussian weights, parallel to `centers`.
    weights: Vec<f64>,
    /// Affine bias.
    bias: f64,
    /// Linear weights, length `dim`.
    linear: Vec<f64>,
}

impl RbfNetwork {
    /// Assembles a network from parts. This is the only way to build a
    /// non-trivial network, so every [`RbfNetwork`] in the program satisfies
    /// the invariants downstream consumers (the circuit devices and the
    /// model-exchange loader) rely on: parallel center/width/weight arrays,
    /// centers of the declared dimension, and finite parameters throughout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStructure`] on inconsistent dimensions, a
    /// non-positive width, or any non-finite parameter.
    pub fn from_parts(
        dim: usize,
        centers: Vec<Vec<f64>>,
        widths: Vec<f64>,
        weights: Vec<f64>,
        bias: f64,
        linear: Vec<f64>,
    ) -> Result<Self> {
        if linear.len() != dim {
            return Err(Error::InvalidStructure {
                message: format!("linear weights length {} != dim {dim}", linear.len()),
            });
        }
        if centers.len() != weights.len() || centers.len() != widths.len() {
            return Err(Error::InvalidStructure {
                message: format!(
                    "{} centers but {} weights and {} widths",
                    centers.len(),
                    weights.len(),
                    widths.len()
                ),
            });
        }
        if centers.iter().any(|c| c.len() != dim) {
            return Err(Error::InvalidStructure {
                message: "center dimension mismatch".into(),
            });
        }
        if widths.iter().any(|w| !(*w > 0.0 && w.is_finite())) {
            return Err(Error::InvalidStructure {
                message: "widths must be positive and finite".into(),
            });
        }
        if !bias.is_finite()
            || linear.iter().any(|v| !v.is_finite())
            || weights.iter().any(|v| !v.is_finite())
            || centers.iter().flatten().any(|v| !v.is_finite())
        {
            return Err(Error::InvalidStructure {
                message: "network parameters must be finite".into(),
            });
        }
        Ok(RbfNetwork {
            dim,
            centers,
            widths,
            weights,
            bias,
            linear,
        })
    }

    /// A purely affine network (no Gaussian units).
    ///
    /// # Panics
    ///
    /// Panics on non-finite coefficients — affine synthesis is a
    /// program-construction step, not a data path.
    pub fn affine(bias: f64, linear: Vec<f64>) -> Self {
        assert!(
            bias.is_finite() && linear.iter().all(|v| v.is_finite()),
            "affine network coefficients must be finite"
        );
        let dim = linear.len();
        RbfNetwork {
            dim,
            centers: Vec::new(),
            widths: Vec::new(),
            weights: Vec::new(),
            bias,
            linear,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of Gaussian units.
    pub fn n_centers(&self) -> usize {
        self.centers.len()
    }

    /// Per-center Gaussian widths.
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// Gaussian centers (each of length [`RbfNetwork::dim`]).
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Gaussian weights, parallel to [`RbfNetwork::centers`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Affine bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Linear (affine-tail) weights, length [`RbfNetwork::dim`].
    pub fn linear(&self) -> &[f64] {
        &self.linear
    }

    /// Gaussian activation of unit `i` at input `x`.
    ///
    /// The exponent is formed as `d2 * (-1 / (2 sigma^2))` — multiply by a
    /// reciprocal rather than divide — so the flat compiled runtime
    /// ([`crate::flat::FlatRbf`]), which precomputes that reciprocal once per
    /// center, reproduces this value bit-for-bit.
    #[inline]
    fn phi(&self, i: usize, x: &[f64]) -> f64 {
        let c = &self.centers[i];
        let w = self.widths[i];
        let k = -1.0 / (2.0 * w * w);
        let mut d2 = 0.0;
        for (xj, cj) in x.iter().zip(c) {
            let d = xj - cj;
            d2 += d * d;
        }
        (d2 * k).exp()
    }

    /// Evaluates the network at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim` (programming error in the caller).
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut acc = self.bias;
        for (wj, xj) in self.linear.iter().zip(x) {
            acc += wj * xj;
        }
        for i in 0..self.centers.len() {
            acc += self.weights[i] * self.phi(i, x);
        }
        acc
    }

    /// Partial derivative of the output with respect to input component `j`
    /// at `x` (analytic; used for Newton Jacobians in circuit simulation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim` or `j >= dim`.
    pub fn grad_component(&self, x: &[f64], j: usize) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        assert!(j < self.dim, "component out of range");
        let mut g = self.linear[j];
        for i in 0..self.centers.len() {
            let inv_s2 = 1.0 / (self.widths[i] * self.widths[i]);
            let phi = self.phi(i, x);
            g += self.weights[i] * phi * ((self.centers[i][j] - x[j]) * inv_s2);
        }
        g
    }

    /// Writes the full gradient at `x` into `out` without allocating.
    ///
    /// This is the form the circuit-coupled Newton solve uses per iteration;
    /// each Gaussian activation is evaluated once and scattered across all
    /// components, so the cost is one pass over the center slab instead of
    /// `dim` passes. Component values are identical (bit-for-bit) to
    /// [`RbfNetwork::grad_component`]: the per-component accumulation visits
    /// centers in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim` or `out.len() != dim`.
    pub fn grad_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.dim, "output dimension mismatch");
        out.copy_from_slice(&self.linear);
        for i in 0..self.centers.len() {
            let inv_s2 = 1.0 / (self.widths[i] * self.widths[i]);
            let wphi = self.weights[i] * self.phi(i, x);
            for (oj, (cj, xj)) in out.iter_mut().zip(self.centers[i].iter().zip(x)) {
                *oj += wphi * ((cj - xj) * inv_s2);
            }
        }
    }

    /// Full gradient at `x` (thin allocating wrapper over
    /// [`RbfNetwork::grad_into`]).
    pub fn grad(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.grad_into(x, &mut out);
        out
    }
}

/// Shared-width heuristic: `scale` times the median distance between
/// distinct center pairs (falls back to 1.0 for degenerate sets).
pub fn width_heuristic(centers: &[Vec<f64>], scale: f64) -> f64 {
    if centers.len() < 2 {
        return 1.0;
    }
    let mut dists = Vec::new();
    // Cap the pair count to keep this O(1e4) even for large center pools.
    let stride = (centers.len() * centers.len() / 8192).max(1);
    let mut count = 0usize;
    'outer: for i in 0..centers.len() {
        for j in (i + 1)..centers.len() {
            count += 1;
            if !count.is_multiple_of(stride) {
                continue;
            }
            let d2: f64 = centers[i]
                .iter()
                .zip(&centers[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d2 > 0.0 {
                dists.push(d2.sqrt());
            }
            if dists.len() > 8192 {
                break 'outer;
            }
        }
    }
    if dists.is_empty() {
        return 1.0;
    }
    // Partial selection instead of a full sort: only the middle order
    // statistic matters, and `dists` is a throwaway buffer.
    let med = numkit::stats::median_inplace(&mut dists);
    (med * scale).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> RbfNetwork {
        RbfNetwork::from_parts(
            2,
            vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            vec![0.5, 0.5],
            vec![2.0, -1.0],
            0.1,
            vec![0.3, -0.2],
        )
        .unwrap()
    }

    #[test]
    fn eval_at_center() {
        let net = simple_net();
        // At center 0: phi0 = 1, phi1 = exp(-2/(2*0.25)) = exp(-4).
        let expect = 0.1 + 0.0 + 2.0 * 1.0 - 1.0 * (-4.0_f64).exp();
        assert!((net.eval(&[0.0, 0.0]) - expect).abs() < 1e-12);
    }

    #[test]
    fn affine_network() {
        let net = RbfNetwork::affine(1.0, vec![2.0, 3.0]);
        assert_eq!(net.eval(&[1.0, 1.0]), 6.0);
        assert_eq!(net.grad(&[0.0, 0.0]), vec![2.0, 3.0]);
        assert_eq!(net.n_centers(), 0);
        assert_eq!(net.dim(), 2);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let net = simple_net();
        let h = 1e-6;
        for x in [[0.2, 0.7], [1.5, -0.3], [0.0, 0.0]] {
            for j in 0..2 {
                let mut xp = x;
                xp[j] += h;
                let fd = (net.eval(&xp) - net.eval(&x)) / h;
                let an = net.grad_component(&x, j);
                assert!((fd - an).abs() < 1e-5, "fd {fd} vs analytic {an}");
            }
        }
    }

    #[test]
    fn gaussians_vanish_far_away() {
        let net = simple_net();
        // Far from all centers the affine tail dominates.
        let x = [100.0, 100.0];
        let affine = 0.1 + 0.3 * 100.0 - 0.2 * 100.0;
        assert!((net.eval(&x) - affine).abs() < 1e-12);
    }

    #[test]
    fn from_parts_validation() {
        assert!(RbfNetwork::from_parts(2, vec![], vec![], vec![], 0.0, vec![0.0]).is_err());
        assert!(RbfNetwork::from_parts(
            1,
            vec![vec![0.0]],
            vec![1.0],
            vec![1.0, 2.0],
            0.0,
            vec![0.0]
        )
        .is_err());
        assert!(RbfNetwork::from_parts(
            2,
            vec![vec![0.0]],
            vec![1.0],
            vec![1.0],
            0.0,
            vec![0.0, 0.0]
        )
        .is_err());
        assert!(
            RbfNetwork::from_parts(1, vec![vec![0.0]], vec![0.0], vec![1.0], 0.0, vec![0.0])
                .is_err()
        );
        // Zero centers is fine (widths unused).
        assert!(RbfNetwork::from_parts(1, vec![], vec![], vec![], 0.0, vec![0.0]).is_ok());
        // Non-finite parameters are structural errors (the exchange loader
        // depends on this rejection).
        assert!(RbfNetwork::from_parts(1, vec![], vec![], vec![], f64::NAN, vec![0.0]).is_err());
        assert!(
            RbfNetwork::from_parts(1, vec![], vec![], vec![], 0.0, vec![f64::INFINITY]).is_err()
        );
        assert!(RbfNetwork::from_parts(
            1,
            vec![vec![f64::NAN]],
            vec![1.0],
            vec![1.0],
            0.0,
            vec![0.0]
        )
        .is_err());
        assert!(RbfNetwork::from_parts(
            1,
            vec![vec![0.0]],
            vec![1.0],
            vec![f64::NEG_INFINITY],
            0.0,
            vec![0.0]
        )
        .is_err());
    }

    #[test]
    fn accessors_expose_parts() {
        let net = simple_net();
        assert_eq!(net.centers().len(), 2);
        assert_eq!(net.weights(), &[2.0, -1.0]);
        assert_eq!(net.bias(), 0.1);
        assert_eq!(net.linear(), &[0.3, -0.2]);
        assert_eq!(net.widths(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn affine_rejects_non_finite() {
        RbfNetwork::affine(f64::NAN, vec![0.0]);
    }

    #[test]
    fn width_heuristic_values() {
        let centers = vec![vec![0.0], vec![1.0], vec![2.0]];
        let w = width_heuristic(&centers, 1.0);
        assert!((w - 1.0).abs() < 0.5, "median-based width {w}");
        assert_eq!(width_heuristic(&centers[..1], 1.0), 1.0);
        // Identical centers degenerate to the fallback.
        let same = vec![vec![1.0], vec![1.0]];
        assert_eq!(width_heuristic(&same, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn eval_checks_dim() {
        simple_net().eval(&[0.0]);
    }

    #[test]
    fn width_heuristic_equals_sort_based_median() {
        // The selection-based quantile must reproduce the full-sort median
        // exactly. Recompute the capped pairwise-distance collection here
        // (same stride/cap logic) and compare against `stats::median`.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        for n in [2usize, 3, 7, 40, 150] {
            let centers: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next(), next()]).collect();
            let stride = (n * n / 8192).max(1);
            let mut dists = Vec::new();
            let mut count = 0usize;
            'outer: for i in 0..n {
                for j in (i + 1)..n {
                    count += 1;
                    if !count.is_multiple_of(stride) {
                        continue;
                    }
                    let d2: f64 = centers[i]
                        .iter()
                        .zip(&centers[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if d2 > 0.0 {
                        dists.push(d2.sqrt());
                    }
                    if dists.len() > 8192 {
                        break 'outer;
                    }
                }
            }
            let expect = (numkit::stats::median(&dists) * 1.3).max(1e-12);
            let got = width_heuristic(&centers, 1.3);
            assert_eq!(got.to_bits(), expect.to_bits(), "n={n}");
        }
    }

    #[test]
    fn grad_into_matches_grad_components() {
        let net = simple_net();
        for x in [[0.2, 0.7], [1.5, -0.3], [0.0, 0.0], [-2.0, 4.0]] {
            let mut out = [0.0; 2];
            net.grad_into(&x, &mut out);
            let g = net.grad(&x);
            for j in 0..2 {
                let gc = net.grad_component(&x, j);
                assert_eq!(out[j].to_bits(), gc.to_bits());
                assert_eq!(g[j].to_bits(), gc.to_bits());
            }
        }
    }
}
