//! Jury (Schur–Cohn) stability test for discrete-time polynomials.
//!
//! Decides whether all roots of a real polynomial lie strictly inside the
//! unit circle using only rational arithmetic — no eigensolver, no root
//! finding. The implementation runs the reflection-coefficient (inverse
//! Levinson / Schur–Cohn) recursion: normalize the polynomial monic, read the
//! trailing coefficient as a reflection coefficient `k`, require `|k| < 1`,
//! and deflate
//!
//! ```text
//! a'(i) = (a(i) − k · a(n − i)) / (1 − k²),   i = 0..n−1
//! ```
//!
//! repeating until degree zero. The polynomial is Schur-stable iff every
//! reflection coefficient satisfies `|k| < 1`; `min(1 − |k|)` over the
//! recursion is a useful scalar stability margin (0 at the unit circle).
//!
//! This is the static-analysis counterpart of
//! [`ArxModel::spectral_radius`](crate::arx::ArxModel::spectral_radius):
//! exact, deterministic, and cheap enough to run on every artifact load.

/// Outcome of a Jury stability test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JuryResult {
    /// True iff every root lies strictly inside the unit circle.
    pub stable: bool,
    /// `min(1 − |k|)` over the reflection coefficients: positive for stable
    /// polynomials (distance from the unit circle in reflection-coefficient
    /// space), ≤ 0 when a root is on or outside the circle.
    pub margin: f64,
}

impl JuryResult {
    fn unstable(margin: f64) -> Self {
        JuryResult {
            stable: false,
            margin,
        }
    }
}

/// Jury test on polynomial coefficients, highest degree first.
///
/// `coeffs = [c0, c1, …, cn]` represents `c0·z^n + c1·z^(n−1) + … + cn`.
/// Requires `c0 ≠ 0` (the polynomial is normalized monic internally);
/// non-finite or empty input reports unstable.
///
/// ```
/// use sysid::jury::jury;
/// // z − 0.5: root at 0.5, stable with margin 0.5.
/// let r = jury(&[1.0, -0.5]);
/// assert!(r.stable && (r.margin - 0.5).abs() < 1e-12);
/// // z − 1.2: root outside the unit circle.
/// assert!(!jury(&[1.0, -1.2]).stable);
/// ```
pub fn jury(coeffs: &[f64]) -> JuryResult {
    if coeffs.is_empty() || coeffs.iter().any(|c| !c.is_finite()) || coeffs[0] == 0.0 {
        return JuryResult::unstable(f64::NEG_INFINITY);
    }
    let lead = coeffs[0];
    let mut a: Vec<f64> = coeffs.iter().map(|&c| c / lead).collect();
    let mut margin = f64::INFINITY;
    while a.len() > 1 {
        let n = a.len() - 1;
        let k = a[n];
        if !k.is_finite() {
            return JuryResult::unstable(f64::NEG_INFINITY);
        }
        let m = 1.0 - k.abs();
        margin = margin.min(m);
        if m <= 0.0 {
            return JuryResult::unstable(margin);
        }
        // 1 − k² is bounded away from 0 exactly when the margin is, so this
        // division is safe whenever we did not already bail out above.
        let denom = 1.0 - k * k;
        let next: Vec<f64> = (0..n).map(|i| (a[i] - k * a[n - i]) / denom).collect();
        a = next;
    }
    JuryResult {
        stable: true,
        // Degree-0 polynomials are vacuously stable with no finite margin to
        // report; clamp to 1 (the margin of the zero polynomial z^n).
        margin: if margin.is_finite() { margin } else { 1.0 },
    }
}

/// Jury test on the feedback (autoregressive) part of a difference equation.
///
/// For `y(k) = a1·y(k−1) + … + an·y(k−n) + (input terms)` the characteristic
/// polynomial is `z^n − a1·z^(n−1) − … − an`; the recursion is stable iff that
/// polynomial is Schur-stable. This matches the coefficient convention of
/// [`ArxModel::a`](crate::arx::ArxModel::a) and of the output-lag tail of an
/// RBF network's linear term.
pub fn feedback_stability(a: &[f64]) -> JuryResult {
    let mut coeffs = Vec::with_capacity(a.len() + 1);
    coeffs.push(1.0);
    coeffs.extend(a.iter().map(|&ai| -ai));
    jury(&coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arx::{ArxModel, ArxOrders};

    fn poly_from_roots(roots: &[f64]) -> Vec<f64> {
        let mut c = vec![1.0];
        for &r in roots {
            // Multiply by (z − r).
            let mut next = vec![0.0; c.len() + 1];
            for (i, &ci) in c.iter().enumerate() {
                next[i] += ci;
                next[i + 1] -= ci * r;
            }
            c = next;
        }
        c
    }

    #[test]
    fn degree_zero_and_empty_inputs() {
        assert!(jury(&[2.0]).stable);
        assert!(!jury(&[]).stable);
        assert!(!jury(&[0.0, 1.0]).stable);
        assert!(!jury(&[1.0, f64::NAN]).stable);
    }

    #[test]
    fn real_roots_inside_circle_are_stable() {
        let p = poly_from_roots(&[0.5, 0.8, -0.9, 0.0]);
        let r = jury(&p);
        assert!(r.stable, "expected stable, got {r:?}");
        assert!(r.margin > 0.0);
    }

    #[test]
    fn root_outside_circle_is_unstable() {
        let p = poly_from_roots(&[0.5, 1.1]);
        assert!(!jury(&p).stable);
        let p = poly_from_roots(&[-1.05, 0.2, 0.3]);
        assert!(!jury(&p).stable);
    }

    #[test]
    fn root_on_unit_circle_is_rejected() {
        // z − 1 (integrator): marginal, must be reported unstable.
        let r = jury(&[1.0, -1.0]);
        assert!(!r.stable);
        assert!(r.margin <= 0.0);
    }

    #[test]
    fn complex_pair_inside_circle() {
        // z² − 1.2 z + 0.72: roots 0.6 ± 0.6i, |root| ≈ 0.849.
        let r = jury(&[1.0, -1.2, 0.72]);
        assert!(r.stable);
        // z² − 1.2 z + 1.04: roots 0.6 ± 0.8i on |z| ≈ 1.02.
        assert!(!jury(&[1.0, -1.2, 1.04]).stable);
    }

    #[test]
    fn non_monic_input_is_normalized() {
        let mut p = poly_from_roots(&[0.4, -0.3]);
        for c in &mut p {
            *c *= -3.5;
        }
        assert!(jury(&p).stable);
    }

    #[test]
    fn margin_tracks_distance_to_instability() {
        let tight = jury(&poly_from_roots(&[0.99]));
        let loose = jury(&poly_from_roots(&[0.5]));
        assert!(tight.stable && loose.stable);
        assert!(tight.margin < loose.margin);
    }

    #[test]
    fn feedback_convention_matches_arx_models() {
        // y(k) = 1.3 y(k−1) − 0.4 y(k−2): roots 0.5 and 0.8 → stable.
        let r = feedback_stability(&[1.3, -0.4]);
        assert!(r.stable);
        // y(k) = 1.6 y(k−1) − 0.55 y(k−2): roots 0.5 and 1.1 → unstable.
        assert!(!feedback_stability(&[1.6, -0.55]).stable);
    }

    #[test]
    fn jury_agrees_with_power_iteration_spectral_radius() {
        // Cross-check against ArxModel::spectral_radius on a deterministic
        // grid of feedback coefficient pairs (na = 2).
        let grid = [-1.6, -1.1, -0.8, -0.3, 0.0, 0.4, 0.9, 1.2, 1.7];
        for &a1 in &grid {
            for &a2 in &grid {
                let model = ArxModel::from_coefficients(
                    ArxOrders { na: 2, nb: 0 },
                    vec![a1, a2],
                    vec![1.0],
                )
                .expect("valid orders");
                let rho = model.spectral_radius();
                // Skip the numerically ambiguous band around the circle where
                // power iteration tolerance and Jury exactness may disagree.
                if (rho - 1.0).abs() < 1e-6 {
                    continue;
                }
                let verdict = feedback_stability(&[a1, a2]);
                assert_eq!(
                    verdict.stable,
                    rho < 1.0,
                    "a1={a1} a2={a2}: jury={verdict:?} rho={rho}"
                );
            }
        }
    }
}
