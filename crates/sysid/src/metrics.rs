//! Fit-quality metrics for identification and validation.

pub use numkit::stats::{nmse, rmse};

/// "Fit percentage" as used by common identification toolboxes:
/// `100 * (1 - ||y - y_hat|| / ||y - mean(y)||)`. 100 is a perfect match,
/// 0 means no better than the mean, negative values are worse than the mean.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fit_percent(y_hat: &[f64], y: &[f64]) -> f64 {
    assert_eq!(y_hat.len(), y.len(), "fit_percent requires equal lengths");
    if y.is_empty() {
        return 100.0;
    }
    let mean = numkit::stats::mean(y);
    let num: f64 = y_hat
        .iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = y
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        .sqrt();
    if den == 0.0 {
        if num == 0.0 {
            return 100.0;
        }
        return f64::NEG_INFINITY;
    }
    100.0 * (1.0 - num / den)
}

/// Maximum absolute error between two equal-length signals.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_percent_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(fit_percent(&y, &y), 100.0);
        let mean = [2.0, 2.0, 2.0];
        assert!(fit_percent(&mean, &y).abs() < 1e-9);
        assert_eq!(fit_percent(&[], &[]), 100.0);
        // Constant reference.
        assert_eq!(fit_percent(&[5.0], &[5.0]), 100.0);
        assert_eq!(fit_percent(&[4.0], &[5.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn max_abs_error_basics() {
        assert_eq!(max_abs_error(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_error(&[], &[]), 0.0);
    }

    #[test]
    fn reexports_available() {
        assert_eq!(rmse(&[1.0], &[1.0]), 0.0);
        assert_eq!(nmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }
}
