//! Nonlinear ARX models: Gaussian RBF networks over lagged signals.
//!
//! A NARX model of dynamic order `r` computes
//!
//! ```text
//! y(k) = F( u(k), u(k-1), ..., u(k-r),  y(k-1), ..., y(k-r) )
//! ```
//!
//! with `F` a [`RbfNetwork`]. This is exactly the submodel structure of the
//! PW-RBF driver model (port current as a function of present + past port
//! voltages and past port currents) and of the receiver protection-circuit
//! submodels in Stievano et al. (DATE 2002).

use crate::ols::{self, OlsStop};
use crate::rbf::{width_heuristic, RbfNetwork};
use crate::{Error, Result};
use numkit::{lstsq, Matrix};
use serde::{Deserialize, Serialize};

/// Structural orders of a NARX model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NarxOrders {
    /// Number of *past* input samples (the present `u(k)` is always used).
    pub input_lags: usize,
    /// Number of past output samples.
    pub output_lags: usize,
}

impl NarxOrders {
    /// The paper's symmetric choice: dynamic order `r` on both signals.
    pub fn dynamic(r: usize) -> Self {
        NarxOrders {
            input_lags: r,
            output_lags: r,
        }
    }

    /// Regressor dimension.
    pub fn dim(&self) -> usize {
        self.input_lags + 1 + self.output_lags
    }

    /// First index with a complete regressor.
    pub fn start(&self) -> usize {
        self.input_lags.max(self.output_lags)
    }
}

/// Training configuration for [`NarxModel::fit`].
#[derive(Debug, Clone, Copy)]
pub struct RbfTrainConfig {
    /// Maximum number of Gaussian centers selected by OLS.
    pub max_centers: usize,
    /// Maximum number of candidate centers drawn from the training rows.
    pub candidate_pool: usize,
    /// Width heuristic scale (σ = scale × median candidate distance).
    pub width_scale: f64,
    /// OLS stopping tolerance on the unexplained energy fraction.
    pub ols_tolerance: f64,
}

impl Default for RbfTrainConfig {
    fn default() -> Self {
        RbfTrainConfig {
            max_centers: 15,
            candidate_pool: 160,
            width_scale: 1.0,
            ols_tolerance: 1e-7,
        }
    }
}

/// A trained NARX model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NarxModel {
    orders: NarxOrders,
    net: RbfNetwork,
}

impl NarxModel {
    /// Wraps an existing network (dimension must match the orders).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStructure`] on dimension mismatch.
    pub fn from_network(orders: NarxOrders, net: RbfNetwork) -> Result<Self> {
        if net.dim() != orders.dim() {
            return Err(Error::InvalidStructure {
                message: format!(
                    "network dimension {} != regressor dimension {}",
                    net.dim(),
                    orders.dim()
                ),
            });
        }
        Ok(NarxModel { orders, net })
    }

    /// Structural orders.
    pub fn orders(&self) -> NarxOrders {
        self.orders
    }

    /// The underlying network.
    pub fn network(&self) -> &RbfNetwork {
        &self.net
    }

    /// Builds the regressor vector from newest-first histories:
    /// `u_hist[0] = u(k)`, `u_hist[1] = u(k-1)`, ...;
    /// `y_hist[0] = y(k-1)`, `y_hist[1] = y(k-2)`, ...
    ///
    /// # Panics
    ///
    /// Panics if the histories are shorter than the orders require.
    pub fn regressor(&self, u_hist: &[f64], y_hist: &[f64]) -> Vec<f64> {
        let o = self.orders;
        assert!(u_hist.len() > o.input_lags, "input history too short");
        assert!(y_hist.len() >= o.output_lags, "output history too short");
        let mut x = Vec::with_capacity(o.dim());
        x.extend_from_slice(&u_hist[..=o.input_lags]);
        x.extend_from_slice(&y_hist[..o.output_lags]);
        x
    }

    /// One-step prediction from newest-first histories (see
    /// [`NarxModel::regressor`] for the layout).
    pub fn one_step(&self, u_hist: &[f64], y_hist: &[f64]) -> f64 {
        self.net.eval(&self.regressor(u_hist, y_hist))
    }

    /// One-step prediction plus the derivative with respect to the *present*
    /// input `u(k)` — the quantity a circuit solver needs for its Jacobian.
    pub fn one_step_with_gradient(&self, u_hist: &[f64], y_hist: &[f64]) -> (f64, f64) {
        let x = self.regressor(u_hist, y_hist);
        (self.net.eval(&x), self.net.grad_component(&x, 0))
    }

    /// Free-run simulation: the model is fed its own outputs. The first
    /// `orders.start()` outputs are copied from `y_init` (zeros if shorter).
    pub fn simulate(&self, u: &[f64], y_init: &[f64]) -> Vec<f64> {
        let o = self.orders;
        let start = o.start();
        let n = u.len();
        let mut y = vec![0.0; n];
        for (k, yk) in y.iter_mut().enumerate().take(start.min(n)) {
            *yk = y_init.get(k).copied().unwrap_or(0.0);
        }
        let mut x = vec![0.0; o.dim()];
        for k in start..n {
            for j in 0..=o.input_lags {
                x[j] = u[k - j];
            }
            for j in 0..o.output_lags {
                x[o.input_lags + 1 + j] = y[k - 1 - j];
            }
            y[k] = self.net.eval(&x);
        }
        y
    }

    /// Estimates a NARX model from data.
    ///
    /// Pipeline (following Chen–Cowan–Grant + affine augmentation):
    /// 1. build regressor rows;
    /// 2. fit the affine tail by least squares;
    /// 3. draw candidate centers from the rows (uniform stride subsample);
    /// 4. set the shared width by the median-distance heuristic;
    /// 5. OLS-select Gaussian units on the affine residual;
    /// 6. refit all weights (bias + linear + Gaussian) jointly.
    ///
    /// # Errors
    ///
    /// * [`Error::LengthMismatch`] if `u` and `y` differ in length.
    /// * [`Error::InsufficientData`] if too few rows are available.
    /// * [`Error::InvalidStructure`] for a degenerate configuration.
    pub fn fit(u: &[f64], y: &[f64], orders: NarxOrders, cfg: RbfTrainConfig) -> Result<Self> {
        if u.len() != y.len() {
            return Err(Error::LengthMismatch {
                message: format!("u has {} samples, y has {}", u.len(), y.len()),
            });
        }
        if cfg.max_centers == 0 || cfg.candidate_pool == 0 || cfg.width_scale <= 0.0 {
            return Err(Error::InvalidStructure {
                message: "max_centers, candidate_pool and width_scale must be positive".into(),
            });
        }
        let start = orders.start();
        let dim = orders.dim();
        let n_rows = y.len().saturating_sub(start);
        if n_rows < dim + 2 {
            return Err(Error::InsufficientData {
                needed: start + dim + 2,
                got: y.len(),
            });
        }

        // 1. Regressor rows and targets.
        let mut rows = Vec::with_capacity(n_rows);
        let mut targets = Vec::with_capacity(n_rows);
        for k in start..y.len() {
            let mut x = Vec::with_capacity(dim);
            for j in 0..=orders.input_lags {
                x.push(u[k - j]);
            }
            for j in 1..=orders.output_lags {
                x.push(y[k - j]);
            }
            rows.push(x);
            targets.push(y[k]);
        }

        // 2. Affine pre-fit.
        let mut a_aff = Matrix::zeros(n_rows, dim + 1);
        for (r, row) in rows.iter().enumerate() {
            a_aff.set(r, 0, 1.0);
            for (c, v) in row.iter().enumerate() {
                a_aff.set(r, c + 1, *v);
            }
        }
        let aff = lstsq::robust_ls(&a_aff, &targets)?;
        let resid: Vec<f64> = a_aff
            .matvec(&aff.coeffs)?
            .iter()
            .zip(&targets)
            .map(|(p, t)| t - p)
            .collect();

        // 3. Candidate centers: uniform stride over the rows, each offered
        // at several widths (multi-scale RBF). Sharp features such as diode
        // knees need narrow units while the broad trend wants wide ones;
        // OLS picks whichever scale reduces the residual most.
        let stride = (n_rows / cfg.candidate_pool).max(1);
        let base_centers: Vec<Vec<f64>> = rows.iter().step_by(stride).cloned().collect();
        let base_width = width_heuristic(&base_centers, cfg.width_scale);
        const SCALES: [f64; 3] = [1.0, 0.3, 0.1];
        let mut candidates: Vec<(Vec<f64>, f64)> = Vec::with_capacity(base_centers.len() * 3);
        for c in &base_centers {
            for s in SCALES {
                candidates.push((c.clone(), base_width * s));
            }
        }

        // 4–5. OLS selection on the residual. The squared distance is
        // computed once per base center and shared by all width scales;
        // far-field responses (exponent beyond ~1e-20) skip the `exp` call
        // entirely — narrow scales zero out most of the matrix.
        let mut phi = Matrix::zeros(n_rows, candidates.len());
        for (r, row) in rows.iter().enumerate() {
            for (b, cand) in base_centers.iter().enumerate() {
                let d2: f64 = row.iter().zip(cand).map(|(a, b)| (a - b) * (a - b)).sum();
                for (si, s) in SCALES.iter().enumerate() {
                    let w = base_width * s;
                    let arg = d2 / (2.0 * w * w);
                    if arg < 46.0 {
                        phi.set(r, b * SCALES.len() + si, (-arg).exp());
                    }
                }
            }
        }
        let sel = ols::select(
            &phi,
            &resid,
            OlsStop {
                max_terms: cfg.max_centers,
                tolerance: cfg.ols_tolerance,
            },
        )?;
        let centers: Vec<Vec<f64>> = sel
            .selected
            .iter()
            .map(|&i| candidates[i].0.clone())
            .collect();
        let widths: Vec<f64> = sel.selected.iter().map(|&i| candidates[i].1).collect();

        // 6. Joint refit: [1 | x | phi_selected].
        let n_cols = 1 + dim + centers.len();
        let mut a_full = Matrix::zeros(n_rows, n_cols);
        for r in 0..n_rows {
            a_full.set(r, 0, 1.0);
            for c in 0..dim {
                a_full.set(r, c + 1, rows[r][c]);
            }
            for (c, &sel_idx) in sel.selected.iter().enumerate() {
                a_full.set(r, 1 + dim + c, phi.get(r, sel_idx));
            }
        }
        let full = lstsq::robust_ls(&a_full, &targets)?;
        let bias = full.coeffs[0];
        let linear = full.coeffs[1..=dim].to_vec();
        let weights = full.coeffs[dim + 1..].to_vec();
        let net = RbfNetwork::from_parts(dim, centers, widths, weights, bias, linear)?;
        Ok(NarxModel { orders, net })
    }
}

/// Fits models of dynamic order `1..=max_r` and returns the one with the
/// lowest free-run NMSE on `(u_val, y_val)` together with that NMSE.
///
/// This is the model-order selection step the paper attributes to Judd &
/// Mees (1995), implemented as validation-based structure selection.
///
/// # Errors
///
/// Propagates fitting errors; returns [`Error::InvalidStructure`] if
/// `max_r == 0`.
pub fn select_order(
    u_est: &[f64],
    y_est: &[f64],
    u_val: &[f64],
    y_val: &[f64],
    max_r: usize,
    cfg: RbfTrainConfig,
) -> Result<(NarxModel, f64)> {
    if max_r == 0 {
        return Err(Error::InvalidStructure {
            message: "max_r must be at least 1".into(),
        });
    }
    let mut best: Option<(NarxModel, f64)> = None;
    for r in 1..=max_r {
        let model = match NarxModel::fit(u_est, y_est, NarxOrders::dynamic(r), cfg) {
            Ok(m) => m,
            Err(Error::InsufficientData { .. }) => break,
            Err(e) => return Err(e),
        };
        let y_sim = model.simulate(u_val, y_val);
        let nmse = numkit::stats::nmse(&y_sim, y_val);
        if best.as_ref().is_none_or(|(_, b)| nmse < *b) {
            best = Some((model, nmse));
        }
    }
    best.ok_or(Error::InsufficientData {
        needed: 4,
        got: u_est.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mildly nonlinear first-order system the model must capture.
    fn nonlinear_system(u: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; u.len()];
        for k in 1..u.len() {
            y[k] = 0.6 * y[k - 1] + u[k] + 0.3 * u[k].tanh() * u[k];
        }
        y
    }

    fn rich_input(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let t = k as f64;
                (0.21 * t + seed).sin() + 0.6 * (0.047 * t).cos() + 0.3 * (0.013 * t + 1.0).sin()
            })
            .collect()
    }

    #[test]
    fn orders_helpers() {
        let o = NarxOrders::dynamic(2);
        assert_eq!(o.dim(), 5);
        assert_eq!(o.start(), 2);
    }

    #[test]
    fn fit_and_free_run_accuracy() {
        let u = rich_input(600, 0.0);
        let y = nonlinear_system(&u);
        let model =
            NarxModel::fit(&u, &y, NarxOrders::dynamic(1), RbfTrainConfig::default()).unwrap();
        // Validate on a different input.
        let uv = rich_input(300, 2.0);
        let yv = nonlinear_system(&uv);
        let ys = model.simulate(&uv, &yv[..1]);
        let nmse = numkit::stats::nmse(&ys, &yv);
        assert!(nmse < 1e-2, "free-run NMSE {nmse}");
    }

    #[test]
    fn one_step_gradient_matches_fd() {
        let u = rich_input(400, 0.5);
        let y = nonlinear_system(&u);
        let model =
            NarxModel::fit(&u, &y, NarxOrders::dynamic(1), RbfTrainConfig::default()).unwrap();
        let u_hist = [0.4, -0.2];
        let y_hist = [0.1];
        let (f0, g) = model.one_step_with_gradient(&u_hist, &y_hist);
        let h = 1e-6;
        let f1 = model.one_step(&[0.4 + h, -0.2], &y_hist);
        let fd = (f1 - f0) / h;
        assert!((fd - g).abs() < 1e-4, "fd {fd} vs analytic {g}");
    }

    #[test]
    fn regressor_layout() {
        let net = RbfNetwork::affine(0.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let model = NarxModel::from_network(NarxOrders::dynamic(2), net).unwrap();
        let x = model.regressor(&[10.0, 20.0, 30.0], &[40.0, 50.0]);
        assert_eq!(x, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(model.orders().dim(), 5);
        assert_eq!(model.network().dim(), 5);
    }

    #[test]
    fn from_network_validates_dim() {
        let net = RbfNetwork::affine(0.0, vec![1.0]);
        assert!(NarxModel::from_network(NarxOrders::dynamic(1), net).is_err());
    }

    #[test]
    fn fit_validations() {
        let cfg = RbfTrainConfig::default();
        assert!(NarxModel::fit(&[0.0; 5], &[0.0; 4], NarxOrders::dynamic(1), cfg).is_err());
        assert!(NarxModel::fit(&[0.0; 3], &[0.0; 3], NarxOrders::dynamic(2), cfg).is_err());
        let bad = RbfTrainConfig {
            max_centers: 0,
            ..cfg
        };
        assert!(NarxModel::fit(&[0.0; 50], &[0.0; 50], NarxOrders::dynamic(1), bad).is_err());
    }

    #[test]
    fn select_order_prefers_adequate_order() {
        // Second-order linear system: order 2 should beat order 1 clearly.
        let u = rich_input(500, 0.0);
        let mut y = vec![0.0; u.len()];
        for k in 2..u.len() {
            y[k] = 1.1 * y[k - 1] - 0.4 * y[k - 2] + u[k] - 0.5 * u[k - 1];
        }
        let uv = rich_input(250, 3.0);
        let mut yv = vec![0.0; uv.len()];
        for k in 2..uv.len() {
            yv[k] = 1.1 * yv[k - 1] - 0.4 * yv[k - 2] + uv[k] - 0.5 * uv[k - 1];
        }
        let (model, nmse) = select_order(&u, &y, &uv, &yv, 3, RbfTrainConfig::default()).unwrap();
        assert!(
            model.orders().output_lags >= 2,
            "picked order {}",
            model.orders().output_lags
        );
        assert!(nmse < 1e-3, "NMSE {nmse}");
    }

    #[test]
    fn select_order_zero_rejected() {
        assert!(select_order(&[], &[], &[], &[], 0, RbfTrainConfig::default()).is_err());
    }
}
