//! Property-based tests for the numerical kernel.

use numkit::{cholesky::CholeskyFactor, interp, lstsq, lu::LuFactor, qr, stats, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix built as D + small perturbation,
/// where D is diagonally dominant.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("sized vec");
        for i in 0..n {
            // Diagonal dominance guarantees non-singularity.
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, row_sum + 1.0 + m.get(i, i).abs());
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_dominant_systems((a, b) in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), vector(n)))) {
        let lu = LuFactor::new(&a).expect("dominant matrices are non-singular");
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual too large: {} vs {}", ri, bi);
        }
    }

    #[test]
    fn lu_det_sign_consistent(a in (2usize..5).prop_flat_map(dominant_matrix)) {
        // Diagonally dominant with positive diagonal entries: determinant
        // must be nonzero.
        let lu = LuFactor::new(&a).unwrap();
        prop_assert!(lu.det().abs() > 0.0);
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        (rows, cols) in (3usize..8).prop_flat_map(|m| (Just(m), 1usize..3)),
        seed in any::<u64>(),
    ) {
        // Random full-rank tall matrix via seeded values plus identity block.
        let mut vals = Vec::with_capacity(rows * cols);
        let mut s = seed;
        for _ in 0..rows * cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            vals.push(((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        let mut a = Matrix::from_vec(rows, cols, vals).unwrap();
        for c in 0..cols {
            a.add_at(c, c, 3.0); // boost rank
        }
        let b: Vec<f64> = (0..rows).map(|i| (i as f64).sin()).collect();
        let x = qr::solve_ls(&a, &b).unwrap();
        // Normal equations: A^T (A x - b) = 0.
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = a.t_matvec(&resid).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-7, "normal equations violated: {}", v);
        }
    }

    #[test]
    fn cholesky_solves_spd((a, b) in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), vector(n)))) {
        // Make SPD: G = A A^T + I.
        let mut g = a.matmul(&a.transpose()).unwrap();
        for i in 0..g.rows() {
            g.add_at(i, i, 1.0);
        }
        let chol = CholeskyFactor::new(&g).expect("A A^T + I is SPD");
        let x = chol.solve(&b).unwrap();
        let r = g.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn pwl_eval_within_hull(ys in prop::collection::vec(-5.0f64..5.0, 2..10), t in -2.0f64..12.0) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let f = interp::Pwl::new(xs, ys.clone()).unwrap();
        let v = f.eval(t);
        let lo = stats::min(&ys);
        let hi = stats::max(&ys);
        // Linear interpolation + clamping never escapes the value hull.
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn resample_preserves_linear(ts in prop::collection::vec(0.001f64..0.5, 3..20), dt in 0.01f64..0.3) {
        // Build strictly increasing time axis from positive increments.
        let mut t = vec![0.0];
        for d in &ts {
            t.push(t.last().unwrap() + d);
        }
        let y: Vec<f64> = t.iter().map(|&x| -2.0 * x + 0.7).collect();
        let (tu, yu) = interp::resample_uniform(&t, &y, dt).unwrap();
        for (tk, yk) in tu.iter().zip(&yu) {
            prop_assert!((yk - (-2.0 * tk + 0.7)).abs() < 1e-10);
        }
    }

    #[test]
    fn polyfit_reproduces_line(c0 in -5.0f64..5.0, c1 in -5.0f64..5.0) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x).collect();
        let c = lstsq::polyfit(&xs, &ys, 1).unwrap();
        prop_assert!((c[0] - c0).abs() < 1e-8);
        prop_assert!((c[1] - c1).abs() < 1e-8);
    }

    #[test]
    fn stats_invariants(v in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        prop_assert!(stats::rms(&v) >= 0.0);
        prop_assert!(stats::variance(&v) >= 0.0);
        prop_assert!(stats::min(&v) <= stats::mean(&v) + 1e-9);
        prop_assert!(stats::max(&v) >= stats::mean(&v) - 1e-9);
        prop_assert!(stats::max_abs(&v) >= 0.0);
        let med = stats::median(&v);
        prop_assert!(med >= stats::min(&v) && med <= stats::max(&v));
    }
}
