//! Property-based tests for the numerical kernel.

use numkit::sparse::{CscPattern, SparseLu};
use numkit::{cholesky::CholeskyFactor, interp, lstsq, lu::LuFactor, qr, stats, Matrix};
use proptest::prelude::*;

/// Builds an MNA-shaped pattern: `n_nodes` node unknowns (full diagonal,
/// nearest-neighbor coupling, `extra` random conductances) plus
/// `n_branches` voltage-source-style branch rows with structurally zero
/// diagonals. Returns the pattern and a diagonally dominant value set.
fn mna_system(
    n_nodes: usize,
    n_branches: usize,
    extra: usize,
    seed: u64,
) -> (CscPattern, Vec<f64>) {
    let n = n_nodes + n_branches;
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut entries: Vec<(usize, usize)> = (0..n_nodes).map(|i| (i, i)).collect();
    for i in 1..n_nodes {
        entries.push((i - 1, i));
        entries.push((i, i - 1));
    }
    for _ in 0..extra {
        let r = (next() % n_nodes as u64) as usize;
        let c = (next() % n_nodes as u64) as usize;
        entries.push((r, c));
        entries.push((c, r));
    }
    // One node per branch, stratified so no two branches short the same
    // node (parallel ideal sources would be exactly singular).
    let stride = n_nodes / n_branches;
    for b in 0..n_branches {
        let br = n_nodes + b;
        let node = b * stride + (next() % stride as u64) as usize;
        entries.push((node, br));
        entries.push((br, node));
    }
    let pattern = CscPattern::from_entries(n, &entries).unwrap();
    let values = mna_values(&pattern, n_nodes, seed ^ 0x5bd1_e995);
    (pattern, values)
}

/// Diagonally dominant values over an MNA-shaped pattern: node diagonals
/// dominate their row, branch couplings are ±1-ish.
fn mna_values(pattern: &CscPattern, n_nodes: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    let mut uniform = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let n = pattern.n();
    let mut values = vec![0.0; pattern.nnz()];
    for c in 0..n {
        for (r, slot) in pattern.col_entries(c) {
            values[slot] = if r == c {
                16.0 + uniform()
            } else if r < n_nodes && c < n_nodes {
                uniform()
            } else if uniform() >= 0.0 {
                1.0
            } else {
                -1.0
            };
        }
    }
    values
}

/// Asserts the sparse factorization reproduces the dense partial-pivoting
/// solution and residual on the given system.
fn assert_sparse_matches_dense(pattern: &CscPattern, values: &[f64], lu: &SparseLu) {
    let n = pattern.n();
    let dense = pattern.to_dense(values).unwrap();
    let dense_lu = LuFactor::new(&dense).unwrap();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
    let xs = lu.solve(&b).unwrap();
    let xd = dense_lu.solve(&b).unwrap();
    for (i, (a, d)) in xs.iter().zip(&xd).enumerate() {
        assert!(
            (a - d).abs() < 1e-8 * (1.0 + d.abs()),
            "solution mismatch at {i}: sparse {a} vs dense {d}"
        );
    }
    let r = dense.matvec(&xs).unwrap();
    for (ri, bi) in r.iter().zip(&b) {
        assert!((ri - bi).abs() < 1e-8, "residual {ri} vs {bi}");
    }
}

/// Strategy: a well-conditioned square matrix built as D + small perturbation,
/// where D is diagonally dominant.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("sized vec");
        for i in 0..n {
            // Diagonal dominance guarantees non-singularity.
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, row_sum + 1.0 + m.get(i, i).abs());
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_dominant_systems((a, b) in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), vector(n)))) {
        let lu = LuFactor::new(&a).expect("dominant matrices are non-singular");
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual too large: {} vs {}", ri, bi);
        }
    }

    #[test]
    fn lu_det_sign_consistent(a in (2usize..5).prop_flat_map(dominant_matrix)) {
        // Diagonally dominant with positive diagonal entries: determinant
        // must be nonzero.
        let lu = LuFactor::new(&a).unwrap();
        prop_assert!(lu.det().abs() > 0.0);
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        (rows, cols) in (3usize..8).prop_flat_map(|m| (Just(m), 1usize..3)),
        seed in any::<u64>(),
    ) {
        // Random full-rank tall matrix via seeded values plus identity block.
        let mut vals = Vec::with_capacity(rows * cols);
        let mut s = seed;
        for _ in 0..rows * cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            vals.push(((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        let mut a = Matrix::from_vec(rows, cols, vals).unwrap();
        for c in 0..cols {
            a.add_at(c, c, 3.0); // boost rank
        }
        let b: Vec<f64> = (0..rows).map(|i| (i as f64).sin()).collect();
        let x = qr::solve_ls(&a, &b).unwrap();
        // Normal equations: A^T (A x - b) = 0.
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = a.t_matvec(&resid).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-7, "normal equations violated: {}", v);
        }
    }

    #[test]
    fn cholesky_solves_spd((a, b) in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), vector(n)))) {
        // Make SPD: G = A A^T + I.
        let mut g = a.matmul(&a.transpose()).unwrap();
        for i in 0..g.rows() {
            g.add_at(i, i, 1.0);
        }
        let chol = CholeskyFactor::new(&g).expect("A A^T + I is SPD");
        let x = chol.solve(&b).unwrap();
        let r = g.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn pwl_eval_within_hull(ys in prop::collection::vec(-5.0f64..5.0, 2..10), t in -2.0f64..12.0) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let f = interp::Pwl::new(xs, ys.clone()).unwrap();
        let v = f.eval(t);
        let lo = stats::min(&ys);
        let hi = stats::max(&ys);
        // Linear interpolation + clamping never escapes the value hull.
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn resample_preserves_linear(ts in prop::collection::vec(0.001f64..0.5, 3..20), dt in 0.01f64..0.3) {
        // Build strictly increasing time axis from positive increments.
        let mut t = vec![0.0];
        for d in &ts {
            t.push(t.last().unwrap() + d);
        }
        let y: Vec<f64> = t.iter().map(|&x| -2.0 * x + 0.7).collect();
        let (tu, yu) = interp::resample_uniform(&t, &y, dt).unwrap();
        for (tk, yk) in tu.iter().zip(&yu) {
            prop_assert!((yk - (-2.0 * tk + 0.7)).abs() < 1e-10);
        }
    }

    #[test]
    fn polyfit_reproduces_line(c0 in -5.0f64..5.0, c1 in -5.0f64..5.0) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x).collect();
        let c = lstsq::polyfit(&xs, &ys, 1).unwrap();
        prop_assert!((c[0] - c0).abs() < 1e-8);
        prop_assert!((c[1] - c1).abs() < 1e-8);
    }

    #[test]
    fn stats_invariants(v in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        prop_assert!(stats::rms(&v) >= 0.0);
        prop_assert!(stats::variance(&v) >= 0.0);
        prop_assert!(stats::min(&v) <= stats::mean(&v) + 1e-9);
        prop_assert!(stats::max(&v) >= stats::mean(&v) - 1e-9);
        prop_assert!(stats::max_abs(&v) >= 0.0);
        let med = stats::median(&v);
        prop_assert!(med >= stats::min(&v) && med <= stats::max(&v));
    }
}

// The sparse-vs-dense equivalence properties run at ≥ 300 unknowns, where
// each case pays an O(n³) dense reference factorization — fewer cases keep
// the suite fast while still sweeping patterns, branch layouts and values.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sparse_lu_matches_dense_past_former_cutoff(
        n_nodes in 300usize..330,
        n_branches in 8usize..24,
        extra in 100usize..300,
        seed in any::<u64>(),
    ) {
        // ≥ 300 unknowns — beyond the deleted MIN_DEGREE_LIMIT = 256 where
        // the old implementation silently fell back to natural order.
        let (pattern, values) = mna_system(n_nodes, n_branches, extra, seed);
        let lu = SparseLu::factor(&pattern, &values).unwrap();
        assert_sparse_matches_dense(&pattern, &values, &lu);
        prop_assert!(lu.dim() >= 300);
        // Numeric-only refactorization with freshly drawn values.
        let mut lu = lu;
        let v2 = mna_values(&pattern, n_nodes, seed ^ 0xdead_beef);
        lu.refactor(&v2).unwrap();
        assert_sparse_matches_dense(&pattern, &v2, &lu);
    }

    #[test]
    fn sparse_lu_refactor_after_value_drift(
        n_nodes in 300usize..320,
        seed in any::<u64>(),
    ) {
        // Drift the values until the frozen diagonal pivots decay (1e-4
        // diagonals under ±1 couplings are past the 1e-3 re-pivot
        // threshold): refactor must refuse, and a fresh factor() must
        // re-pivot and agree with the dense solver — the workspace's
        // re-analysis path, exercised directly.
        let (pattern, values) = mna_system(n_nodes, 12, 150, seed);
        let mut lu = SparseLu::factor(&pattern, &values).unwrap();
        let mut drifted = vec![0.0; pattern.nnz()];
        for c in 0..pattern.n() {
            for (r, slot) in pattern.col_entries(c) {
                drifted[slot] = if r == c {
                    1e-4
                } else if values[slot] != 0.0 {
                    values[slot].signum()
                } else {
                    0.0
                };
            }
        }
        match lu.refactor(&drifted) {
            Ok(()) => {
                // Legal if no pivot decayed past threshold on this draw.
                assert_sparse_matches_dense(&pattern, &drifted, &lu);
            }
            Err(numkit::Error::Singular { .. }) => {
                let lu2 = SparseLu::factor(&pattern, &drifted).unwrap();
                assert_sparse_matches_dense(&pattern, &drifted, &lu2);
                // The refused refactor must not have poisoned the old object.
                lu.refactor(&values).unwrap();
                assert_sparse_matches_dense(&pattern, &values, &lu);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn sparse_lu_rejects_singular_at_scale(
        n_nodes in 300usize..320,
        dead_col in 0usize..300,
        seed in any::<u64>(),
    ) {
        // Zeroing one full column makes the system exactly singular; both
        // the initial factorization and a refactorization on a previously
        // healthy structure must report it rather than divide through.
        let (pattern, values) = mna_system(n_nodes, 12, 150, seed);
        let mut dead = values.clone();
        for (_, slot) in pattern.col_entries(dead_col) {
            dead[slot] = 0.0;
        }
        prop_assert!(matches!(
            SparseLu::factor(&pattern, &dead),
            Err(numkit::Error::Singular { .. })
        ));
        let mut lu = SparseLu::factor(&pattern, &values).unwrap();
        prop_assert!(matches!(
            lu.refactor(&dead),
            Err(numkit::Error::Singular { .. })
        ));
        // And the survivor still works after both rejections.
        lu.refactor(&values).unwrap();
        assert_sparse_matches_dense(&pattern, &values, &lu);
    }
}
