//! Golden-value tests: the sparse reusable-symbolic LU must agree with the
//! dense partial-pivoting LU on randomly patterned matrices, including
//! across numeric refactorizations.

use numkit::lu::LuFactor;
use numkit::sparse::{CscPattern, SparseLu};
use numkit::Matrix;

/// Deterministic xorshift PRNG — keeps the test hermetic.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [-1, 1).
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Builds a random sparse pattern of dimension `n` with a full diagonal
/// plus `extra` random off-diagonal positions, and one value set.
fn random_system(rng: &mut Rng, n: usize, extra: usize) -> (CscPattern, Vec<f64>) {
    let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    for _ in 0..extra {
        entries.push((rng.below(n), rng.below(n)));
    }
    let pattern = CscPattern::from_entries(n, &entries).unwrap();
    let values = random_values(rng, &pattern);
    (pattern, values)
}

/// Random values over a pattern, diagonally dominated so the system is
/// well-conditioned (golden comparison, not a robustness test).
fn random_values(rng: &mut Rng, pattern: &CscPattern) -> Vec<f64> {
    let n = pattern.n();
    let mut values = vec![0.0; pattern.nnz()];
    for c in 0..n {
        for (r, slot) in pattern.col_entries(c) {
            values[slot] = if r == c {
                4.0 + rng.uniform()
            } else {
                rng.uniform()
            };
        }
    }
    values
}

fn assert_matches_dense(pattern: &CscPattern, values: &[f64], lu: &SparseLu, rng: &mut Rng) {
    let n = pattern.n();
    let dense = pattern.to_dense(values).unwrap();
    let dense_lu = LuFactor::new(&dense).unwrap();
    let b: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
    let x_sparse = lu.solve(&b).unwrap();
    let x_dense = dense_lu.solve(&b).unwrap();
    for (i, (xs, xd)) in x_sparse.iter().zip(&x_dense).enumerate() {
        assert!(
            (xs - xd).abs() < 1e-10 * (1.0 + xd.abs()),
            "solution mismatch at {i}: sparse {xs} vs dense {xd}"
        );
    }
    // Residual check as well, so both being wrong together cannot pass.
    let r = dense.matvec(&x_sparse).unwrap();
    for (ri, bi) in r.iter().zip(&b) {
        assert!((ri - bi).abs() < 1e-9, "residual {ri} vs {bi}");
    }
}

#[test]
fn random_patterns_match_dense_lu() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for &(n, extra) in &[(5, 8), (12, 30), (25, 90), (40, 200), (64, 500)] {
        let (pattern, values) = random_system(&mut rng, n, extra);
        let lu = SparseLu::factor(&pattern, &values).unwrap();
        assert_matches_dense(&pattern, &values, &lu, &mut rng);
    }
}

#[test]
fn refactorizations_track_value_changes() {
    let mut rng = Rng(0xdeadbeefcafef00d);
    let (pattern, values) = random_system(&mut rng, 20, 60);
    let mut lu = SparseLu::factor(&pattern, &values).unwrap();
    // Many refactorizations with fresh values over the same structure — the
    // classic per-Newton-iteration usage.
    for _ in 0..25 {
        let values = random_values(&mut rng, &pattern);
        lu.refactor(&values).unwrap();
        assert_matches_dense(&pattern, &values, &lu, &mut rng);
    }
}

#[test]
fn mna_shaped_pattern_with_branch_rows() {
    // An MNA-like structure: conductance block plus voltage-source branch
    // rows with structurally zero diagonals (forces off-diagonal pivots).
    let mut rng = Rng(0x1234_5678_9abc_def0);
    let n_nodes = 6; // unknowns 0..5 are node voltages, 6..7 branch currents
    let n = n_nodes + 2;
    let mut entries: Vec<(usize, usize)> = (0..n_nodes).map(|i| (i, i)).collect();
    for i in 1..n_nodes {
        entries.push((i - 1, i));
        entries.push((i, i - 1));
    }
    // Branch 6 drives node 0, branch 7 drives node 3.
    for (br, node) in [(6usize, 0usize), (7, 3)] {
        entries.push((node, br));
        entries.push((br, node));
    }
    let pattern = CscPattern::from_entries(n, &entries).unwrap();
    let mut values = vec![0.0; pattern.nnz()];
    for c in 0..n {
        for (r, slot) in pattern.col_entries(c) {
            values[slot] = if r == c && r < n_nodes {
                3.0 + rng.uniform().abs()
            } else if r == c {
                0.0 // structural zero diagonal of the branch rows
            } else if r >= n_nodes || c >= n_nodes {
                1.0 // KCL/voltage coupling
            } else {
                -1.0
            };
        }
    }
    let mut lu = SparseLu::factor(&pattern, &values).unwrap();
    assert_matches_dense(&pattern, &values, &lu, &mut rng);
    // Refactor with perturbed conductances, same structure.
    for slot_scale in [0.5, 2.0, 10.0] {
        let scaled: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(s, v)| if s % 3 == 0 { v * slot_scale } else { *v })
            .collect();
        if lu.refactor(&scaled).is_err() {
            // Pivot decay is allowed — a full re-analysis must recover.
            lu = SparseLu::factor(&pattern, &scaled).unwrap();
        }
        assert_matches_dense(&pattern, &scaled, &lu, &mut rng);
    }
}

#[test]
fn singular_matrices_rejected_like_dense() {
    // Duplicate rows → singular for both factorizations.
    let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
    let mut entries = Vec::new();
    let mut values = Vec::new();
    for c in 0..3 {
        for r in 0..3 {
            if a.get(r, c) != 0.0 {
                entries.push((r, c));
                values.push(a.get(r, c));
            }
        }
    }
    let pattern = CscPattern::from_entries(3, &entries).unwrap();
    assert!(LuFactor::new(&a).is_err());
    assert!(SparseLu::factor(&pattern, &values).is_err());
}
