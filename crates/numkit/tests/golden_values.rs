//! Golden-value tests for the decomposition kernels: small systems whose
//! factors and solutions are worked out by hand, complementing the
//! statistical coverage of `proptest_numkit.rs` with exact known answers.

use numkit::cholesky::CholeskyFactor;
use numkit::lu::LuFactor;
use numkit::{lstsq, lu, qr, Matrix};

const TOL: f64 = 1e-12;

fn assert_close(got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert!((g - w).abs() < tol, "got {g}, want {w}");
    }
}

#[test]
fn lu_solves_2x2_hand_system() {
    // [2 1; 1 3] x = [3; 5]  =>  x = (4/5, 7/5), det = 5.
    let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
    let f = LuFactor::new(&a).unwrap();
    assert_close(&f.solve(&[3.0, 5.0]).unwrap(), &[0.8, 1.4], TOL);
    assert!((f.det() - 5.0).abs() < TOL);
}

#[test]
fn lu_det_with_pivoting() {
    // [4 3; 6 3]: partial pivoting swaps the rows once; det = 4*3 - 3*6 = -6.
    let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
    assert!((LuFactor::new(&a).unwrap().det() + 6.0).abs() < TOL);
}

#[test]
fn lu_solves_3x3_hand_system() {
    // A = [2 0 1; 1 3 2; 0 1 4], det = 2*(12-2) + 1*(1-0) = 21.
    // Ax = [5; 13; 14] has the exact solution x = (1, 2, 3).
    let a = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[1.0, 3.0, 2.0], &[0.0, 1.0, 4.0]]).unwrap();
    let f = LuFactor::new(&a).unwrap();
    assert!((f.det() - 21.0).abs() < 1e-10);
    assert_close(
        &f.solve(&[5.0, 13.0, 14.0]).unwrap(),
        &[1.0, 2.0, 3.0],
        1e-10,
    );
}

#[test]
fn lu_inverse_2x2() {
    // inv([2 1; 1 3]) = 1/5 * [3 -1; -1 2].
    let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
    let inv = lu::inverse(&a).unwrap();
    let want = [[0.6, -0.2], [-0.2, 0.4]];
    for r in 0..2 {
        for c in 0..2 {
            assert!((inv.get(r, c) - want[r][c]).abs() < TOL);
        }
    }
}

#[test]
fn qr_line_fit_golden() {
    // Fit y = c0 + c1 x through (0,6), (1,0), (2,0).
    // Normal equations give c0 = 5, c1 = -3; residuals (1,-2,1), rss = 6.
    let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
    let b = [6.0, 0.0, 0.0];
    let x = qr::solve_ls(&a, &b).unwrap();
    assert_close(&x, &[5.0, -3.0], 1e-10);
    let f = qr::QrFactor::new(&a).unwrap();
    assert!((f.residual_sq(&b).unwrap() - 6.0).abs() < 1e-10);
}

#[test]
fn qr_square_exact_solve() {
    // For square non-singular A the LS solution is the exact solution.
    let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
    // A (2, -1) = (5, 0).
    assert_close(&qr::solve_ls(&a, &[5.0, 0.0]).unwrap(), &[2.0, -1.0], 1e-10);
}

#[test]
fn cholesky_factor_golden() {
    // G = [4 2; 2 3] = L L^T with L = [2 0; 1 sqrt(2)].
    let g = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
    let f = CholeskyFactor::new(&g).unwrap();
    let l = f.l();
    assert!((l.get(0, 0) - 2.0).abs() < TOL);
    assert!((l.get(1, 0) - 1.0).abs() < TOL);
    assert!((l.get(1, 1) - 2.0_f64.sqrt()).abs() < TOL);
    // G x = [8; 7]  =>  x = (1.25, 1.5).
    assert_close(&f.solve(&[8.0, 7.0]).unwrap(), &[1.25, 1.5], TOL);
}

#[test]
fn cholesky_rejects_indefinite() {
    // [1 2; 2 1] has eigenvalues 3 and -1: not positive definite.
    let g = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
    assert!(CholeskyFactor::new(&g).is_err());
}

#[test]
fn robust_ls_matches_hand_line_fit() {
    let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
    let fit = lstsq::robust_ls(&a, &[6.0, 0.0, 0.0]).unwrap();
    assert_close(&fit.coeffs, &[5.0, -3.0], 1e-10);
    assert!((fit.rss - 6.0).abs() < 1e-9);
    assert_eq!(fit.n_obs, 3);
    assert!((fit.rms() - 2.0_f64.sqrt()).abs() < 1e-9);
}

#[test]
fn robust_ls_survives_duplicate_column() {
    // Two identical columns: plain QR is singular, the ridge fallback must
    // still reproduce b = col * 2 up to the tiny regularization bias.
    let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
    let b = [2.0, 4.0, 6.0];
    let fit = lstsq::robust_ls(&a, &b).unwrap();
    let pred: Vec<f64> = (0..3)
        .map(|r| fit.coeffs[0] * a.get(r, 0) + fit.coeffs[1] * a.get(r, 1))
        .collect();
    assert_close(&pred, &b, 1e-6);
}

#[test]
fn polyfit_recovers_exact_quadratic() {
    // y = 1 + x + x^2 sampled at x = 0..4 (ascending-power coefficients).
    let x = [0.0, 1.0, 2.0, 3.0, 4.0];
    let y: Vec<f64> = x.iter().map(|&v| 1.0 + v + v * v).collect();
    let c = lstsq::polyfit(&x, &y, 2).unwrap();
    assert_close(&c, &[1.0, 1.0, 1.0], 1e-9);
    assert!((lstsq::polyval(&c, 5.0) - 31.0).abs() < 1e-8);
}
