//! Sparse column-compressed matrices and a left-looking Gilbert–Peierls LU
//! factorization whose symbolic structure is computed once and reused across
//! numeric refactorizations.
//!
//! This is the classic SPICE optimization: an MNA matrix is re-stamped with
//! new numeric values every Newton iteration of every timestep, but its
//! *sparsity pattern never changes*. The workflow is therefore split:
//!
//! 1. [`CscPattern::from_entries`] — build the structural pattern once;
//! 2. [`SparseLu::factor`] — a genuinely sparse analysis + factorization:
//!    * a linked-list *approximate-minimum-degree* ordering on the
//!      symmetrized pattern (quotient-graph elimination with element
//!      absorption — no size cutoff, no dense adjacency);
//!    * a left-looking *Gilbert–Peierls* sweep: for each column, a
//!      depth-first symbolic reach through the partially built `L`
//!      discovers the fill pattern, a sparse triangular solve produces the
//!      numeric column, and *partial threshold pivoting* picks the pivot —
//!      the diagonal of the fill ordering when it is within
//!      `PIVOT_THRESHOLD` of the column maximum, otherwise the
//!      threshold-eligible candidate with the fewest original-row nonzeros
//!      (Markowitz-style tie-breaking, magnitude as the final tie-break).
//!
//!    Work and memory are proportional to the flops into `L`/`U` and the
//!    factor nonzeros — there is no dense `n × n` scratch anywhere, so the
//!    same code path serves ten unknowns and tens of thousands.
//! 3. [`SparseLu::refactor`] — numeric-only refactorization reusing the
//!    frozen pattern and pivot order, O(nnz(L + U)) per call.
//!
//! `refactor` monitors pivot quality: when a frozen pivot decays relative to
//! its column (the matrix values drifted far from the ones the pivot order
//! was chosen on), it reports [`Error::Singular`] and the caller re-runs the
//! full [`SparseLu::factor`] to re-pivot — which is again O(flops), not
//! O(n³).
//!
//! [`SparseLu::factor_nnz`] and [`SparseLu::total_flops`] expose fill-in and
//! cumulative numeric work so callers (see `circuit::workspace::SolveStats`)
//! can watch for ordering or fill regressions.

use crate::{Error, Matrix, Result};

/// Relative pivot threshold below which a factorization is declared
/// singular (matches the dense [`crate::lu::LuFactor`] threshold).
const SINGULAR_EPS: f64 = 1e-13;

/// A frozen pivot must stay within this factor of the largest candidate in
/// its column, or the refactorization bails out so the caller can re-pivot.
const PIVOT_RTOL: f64 = 1e-3;

/// Partial threshold pivoting: a candidate is pivot-eligible when its
/// magnitude is at least this fraction of the column maximum. The diagonal
/// of the fill-reducing ordering is preferred whenever eligible (it is the
/// entry the ordering minimized fill for); among off-diagonal candidates the
/// sparsest original row wins.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Sentinel for "not assigned" in permutation and linked-list arrays.
const NONE: usize = usize::MAX;

/// Structural (symbolic) pattern of a sparse square matrix in
/// column-compressed form. Values live elsewhere, parallel to the entry
/// slots defined here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl CscPattern {
    /// Builds a pattern from (row, column) pairs. Duplicates are merged;
    /// entry *slots* (indices into a parallel value array) are assigned in
    /// column-major order.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] for `n == 0`.
    /// * [`Error::DimensionMismatch`] if any index is out of range.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyInput);
        }
        let mut sorted: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for &(r, c) in entries {
            if r >= n || c >= n {
                return Err(Error::DimensionMismatch {
                    expected: format!("indices below {n}"),
                    got: format!("entry ({r}, {c})"),
                });
            }
            sorted.push((c, r));
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        for &(c, r) in &sorted {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Ok(CscPattern {
            n,
            col_ptr,
            row_idx,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros (= length of the parallel value array).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Value-array slot of entry `(r, c)`, or `None` if structurally zero.
    pub fn index_of(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.n || c >= self.n {
            return None;
        }
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .binary_search(&r)
            .ok()
            .map(|off| lo + off)
    }

    /// Iterates `(row, slot)` pairs of column `c`, rows ascending.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(lo..hi)
            .map(|(&r, slot)| (r, slot))
    }

    /// Materializes the pattern plus a value array into a dense matrix
    /// (diagnostics and golden-value tests).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `values.len() != nnz()`.
    pub fn to_dense(&self, values: &[f64]) -> Result<Matrix> {
        if values.len() != self.nnz() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.nnz()),
                got: format!("{} values", values.len()),
            });
        }
        let mut m = Matrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for (r, slot) in self.col_entries(c) {
                m.add_at(r, c, values[slot]);
            }
        }
        Ok(m)
    }
}

/// Inserts `v` at the head of degree bucket `d` (doubly linked list).
fn bucket_insert(head: &mut [usize], next: &mut [usize], prev: &mut [usize], d: usize, v: usize) {
    next[v] = head[d];
    prev[v] = NONE;
    if head[d] != NONE {
        prev[head[d]] = v;
    }
    head[d] = v;
}

/// Unlinks `v` from degree bucket `d`.
fn bucket_remove(head: &mut [usize], next: &mut [usize], prev: &mut [usize], d: usize, v: usize) {
    if prev[v] != NONE {
        next[prev[v]] = next[v];
    } else {
        head[d] = next[v];
    }
    if next[v] != NONE {
        prev[next[v]] = prev[v];
    }
}

/// Linked-list approximate-minimum-degree ordering on the symmetrized
/// pattern `A + Aᵀ`. Returns `order` with `order[k]` = original index
/// eliminated at step `k`.
///
/// Quotient-graph elimination: an eliminated variable becomes an *element*
/// whose boundary is its remaining neighborhood; a variable's degree is
/// approximated by `|variable neighbors| + Σ (element boundary sizes − 1)`
/// (an upper bound — boundary overlaps are not subtracted, which is the
/// "approximate" in AMD). Elements adjacent to the eliminated variable are
/// absorbed into the new one, so every variable and element list only ever
/// shrinks or is replaced; total storage stays O(nnz + fill boundaries) with
/// no dense adjacency, and candidate selection is O(1) via degree buckets.
fn amd_order(p: &CscPattern) -> Vec<usize> {
    let n = p.n;
    // Symmetrized adjacency lists, diagonal dropped.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for (r, _) in p.col_entries(c) {
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }

    // Quotient graph state.
    let mut elem_nodes: Vec<Vec<usize>> = Vec::new();
    let mut elem_dead: Vec<bool> = Vec::new();
    let mut eadj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut mark = vec![false; n];

    // Degree buckets (doubly linked lists over the variables).
    let mut head = vec![NONE; n + 1];
    let mut next = vec![NONE; n];
    let mut prev = vec![NONE; n];
    let mut deg = vec![0usize; n];
    for v in 0..n {
        deg[v] = adj[v].len();
        bucket_insert(&mut head, &mut next, &mut prev, deg[v], v);
    }

    let mut order = Vec::with_capacity(n);
    let mut min_d = 0usize;
    for k in 0..n {
        while head[min_d] == NONE {
            min_d += 1;
        }
        let pv = head[min_d];
        bucket_remove(&mut head, &mut next, &mut prev, deg[pv], pv);
        eliminated[pv] = true;
        order.push(pv);

        // Boundary of the new element: remaining variable neighbors plus
        // the boundaries of every adjacent element. Built directly in the
        // element store (it becomes the new element's node list).
        let mut boundary: Vec<usize> = Vec::new();
        for &u in &adj[pv] {
            if !eliminated[u] && !mark[u] {
                mark[u] = true;
                boundary.push(u);
            }
        }
        for &e in &eadj[pv] {
            if elem_dead[e] {
                continue;
            }
            for &u in &elem_nodes[e] {
                if !eliminated[u] && !mark[u] {
                    mark[u] = true;
                    boundary.push(u);
                }
            }
        }
        // Absorb pv's elements into the new one (their boundaries are
        // covered by it); this is what keeps element storage bounded.
        for &e in &eadj[pv] {
            elem_dead[e] = true;
            elem_nodes[e] = Vec::new();
        }
        eadj[pv] = Vec::new();
        adj[pv] = Vec::new();
        let new_elem = elem_nodes.len();
        elem_nodes.push(boundary);
        elem_dead.push(false);

        let remaining = n - k - 1;
        for bi in 0..elem_nodes[new_elem].len() {
            let i = elem_nodes[new_elem][bi];
            // Variable neighbors now covered by the new element are pruned
            // (they are exactly the marked ones), as are eliminated ones.
            adj[i].retain(|&u| !eliminated[u] && !mark[u]);
            eadj[i].retain(|&e| !elem_dead[e]);
            eadj[i].push(new_elem);
            let mut d = adj[i].len();
            for &e in &eadj[i] {
                d += elem_nodes[e].len() - 1; // boundary minus `i` itself
            }
            let d = d.min(remaining.saturating_sub(1));
            bucket_remove(&mut head, &mut next, &mut prev, deg[i], i);
            deg[i] = d;
            bucket_insert(&mut head, &mut next, &mut prev, d, i);
            if d < min_d {
                min_d = d;
            }
        }
        for bi in 0..elem_nodes[new_elem].len() {
            mark[elem_nodes[new_elem][bi]] = false;
        }
    }
    order
}

/// Sorts one factor column's parallel `(row, value)` arrays by ascending
/// row, using `scratch` to avoid per-column allocation.
fn sort_col(rows: &mut [usize], vals: &mut [f64], scratch: &mut Vec<(usize, f64)>) {
    scratch.clear();
    scratch.extend(rows.iter().copied().zip(vals.iter().copied()));
    scratch.sort_unstable_by_key(|&(r, _)| r);
    for (i, &(r, v)) in scratch.iter().enumerate() {
        rows[i] = r;
        vals[i] = v;
    }
}

/// LU factorization of a sparse matrix with a frozen symbolic structure.
///
/// Built once per pattern by [`SparseLu::factor`] (Gilbert–Peierls with
/// threshold pivoting — see the [module docs](self)); subsequent matrices
/// with the same pattern are handled by [`SparseLu::refactor`].
///
/// # Example
///
/// ```
/// use numkit::sparse::{CscPattern, SparseLu};
/// # fn main() -> Result<(), numkit::Error> {
/// let pat = CscPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)])?;
/// // Column-major slots: (0,0) (1,0) (0,1) (1,1).
/// let mut lu = SparseLu::factor(&pat, &[2.0, 1.0, 1.0, 3.0])?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// // New values, same structure: numeric-only refactorization.
/// lu.refactor(&[4.0, 1.0, 1.0, 3.0])?;
/// let x = lu.solve(&[4.0, 4.0])?;
/// assert!((4.0 * x[0] + x[1] - 4.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Permuted row -> original row.
    rowmap: Vec<usize>,
    /// Permuted column -> original column (the fill ordering).
    colmap: Vec<usize>,
    /// Strictly-lower L (unit diagonal implied), column compressed, rows
    /// ascending, in the permuted space.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Strictly-upper U, column compressed, rows ascending.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// U diagonal (pivots).
    diag: Vec<f64>,
    /// Scatter plan: for permuted column `k`, the (permuted row, value slot)
    /// pairs of the original matrix entries landing in that column.
    sc_ptr: Vec<usize>,
    sc_rows: Vec<usize>,
    sc_slots: Vec<usize>,
    /// Dense accumulator (one vector, not a matrix), kept zeroed between
    /// uses.
    work: Vec<f64>,
    /// Cumulative numeric work (multiply–add and divide counts) across the
    /// initial factorization and every refactorization.
    flops: u64,
}

impl SparseLu {
    /// Full factorization: approximate-minimum-degree ordering, then a
    /// left-looking Gilbert–Peierls sweep that discovers fill by depth-first
    /// symbolic reach per column and chooses pivots by partial threshold
    /// pivoting with Markowitz-style tie-breaking.
    ///
    /// Cost is O(flops into `L`·`U`) time and O(nnz(`L` + `U`)) memory —
    /// there is no dense scratch, so this is also the re-pivot path when
    /// [`SparseLu::refactor`] reports pivot decay.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `values.len() != pattern.nnz()`.
    /// * [`Error::Singular`] for structurally or numerically singular
    ///   input, and for non-finite (NaN/inf) values — which would otherwise
    ///   slip past every magnitude-based pivot check.
    pub fn factor(pattern: &CscPattern, values: &[f64]) -> Result<Self> {
        let n = pattern.n();
        if values.len() != pattern.nnz() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", pattern.nnz()),
                got: format!("{} values", values.len()),
            });
        }
        // 1. Fill-reducing ordering (columns; rows follow from pivoting).
        let colmap = amd_order(pattern);

        // Markowitz tie-break data: original-row occupancy of A.
        let mut row_count = vec![0usize; n];
        for c in 0..n {
            for (r, _) in pattern.col_entries(c) {
                row_count[r] += 1;
            }
        }

        // 2. Gilbert–Peierls left-looking sweep. L rows are kept as
        //    *original* row ids while pivots are still being assigned and
        //    remapped to pivot positions afterwards.
        let mut l_colptr = vec![0usize; n + 1];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = vec![0usize; n + 1];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut diag = vec![0.0; n];
        let mut pinv = vec![NONE; n]; // original row -> pivot position
        let mut rowmap = vec![0usize; n];
        let mut flops = 0u64;

        let mut x = vec![0.0f64; n]; // numeric accumulator by original row
        let mut visited = vec![false; n];
        let mut reach: Vec<usize> = Vec::new(); // DFS post-order
        let mut dfs: Vec<(usize, usize)> = Vec::new();

        for k in 0..n {
            let oc = colmap[k];
            // --- symbolic: reach of A(:,oc) through the current L ---
            reach.clear();
            for (r, _) in pattern.col_entries(oc) {
                if visited[r] {
                    continue;
                }
                visited[r] = true;
                dfs.push((r, 0));
                'dfs: while let Some(&(node, child_at)) = dfs.last() {
                    let kp = pinv[node];
                    let (lo, hi) = if kp == NONE {
                        (0, 0)
                    } else {
                        (l_colptr[kp], l_colptr[kp + 1])
                    };
                    for i in child_at..(hi - lo) {
                        let child = l_rows[lo + i];
                        if !visited[child] {
                            visited[child] = true;
                            dfs.last_mut().expect("non-empty stack").1 = i + 1;
                            dfs.push((child, 0));
                            continue 'dfs;
                        }
                    }
                    dfs.pop();
                    reach.push(node);
                }
            }

            // --- numeric: sparse solve of the current column against L,
            //     consuming the reach in topological (reverse post-) order.
            let mut colscale = f64::MIN_POSITIVE;
            let mut finite = true;
            for (r, slot) in pattern.col_entries(oc) {
                let v = values[slot];
                x[r] = v;
                colscale = colscale.max(v.abs());
                finite &= v.is_finite();
            }
            if !finite {
                // A NaN/inf stamp (e.g. from an upstream solve) must surface
                // as an error, not poison the factors: NaN fails every
                // magnitude comparison below, so it would silently bypass
                // both the singularity check and the pivot-candidate filter.
                for &node in &reach {
                    x[node] = 0.0;
                    visited[node] = false;
                }
                return Err(Error::Singular { pivot: k });
            }
            for &node in reach.iter().rev() {
                let kp = pinv[node];
                if kp == NONE {
                    continue;
                }
                let xj = x[node];
                if xj != 0.0 {
                    for idx in l_colptr[kp]..l_colptr[kp + 1] {
                        x[l_rows[idx]] -= l_vals[idx] * xj;
                    }
                    flops += (l_colptr[kp + 1] - l_colptr[kp]) as u64;
                }
            }

            // --- pivot: threshold-eligible candidates among unassigned rows.
            let mut colmax = 0.0f64;
            for &node in &reach {
                if pinv[node] == NONE {
                    colmax = colmax.max(x[node].abs());
                }
            }
            if colmax <= SINGULAR_EPS * colscale {
                // Every candidate is (numerically) zero, or the column is
                // structurally empty below the already-chosen pivots.
                for &node in &reach {
                    x[node] = 0.0;
                    visited[node] = false;
                }
                return Err(Error::Singular { pivot: k });
            }
            let threshold = PIVOT_THRESHOLD * colmax;
            let mut pr = NONE;
            if pinv[oc] == NONE && x[oc].abs() >= threshold {
                // The diagonal of the fill ordering is eligible: take it.
                pr = oc;
            } else {
                let mut best_rc = usize::MAX;
                let mut best_mag = 0.0f64;
                for &node in &reach {
                    if pinv[node] != NONE {
                        continue;
                    }
                    let mag = x[node].abs();
                    if mag < threshold {
                        continue;
                    }
                    if row_count[node] < best_rc || (row_count[node] == best_rc && mag > best_mag) {
                        best_rc = row_count[node];
                        best_mag = mag;
                        pr = node;
                    }
                }
            }
            debug_assert_ne!(pr, NONE, "colmax > 0 guarantees a candidate");
            let pivot = x[pr];
            pinv[pr] = k;
            rowmap[k] = pr;
            diag[k] = pivot;

            // --- commit the column: reached pivotal rows form U(:,k),
            //     the remaining reached rows form L(:,k). The structure is
            //     the full reach set (value-independent), so refactor can
            //     reuse it for any numerics over the same pattern.
            for &node in &reach {
                visited[node] = false;
                if node == pr {
                    x[node] = 0.0;
                    continue;
                }
                let kp = pinv[node];
                if kp != NONE {
                    u_rows.push(kp);
                    u_vals.push(x[node]);
                } else {
                    l_rows.push(node);
                    l_vals.push(x[node] / pivot);
                    flops += 1;
                }
                x[node] = 0.0;
            }
            u_colptr[k + 1] = u_rows.len();
            l_colptr[k + 1] = l_rows.len();
        }

        // 3. Remap L to pivot positions and sort factor columns ascending
        //    (refactor consumes U in ascending-row dependency order).
        for r in &mut l_rows {
            *r = pinv[*r];
        }
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for k in 0..n {
            sort_col(
                &mut l_rows[l_colptr[k]..l_colptr[k + 1]],
                &mut l_vals[l_colptr[k]..l_colptr[k + 1]],
                &mut scratch,
            );
            sort_col(
                &mut u_rows[u_colptr[k]..u_colptr[k + 1]],
                &mut u_vals[u_colptr[k]..u_colptr[k + 1]],
                &mut scratch,
            );
        }

        // 4. Scatter plan for refactorizations.
        let mut sc_ptr = vec![0usize; n + 1];
        let mut sc_rows = Vec::with_capacity(pattern.nnz());
        let mut sc_slots = Vec::with_capacity(pattern.nnz());
        for (k, &oc) in colmap.iter().enumerate() {
            for (r, slot) in pattern.col_entries(oc) {
                sc_rows.push(pinv[r]);
                sc_slots.push(slot);
            }
            sc_ptr[k + 1] = sc_rows.len();
        }

        Ok(SparseLu {
            n,
            rowmap,
            colmap,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            diag,
            sc_ptr,
            sc_rows,
            sc_slots,
            work: x,
            flops,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the factors (L + U + diagonal) — the fill-in
    /// diagnostic and the per-call cost driver of [`SparseLu::refactor`].
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Cumulative numeric operations (multiply–adds plus divides) spent in
    /// [`SparseLu::factor`] and every [`SparseLu::refactor`] on this object.
    pub fn total_flops(&self) -> u64 {
        self.flops
    }

    /// Numeric-only refactorization: same pattern, same pivot order, new
    /// values. Left-looking over the frozen column structures.
    ///
    /// # Errors
    ///
    /// [`Error::Singular`] when a frozen pivot falls below the singularity
    /// threshold *or* decays badly relative to its column (the caller should
    /// then re-run [`SparseLu::factor`] to choose fresh pivots), and for
    /// non-finite (NaN/inf) input values.
    pub fn refactor(&mut self, values: &[f64]) -> Result<()> {
        let n = self.n;
        if values.len() != self.sc_slots.len() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.sc_slots.len()),
                got: format!("{} values", values.len()),
            });
        }
        let SparseLu {
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            diag,
            sc_ptr,
            sc_rows,
            sc_slots,
            work: x,
            flops,
            ..
        } = self;
        for k in 0..n {
            // Scatter column k of A (permuted) into the accumulator.
            let mut colscale = f64::MIN_POSITIVE;
            let mut finite = true;
            for idx in sc_ptr[k]..sc_ptr[k + 1] {
                let v = values[sc_slots[idx]];
                x[sc_rows[idx]] += v;
                colscale = colscale.max(v.abs());
                finite &= v.is_finite();
            }
            if !finite {
                // NaN/inf input: reject before it reaches the factors — the
                // magnitude-based pivot checks below are all false for NaN
                // and would wave it through.
                for idx in sc_ptr[k]..sc_ptr[k + 1] {
                    x[sc_rows[idx]] = 0.0;
                }
                return Err(Error::Singular { pivot: k });
            }
            // Left-looking update: consume U entries ascending.
            for idx in u_colptr[k]..u_colptr[k + 1] {
                let j = u_rows[idx];
                let ujk = x[j];
                u_vals[idx] = ujk;
                if ujk != 0.0 {
                    for l in l_colptr[j]..l_colptr[j + 1] {
                        x[l_rows[l]] -= l_vals[l] * ujk;
                    }
                    *flops += (l_colptr[j + 1] - l_colptr[j]) as u64;
                }
            }
            let pivot = x[k];
            let mut colmax = pivot.abs();
            for idx in l_colptr[k]..l_colptr[k + 1] {
                colmax = colmax.max(x[l_rows[idx]].abs());
            }
            if pivot.abs() < SINGULAR_EPS * colscale || pivot.abs() < PIVOT_RTOL * colmax {
                // Restore the zero invariant of the accumulator before
                // reporting, so a later refactor starts clean.
                x[k] = 0.0;
                for idx in u_colptr[k]..u_colptr[k + 1] {
                    x[u_rows[idx]] = 0.0;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] = 0.0;
                }
                return Err(Error::Singular { pivot: k });
            }
            diag[k] = pivot;
            for idx in l_colptr[k]..l_colptr[k + 1] {
                l_vals[idx] = x[l_rows[idx]] / pivot;
            }
            *flops += (l_colptr[k + 1] - l_colptr[k]) as u64;
            // Clear the accumulator at exactly the column-k pattern.
            x[k] = 0.0;
            for idx in u_colptr[k]..u_colptr[k + 1] {
                x[u_rows[idx]] = 0.0;
            }
            for idx in l_colptr[k]..l_colptr[k + 1] {
                x[l_rows[idx]] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` with the current factors, writing into `out` and
    /// using `scratch` as the permuted intermediate (both length `n`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on length mismatches.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let n = self.n;
        if b.len() != n || out.len() != n || scratch.len() != n {
            return Err(Error::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                got: format!("{} / {} / {}", b.len(), out.len(), scratch.len()),
            });
        }
        for r in 0..n {
            scratch[r] = b[self.rowmap[r]];
        }
        // Forward substitution (unit lower, column access).
        for j in 0..n {
            let dj = scratch[j];
            if dj != 0.0 {
                for idx in self.l_colptr[j]..self.l_colptr[j + 1] {
                    scratch[self.l_rows[idx]] -= self.l_vals[idx] * dj;
                }
            }
        }
        // Back substitution (upper, column access).
        for k in (0..n).rev() {
            let yk = scratch[k] / self.diag[k];
            scratch[k] = yk;
            if yk != 0.0 {
                for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                    scratch[self.u_rows[idx]] -= self.u_vals[idx] * yk;
                }
            }
        }
        for c in 0..n {
            out[self.colmap[c]] = scratch[c];
        }
        Ok(())
    }

    /// Allocating convenience wrapper around [`SparseLu::solve_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_into(b, &mut out, &mut scratch)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_entries(m: &Matrix) -> (Vec<(usize, usize)>, Vec<f64>) {
        // Column-major so slots line up with CscPattern's ordering.
        let mut e = Vec::new();
        let mut v = Vec::new();
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                if m.get(r, c) != 0.0 {
                    e.push((r, c));
                    v.push(m.get(r, c));
                }
            }
        }
        (e, v)
    }

    #[test]
    fn pattern_slots_and_lookup() {
        let pat = CscPattern::from_entries(3, &[(2, 0), (0, 0), (1, 2), (0, 0)]).unwrap();
        assert_eq!(pat.n(), 3);
        assert_eq!(pat.nnz(), 3); // duplicate merged
        assert_eq!(pat.index_of(0, 0), Some(0));
        assert_eq!(pat.index_of(2, 0), Some(1));
        assert_eq!(pat.index_of(1, 2), Some(2));
        assert_eq!(pat.index_of(1, 1), None);
        assert_eq!(pat.index_of(9, 0), None);
    }

    #[test]
    fn pattern_validation() {
        assert!(matches!(
            CscPattern::from_entries(0, &[]),
            Err(Error::EmptyInput)
        ));
        assert!(CscPattern::from_entries(2, &[(2, 0)]).is_err());
    }

    #[test]
    fn solves_dense_reference_system() {
        let a = Matrix::from_rows(&[
            &[4.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 2.0],
            &[1.0, 0.0, 5.0, 0.0],
            &[0.0, 2.0, 0.0, 6.0],
        ])
        .unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(4, &e).unwrap();
        let lu = SparseLu::factor(&pat, &v).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
        assert!(lu.total_flops() > 0);
    }

    #[test]
    fn handles_zero_diagonal_like_mna_branch_rows() {
        // Voltage-source-style block: structural zero on the (2,2) diagonal
        // forces off-diagonal pivoting.
        let a =
            Matrix::from_rows(&[&[1e-3, 0.0, 1.0], &[0.0, 2e-3, -1.0], &[1.0, -1.0, 0.0]]).unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(3, &e).unwrap();
        let lu = SparseLu::factor(&pat, &v).unwrap();
        let b = [0.0, 0.0, 2.5];
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn refactor_tracks_new_values() {
        let a0 =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]).unwrap();
        let (e, v0) = dense_entries(&a0);
        let pat = CscPattern::from_entries(3, &e).unwrap();
        let mut lu = SparseLu::factor(&pat, &v0).unwrap();
        // Same structure, different values.
        let a1 =
            Matrix::from_rows(&[&[5.0, -1.0, 0.0], &[2.0, 7.0, 0.5], &[0.0, -3.0, 9.0]]).unwrap();
        let (_, v1) = dense_entries(&a1);
        lu.refactor(&v1).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let r = a1.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_rejects_decayed_pivot_then_factor_recovers() {
        // First matrix: diagonally dominant, diagonal pivots chosen. Second
        // matrix zeroes a diagonal entry: the frozen pivot decays and
        // refactor must bail out; a fresh factor() succeeds by re-pivoting.
        let a0 = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 4.0]]).unwrap();
        let (e, v0) = dense_entries(&a0);
        let pat = CscPattern::from_entries(2, &e).unwrap();
        let mut lu = SparseLu::factor(&pat, &v0).unwrap();
        let v1 = [1e-9, 1.0, 1.0, 1e-9]; // slots: (0,0) (1,0) (0,1) (1,1)
        assert!(matches!(lu.refactor(&v1), Err(Error::Singular { .. })));
        let lu2 = SparseLu::factor(&pat, &v1).unwrap();
        let x = lu2.solve(&[2.0, 5.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-6 && (x[0] - 5.0).abs() < 1e-6);
        // The failed refactor must not poison the accumulator: a refactor
        // with the original values still works on the old object.
        lu.refactor(&v0).unwrap();
        let x = lu.solve(&[5.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(2, &e).unwrap();
        assert!(matches!(
            SparseLu::factor(&pat, &v),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn factor_rejects_nan_values() {
        // A NaN value must surface as a factorization error, not poison the
        // factors or the accumulator invariant.
        let pat = CscPattern::from_entries(2, &[(0, 0), (1, 0), (0, 1), (1, 1)]).unwrap();
        assert!(matches!(
            SparseLu::factor(&pat, &[f64::NAN, 1.0, 1.0, 3.0]),
            Err(Error::Singular { .. })
        ));
        // Off-pivot-path NaN: here the NaN lands in a U entry whose column
        // still has a healthy pivot, so magnitude-based checks alone would
        // wave it through and solve() would return NaN silently.
        let upper = CscPattern::from_entries(2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        assert!(matches!(
            SparseLu::factor(&upper, &[2.0, f64::NAN, 3.0]),
            Err(Error::Singular { .. })
        ));
        // Same for a refactorization over a healthy structure — and the
        // rejection must not poison the accumulator for later refactors.
        let mut lu = SparseLu::factor(&upper, &[2.0, 1.0, 3.0]).unwrap();
        assert!(matches!(
            lu.refactor(&[2.0, f64::INFINITY, 3.0]),
            Err(Error::Singular { .. })
        ));
        lu.refactor(&[4.0, 2.0, 5.0]).unwrap();
        let x = lu.solve(&[4.0, 5.0]).unwrap();
        assert!((4.0 * x[0] + 2.0 * x[1] - 4.0).abs() < 1e-12);
        assert!((5.0 * x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn to_dense_round_trip() {
        // Column-major slots: (0,0) then (0,1) then (1,1).
        let pat = CscPattern::from_entries(2, &[(0, 0), (1, 1), (0, 1)]).unwrap();
        let m = pat.to_dense(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert!(pat.to_dense(&[1.0]).is_err());
    }

    #[test]
    fn min_degree_prefers_low_degree_nodes() {
        // Star graph: center 0 connected to 1..4. Eliminating the hub first
        // would fill the whole matrix; minimum degree defers it behind the
        // degree-1 leaves and the factorization stays fill-free.
        let mut e = vec![(0usize, 0usize)];
        for k in 1..5 {
            e.push((k, k));
            e.push((0, k));
            e.push((k, 0));
        }
        let pat = CscPattern::from_entries(5, &e).unwrap();
        let order = amd_order(&pat);
        assert_ne!(order[0], 0, "hub must not be eliminated first");
        // Diagonally dominant values aligned with the pattern.
        let mut vals = vec![0.0; pat.nnz()];
        for c in 0..5 {
            for (r, slot) in pat.col_entries(c) {
                vals[slot] = if r == c { 8.0 } else { 1.0 };
            }
        }
        let lu = SparseLu::factor(&pat, &vals).unwrap();
        // Zero fill: L and U each hold exactly the 4 off-diagonal edges.
        assert_eq!(lu.factor_nnz(), 4 + 4 + 5);
    }

    #[test]
    fn amd_handles_past_former_cutoff_without_dense_scratch() {
        // A 600-unknown tridiagonal chain — far beyond the old dense-greedy
        // cutoff (256). Any fill-reducing order keeps a chain's factors
        // tridiagonal-sized; the natural-order fallback would too, but the
        // point is that the ordering + factorization stay exact and cheap.
        let n = 600;
        let mut e: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 1..n {
            e.push((i - 1, i));
            e.push((i, i - 1));
        }
        let pat = CscPattern::from_entries(n, &e).unwrap();
        let order = amd_order(&pat);
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(!seen[v], "duplicate in ordering");
            seen[v] = true;
        }
        let mut vals = vec![0.0; pat.nnz()];
        for c in 0..n {
            for (r, slot) in pat.col_entries(c) {
                vals[slot] = if r == c { 4.0 } else { -1.0 };
            }
        }
        let lu = SparseLu::factor(&pat, &vals).unwrap();
        // A chain admits a zero-fill elimination order; allow a small slack
        // over the 2(n-1) off-diagonals + n pivots for tie-break artifacts.
        assert!(
            lu.factor_nnz() < 4 * n,
            "fill explosion: {} nnz on a {n}-chain",
            lu.factor_nnz()
        );
        // Solve sanity against a known RHS.
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let x = lu.solve(&b).unwrap();
        let mut r0 = 4.0 * x[0] - x[1];
        assert!((r0 - 1.0).abs() < 1e-10);
        r0 = 4.0 * x[n - 1] - x[n - 2];
        assert!(r0.abs() < 1e-10);
    }

    #[test]
    fn dimension_errors() {
        let pat = CscPattern::from_entries(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(SparseLu::factor(&pat, &[1.0]).is_err());
        let mut lu = SparseLu::factor(&pat, &[1.0, 1.0]).unwrap();
        assert!(lu.refactor(&[1.0]).is_err());
        assert!(lu.solve(&[1.0]).is_err());
        assert_eq!(lu.dim(), 2);
    }
}
